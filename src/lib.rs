//! # gmg-repro — facade crate
//!
//! Re-exports the whole workspace under one roof so examples, integration
//! tests and downstream users can write `use gmg_repro::prelude::*`.
//!
//! Reproduction of *"High-Performance, Scalable Geometric Multigrid via
//! Fine-Grain Data Blocking for GPUs"* (SC 2024). See `README.md` for the
//! quickstart, `DESIGN.md` for the system inventory, and `EXPERIMENTS.md`
//! for paper-vs-measured results.

pub use gmg_brick as brick;
pub use gmg_comm as comm;
pub use gmg_core as gmg;
pub use gmg_flight as flight;
pub use gmg_hpgmg as hpgmg;
pub use gmg_machine as machine;
pub use gmg_mesh as mesh;
pub use gmg_metrics as metrics;
pub use gmg_prof as prof;
pub use gmg_stencil as stencil;
pub use gmg_trace as trace;

/// The most common imports for building and running a solver.
pub mod prelude {
    pub use gmg_brick::{BrickLayout, BrickOrdering, BrickedField};
    pub use gmg_comm::runtime::{RankCtx, RankWorld};
    pub use gmg_core::schedule::{simulate, ScheduleConfig};
    pub use gmg_core::{GmgSolver, PoissonProblem, SolveStats, SolverConfig};
    pub use gmg_machine::gpu::System;
    pub use gmg_mesh::{Array3, Box3, Decomposition, Point3};
    pub use gmg_stencil::expr::StencilDef;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let d = Decomposition::single(Box3::cube(8));
        assert_eq!(d.num_ranks(), 1);
        let cfg = SolverConfig::test_default();
        assert_eq!(cfg.brick_dim, 4);
    }
}
