//! End-to-end checks that the reproduction reproduces the *shape* of every
//! headline result in the paper — the cross-crate contract the harnesses
//! rely on. (Per-figure detail checks live in the harness modules.)

use gmg_bench as bench;
use gmg_repro::prelude::*;

#[test]
fn headline_portability_73_and_92_percent() {
    let t3 = bench::table3::table();
    let t5 = bench::table5::table();
    assert!((t3.overall_phi - 0.73).abs() < 0.02);
    assert!((t5.overall_phi - 0.92).abs() < 0.02);
}

#[test]
fn headline_hpgmg_speedups() {
    let bars = bench::figure4::bars();
    assert!((bars[0].speedup - 1.58).abs() < 0.15);
    assert!((bars[1].speedup - 1.46).abs() < 0.15);
}

#[test]
fn headline_weak_scaling_efficiency() {
    for sys in System::ALL {
        let c = bench::figure8::curve(sys);
        let last = c.points.last().unwrap();
        assert!(last.3 >= 0.87, "{sys:?}: {:.3}", last.3);
    }
}

#[test]
fn figure3_level_scaling_near_4x_where_comm_bound() {
    // Paper: "good scaling between levels, closer to 4×, which is the
    // ratio of the surface size between levels since communication
    // dominates over computation" — the mid-hierarchy ratios must sit
    // between the 8× volume ratio (compute-bound) and ~1× (pure latency).
    for r in bench::figure3::simulate_all() {
        for l in 1..4 {
            let ratio = r.levels[l].total_seconds / r.levels[l + 1].total_seconds;
            assert!(
                (1.2..8.5).contains(&ratio),
                "{:?} level {l}->{}: {ratio:.2}",
                r.system,
                l + 1
            );
        }
    }
}

#[test]
fn table4_exact_values() {
    for (op, ai, paper) in bench::table4::rows() {
        assert!((ai - paper).abs() < 0.006, "{}: {ai}", op.name());
    }
}

#[test]
fn exchange_alpha_beta_within_paper_bands() {
    // Figure 6: α in 25–200 µs, β in 7–16 GB/s, Frontier best.
    let f = bench::figure6::series(System::Frontier);
    let p = bench::figure6::series(System::Perlmutter);
    let s = bench::figure6::series(System::Sunspot);
    for e in [&f, &p, &s] {
        assert!((15e-6..=230e-6).contains(&e.alpha_s), "{:?}", e.system);
        assert!((6.0..=16.5).contains(&e.beta_gbs), "{:?}", e.system);
    }
    assert!(f.alpha_s < p.alpha_s && p.alpha_s < s.alpha_s);
    assert!(f.beta_gbs > p.beta_gbs && p.beta_gbs > s.beta_gbs);
}

#[test]
fn kernel_latency_band_5_to_20_us() {
    use gmg_repro::machine::timing::KernelTiming;
    use gmg_repro::stencil::OpKind;
    let alphas: Vec<f64> = System::ALL
        .iter()
        .map(|s| KernelTiming::latency_model(&s.gpu(), OpKind::ApplyOp).alpha_s)
        .collect();
    assert!(alphas.iter().all(|a| (4.9e-6..=20.1e-6).contains(a)));
    // NVIDIA lowest overhead (paper headline).
    assert!(alphas[0] < alphas[1] && alphas[1] < alphas[2]);
}

#[test]
fn communication_overhead_dwarfs_kernel_launch() {
    // Discussion section: "communication overheads being close to ten
    // times larger than kernel launching overheads".
    use gmg_repro::comm::model::NetworkModel;
    for (net, sys) in [
        (NetworkModel::perlmutter(), System::Perlmutter),
        (NetworkModel::frontier(), System::Frontier),
        (NetworkModel::sunspot(), System::Sunspot),
    ] {
        let (alpha, _) = net.effective_alpha_beta(26);
        let kernel = sys.gpu().kernel_overhead_us * 1e-6;
        let ratio = alpha / kernel;
        assert!(
            ratio > 2.0,
            "{sys:?}: comm/kernel overhead ratio {ratio:.1}"
        );
    }
}

#[test]
fn full_paper_pipeline_smoke() {
    // Run every harness end-to-end (prints + JSON) — the all_experiments
    // binary path, exercised as a test.
    std::env::set_var(
        "GMG_RESULTS_DIR",
        std::env::temp_dir().join("gmg_paper_shapes_results"),
    );
    for v in [
        bench::figure3::run(),
        bench::figure4::run(),
        bench::figure5::run(),
        bench::figure6::run(),
        bench::figure7::run(),
        bench::table2::run(),
        bench::table3::run(),
        bench::table4::run(),
        bench::table5::run(),
    ] {
        assert!(v.is_object());
    }
    std::env::remove_var("GMG_RESULTS_DIR");
}
