//! Validation of the solver against the analytic PDE solution: the
//! converged discrete solution must approach `u = −b/(12π²)` at O(h²).

use gmg_repro::gmg::PoissonProblem;
use gmg_repro::prelude::*;

/// Solve at resolution `n` and return the max-norm error against the
/// analytic PDE solution (not the discrete one — this measures
/// discretization error, which must shrink as h²).
fn pde_error(n: i64) -> f64 {
    let decomp = Decomposition::single(Box3::cube(n));
    let cfg = SolverConfig {
        num_levels: 3,
        max_smooths: 8,
        bottom_smooths: 60,
        tolerance: 1e-12,
        max_vcycles: 40,
        communication_avoiding: true,
        brick_dim: 4,
        ordering: BrickOrdering::SurfaceMajor,
        ..SolverConfig::paper_default()
    };
    let d = &decomp;
    let out = RankWorld::run(1, move |mut ctx| {
        let mut s = GmgSolver::new(d.clone(), ctx.rank(), cfg);
        let stats = s.solve(&mut ctx);
        assert!(
            stats.converged,
            "must converge at n={n}: {:?}",
            stats.residual_history
        );
        let problem = PoissonProblem::new(n);
        s.levels[0].max_error(move |p| problem.exact_solution(p.rem_euclid(Point3::splat(n))))
    });
    out[0]
}

#[test]
fn second_order_convergence_to_pde_solution() {
    let e16 = pde_error(16);
    let e32 = pde_error(32);
    let rate = e16 / e32;
    // O(h²): doubling resolution should shrink the error ~4×.
    assert!(
        (3.0..5.0).contains(&rate),
        "convergence rate {rate:.2} (errors {e16:.3e} -> {e32:.3e})"
    );
}

#[test]
fn converges_from_random_like_initial_guess() {
    // Robustness: start from a non-zero, rough initial guess.
    let n = 32;
    let decomp = Decomposition::single(Box3::cube(n));
    let cfg = SolverConfig {
        num_levels: 3,
        max_smooths: 8,
        bottom_smooths: 60,
        tolerance: 1e-9,
        max_vcycles: 40,
        communication_avoiding: true,
        brick_dim: 4,
        ordering: BrickOrdering::SurfaceMajor,
        ..SolverConfig::paper_default()
    };
    let d = &decomp;
    let out = RankWorld::run(1, move |mut ctx| {
        let mut s = GmgSolver::new(d.clone(), ctx.rank(), cfg);
        // Deterministic pseudo-random, zero-mean-ish rough field.
        let layout = s.levels[0].layout.clone();
        s.levels[0].x = gmg_repro::brick::BrickedField::from_fn(layout, |p| {
            let h = (p.x.wrapping_mul(2654435761) ^ p.y.wrapping_mul(40503) ^ p.z) as f64;
            (h % 1000.0) / 1000.0 - 0.5
        });
        s.solve(&mut ctx)
    });
    assert!(out[0].converged, "history: {:?}", out[0].residual_history);
}

#[test]
fn deeper_hierarchies_converge_faster_per_cycle() {
    // More levels -> cheaper coarse solves do more of the work; the
    // reduction factor per V-cycle should improve (or at least not get
    // dramatically worse) with depth.
    let reduction = |levels: usize| {
        let decomp = Decomposition::single(Box3::cube(32));
        let cfg = SolverConfig {
            num_levels: levels,
            max_smooths: 8,
            bottom_smooths: 60,
            tolerance: 0.0,
            max_vcycles: 4,
            communication_avoiding: true,
            brick_dim: 4,
            ordering: BrickOrdering::SurfaceMajor,
            ..SolverConfig::paper_default()
        };
        let d = &decomp;
        let out = RankWorld::run(1, move |mut ctx| {
            let mut s = GmgSolver::new(d.clone(), ctx.rank(), cfg);
            s.solve(&mut ctx).mean_reduction()
        });
        out[0]
    };
    let r1 = reduction(1);
    let r3 = reduction(3);
    assert!(
        r3 < r1 * 0.8,
        "3-level reduction {r3:.3} should beat 1-level {r1:.3}"
    );
}

#[test]
fn residual_reduction_rate_is_multigrid_like() {
    // The paper converges 1024³ to 1e-10 in 12 V-cycles — a per-cycle
    // reduction around 0.15. Our scaled-down problem should be in the same
    // regime (well under 0.5 per cycle).
    let n = 32;
    let decomp = Decomposition::single(Box3::cube(n));
    let cfg = SolverConfig {
        num_levels: 3,
        max_smooths: 12,
        bottom_smooths: 100,
        tolerance: 0.0,
        max_vcycles: 5,
        communication_avoiding: true,
        brick_dim: 4,
        ordering: BrickOrdering::SurfaceMajor,
        ..SolverConfig::paper_default()
    };
    let d = &decomp;
    let out = RankWorld::run(1, move |mut ctx| {
        let mut s = GmgSolver::new(d.clone(), ctx.rank(), cfg);
        s.solve(&mut ctx).mean_reduction()
    });
    assert!(out[0] < 0.5, "mean reduction {:.3}", out[0]);
}
