//! Cross-crate numerical equivalence: the bricked solver (gmg-core), the
//! conventional baseline (gmg-hpgmg), and every layout/distribution choice
//! must all compute the *same* V-cycle.

use gmg_repro::prelude::*;

fn brick_history(n: i64, grid: Point3, cfg: SolverConfig, vcycles: usize) -> Vec<f64> {
    let mut cfg = cfg;
    cfg.max_vcycles = vcycles;
    cfg.tolerance = 0.0;
    let decomp = Decomposition::new(Box3::cube(n), grid);
    let ranks = decomp.num_ranks();
    let d = &decomp;
    let out = RankWorld::run(ranks, move |mut ctx| {
        let mut s = GmgSolver::new(d.clone(), ctx.rank(), cfg);
        s.solve(&mut ctx).residual_history
    });
    out.into_iter().next().unwrap()
}

fn hpgmg_history(
    n: i64,
    grid: Point3,
    levels: usize,
    smooths: usize,
    bottom: usize,
    vcycles: usize,
) -> Vec<f64> {
    let decomp = Decomposition::new(Box3::cube(n), grid);
    let ranks = decomp.num_ranks();
    let d = &decomp;
    let out = RankWorld::run(ranks, move |mut ctx| {
        let mut s = gmg_repro::hpgmg::HpgmgSolver::new(
            d.clone(),
            ctx.rank(),
            levels,
            smooths,
            bottom,
            0.0,
            vcycles,
        );
        s.solve(&mut ctx).residual_history
    });
    out.into_iter().next().unwrap()
}

fn assert_close(a: &[f64], b: &[f64], tol: f64) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert!(
            (x - y).abs() <= tol * x.abs().max(1e-30),
            "histories diverge: {x:.15e} vs {y:.15e}\n{a:?}\n{b:?}"
        );
    }
}

#[test]
fn bricked_and_conventional_solvers_agree_exactly() {
    // Same algorithm, different storage: residual histories must match to
    // floating-point noise.
    let cfg = SolverConfig {
        num_levels: 3,
        max_smooths: 6,
        bottom_smooths: 30,
        tolerance: 0.0,
        max_vcycles: 4,
        communication_avoiding: true,
        brick_dim: 4,
        ordering: BrickOrdering::SurfaceMajor,
        ..SolverConfig::paper_default()
    };
    let brick = brick_history(32, Point3::splat(1), cfg, 4);
    let conv = hpgmg_history(32, Point3::splat(1), 3, 6, 30, 4);
    assert_close(&brick, &conv, 1e-9);
}

#[test]
fn agreement_holds_distributed() {
    let cfg = SolverConfig {
        num_levels: 2,
        max_smooths: 5,
        bottom_smooths: 20,
        tolerance: 0.0,
        max_vcycles: 3,
        communication_avoiding: true,
        brick_dim: 4,
        ordering: BrickOrdering::SurfaceMajor,
        ..SolverConfig::paper_default()
    };
    let brick = brick_history(16, Point3::splat(2), cfg, 3);
    let conv = hpgmg_history(16, Point3::splat(2), 2, 5, 20, 3);
    assert_close(&brick, &conv, 1e-9);
}

#[test]
fn rank_count_does_not_change_numerics() {
    let cfg = SolverConfig {
        num_levels: 2,
        max_smooths: 6,
        bottom_smooths: 24,
        tolerance: 0.0,
        max_vcycles: 3,
        communication_avoiding: true,
        brick_dim: 4,
        ordering: BrickOrdering::SurfaceMajor,
        ..SolverConfig::paper_default()
    };
    let h1 = brick_history(16, Point3::splat(1), cfg, 3);
    let h2 = brick_history(16, Point3::new(2, 1, 1), cfg, 3);
    let h4 = brick_history(16, Point3::new(2, 2, 1), cfg, 3);
    let h8 = brick_history(16, Point3::splat(2), cfg, 3);
    assert_close(&h1, &h2, 1e-10);
    assert_close(&h1, &h4, 1e-10);
    assert_close(&h1, &h8, 1e-10);
}

#[test]
fn brick_size_does_not_change_numerics() {
    let mk = |bd: i64| {
        let cfg = SolverConfig {
            num_levels: 2,
            max_smooths: 4,
            bottom_smooths: 16,
            tolerance: 0.0,
            max_vcycles: 2,
            communication_avoiding: true,
            brick_dim: bd,
            ordering: BrickOrdering::SurfaceMajor,
            ..SolverConfig::paper_default()
        };
        brick_history(32, Point3::splat(1), cfg, 2)
    };
    let h4 = mk(4);
    let h8 = mk(8);
    // Different brick sizes mean different CA regions; owned-region results
    // are still identical because the redundant ghost computation uses the
    // same (exchanged) data.
    assert_close(&h4, &h8, 1e-9);
}

#[test]
fn orderings_bitwise_equivalent() {
    let mk = |ord| {
        let cfg = SolverConfig {
            num_levels: 2,
            max_smooths: 4,
            bottom_smooths: 10,
            tolerance: 0.0,
            max_vcycles: 2,
            communication_avoiding: true,
            brick_dim: 4,
            ordering: ord,
            ..SolverConfig::paper_default()
        };
        brick_history(16, Point3::new(2, 2, 1), cfg, 2)
    };
    let a = mk(BrickOrdering::SurfaceMajor);
    let b = mk(BrickOrdering::Lexicographic);
    // The physical slot order must be completely invisible to numerics.
    assert_close(&a, &b, 1e-13);
}
