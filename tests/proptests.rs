//! Property-based tests over the core data structures and invariants.

use gmg_repro::prelude::*;
use gmg_repro::stencil::exec_array::{apply_star7_array, run_stencil_array};
use gmg_repro::stencil::exec_brick::{
    apply_star7_bricked, apply_star7_bricked_generic, par_pointwise_mut2, run_stencil_bricked,
};
use gmg_repro::stencil::exec_fused::fused_multismooth_bricked;
use gmg_repro::stencil::expr::StencilDef;
use gmg_stencil::expr::ExprHandle;
use proptest::prelude::*;
use std::sync::Arc;

fn field_fn(seed: i64) -> impl Fn(Point3) -> f64 + Sync + Copy {
    move |p: Point3| {
        let h =
            p.x.wrapping_mul(6364136223846793005)
                .wrapping_add(p.y.wrapping_mul(1442695040888963407))
                .wrapping_add(p.z.wrapping_mul(seed | 1));
        ((h >> 33) % 1_000) as f64 / 257.0
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bricked and conventional storage agree after a roundtrip, for any
    /// compatible (n, brick size, ordering).
    #[test]
    fn brick_array_roundtrip(
        bd in prop::sample::select(vec![1i64, 2, 4, 8]),
        mult in 2i64..5,
        lex in any::<bool>(),
        seed in any::<i64>(),
    ) {
        let n = bd * mult;
        let ord = if lex { BrickOrdering::Lexicographic } else { BrickOrdering::SurfaceMajor };
        let layout = Arc::new(BrickLayout::new(Box3::cube(n), bd, 1, ord));
        let f = BrickedField::from_fn(layout.clone(), field_fn(seed));
        let a = f.to_array3();
        let f2 = BrickedField::from_array3(layout.clone(), &a);
        let mut ok = true;
        layout.storage_cell_box().for_each(|p| ok &= f.get(p) == f2.get(p));
        prop_assert!(ok);
    }

    /// Array pack/unpack is the identity on any in-bounds region.
    #[test]
    fn pack_unpack_identity(
        lo in 0i64..6,
        ex in 1i64..6,
        seed in any::<i64>(),
    ) {
        let v = Box3::cube(12);
        let a = Array3::from_fn(v, 2, field_fn(seed));
        let region = Box3::new(Point3::splat(lo - 2), Point3::splat(lo - 2 + ex));
        let region = region.intersect(&a.storage_box());
        prop_assume!(!region.is_empty());
        let mut buf = Vec::new();
        a.pack(region, &mut buf);
        let mut b = Array3::new(v, 2);
        b.unpack(region, &buf);
        let mut ok = true;
        region.for_each(|p| ok &= a[p] == b[p]);
        prop_assert!(ok);
    }

    /// A random radius-1 star stencil evaluates identically over bricked
    /// and conventional storage.
    #[test]
    fn random_stencil_brick_matches_array(
        coeffs in prop::collection::vec(-3.0f64..3.0, 7),
        bd in prop::sample::select(vec![2i64, 4]),
        seed in any::<i64>(),
    ) {
        let n = 4 * bd;
        let offsets = [
            (0i64, 0i64, 0i64), (1, 0, 0), (-1, 0, 0),
            (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1),
        ];
        let cs = coeffs.clone();
        let def = StencilDef::build("rand", move |b| {
            let x = b.input("x");
            let mut expr: Option<ExprHandle> = None;
            for (c, (dx, dy, dz)) in cs.iter().zip(offsets) {
                let term = b.constant(*c) * x.at(dx, dy, dz);
                expr = Some(match expr {
                    Some(e) => e + term,
                    None => term,
                });
            }
            b.assign("y", expr.unwrap());
        });
        let v = Box3::cube(n);
        // Array path.
        let src_a = Array3::from_fn(v, bd, field_fn(seed));
        let mut dst_a = Array3::new(v, bd);
        run_stencil_array(&def, &[&src_a], &[], &mut [&mut dst_a], v);
        // Brick path.
        let layout = Arc::new(BrickLayout::new(v, bd, 1, BrickOrdering::SurfaceMajor));
        let src_b = BrickedField::from_fn(layout.clone(), field_fn(seed));
        let mut dst_b = BrickedField::new(layout);
        run_stencil_bricked(&def, &[&src_b], &[], &mut [&mut dst_b], v);
        let mut max_diff = 0.0f64;
        v.for_each(|p| max_diff = max_diff.max((dst_a[p] - dst_b.get(p)).abs()));
        prop_assert!(max_diff < 1e-12, "max diff {max_diff}");
    }

    /// The latency-throughput fit recovers arbitrary positive (α, β).
    #[test]
    fn latency_fit_recovers_parameters(
        alpha_us in 0.1f64..500.0,
        beta_g in 0.5f64..200.0,
    ) {
        use gmg_repro::machine::LatencyThroughput;
        let truth = LatencyThroughput::new(alpha_us * 1e-6, beta_g * 1e9);
        let samples: Vec<(f64, f64)> = (0..8)
            .map(|i| {
                let x = 1e3 * 8f64.powi(i);
                (x, truth.time_s(x))
            })
            .collect();
        let fit = LatencyThroughput::fit_time(&samples);
        prop_assert!((fit.alpha_s - truth.alpha_s).abs() / truth.alpha_s < 1e-6);
        prop_assert!((fit.beta - truth.beta).abs() / truth.beta < 1e-6);
    }

    /// Exchange over any process grid reproduces the periodic image in
    /// every ghost cell of every rank.
    #[test]
    fn exchange_matches_periodic_image(
        grid in prop::sample::select(vec![
            Point3::new(1, 1, 1),
            Point3::new(2, 1, 1),
            Point3::new(1, 2, 2),
            Point3::new(2, 2, 2),
        ]),
        seed in any::<i64>(),
    ) {
        let n = 8i64;
        let decomp = Decomposition::new(Box3::cube(n), grid);
        let ranks = decomp.num_ranks();
        let d = &decomp;
        let f = field_fn(seed);
        let oks = RankWorld::run(ranks, move |mut ctx| {
            let sub = d.subdomain(ctx.rank());
            let layout = Arc::new(BrickLayout::new(sub, 2, 1, BrickOrdering::SurfaceMajor));
            let mut field = BrickedField::from_fn(layout.clone(), |p| {
                if sub.contains(p) { f(p) } else { f64::NAN }
            });
            gmg_repro::comm::runtime::exchange_bricked(&mut ctx, d, &mut field, 1);
            let mut ok = true;
            layout.storage_cell_box().for_each(|p| {
                ok &= field.get(p) == f(p.rem_euclid(Point3::splat(n)));
            });
            ok
        });
        prop_assert!(oks.into_iter().all(|x| x));
    }

    /// The fused multi-smooth executor is bit-identical to `s` sequential
    /// smooth+residual sweeps for any depth, brick size, tile size and
    /// field data — including the staleness rings of the shrinking
    /// communication-avoiding schedule.
    #[test]
    fn fused_multismooth_bit_identical_to_sweeps(
        s in 1usize..5,
        bd in prop::sample::select(vec![4i64, 8]),
        tile_bricks in prop::sample::select(vec![1i64, 2, 3]),
        seed in any::<i64>(),
    ) {
        let n = 2 * bd;
        let layout = Arc::new(BrickLayout::new(
            Box3::cube(n), bd, 1, BrickOrdering::SurfaceMajor,
        ));
        // Deepest region the ghost shell supports: region.grow(1) must
        // stay within the bd-cell ghost zone.
        let region = Box3::cube(n).grow((s as i64 - 1).min(bd - 1));
        let (alpha, beta, gamma) = (-6.0, 1.0, -0.5 / 6.0 * (2.0 / 3.0));
        let mut x1 = BrickedField::from_fn(layout.clone(), field_fn(seed));
        let b = BrickedField::from_fn(layout.clone(), field_fn(seed ^ 0x5a5a));
        let mut r1 = BrickedField::new(layout.clone());
        let mut x2 = x1.clone();
        let mut r2 = r1.clone();
        // Sequential reference: sweep k updates region.shrink(k).
        let mut ax = BrickedField::new(layout.clone());
        for k in 0..s {
            let rk = region.shrink(k as i64);
            apply_star7_bricked(&mut ax, &x1, alpha, beta, rk);
            let pieces = layout.slots_intersecting(rk);
            par_pointwise_mut2(&mut x1, &mut r1, &ax, &b, &pieces, move |x, r, ax, b| {
                *r = b - ax;
                *x += gamma * (ax - b);
            });
        }
        let stats = fused_multismooth_bricked(
            &mut x2, &b, Some(&mut r2), alpha, beta, gamma, region, s, tile_bricks * bd,
        );
        prop_assert_eq!(x1.as_slice(), x2.as_slice());
        prop_assert_eq!(r1.as_slice(), r2.as_slice());
        let expect: u64 = (0..s).map(|k| region.shrink(k as i64).volume() as u64).sum();
        prop_assert_eq!(stats.points_updated, expect);
    }

    /// The bricked applyOp is bit-identical to the array executor on every
    /// code path: the shape-specialized kernel (`B4`/`B8`), the generic
    /// fallback, and the rayon-parallel run at any pool width — over
    /// regions that are not brick-aligned (partial bricks on every face).
    /// All paths share the FP grouping
    /// `α·c + β·((xm+xp) + (ym+yp) + (zm+zp))`, so equality is exact.
    #[test]
    fn bricked_applyop_paths_bit_identical_to_array(
        bd in prop::sample::select(vec![2i64, 3, 4, 5, 8]),
        threads in 1usize..9,
        lo in -1i64..3,
        seed in any::<i64>(),
    ) {
        let n = 3 * bd;
        let v = Box3::cube(n);
        // Not brick-aligned: partial bricks on every face. `region.grow(1)`
        // stays inside the bd-cell ghost shell since `lo - 1 >= -2 >= -bd`.
        let region = Box3::new(Point3::new(lo, lo + 1, lo), Point3::new(n - 1, n, n - 2));
        let (alpha, beta) = (-6.0, 1.0);
        let layout = Arc::new(BrickLayout::new(v, bd, 1, BrickOrdering::SurfaceMajor));
        let src = BrickedField::from_fn(layout.clone(), field_fn(seed));
        // Shape-specialized dispatch (B4/B8 hit the const-generic kernels).
        let mut spec = BrickedField::new(layout.clone());
        apply_star7_bricked(&mut spec, &src, alpha, beta, region);
        // Forced generic fallback.
        let mut gen = BrickedField::new(layout.clone());
        apply_star7_bricked_generic(&mut gen, &src, alpha, beta, region);
        prop_assert_eq!(spec.as_slice(), gen.as_slice());
        // Rayon-parallel at an arbitrary pool width.
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let mut par = BrickedField::new(layout.clone());
        pool.install(|| apply_star7_bricked(&mut par, &src, alpha, beta, region));
        prop_assert_eq!(spec.as_slice(), par.as_slice());
        // Array executor reference, same seed field in conventional storage.
        let src_a = Array3::from_fn(v, bd, field_fn(seed));
        let mut dst_a = Array3::new(v, bd);
        apply_star7_array(&mut dst_a, &src_a, alpha, beta, region);
        let mut ok = true;
        region.for_each(|p| ok &= spec.get(p) == dst_a[p]);
        prop_assert!(ok, "bricked != array somewhere in {region:?}");
    }

    /// Contiguous-run computation: runs are sorted, disjoint, cover the
    /// input exactly, and are maximal.
    #[test]
    fn contiguous_runs_invariants(mut slots in prop::collection::btree_set(0u32..200, 1..40)) {
        let v: Vec<u32> = slots.iter().copied().collect();
        let runs = BrickLayout::contiguous_runs(&v);
        // Coverage and disjointness.
        let mut covered = 0usize;
        for r in &runs {
            covered += (r.end - r.start) as usize;
            for s in r.clone() {
                prop_assert!(slots.remove(&s), "run covers non-member {s}");
            }
        }
        prop_assert_eq!(covered, v.len());
        prop_assert!(slots.is_empty());
        // Maximality: adjacent runs are separated by a gap.
        for w in runs.windows(2) {
            prop_assert!(w[1].start > w[0].end);
        }
    }
}
