//! Criterion: the remaining V-cycle operators — fused vs split
//! smooth+residual (the fusion ablation) and the inter-grid transfers.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gmg_brick::{BrickOrdering, BrickedField};
use gmg_core::level::{interpolation_increment, restriction, Level};
use gmg_core::PoissonProblem;
use gmg_mesh::{Box3, Decomposition};

const N: i64 = 64;

fn mk_level(index: usize) -> Level {
    let problem = PoissonProblem::new(N >> index << index); // finest n stays N
    let decomp = Decomposition::single(Box3::cube(N >> index));
    let mut l = Level::new(
        &problem,
        decomp,
        0,
        index,
        8.min(N >> index),
        BrickOrdering::SurfaceMajor,
    );
    l.x = BrickedField::from_fn(l.layout.clone(), |p| (p.x - p.y + 2 * p.z) as f64 * 1e-3);
    l.b = BrickedField::from_fn(l.layout.clone(), |p| (p.x * p.y - p.z) as f64 * 1e-3);
    l.ax = BrickedField::from_fn(l.layout.clone(), |p| (p.x + p.z) as f64 * 1e-3);
    l
}

fn bench_fusion(c: &mut Criterion) {
    let mut g = c.benchmark_group("smooth_residual_fusion");
    g.sample_size(20);
    g.throughput(Throughput::Elements((N * N * N) as u64));
    let mut l = mk_level(0);
    let owned = l.owned;
    g.bench_function("fused", |b| {
        b.iter(|| l.smooth_residual(owned));
    });
    g.bench_function("split", |b| {
        b.iter(|| {
            l.residual(owned);
            l.smooth(owned);
        });
    });
    g.finish();
}

fn bench_intergrid(c: &mut Criterion) {
    let mut g = c.benchmark_group("intergrid");
    g.sample_size(20);
    let problem = PoissonProblem::new(N);
    let fine_decomp = Decomposition::single(Box3::cube(N));
    let mut fine = Level::new(
        &problem,
        fine_decomp.clone(),
        0,
        0,
        8,
        BrickOrdering::SurfaceMajor,
    );
    fine.r = BrickedField::from_fn(fine.layout.clone(), |p| (p.x ^ p.y ^ p.z) as f64);
    let mut coarse = Level::new(
        &problem,
        fine_decomp.coarsen(2),
        0,
        1,
        8,
        BrickOrdering::SurfaceMajor,
    );
    coarse.x = BrickedField::from_fn(coarse.layout.clone(), |p| (p.x + p.y) as f64);
    g.throughput(Throughput::Elements((N * N * N) as u64));
    g.bench_function("restriction", |b| {
        b.iter(|| restriction(&fine, &mut coarse));
    });
    g.bench_function("interpolation_increment", |b| {
        b.iter(|| interpolation_increment(&coarse, &mut fine));
    });
    g.finish();
}

criterion_group!(benches, bench_fusion, bench_intergrid);
criterion_main!(benches);
