//! Criterion: one full V-cycle, bricked GMG vs the HPGMG-style baseline
//! (the measured CPU counterpart of the paper's Figure 4), plus the
//! communication-avoiding ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use gmg_comm::runtime::RankWorld;
use gmg_core::{GmgSolver, SolverConfig};
use gmg_hpgmg::HpgmgSolver;
use gmg_mesh::{Box3, Decomposition, Point3};

const N: i64 = 64;
const LEVELS: usize = 3;
const SMOOTHS: usize = 8;
const BOTTOM: usize = 24;

fn bench_vcycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("vcycle_64cubed");
    g.sample_size(10);

    g.bench_function("bricks_ca", |b| {
        b.iter(|| {
            let decomp = Decomposition::new(Box3::cube(N), Point3::splat(1));
            RankWorld::run(1, |mut ctx| {
                let mut cfg = SolverConfig::test_default();
                cfg.num_levels = LEVELS;
                cfg.max_smooths = SMOOTHS;
                cfg.bottom_smooths = BOTTOM;
                cfg.brick_dim = 8;
                let mut s = GmgSolver::new(decomp.clone(), 0, cfg);
                s.vcycle(&mut ctx);
            });
        });
    });

    g.bench_function("bricks_no_ca", |b| {
        b.iter(|| {
            let decomp = Decomposition::new(Box3::cube(N), Point3::splat(1));
            RankWorld::run(1, |mut ctx| {
                let mut cfg = SolverConfig::test_default();
                cfg.num_levels = LEVELS;
                cfg.max_smooths = SMOOTHS;
                cfg.bottom_smooths = BOTTOM;
                cfg.brick_dim = 8;
                cfg.communication_avoiding = false;
                let mut s = GmgSolver::new(decomp.clone(), 0, cfg);
                s.vcycle(&mut ctx);
            });
        });
    });

    g.bench_function("hpgmg_baseline", |b| {
        b.iter(|| {
            let decomp = Decomposition::new(Box3::cube(N), Point3::splat(1));
            RankWorld::run(1, |mut ctx| {
                let mut s = HpgmgSolver::new(decomp.clone(), 0, LEVELS, SMOOTHS, BOTTOM, 0.0, 1);
                s.solve(&mut ctx);
            });
        });
    });

    g.finish();
}

criterion_group!(benches, bench_vcycle);
criterion_main!(benches);
