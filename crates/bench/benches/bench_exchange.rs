//! Criterion: halo-exchange staging costs — the pack-free surface-major
//! brick ordering vs the fragmented lexicographic ordering vs conventional
//! array pack/unpack (the PPoPP'21 optimization the paper relies on).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmg_brick::{BrickLayout, BrickOrdering, BrickedField};
use gmg_mesh::ghost::DIRECTIONS_26;
use gmg_mesh::{Array3, Box3, Point3};
use std::sync::Arc;

fn init(p: Point3) -> f64 {
    (p.x + p.y + p.z) as f64
}

fn bench_exchange_staging(c: &mut Criterion) {
    let mut g = c.benchmark_group("exchange_staging");
    g.sample_size(20);
    let n = 64i64;
    let v = Box3::cube(n);

    for ord in [BrickOrdering::SurfaceMajor, BrickOrdering::Lexicographic] {
        let layout = Arc::new(BrickLayout::new(v, 8, 1, ord));
        let field = BrickedField::from_fn(layout.clone(), init);
        // Pre-compute send sets (done once per level in the solver too).
        let sends: Vec<Vec<u32>> = DIRECTIONS_26
            .iter()
            .map(|&d| layout.send_slots(d))
            .collect();
        let name = match ord {
            BrickOrdering::SurfaceMajor => "brick_surface_major_gather",
            BrickOrdering::Lexicographic => "brick_lexicographic_gather",
        };
        g.bench_function(BenchmarkId::new(name, n), |b| {
            let mut buf = Vec::new();
            b.iter(|| {
                for slots in &sends {
                    field.gather_bricks(slots, &mut buf);
                    criterion::black_box(&buf);
                }
            });
        });
    }

    // Conventional pack: serialize each of the 26 depth-8 face regions.
    let a = Array3::from_fn(v, 8, init);
    g.bench_function(BenchmarkId::new("array_pack_depth8", n), |b| {
        let mut buf = Vec::new();
        b.iter(|| {
            for &d in &DIRECTIONS_26 {
                a.pack(v.face_region(d, 8), &mut buf);
                criterion::black_box(&buf);
            }
        });
    });

    g.finish();
}

fn bench_self_exchange(c: &mut Criterion) {
    let mut g = c.benchmark_group("periodic_self_exchange");
    g.sample_size(20);
    let n = 64i64;
    let v = Box3::cube(n);
    let layout = Arc::new(BrickLayout::new(v, 8, 1, BrickOrdering::SurfaceMajor));
    let mut f = BrickedField::from_fn(layout, init);
    g.bench_function("bricked_26dir", |b| {
        b.iter(|| {
            for &d in &DIRECTIONS_26 {
                f.copy_ghost_from_self(d, d * (n / 8));
            }
        });
    });
    g.finish();
}

criterion_group!(benches, bench_exchange_staging, bench_self_exchange);
criterion_main!(benches);
