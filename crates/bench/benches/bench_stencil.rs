//! Criterion: 7-point stencil application, bricked vs conventional layout.
//!
//! This is the *measured* (CPU) counterpart of the paper's central claim:
//! fine-grain data blocking reduces data movement for stencil sweeps. The
//! same effect the paper demonstrates on GPU HBM appears on the CPU cache
//! hierarchy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gmg_brick::{BrickLayout, BrickOrdering, BrickedField};
use gmg_mesh::{Array3, Box3, Point3};
use gmg_stencil::exec_array::{apply_star7_array, apply_star7_tiled_array};
use gmg_stencil::exec_brick::apply_star7_bricked;
use std::sync::Arc;

fn init(p: Point3) -> f64 {
    (p.x * 31 + p.y * 17 + p.z * 7) as f64 * 1e-3
}

fn bench_apply(c: &mut Criterion) {
    let mut g = c.benchmark_group("apply_star7");
    g.sample_size(20);
    for &n in &[64i64, 128] {
        let v = Box3::cube(n);
        let cells = v.volume() as u64;
        g.throughput(Throughput::Elements(cells));

        // Conventional array layout (ghost 8 to match the bricked shell).
        let src_a = Array3::from_fn(v, 8, init);
        let mut dst_a = Array3::new(v, 8);
        g.bench_with_input(BenchmarkId::new("array", n), &n, |b, _| {
            b.iter(|| apply_star7_array(&mut dst_a, &src_a, -6.0, 1.0, v));
        });

        // Cache-blocked loops over the conventional layout (the "tiled
        // implementations" the paper compares bricks against).
        g.bench_with_input(BenchmarkId::new("array_tiled8", n), &n, |b, _| {
            b.iter(|| apply_star7_tiled_array(&mut dst_a, &src_a, -6.0, 1.0, v, 8));
        });

        // Bricked layouts.
        for bd in [4i64, 8] {
            let layout = Arc::new(BrickLayout::new(v, bd, 1, BrickOrdering::SurfaceMajor));
            let src_b = BrickedField::from_fn(layout.clone(), init);
            let mut dst_b = BrickedField::new(layout);
            g.bench_with_input(BenchmarkId::new(format!("brick{bd}"), n), &n, |b, _| {
                b.iter(|| apply_star7_bricked(&mut dst_b, &src_b, -6.0, 1.0, v));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_apply);
criterion_main!(benches);
