//! Shared output helpers for the experiment harnesses.

use serde_json::Value;
use std::fs;
use std::path::PathBuf;

/// Directory for machine-readable experiment outputs (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("GMG_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Persist a harness result as pretty JSON under `results/<name>.json`.
pub fn save(name: &str, value: &Value) {
    let path = results_dir().join(format!("{name}.json"));
    fs::write(&path, serde_json::to_string_pretty(value).expect("serialize"))
        .unwrap_or_else(|e| panic!("write {path:?}: {e}"));
    println!("\n[saved {path:?}]");
}

/// Print a section header.
pub fn heading(title: &str) {
    println!("\n=== {title} ===");
}

/// Format seconds in engineering units.
pub fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.2} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_time_units() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(0.0025), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.50 µs");
    }

    #[test]
    fn save_and_readback() {
        std::env::set_var("GMG_RESULTS_DIR", std::env::temp_dir().join("gmg_results_test"));
        let v = serde_json::json!({"a": 1});
        save("unit_test_artifact", &v);
        let p = results_dir().join("unit_test_artifact.json");
        let back: Value = serde_json::from_str(&std::fs::read_to_string(p).unwrap()).unwrap();
        assert_eq!(back, v);
        std::env::remove_var("GMG_RESULTS_DIR");
    }
}
