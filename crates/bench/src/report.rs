//! Shared output helpers for the experiment harnesses.

use serde_json::Value;
use std::fs;
use std::path::{Path, PathBuf};

/// Directory for machine-readable experiment outputs (created on demand):
/// `$GMG_RESULTS_DIR`, or `results/` when unset.
pub fn results_dir() -> PathBuf {
    ensure_dir(std::env::var_os("GMG_RESULTS_DIR").map(PathBuf::from))
}

/// Resolve and create the results directory from an explicit override.
/// Tests go through this (with a temp dir) rather than mutating the
/// process-global `GMG_RESULTS_DIR`, which would race with tests running
/// in parallel threads.
pub fn ensure_dir(overridden: Option<PathBuf>) -> PathBuf {
    let dir = overridden.unwrap_or_else(|| PathBuf::from("results"));
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Persist a harness result as pretty JSON under `results/<name>.json`.
pub fn save(name: &str, value: &Value) {
    let path = save_in(&results_dir(), name, value);
    println!("\n[saved {path:?}]");
}

/// Persist a harness result as pretty JSON under an explicit directory;
/// returns the written path.
pub fn save_in(dir: &Path, name: &str, value: &Value) -> PathBuf {
    let path = dir.join(format!("{name}.json"));
    fs::write(
        &path,
        serde_json::to_string_pretty(value).expect("serialize"),
    )
    .unwrap_or_else(|e| panic!("write {path:?}: {e}"));
    path
}

/// Persist an already-serialized artifact (e.g. a Chrome trace JSON
/// string) under the results directory, honouring `GMG_RESULTS_DIR` like
/// [`save`]; returns the written path. Binaries must route *every*
/// results-file write through here or [`save`]/[`save_in`] so the
/// redirect is honoured everywhere.
pub fn save_raw(file_name: &str, contents: &str) -> PathBuf {
    save_raw_in(&results_dir(), file_name, contents)
}

/// [`save_raw`] with an explicit directory (tests use a temp dir rather
/// than mutating the process-global `GMG_RESULTS_DIR`).
pub fn save_raw_in(dir: &Path, file_name: &str, contents: &str) -> PathBuf {
    let path = dir.join(file_name);
    fs::write(&path, contents).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
    path
}

/// Print a section header.
pub fn heading(title: &str) {
    println!("\n=== {title} ===");
}

/// Format seconds in engineering units.
pub fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.2} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_time_units() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(0.0025), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.50 µs");
    }

    #[test]
    fn save_and_readback() {
        // Exercises the same code path `save` uses, through the explicit
        // directory parameter — no process-global env mutation.
        let dir = ensure_dir(Some(std::env::temp_dir().join("gmg_results_test")));
        let v = serde_json::json!({"a": 1});
        let p = save_in(&dir, "unit_test_artifact", &v);
        assert_eq!(p, dir.join("unit_test_artifact.json"));
        let back: Value = serde_json::from_str(&std::fs::read_to_string(&p).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn save_raw_honours_explicit_dir() {
        let dir = ensure_dir(Some(std::env::temp_dir().join("gmg_results_raw_test")));
        let p = save_raw_in(&dir, "unit_test_trace.json", "[]");
        assert_eq!(p, dir.join("unit_test_trace.json"));
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "[]");
    }

    #[test]
    fn ensure_dir_defaults_without_override() {
        // No override → the conventional relative path (created on demand).
        let d = ensure_dir(None);
        assert_eq!(d, PathBuf::from("results"));
    }
}
