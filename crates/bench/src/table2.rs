//! Table II: percentage of finest-level time per V-cycle operation.

use gmg_core::schedule::{simulate, ScheduleConfig};
use gmg_machine::gpu::System;
use serde_json::{json, Value};

/// The operations Table II reports, in the paper's order.
pub const TABLE2_OPS: [&str; 5] = [
    "applyOp",
    "smooth+residual",
    "restriction",
    "interpolation+increment",
    "exchange",
];

/// Finest-level time fractions per op for one system (initZero, which the
/// paper does not list, is excluded from the denominator).
pub fn fractions(system: System) -> Vec<(String, f64)> {
    let r = simulate(&ScheduleConfig::paper_section6(system));
    let l0 = &r.levels[0];
    let denom: f64 = TABLE2_OPS.iter().map(|op| l0.op(op)).sum();
    TABLE2_OPS
        .iter()
        .map(|op| (op.to_string(), l0.op(op) / denom))
        .collect()
}

/// Run the harness.
pub fn run() -> Value {
    crate::report::heading("Table II — % of finest-level time per operation");
    let all: Vec<(System, Vec<(String, f64)>)> =
        System::ALL.iter().map(|&s| (s, fractions(s))).collect();
    println!(
        "{:<26} {:>10} {:>12} {:>10}",
        "Operation", "A100/CUDA", "GCD/HIP", "PVC/SYCL"
    );
    for (i, op) in TABLE2_OPS.iter().enumerate() {
        print!("{op:<26}");
        for (_, fr) in &all {
            print!(" {:>9.1}%", fr[i].1 * 100.0);
        }
        println!();
    }
    // The paper's measured values for reference.
    println!("\npaper: applyOp 25.0/30.7/22.5  smooth+residual 54.5/50.0/53.1");
    println!("       restriction 1.0/1.1/1.5  interp+inc 1.9/5.4/2.5  exchange 17.5/12.8/20.4");
    json!({
        "systems": all.iter().map(|(s, fr)| json!({
            "system": format!("{s:?}"),
            "fractions": fr.iter().map(|(op, f)| json!({"op": op, "fraction": f})).collect::<Vec<_>>(),
        })).collect::<Vec<_>>(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        for sys in System::ALL {
            let total: f64 = fractions(sys).iter().map(|(_, f)| f).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ordering_matches_paper() {
        // smooth+residual dominates, then applyOp, then exchange; the
        // inter-grid ops are small.
        for sys in System::ALL {
            let fr = fractions(sys);
            let get = |name: &str| fr.iter().find(|(op, _)| op == name).unwrap().1;
            assert!(get("smooth+residual") > get("applyOp"), "{sys:?}");
            assert!(get("applyOp") > get("restriction"), "{sys:?}");
            assert!(get("exchange") > get("restriction"), "{sys:?}");
            assert!(get("restriction") < 0.05, "{sys:?}");
            assert!(get("interpolation+increment") < 0.10, "{sys:?}");
        }
    }

    #[test]
    fn smooth_residual_near_half() {
        // Paper: 50–55% on all three systems.
        for sys in System::ALL {
            let fr = fractions(sys);
            let sr = fr.iter().find(|(op, _)| op == "smooth+residual").unwrap().1;
            assert!((0.40..0.62).contains(&sr), "{sys:?}: {sr:.2}");
        }
    }
}
