//! Live telemetry demo: the gmg-live cross-process observability plane
//! end to end, self-gating on its own correctness in both polarities:
//!
//! 1. **Mid-solve scrape** — every rank of a real multi-process world
//!    ships beacons + metric deltas over the telemetry sidecar; the
//!    controller-embedded collector serves Prometheus text, and a
//!    scraper thread must observe per-rank per-level `solver_op_ns`
//!    rows from *all* ranks while the solve is still running.
//! 2. **Negative control** — the clean run must raise **zero** alerts.
//! 3. **Planted straggler** (`--inject-slowdown R`) — rank R's shipped
//!    level-0 seconds are inflated at the observation layer (same idiom
//!    as `analyze --inject-slowdown`: the solve itself is untouched, so
//!    histories stay bit-identical); the alert engine must name exactly
//!    that rank and level.
//! 4. **Silent rank** (`--kill-process R`) — rank R is SIGKILLed
//!    mid-solve; the silent-rank detector must name it, and the
//!    endpoint must stay parseable before *and* after the rejoin epoch.
//!
//! Telemetry is observation-only: every leg's residual history is
//! verified bit-for-bit against a hook-free thread-transport baseline.
//!
//! Run: `cargo run --release -p gmg-bench --bin live -- --seed N
//! [--inject-slowdown R] [--kill-process R]`.

use gmg_comm::runtime::RankWorld;
use gmg_core::solver::{GmgSolver, SolveStats, SolverConfig};
use gmg_live::{AlertConfig, AlertKind, Beacon, Collector, PromServer, Shipper};
use gmg_mesh::{Box3, Decomposition, Point3};
use serde_json::{json, Value};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const N: i64 = 16;

/// Observation-plane slowdown planted by `--inject-slowdown`: seconds
/// added to the victim's shipped level-0 time per completed cycle.
const INJECT_SLOW_S: f64 = 0.06;

/// How long a respawned rank holds back before rejoining (models a slow
/// restart, and makes the dead rank's quiet gap unambiguous to the
/// silent-rank detector, whose threshold is 750 ms).
#[cfg(unix)]
const REJOIN_HOLDBACK: Duration = Duration::from_millis(1200);

pub(crate) fn live_decomp() -> Decomposition {
    // The acceptance geometry: 4 ranks in a 2×2×1 grid.
    Decomposition::new(Box3::cube(N), Point3::new(2, 2, 1))
}

pub(crate) fn live_solver_config() -> SolverConfig {
    let mut cfg = SolverConfig::test_default();
    cfg.num_levels = 2;
    cfg.max_vcycles = 12;
    cfg.tolerance = 1e-8;
    cfg
}

/// Detector thresholds for the campaign worlds. These legs pace each
/// V-cycle phase, leaving peers waiting in exchanges while a rank
/// sleeps — and the ARQ layer's millisecond backoff retransmits through
/// the whole wait, so a few thousand retransmits per rank are *routine*
/// (the clean leg measures ~5k). The storm bar sits an order of
/// magnitude above that; everything else is stock.
fn live_alert_config() -> AlertConfig {
    AlertConfig {
        arq_storm_retransmits: 50_000,
        ..AlertConfig::default()
    }
}

/// Build the beacon for one solver progress observation, applying the
/// planted observation-layer slowdown when this rank is the victim.
fn beacon_for(
    rank: usize,
    p: &gmg_core::solver::SolveProgress,
    slow: Option<usize>,
    done: bool,
) -> Beacon {
    let mut b = Beacon {
        rank,
        cycle: p.cycle as u64,
        residual: p.residual,
        epoch: p.epoch,
        level_seconds: p.level_seconds.clone(),
        done,
    };
    if slow == Some(rank) {
        if let Some(s0) = b.level_seconds.first_mut() {
            *s0 += INJECT_SLOW_S * p.cycle as f64;
        }
    }
    b
}

/// Attach a shipper to a solver: a beacon per completed V-cycle, plus a
/// final `done` beacon (which flushes the closing delta + digest) after
/// the solve returns. The shipper is `None` when `GMG_LIVE=0`.
fn attach_shipper(
    s: &mut GmgSolver,
    rank: usize,
    shipper: Option<Shipper>,
    slow: Option<usize>,
) -> (Arc<Mutex<Option<Shipper>>>, Arc<Mutex<Option<Beacon>>>) {
    let shipper = Arc::new(Mutex::new(shipper));
    let last = Arc::new(Mutex::new(None::<Beacon>));
    let sh = Arc::clone(&shipper);
    let la = Arc::clone(&last);
    s.progress_hook = Some(Box::new(move |p| {
        let b = beacon_for(rank, p, slow, false);
        if let Some(sh) = sh.lock().unwrap().as_mut() {
            sh.beacon(&b);
        }
        *la.lock().unwrap() = Some(b);
    }));
    (shipper, last)
}

/// Ship the final beacon of a finished solve.
fn ship_done(shipper: &Arc<Mutex<Option<Shipper>>>, last: &Arc<Mutex<Option<Beacon>>>) {
    if let Some(sh) = shipper.lock().unwrap().as_mut() {
        if let Some(mut b) = last.lock().unwrap().clone() {
            b.done = true;
            sh.beacon(&b);
        }
    }
}

/// Hook-free thread-transport reference run.
fn baseline_solve(cfg: SolverConfig) -> Vec<SolveStats> {
    let decomp = live_decomp();
    let nranks = decomp.num_ranks();
    let d = &decomp;
    RankWorld::run(nranks, move |mut ctx| {
        let mut s = GmgSolver::new(d.clone(), ctx.rank(), cfg);
        s.solve(&mut ctx)
    })
}

// ---------------------------------------------------------------------
// Thread-transport campaign (`live --transport thread`)
// ---------------------------------------------------------------------

/// Thread-mode campaign: the local collector shim. Every rank ships
/// beacons into an in-process collector through the identical codec;
/// the leg gates on bit-identical residual histories vs the hook-free
/// baseline, a fully-populated live view, zero alerts, and a parseable
/// Prometheus endpoint.
pub fn run_with_seed(seed: u64) -> Value {
    crate::report::heading(&format!(
        "Live telemetry — thread-transport campaign (seed {seed})"
    ));
    gmg_metrics::enable();
    let cfg = live_solver_config();
    let baseline = baseline_solve(cfg);
    assert!(
        baseline
            .iter()
            .all(|s| s.residual_history == baseline[0].residual_history),
        "baseline ranks disagree"
    );
    println!(
        "baseline: converged={} in {} cycles, final residual {:.3e}",
        baseline[0].converged,
        baseline[0].vcycles,
        baseline[0].final_residual()
    );

    let collector = Collector::new(live_alert_config()).into_handle();
    let decomp = live_decomp();
    let nranks = decomp.num_ranks();
    let d = &decomp;
    let h = &collector;
    let stats = RankWorld::run(nranks, move |mut ctx| {
        let rank = ctx.rank();
        let mut s = GmgSolver::new(d.clone(), rank, cfg);
        let (shipper, last) =
            attach_shipper(&mut s, rank, Shipper::local(rank, Arc::clone(h)), None);
        let st = s.solve(&mut ctx);
        ship_done(&shipper, &last);
        st
    });

    let identical = stats
        .iter()
        .zip(&baseline)
        .all(|(a, b)| a.residual_history == b.residual_history);
    let converged = stats.iter().all(|s| s.converged);
    let (ranks_seen, alerts, lost) = {
        let c = collector.lock().unwrap();
        (c.ranks_seen(), c.alerts(), c.frames_lost())
    };
    let fleet = ranks_seen.len() == nranks;
    let final_cycle = stats[0].vcycles as f64;
    let progress_complete = {
        let m = collector.lock().unwrap().merged();
        (0..nranks).all(|r| {
            m.get(
                "gmg_live_progress_cycles",
                &gmg_metrics::Key::new(r, None, "live"),
            ) == Some(&gmg_metrics::Value::Gauge(final_cycle))
        })
    };

    // The endpoint over the finished (still merged) live view.
    let endpoint_ok = match PromServer::start(Arc::clone(&collector)) {
        Ok(srv) => {
            let addr = srv.addr();
            let parse = gmg_live::http_get(addr, "/metrics")
                .ok()
                .and_then(|body| gmg_metrics::prom::parse_prometheus(&body).ok());
            let status = gmg_live::http_get(addr, "/status").ok().and_then(|body| {
                gmg_trace::Json::parse(&body)
                    .ok()
                    .and_then(|v| v.get("schema")?.as_u64())
            });
            parse.map_or(false, |s| !s.entries.is_empty()) && status == Some(1)
        }
        Err(e) => {
            println!("  prom endpoint unavailable: {e}");
            false
        }
    };

    let ok = identical
        && converged
        && fleet
        && progress_complete
        && alerts.is_empty()
        && lost == 0
        && endpoint_ok;
    println!(
        "thread live leg: identical={identical} converged={converged} ranks_seen={} \
         alerts={} lost={lost} endpoint={endpoint_ok} → {}",
        ranks_seen.len(),
        alerts.len(),
        if ok { "OK" } else { "NOT OK" }
    );
    let alert_details: Vec<String> = alerts.iter().map(|a| a.detail.clone()).collect();
    json!({
        "seed": seed,
        "mode": "thread",
        "identical": identical,
        "converged": converged,
        "ranks_seen": ranks_seen.len() as u64,
        "progress_complete": progress_complete,
        "alerts": alert_details,
        "frames_lost": lost,
        "endpoint_ok": endpoint_ok,
        "ok": ok,
    })
}

/// Default thread campaign (seed 7).
pub fn run() -> Value {
    run_with_seed(7)
}

// ---------------------------------------------------------------------
// Multi-process campaign (`live --transport process`)
// ---------------------------------------------------------------------

/// Entry body for the ranks of the live multi-process campaign; the
/// live binary's (and the test binary's) `run_child_if_spawned` hook
/// dispatches spawned children here by entry name.
#[cfg(unix)]
pub fn live_child(ctx: &mut gmg_comm::RankCtx, args: &str) -> String {
    use gmg_core::RecoveryPolicy;
    // A respawned rank holds back before rejoining: the quiet gap the
    // SIGKILL opened must outlast the silent-rank threshold.
    if std::env::var("GMG_PROC_REJOIN").as_deref() == Ok("1") {
        std::thread::sleep(REJOIN_HOLDBACK);
    }
    gmg_metrics::enable();
    let mut cfg = live_solver_config();
    cfg.recovery = RecoveryPolicy::Rejoin;
    let rank = ctx.rank();
    let mut s = GmgSolver::new(live_decomp(), rank, cfg);
    // Pace the solve so the controller's scraper (and its progress-
    // triggered SIGKILL) land mid-run instead of after the finish line.
    s.phase_hook = Some(Box::new(|_cycle, _phase, _level| {
        std::thread::sleep(Duration::from_millis(8));
    }));
    let slow = args
        .split(',')
        .find_map(|a| a.strip_prefix("slow="))
        .and_then(|r| r.parse::<usize>().ok());
    let (shipper, last) = attach_shipper(&mut s, rank, Shipper::from_proc_env(), slow);
    let st = s.solve(ctx);
    ship_done(&shipper, &last);
    let hist: Vec<String> = st
        .residual_history
        .iter()
        .map(|r| format!("{:x}", r.to_bits()))
        .collect();
    format!("{}|{}|{}", hist.join(","), st.rejoin_epochs, st.converged)
}

/// Parse [`live_child`]'s result string: (history bits, rejoin epochs,
/// converged).
#[cfg(unix)]
fn parse_live(result: &str) -> (Vec<u64>, usize, bool) {
    let mut it = result.trim().split('|');
    let hist = it
        .next()
        .unwrap_or_default()
        .split(',')
        .map(|h| u64::from_str_radix(h, 16).expect("hex residual"))
        .collect();
    let epochs = it.next().and_then(|s| s.parse().ok()).unwrap_or(0);
    let converged = it.next() == Some("true");
    (hist, epochs, converged)
}

/// What the scraper thread saw: whether a scrape observed `solver_op_ns`
/// rows with level labels from every rank *while the solve ran*, plus
/// one `(collector epoch, parse ok)` record per scrape.
#[cfg(unix)]
struct ScrapeLog {
    mid_run_fleet: bool,
    scrapes: Vec<(u64, bool)>,
    sample: String,
}

/// One multi-process live solve over the UDS datagram transport (plus
/// seeded loss): children ship telemetry to the controller sidecar, the
/// collector aggregates and serves Prometheus, a scraper polls the
/// endpoint throughout, and the alert verdicts are gated per leg.
#[cfg(unix)]
fn process_leg(
    seed: u64,
    kill: Option<usize>,
    slow: Option<usize>,
    child_args: &[&str],
    baseline: &[u64],
) -> Value {
    use gmg_comm::fault::{FaultConfig, FaultPlan};
    use gmg_comm::{ProcessWorld, SocketKind};
    use std::sync::atomic::{AtomicBool, Ordering};

    let nranks = live_decomp().num_ranks();
    let leg = match (kill, slow) {
        (Some(_), _) => "kill",
        (None, Some(_)) => "straggler",
        (None, None) => "clean",
    };
    let status_base = std::env::temp_dir().join(format!(
        "gmg_live_status_{}_{seed}_{leg}",
        std::process::id()
    ));
    let collector = Collector::new(live_alert_config())
        .with_status_file(status_base.clone(), Duration::from_millis(200))
        .into_handle();
    let server = match PromServer::start(Arc::clone(&collector)) {
        Ok(s) => s,
        Err(e) => {
            println!("  prom endpoint unavailable: {e}");
            return json!({ "seed": seed, "leg": leg, "survived": false,
                           "failure": e.to_string(), "ok": false });
        }
    };

    let args_s = match slow {
        Some(r) => format!("paced,slow={r}"),
        None => "paced".to_string(),
    };
    let sink = {
        let h = Arc::clone(&collector);
        Box::new(move |bytes: &[u8], epoch: u64| {
            h.lock().unwrap().ingest(bytes, epoch);
        })
    };
    let mut world = ProcessWorld::new(nranks, "live")
        .transport(SocketKind::Uds)
        .args(&args_s)
        .child_args(child_args)
        .faults(FaultPlan::new(FaultConfig::lossy(0.002), seed))
        .deadline(Duration::from_secs(180))
        .telemetry_sink(sink);
    if let Some(victim) = kill {
        world = world.kill_process_at(victim, 3);
    }

    // The scraper: hits the live endpoint every 25 ms for the whole
    // solve (plus one final scrape), recording parseability and the
    // collector epoch at each hit.
    let running = Arc::new(AtomicBool::new(true));
    let scraper = {
        let addr = server.addr();
        let running = Arc::clone(&running);
        let h = Arc::clone(&collector);
        std::thread::spawn(move || {
            let mut log = ScrapeLog {
                mid_run_fleet: false,
                scrapes: Vec::new(),
                sample: String::new(),
            };
            loop {
                let was_running = running.load(Ordering::SeqCst);
                let epoch = h.lock().unwrap().epoch();
                if let Ok(body) = gmg_live::http_get(addr, "/metrics") {
                    match gmg_metrics::prom::parse_prometheus(&body) {
                        Ok(snap) => {
                            let ranks: std::collections::BTreeSet<usize> = snap
                                .entries
                                .iter()
                                .filter(|e| e.name == "solver_op_ns" && e.key.level.is_some())
                                .map(|e| e.key.rank)
                                .collect();
                            if was_running && ranks.len() == nranks && !log.mid_run_fleet {
                                log.mid_run_fleet = true;
                                log.sample = body;
                            }
                            log.scrapes.push((epoch, true));
                        }
                        Err(_) => log.scrapes.push((epoch, false)),
                    }
                }
                if !was_running {
                    return log;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        })
    };

    let outcome = world.run();
    running.store(false, Ordering::SeqCst);
    let log = scraper.join().expect("scraper thread");
    let report = match outcome {
        Ok(r) => r,
        Err(e) => {
            println!("  live process world FAILED: {e}");
            return json!({ "seed": seed, "leg": leg, "survived": false,
                           "failure": e, "ok": false });
        }
    };

    let mut exact = true;
    let mut converged_all = true;
    let mut epochs: Vec<usize> = Vec::new();
    for res in &report.results {
        let (hist, ep, conv) = parse_live(res);
        exact &= hist == baseline;
        converged_all &= conv;
        epochs.push(ep);
    }
    let membership_ok = match kill {
        Some(v) => {
            report.rejoins.len() == 1
                && report.rejoins[0].rank == v
                && epochs.iter().all(|&e| e == 1)
        }
        None => report.rejoins.is_empty() && epochs.iter().all(|&e| e == 0),
    };

    // Alert polarity for this leg.
    let alerts = collector.lock().unwrap().alerts();
    let silent_hits: Vec<usize> = alerts
        .iter()
        .filter(|a| a.kind == AlertKind::SilentRank)
        .map(|a| a.rank)
        .collect();
    let straggler_hits: Vec<(usize, Option<usize>)> = alerts
        .iter()
        .filter(|a| a.kind == AlertKind::Straggler)
        .map(|a| (a.rank, a.level))
        .collect();
    let other_kinds = alerts
        .iter()
        .any(|a| matches!(a.kind, AlertKind::Divergence | AlertKind::ArqStorm));
    let alerts_ok = match (kill, slow) {
        // Negative control: a clean world raises nothing at all.
        (None, None) => alerts.is_empty(),
        // The planted straggler — and nothing else — is named.
        (None, Some(r)) => {
            straggler_hits == [(r, Some(0))] && silent_hits.is_empty() && !other_kinds
        }
        // The killed rank goes silent. Peers parked through the rejoin
        // may legitimately trip the detector too; what must not fire is
        // anything *numeric* (divergence / straggler / storm).
        (Some(v), _) => silent_hits.contains(&v) && straggler_hits.is_empty() && !other_kinds,
    };

    // Endpoint availability: every scrape parses; a kill leg must have
    // parseable scrapes both before and after the rejoin epoch.
    let parse_all = !log.scrapes.is_empty() && log.scrapes.iter().all(|&(_, ok)| ok);
    let epoch_spans = match kill {
        Some(_) => {
            log.scrapes.iter().any(|&(e, ok)| ok && e == 0)
                && log.scrapes.iter().any(|&(e, ok)| ok && e >= 1)
        }
        None => true,
    };

    // The periodic status file pair.
    let status_ok = status_base.with_extension("md").exists()
        && std::fs::read_to_string(status_base.with_extension("json"))
            .ok()
            .and_then(|s| gmg_trace::Json::parse(&s).ok())
            .and_then(|v| v.get("schema")?.as_u64())
            == Some(1);
    let _ = std::fs::remove_file(status_base.with_extension("json"));
    let _ = std::fs::remove_file(status_base.with_extension("md"));

    let lost = collector.lock().unwrap().frames_lost();
    let ok = exact
        && converged_all
        && membership_ok
        && alerts_ok
        && log.mid_run_fleet
        && parse_all
        && epoch_spans
        && status_ok;
    println!(
        "  {leg:<9} seed {seed}: exact={exact} converged={converged_all} membership={membership_ok} \
         alerts_ok={alerts_ok} mid_run_fleet={} scrapes={} lost={lost} status={status_ok} → {}",
        log.mid_run_fleet,
        log.scrapes.len(),
        if ok { "OK" } else { "NOT OK" }
    );
    for a in &alerts {
        println!("    alert[{}] {}", a.kind.name(), a.detail);
    }
    if leg == "clean" && !log.sample.is_empty() {
        let excerpt: Vec<&str> = log
            .sample
            .lines()
            .filter(|l| l.contains("solver_op_ns_count") || l.contains("gmg_live_"))
            .take(8)
            .collect();
        println!("    mid-run scrape excerpt:");
        for l in excerpt {
            println!("      {l}");
        }
    }
    let alert_details: Vec<String> = alerts
        .iter()
        .map(|a| format!("{}: {}", a.kind.name(), a.detail))
        .collect();
    json!({
        "seed": seed,
        "leg": leg,
        "survived": true,
        "transport": report.transport,
        "kill_rank": kill.map_or(-1, |v| v as i64),
        "slow_rank": slow.map_or(-1, |v| v as i64),
        "exact_match": exact,
        "converged": converged_all,
        "membership_ok": membership_ok,
        "rejoins": report.rejoins.len() as u64,
        "alerts": alert_details,
        "alerts_ok": alerts_ok,
        "mid_run_fleet_scrape": log.mid_run_fleet,
        "scrapes": log.scrapes.len() as u64,
        "scrapes_parse_all": parse_all,
        "epoch_spans_ok": epoch_spans,
        "status_file_ok": status_ok,
        "frames_lost": lost,
        "ok": ok,
    })
}

/// The full multi-process campaign: a clean leg (negative control) plus
/// optional planted-straggler and SIGKILL legs, each self-gating.
#[cfg(unix)]
pub fn run_process_campaign(seed: u64, kill: Option<usize>, slow: Option<usize>) -> Value {
    run_process_campaign_with(seed, kill, slow, &[])
}

/// [`run_process_campaign`] with explicit child argv (the in-crate test
/// harness passes a libtest filter so spawned copies of the test binary
/// land in their entry hook instead of running the whole suite).
#[cfg(unix)]
pub fn run_process_campaign_with(
    seed: u64,
    kill: Option<usize>,
    slow: Option<usize>,
    child_args: &[&str],
) -> Value {
    use gmg_core::RecoveryPolicy;
    crate::report::heading(&format!(
        "Live telemetry — multi-process campaign (base seed {seed})"
    ));
    gmg_metrics::enable();

    let mut cfg = live_solver_config();
    cfg.recovery = RecoveryPolicy::Rejoin;
    let baseline = baseline_solve(cfg);
    let base_hist: Vec<u64> = baseline[0]
        .residual_history
        .iter()
        .map(|r| r.to_bits())
        .collect();
    assert!(
        baseline
            .iter()
            .all(|s| s.residual_history == baseline[0].residual_history),
        "baseline ranks disagree"
    );
    println!(
        "thread baseline: converged={} in {} cycles, final residual {:.3e}\n",
        baseline[0].converged,
        baseline[0].vcycles,
        baseline[0].final_residual()
    );

    println!("clean live solve (mid-run fleet scrape, zero alerts):");
    let clean = process_leg(seed, None, None, child_args, &base_hist);
    let straggler = slow.map(|r| {
        println!("\nplanted straggler (observation-layer slowdown on rank {r}):");
        process_leg(seed, None, Some(r), child_args, &base_hist)
    });
    let kill_leg = kill.map(|v| {
        println!("\nsilent rank (SIGKILL rank {v} at V-cycle 3, checkpoint rejoin):");
        process_leg(seed, Some(v), None, child_args, &base_hist)
    });

    let ok = clean["ok"] == true
        && straggler.as_ref().map_or(true, |s| s["ok"] == true)
        && kill_leg.as_ref().map_or(true, |k| k["ok"] == true);
    println!(
        "\nlive verdict: clean={} straggler={} kill={} → {}",
        clean["ok"],
        straggler
            .as_ref()
            .map_or("skipped".to_string(), |s| s["ok"].to_string()),
        kill_leg
            .as_ref()
            .map_or("skipped".to_string(), |k| k["ok"].to_string()),
        if ok { "OK" } else { "NOT OK" }
    );
    let baseline_v = json!({
        "converged": baseline[0].converged,
        "vcycles": baseline[0].vcycles,
        "final_residual": baseline[0].final_residual(),
    });
    json!({
        "seed": seed,
        "mode": "process",
        "baseline": baseline_v,
        "clean": clean,
        "straggler": straggler.unwrap_or(Value::Null),
        "kill": kill_leg.unwrap_or(Value::Null),
        "ok": ok,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Thread-mode campaign: local collector shim, bit-identical
    /// histories with telemetry attached, complete live view, zero
    /// alerts, parseable endpoint.
    #[test]
    fn thread_campaign_is_bit_identical_and_alert_free() {
        let v = run_with_seed(7);
        assert_eq!(v["identical"], true, "{v}");
        assert_eq!(v["progress_complete"], true, "{v}");
        assert_eq!(v["endpoint_ok"], true, "{v}");
        assert_eq!(v["ok"], true, "{v}");
    }

    #[cfg(unix)]
    const CHILD_ARGS: &[&str] = &["live_child_entry", "--test-threads=1", "--nocapture"];

    /// The hook a spawned copy of this test binary lands in (the process
    /// controller passes a libtest filter selecting exactly this test).
    /// In a normal run it is an instant no-op.
    #[cfg(unix)]
    #[test]
    fn live_child_entry() {
        gmg_comm::process::run_child_if_spawned(|entry, mut ctx, args| match entry {
            "live" => live_child(&mut ctx, args),
            other => panic!("unknown live process entry {other:?}"),
        });
    }

    /// The milestone's acceptance demo end to end: clean negative
    /// control, planted straggler named by the alert engine, SIGKILLed
    /// rank caught by the silent-rank detector with the endpoint
    /// parseable on both sides of the rejoin epoch — all bit-identical
    /// to the thread baseline.
    #[cfg(unix)]
    #[test]
    fn process_campaign_scrapes_and_alerts_both_polarities() {
        let v = run_process_campaign_with(3, Some(2), Some(1), CHILD_ARGS);
        assert_eq!(v["ok"], true, "{v}");
        assert_eq!(v["clean"]["alerts_ok"], true, "{v}");
        assert_eq!(v["clean"]["mid_run_fleet_scrape"], true, "{v}");
        assert_eq!(v["straggler"]["alerts_ok"], true, "{v}");
        assert_eq!(v["kill"]["epoch_spans_ok"], true, "{v}");
        assert_eq!(v["kill"]["exact_match"], true, "{v}");
    }
}
