//! Figure 7: potential-speedup scatter — fraction of theoretical AI on the
//! x-axis, fraction of roofline on the y-axis, iso-speedup curves.

use gmg_machine::gpu::System;
use gmg_machine::portability::potential_speedup;
use gmg_stencil::ALL_OPS;
use serde_json::{json, Value};

/// One scatter point.
#[derive(Debug)]
pub struct ScatterPoint {
    pub system: System,
    pub op: &'static str,
    pub ai_fraction: f64,
    pub roofline_fraction: f64,
    pub potential_speedup: f64,
}

/// All 15 (op × system) points.
pub fn points() -> Vec<ScatterPoint> {
    let mut v = Vec::new();
    for sys in System::ALL {
        let gpu = sys.gpu();
        for op in ALL_OPS {
            let e = gpu.op_efficiency(op);
            v.push(ScatterPoint {
                system: sys,
                op: op.name(),
                ai_fraction: e.ai_fraction,
                roofline_fraction: e.roofline_fraction,
                potential_speedup: potential_speedup(e.roofline_fraction, e.ai_fraction),
            });
        }
    }
    v
}

/// Run the harness.
pub fn run() -> Value {
    crate::report::heading("Figure 7 — potential speedup (x: %theoretical AI, y: %roofline)");
    println!(
        "{:<12} {:<26} {:>8} {:>10} {:>9}",
        "system", "operation", "%AI", "%roofline", "speedup"
    );
    let pts = points();
    for p in &pts {
        println!(
            "{:<12} {:<26} {:>7.0}% {:>9.0}% {:>8.2}x",
            format!("{:?}", p.system),
            p.op,
            p.ai_fraction * 100.0,
            p.roofline_fraction * 100.0,
            p.potential_speedup
        );
    }
    json!({
        "points": pts.iter().map(|p| json!({
            "system": format!("{:?}", p.system),
            "op": p.op,
            "ai_fraction": p.ai_fraction,
            "roofline_fraction": p.roofline_fraction,
            "potential_speedup": p.potential_speedup,
        })).collect::<Vec<_>>(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvidia_points_cluster_near_ideal() {
        // Paper: NVIDIA at most ~1.2× potential speedup across all ops.
        for p in points().iter().filter(|p| p.system == System::Perlmutter) {
            assert!(
                p.potential_speedup <= 1.27,
                "{}: {}",
                p.op,
                p.potential_speedup
            );
        }
    }

    #[test]
    fn amd_interpolation_is_the_outlier() {
        // Paper: one GCD outlier close to 4× for interpolation+increment.
        let pts = points();
        let outlier = pts
            .iter()
            .find(|p| p.system == System::Frontier && p.op == "interpolation+increment")
            .unwrap();
        assert!(
            outlier.potential_speedup > 3.0,
            "{}",
            outlier.potential_speedup
        );
        // Everything else on Frontier stays within ~1.2–1.5×.
        for p in pts
            .iter()
            .filter(|p| p.system == System::Frontier && p.op != "interpolation+increment")
        {
            assert!(
                p.potential_speedup < 1.8,
                "{}: {}",
                p.op,
                p.potential_speedup
            );
        }
    }

    #[test]
    fn intel_range_1_5_to_2x_ish() {
        // Paper: PVC points range roughly 1.5–2×.
        for p in points().iter().filter(|p| p.system == System::Sunspot) {
            assert!(
                (1.0..2.6).contains(&p.potential_speedup),
                "{}: {}",
                p.op,
                p.potential_speedup
            );
        }
    }

    #[test]
    fn fifteen_points() {
        assert_eq!(points().len(), 15);
    }
}
