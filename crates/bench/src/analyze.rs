//! analyze — trace-analysis reports: per-V-cycle critical path, load
//! imbalance, comm/compute overlap, roofline attribution against the
//! `gmg-machine` model, outlier detection, and run-vs-run diffing.
//!
//! The analysis engine itself lives in `gmg_metrics::analysis` (it only
//! needs a [`gmg_trace::Trace`]); this module supplies the machine
//! envelope from `gmg-machine` measurements, the traced reference solve,
//! artifact loading, and the markdown report plumbing.
//!
//! ```text
//! cargo run --release -p gmg-bench --bin analyze              # traced 2-rank solve
//!   --trace <file>            analyze an existing Chrome trace JSON (GMG_TRACE output)
//!   --diff <a> <b>            compare two traces, or two bench/BENCH_<n>.json entries
//!   --inject-slowdown OP:PCT  scale one op's durations before analyzing
//!   --min-coverage <pct>      exit 2 below this critical-path coverage (default 95)
//!   --threshold <pct>         diff regression threshold (default 10)
//! ```
//!
//! In the default mode the binary captures its own trace, so `GMG_TRACE`
//! is honoured by exporting that capture rather than nesting a second
//! scope around it.

use gmg_comm::runtime::RankWorld;
use gmg_core::solver::{GmgSolver, SolverConfig};
use gmg_machine::microbench::measure_host;
use gmg_machine::model::LatencyThroughput;
use gmg_mesh::{Box3, Decomposition, Point3};
use gmg_metrics::analysis::{self, MachineEnvelope};
use gmg_metrics::Analysis;
use gmg_trace::{Trace, TraceSummary, Track};
use serde_json::Value;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Harness options (the binary's command line).
#[derive(Clone, Debug)]
pub struct AnalyzeOpts {
    /// Analyze this Chrome trace JSON instead of running a solve.
    pub trace_path: Option<PathBuf>,
    /// Compare two artifacts (traces or perfgate trajectory entries).
    pub diff: Option<(PathBuf, PathBuf)>,
    /// Scale every compute span of this op by `1 + pct/100` first.
    pub inject_slowdown: Option<(String, f64)>,
    /// Fail (exit 2) when critical-path coverage falls below this.
    pub min_coverage_pct: f64,
    /// Regression threshold for `--diff`, in percent.
    pub threshold_pct: f64,
}

impl Default for AnalyzeOpts {
    fn default() -> Self {
        Self {
            trace_path: None,
            diff: None,
            inject_slowdown: None,
            min_coverage_pct: 95.0,
            threshold_pct: 10.0,
        }
    }
}

/// The deterministic reference problem (the same one `profile` traces):
/// 32³ split across two ranks, three levels, four V-cycles.
pub fn traced_solve() -> Trace {
    let decomp = Decomposition::new(Box3::cube(32), Point3::new(2, 1, 1));
    let cfg = SolverConfig {
        num_levels: 3,
        tolerance: 0.0,
        max_vcycles: 4,
        ..SolverConfig::test_default()
    };
    let d = &decomp;
    let (_, trace) = gmg_trace::capture(|| {
        RankWorld::run(2, move |mut ctx| {
            let mut s = GmgSolver::new(d.clone(), ctx.rank(), cfg);
            s.solve(&mut ctx);
        })
    });
    trace
}

/// Fit the comm α/β to the trace's own send spans (message bytes vs
/// seconds). None when there are too few distinct sizes or the fitted
/// slope would be non-positive (tiny runs where noise swamps the trend).
fn fitted_comm(trace: &Trace) -> Option<LatencyThroughput> {
    let samples: Vec<(f64, f64)> = trace
        .events
        .iter()
        .filter(|e| e.track == Track::Comm && e.op.name() == "send" && e.counters.message_bytes > 0)
        .map(|e| (e.counters.message_bytes as f64, e.dur_ns as f64 / 1e9))
        .collect();
    let mut xs: Vec<u64> = samples.iter().map(|&(x, _)| x as u64).collect();
    xs.sort_unstable();
    xs.dedup();
    if xs.len() < 2 {
        return None;
    }
    // Pre-check the OLS slope so `fit_time`'s degenerate-data assertion
    // cannot fire on a pathological trace.
    let n = samples.len() as f64;
    let sx: f64 = samples.iter().map(|(x, _)| x).sum();
    let st: f64 = samples.iter().map(|(_, t)| t).sum();
    let sxx: f64 = samples.iter().map(|(x, _)| x * x).sum();
    let sxt: f64 = samples.iter().map(|(x, t)| x * t).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() == 0.0 || (n * sxt - sx * st) / denom <= 0.0 {
        return None;
    }
    Some(LatencyThroughput::fit_time(&samples))
}

/// Build the envelope the roofline attribution compares against: the
/// host's measured STREAM triad and copy latency, plus a comm model
/// fitted to this trace's send spans (host copy numbers as the fallback).
pub fn envelope_for(trace: &Trace) -> MachineEnvelope {
    let host = measure_host();
    let comm = fitted_comm(trace)
        .unwrap_or_else(|| LatencyThroughput::new(host.copy_alpha_s, host.copy_beta_gbs * 1e9));
    MachineEnvelope {
        triad_gbs: host.triad_gbs,
        launch_alpha_s: host.copy_alpha_s,
        comm_alpha_s: comm.alpha_s,
        comm_beta_gbs: comm.beta / 1e9,
    }
}

/// A loaded `--diff` operand.
enum Artifact {
    Trace(Trace),
    Bench(Value),
}

/// Load a diff operand, detecting perfgate trajectory entries by their
/// `benchmarks` array; anything else must parse as a Chrome trace.
fn load_artifact(path: &Path) -> Result<Artifact, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
    let parsed: Result<Value, _> = serde_json::from_str(&text);
    if let Ok(v) = parsed {
        if v["benchmarks"].as_array().is_some() {
            return Ok(Artifact::Bench(v));
        }
    }
    Trace::from_chrome_str(&text)
        .map(Artifact::Trace)
        .map_err(|e| format!("parse {path:?}: {e}"))
}

/// Compare two perfgate trajectory entries on their gated speedup ratios
/// (higher is better, so a drop beyond the threshold regresses). Returns
/// the markdown report and the regression count.
pub fn diff_bench_entries(a: &Value, b: &Value, threshold: f64) -> (String, usize) {
    let rows_of = |v: &Value| -> Vec<(String, f64)> {
        v["benchmarks"]
            .as_array()
            .into_iter()
            .flatten()
            .filter_map(|r| Some((r["id"].as_str()?.to_string(), r["ratio"].as_f64()?)))
            .collect()
    };
    let (ra, rb) = (rows_of(a), rows_of(b));
    let mut ids: Vec<String> = ra.iter().map(|(id, _)| id.clone()).collect();
    for (id, _) in &rb {
        if !ids.contains(id) {
            ids.push(id.clone());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "## Benchmark-entry diff (gated speedup ratios)\n");
    let _ = writeln!(out, "| benchmark | ratio A | ratio B | change | |");
    let _ = writeln!(out, "|---|---:|---:|---:|---|");
    let mut regressions = 0usize;
    for id in &ids {
        let va = ra.iter().find(|(i, _)| i == id).map(|&(_, r)| r);
        let vb = rb.iter().find(|(i, _)| i == id).map(|&(_, r)| r);
        match (va, vb) {
            (Some(x), Some(y)) => {
                let flag = if y < x * (1.0 - threshold) {
                    regressions += 1;
                    "**REGRESSED**"
                } else if y > x * (1.0 + threshold) {
                    "improved"
                } else {
                    ""
                };
                let _ = writeln!(
                    out,
                    "| {id} | {x:.3} | {y:.3} | {:+.1}% | {flag} |",
                    100.0 * (y / x - 1.0)
                );
            }
            (Some(x), None) => {
                let _ = writeln!(out, "| {id} | {x:.3} | — | | only in A |");
            }
            (None, Some(y)) => {
                let _ = writeln!(out, "| {id} | — | {y:.3} | | only in B |");
            }
            (None, None) => {}
        }
    }
    if regressions > 0 {
        let _ = writeln!(out, "\n{regressions} regression(s) detected.");
    } else {
        let _ = writeln!(out, "\nNo regressions.");
    }
    (out, regressions)
}

fn run_diff(dir: &Path, a: &Path, b: &Path, threshold: f64) -> i32 {
    crate::report::heading("analyze --diff — run-vs-run per-op comparison");
    let (report, regressions) = match (load_artifact(a), load_artifact(b)) {
        (Ok(Artifact::Bench(va)), Ok(Artifact::Bench(vb))) => {
            diff_bench_entries(&va, &vb, threshold)
        }
        (Ok(Artifact::Trace(ta)), Ok(Artifact::Trace(tb))) => {
            let rows = analysis::diff_summaries(
                &TraceSummary::from_trace(&ta),
                &TraceSummary::from_trace(&tb),
                threshold,
            );
            let n = rows.iter().filter(|r| r.regressed).count();
            (analysis::render_diff(&rows, threshold), n)
        }
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("analyze: {e}");
            return 2;
        }
        _ => {
            eprintln!("analyze: cannot diff a trace against a bench entry");
            return 2;
        }
    };
    let path = crate::report::save_raw_in(dir, "analyze_diff.md", &report);
    print!("{report}");
    println!("\n[diff -> {path:?}]");
    if regressions > 0 {
        1
    } else {
        0
    }
}

/// Core of [`run`] with the output directory and (for tests) the machine
/// envelope injectable; `env: None` measures the host.
pub fn run_with(dir: &Path, opts: &AnalyzeOpts, env: Option<MachineEnvelope>) -> i32 {
    if let Some((a, b)) = &opts.diff {
        return run_diff(dir, a, b, opts.threshold_pct / 100.0);
    }
    crate::report::heading("analyze — critical path, imbalance, roofline attribution");
    let trace = match &opts.trace_path {
        Some(p) => match load_artifact(p) {
            Ok(Artifact::Trace(t)) => t,
            Ok(Artifact::Bench(_)) => {
                eprintln!("analyze: {p:?} is a bench entry; use --diff to compare entries");
                return 2;
            }
            Err(e) => {
                eprintln!("analyze: {e}");
                return 2;
            }
        },
        None => {
            println!("running the traced 2-rank reference solve ...");
            traced_solve()
        }
    };
    let trace = match &opts.inject_slowdown {
        Some((op, pct)) => {
            println!("injecting a {pct}% slowdown into every '{op}' span");
            analysis::scale_op(&trace, op, 1.0 + pct / 100.0)
        }
        None => trace,
    };
    // Export after injection so a `GMG_TRACE= --inject-slowdown OP:PCT`
    // run yields a trace that `--diff` against a clean run must flag.
    if opts.trace_path.is_none() {
        if let Some(path) = std::env::var_os("GMG_TRACE").map(PathBuf::from) {
            let out_dir = crate::report::ensure_dir(Some(
                path.parent()
                    .filter(|p| !p.as_os_str().is_empty())
                    .map(Path::to_path_buf)
                    .unwrap_or_else(|| PathBuf::from(".")),
            ));
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| "trace.json".into());
            let p = crate::report::save_raw_in(&out_dir, &name, &trace.to_chrome_string());
            eprintln!("[trace: {} events -> {p:?}]", trace.events.len());
        }
    }
    let env = env.unwrap_or_else(|| envelope_for(&trace));
    let analysis = Analysis::from_trace(&trace, Some(&env));
    let report = analysis.render();
    let path = crate::report::save_raw_in(dir, "analyze_report.md", &report);
    print!("{report}");
    println!("\n[report -> {path:?}]");
    let coverage_pct = 100.0 * analysis.path.coverage;
    if coverage_pct < opts.min_coverage_pct {
        eprintln!(
            "analyze: critical-path coverage {coverage_pct:.1}% below the {:.1}% floor",
            opts.min_coverage_pct
        );
        return 2;
    }
    0
}

/// Run the harness; returns the process exit code (0 ok, 1 diff found
/// regressions, 2 load error or coverage below the floor).
pub fn run(opts: &AnalyzeOpts) -> i32 {
    run_with(&crate::report::results_dir(), opts, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_env() -> MachineEnvelope {
        MachineEnvelope {
            triad_gbs: 100.0,
            launch_alpha_s: 1e-6,
            comm_alpha_s: 5e-6,
            comm_beta_gbs: 10.0,
        }
    }

    fn test_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(name);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// The acceptance bar: on the traced 2-rank solve the per-V-cycle
    /// critical path covers ≥ 95% of wall time, the report carries every
    /// section, and rendering is byte-identical across reruns.
    #[test]
    fn reference_solve_meets_coverage_and_renders_deterministically() {
        let trace = traced_solve();
        let a = Analysis::from_trace(&trace, Some(&fake_env()));
        assert!(
            a.path.coverage >= 0.95,
            "critical-path coverage {:.3} below 0.95",
            a.path.coverage
        );
        let r1 = a.render();
        let r2 = Analysis::from_trace(&trace, Some(&fake_env())).render();
        assert_eq!(r1, r2, "analysis must be deterministic");
        for section in [
            "Per-level op time fractions (Table II)",
            "Critical path",
            "Load imbalance",
            "Rank utilization",
            "Roofline attribution",
        ] {
            assert!(r1.contains(section), "missing section {section:?}");
        }
    }

    /// End-to-end `--diff`: a 30% slowdown injected into `restriction`
    /// is flagged in exactly the affected ops, and the binary path exits
    /// nonzero.
    #[test]
    fn diff_flags_injected_slowdown_in_exactly_the_affected_ops() {
        let trace = traced_solve();
        let slowed = analysis::scale_op(&trace, "restriction", 1.3);
        let rows = analysis::diff_summaries(
            &TraceSummary::from_trace(&trace),
            &TraceSummary::from_trace(&slowed),
            0.10,
        );
        let regressed: Vec<&analysis::DiffRow> = rows.iter().filter(|r| r.regressed).collect();
        assert!(!regressed.is_empty(), "slowdown not flagged");
        assert!(
            regressed.iter().all(|r| r.op == "restriction"),
            "unrelated ops flagged: {regressed:?}"
        );

        let dir = test_dir("gmg_analyze_diff_test");
        let pa = dir.join("a_trace.json");
        let pb = dir.join("b_trace.json");
        std::fs::write(&pa, trace.to_chrome_string()).unwrap();
        std::fs::write(&pb, slowed.to_chrome_string()).unwrap();
        let code = run_diff(&dir, &pa, &pb, 0.10);
        assert_eq!(code, 1, "diff must exit nonzero on a regression");
        let report = std::fs::read_to_string(dir.join("analyze_diff.md")).unwrap();
        assert!(report.contains("restriction"));
        assert!(report.contains("REGRESSED"));
    }

    #[test]
    fn bench_entry_diff_flags_ratio_drop() {
        let a: Value = serde_json::from_str(
            r#"{"schema":2,"benchmarks":[
                {"id":"applyop_bricked_vs_array","ratio":1.5},
                {"id":"multismooth_fused_vs_sweep","ratio":1.3}]}"#,
        )
        .unwrap();
        let b: Value = serde_json::from_str(
            r#"{"schema":2,"benchmarks":[
                {"id":"applyop_bricked_vs_array","ratio":1.48},
                {"id":"multismooth_fused_vs_sweep","ratio":1.0}]}"#,
        )
        .unwrap();
        let (report, regressions) = diff_bench_entries(&a, &b, 0.10);
        assert_eq!(regressions, 1, "{report}");
        assert!(report.contains("multismooth_fused_vs_sweep | 1.300 | 1.000"));
        assert!(report.contains("**REGRESSED**"));
        assert!(!report.contains("applyop_bricked_vs_array | 1.500 | 1.480 | -1.3% | **"));
    }

    #[test]
    fn artifacts_are_detected_by_shape() {
        let dir = test_dir("gmg_analyze_artifact_test");
        let bench = dir.join("BENCH_9.json");
        std::fs::write(&bench, r#"{"schema":2,"benchmarks":[]}"#).unwrap();
        assert!(matches!(load_artifact(&bench), Ok(Artifact::Bench(_))));
        let (_, trace) = gmg_trace::capture(|| {
            gmg_trace::span(0, 0, "applyOp", Track::Compute);
        });
        let tp = dir.join("t.json");
        std::fs::write(&tp, trace.to_chrome_string()).unwrap();
        assert!(matches!(load_artifact(&tp), Ok(Artifact::Trace(_))));
        assert!(load_artifact(&dir.join("missing.json")).is_err());
    }

    /// `run_with` end to end on a saved trace: the report lands in the
    /// requested directory and the coverage gate passes.
    #[test]
    fn run_with_reports_on_a_saved_trace() {
        let dir = test_dir("gmg_analyze_run_test");
        let tp = dir.join("solve_trace.json");
        std::fs::write(&tp, traced_solve().to_chrome_string()).unwrap();
        let opts = AnalyzeOpts {
            trace_path: Some(tp),
            ..AnalyzeOpts::default()
        };
        let code = run_with(&dir, &opts, Some(fake_env()));
        assert_eq!(code, 0);
        let report = std::fs::read_to_string(dir.join("analyze_report.md")).unwrap();
        assert!(report.contains("critical-path coverage"));
        assert!(report.contains("Roofline attribution"));
    }
}
