//! Scaling observatory: gated 10k-rank weak/strong-scaling reports from
//! the `gmg-scale` schedule simulator.
//!
//! The campaign:
//!
//! 1. **Weak sweep** (clock-only): the observatory per-rank problem at a
//!    ladder of rank counts up to the headline, parallel efficiency per
//!    point.
//! 2. **Model fit**: least-squares alpha–beta+contention fit
//!    ([`gmg_scale::fit_scaling_model`]) over the sweep — relative RMS
//!    misfit must stay ≤ 10% or the observatory is lying about its own
//!    cost model.
//! 3. **Strong sweep** (clock-only): a fixed global problem divided ever
//!    finer.
//! 4. **Flight-grade attribution** at the headline rank count
//!    ([`RecordMode::Events`]): synthetic rank logs through the
//!    *production* wait classifier — classified wait fraction must be
//!    ≥ 90% — plus the planted-slowdown self-test in both polarities: a
//!    clean run must flag nothing, an injected `LEVEL:PCT` run must flag
//!    exactly that level. Both are exit-code-enforced.
//! 5. **Window forensics**: the configured rank window's logs rebuilt
//!    into a merged trace (same path as the crash postmortem), exact
//!    message edges into `critical_path_with_edges`, per-window-rank
//!    utilization via [`gmg_trace::Trace::rank_window`], and a Perfetto
//!    timeline with cross-rank flow arrows.
//! 6. **CPU-offload ablation**: per-level time decomposition all-GPU vs
//!    host-offloaded coarse levels, naming the crossover level.
//!
//! Artifacts: `results/scaling_report.md`, `results/scaling.json`,
//! `results/scaling_window_trace.json`.
//!
//! Run: `cargo run --release -p gmg-bench --bin scaling`
//! (`--ranks N`, `--system S`, `--inject-slowdown LEVEL:PCT`,
//! `--window A:B`).

use gmg_machine::gpu::System;
use gmg_metrics::analysis::{critical_path_with_edges, imbalance_from_seconds, utilization};
use gmg_scale::{fit_scaling_model, simulate, RecordMode, ScaleConfig, ScaleResult, SweepPoint};
use serde_json::{json, Value};

/// Attribution threshold on per-level compute excess over the analytic
/// prediction (fractional). Jitter is symmetric, so a clean run sits at
/// ~0 excess; the default planted slowdown (30%) clears it 3× over.
pub const FLAG_THRESHOLD: f64 = 0.08;
/// Gate: classified wait fraction at the headline rank count.
pub const MIN_CLASSIFIED: f64 = 0.90;
/// Gate: relative RMS misfit of the scaling-model fit.
pub const MAX_FIT_ERR: f64 = 0.10;

/// Campaign options (the binary's command line).
#[derive(Clone, Debug)]
pub struct ScalingOpts {
    /// Headline rank count — the attribution runs and the top of the
    /// weak sweep.
    pub ranks: usize,
    pub system: System,
    /// Planted per-level slowdown for the positive polarity
    /// (`LEVEL:PCT`); the clean negative control always runs too.
    pub inject: (usize, f64),
    /// Rank window `[lo, hi)` for the Perfetto/critical-path forensics.
    pub window: (usize, usize),
}

impl Default for ScalingOpts {
    fn default() -> Self {
        ScalingOpts {
            ranks: 10_648, // 22³
            system: System::Perlmutter,
            inject: (2, 30.0),
            window: (0, 8),
        }
    }
}

/// Weak-sweep ladder: observatory-preset points up to (and including)
/// the headline rank count.
fn weak_ladder(headline: usize) -> Vec<usize> {
    let mut pts: Vec<usize> = [8usize, 64, 512, 1_000, 4_096, 10_648, 32_768, 104_976]
        .iter()
        .copied()
        .filter(|&r| r < headline)
        .collect();
    pts.push(headline);
    pts
}

fn weak_config(opts: &ScalingOpts, ranks: usize) -> ScaleConfig {
    ScaleConfig::observatory(opts.system, ranks)
}

/// Event-mode config for the attribution / forensics runs: one V-cycle
/// keeps the 10k-rank event volume laptop-sized (comm events on every
/// rank, compute spans only inside the window).
fn event_config(opts: &ScalingOpts, ranks: usize) -> ScaleConfig {
    let mut cfg = ScaleConfig::observatory(opts.system, ranks);
    cfg.vcycles = 1;
    cfg.record = RecordMode::Events;
    cfg.window = (opts.window.0.min(ranks), opts.window.1.min(ranks));
    cfg
}

/// One wait-attribution run: simulate with events, classify every wait.
struct Attribution {
    ranks: usize,
    result: ScaleResult,
    waits: gmg_flight::WaitAnalysis,
}

fn attribute(cfg: &ScaleConfig) -> Attribution {
    let result = simulate(cfg);
    let waits = gmg_flight::analyze(result.logs.as_deref().unwrap_or(&[]));
    Attribution {
        ranks: cfg.ranks,
        result,
        waits,
    }
}

fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Markdown + JSON of the whole campaign. `ok` in the returned JSON is
/// the AND of every gate.
pub fn run(opts: &ScalingOpts) -> Value {
    crate::report::heading(&format!(
        "scaling observatory — {:?}, headline {} ranks",
        opts.system, opts.ranks
    ));
    let mut md = String::new();
    md.push_str(&format!(
        "# Scaling observatory — {:?}, {} ranks headline\n\n",
        opts.system, opts.ranks
    ));
    let base = weak_config(opts, 1);
    md.push_str(&format!(
        "Per-rank problem {}³ × {} levels, {} + {} smooths, {} V-cycles, \
         communication-avoiding: {}. Contention: Slingshot-class \
         (radix-{} switches, {} ranks/node).\n\n",
        base.sub_extent.x,
        base.num_levels,
        base.smooths_per_level,
        base.bottom_smooths,
        base.vcycles,
        base.communication_avoiding,
        base.contention.switch_radix,
        base.ranks_per_node,
    ));

    // ---- 1. weak sweep (clock-only) -----------------------------------
    let ladder = weak_ladder(opts.ranks);
    println!("weak sweep over {ladder:?} ranks ...");
    let weak: Vec<ScaleResult> = ladder
        .iter()
        .map(|&r| simulate(&weak_config(opts, r)))
        .collect();
    let sweep: Vec<SweepPoint> = weak
        .iter()
        .map(|r| SweepPoint {
            ranks: r.ranks,
            nodes: r.nodes,
            seconds: r.per_vcycle_seconds,
        })
        .collect();

    // ---- 2. model fit --------------------------------------------------
    let contention = base.contention.clone();
    let fit = fit_scaling_model(&sweep, &contention).expect("non-degenerate sweep");
    let fit_ok = fit.rel_rms_err <= MAX_FIT_ERR;

    md.push_str("## Weak scaling (fixed per-rank problem)\n\n");
    md.push_str(
        "| ranks | nodes | grid | s/V-cycle | efficiency | model s/V-cycle | model eff |\n\
         |---|---|---|---|---|---|---|\n",
    );
    let base_pt = sweep[0];
    for (i, r) in weak.iter().enumerate() {
        md.push_str(&format!(
            "| {} | {} | {}×{}×{} | {:.6} | {} | {:.6} | {} |\n",
            r.ranks,
            r.nodes,
            r.grid[0],
            r.grid[1],
            r.grid[2],
            r.per_vcycle_seconds,
            pct(r.weak_efficiency(&weak[0])),
            fit.predicted[i],
            pct(fit.predicted_weak_efficiency(&base_pt, &sweep[i], &contention)),
        ));
    }
    md.push_str(&format!(
        "\nFit `t = α + σ·stages + τ·log₂ranks`: α = {:.3e} s, σ = {:.3e} s/stage, \
         τ = {:.3e} s/level; relative RMS misfit {} (gate ≤ {}) → **{}**\n\n",
        fit.alpha_s,
        fit.per_stage_s,
        fit.per_tree_level_s,
        pct(fit.rel_rms_err),
        pct(MAX_FIT_ERR),
        if fit_ok { "PASS" } else { "FAIL" },
    ));

    // ---- 3. strong sweep (fixed global problem) ------------------------
    // The headline's global problem divided ever finer: per-rank extent
    // halves as ranks grow 8×. Levels are clamped so the coarsest extent
    // stays ≥ 2 cells on the smallest subdomain.
    println!("strong sweep ...");
    let strong_ranks: Vec<usize> = [64usize, 512, 4_096]
        .iter()
        .copied()
        .filter(|&r| r <= opts.ranks)
        .collect();
    let strong: Vec<ScaleResult> = strong_ranks
        .iter()
        .enumerate()
        .map(|(i, &r)| {
            let mut cfg = weak_config(opts, r);
            // 64 ranks at 64³ = a 256³ global problem, held fixed.
            cfg.sub_extent = gmg_mesh::Point3::splat(64 >> i);
            cfg.num_levels = (4 - i).max(2);
            simulate(&cfg)
        })
        .collect();
    md.push_str("## Strong scaling (fixed 256³ global problem)\n\n");
    md.push_str(
        "| ranks | cells/rank | s/V-cycle | speedup | efficiency |\n|---|---|---|---|---|\n",
    );
    for r in &strong {
        md.push_str(&format!(
            "| {} | {} | {:.6} | {:.2}× | {} |\n",
            r.ranks,
            r.levels[0].cells_per_rank,
            r.per_vcycle_seconds,
            strong[0].total_seconds / r.total_seconds,
            pct(r.strong_efficiency(&strong[0])),
        ));
    }
    md.push('\n');

    // ---- 4. wait attribution across the ladder + polarity self-test ----
    let event_ranks: Vec<usize> = [64usize, 1_000]
        .iter()
        .copied()
        .filter(|&r| r < opts.ranks)
        .chain(std::iter::once(opts.ranks))
        .collect();
    println!("event-mode attribution at {event_ranks:?} ranks ...");
    let attrs: Vec<Attribution> = event_ranks
        .iter()
        .map(|&r| attribute(&event_config(opts, r)))
        .collect();
    let headline = attrs.last().expect("at least one attribution run");
    let classified = headline.waits.total.classified_fraction();
    let classified_ok = classified >= MIN_CLASSIFIED;

    md.push_str("## Wait-state attribution vs scale\n\n");
    md.push_str(
        "| ranks | total wait (s/rank) | late-sender | late-recv | arq-stall | starvation | classified |\n\
         |---|---|---|---|---|---|---|\n",
    );
    for a in &attrs {
        let t = &a.waits.total;
        let total_ns = t.total_ns().max(1);
        let share = |c| t.class_ns(c) as f64 / total_ns as f64;
        use gmg_flight::WaitClass::*;
        md.push_str(&format!(
            "| {} | {:.6} | {} | {} | {} | {} | {} |\n",
            a.ranks,
            t.total_ns() as f64 / 1e9 / a.ranks as f64,
            pct(share(LateSender)),
            pct(share(LateReceiver)),
            pct(share(ArqStall)),
            pct(share(Starvation)),
            pct(t.classified_fraction()),
        ));
    }
    md.push_str(&format!(
        "\nHeadline classified fraction {} (gate ≥ {}) → **{}**\n\n",
        pct(classified),
        pct(MIN_CLASSIFIED),
        if classified_ok { "PASS" } else { "FAIL" },
    ));

    // Injection polarity: the clean headline run is the negative control;
    // the positive run plants `inject` and must flag exactly that level.
    let clean_flagged = headline.result.flagged_levels(FLAG_THRESHOLD);
    let clean_ok = clean_flagged.is_empty();
    let (inj_level, inj_pct) = opts.inject;
    println!("planted-slowdown polarity check (level {inj_level}, {inj_pct}%) ...");
    let mut hot_cfg = event_config(opts, opts.ranks);
    hot_cfg.record = RecordMode::ClockOnly; // attribution is clock math
    hot_cfg.inject_slowdown = Some((inj_level, inj_pct));
    let hot = simulate(&hot_cfg);
    let hot_flagged = hot.flagged_levels(FLAG_THRESHOLD);
    let inject_ok = hot_flagged == vec![inj_level];
    md.push_str("## Attribution self-test (planted slowdown)\n\n");
    md.push_str(&format!(
        "- clean run flags {:?} (must be empty) → **{}**\n\
         - `--inject-slowdown {inj_level}:{inj_pct}` flags {:?} (must be exactly [{inj_level}]) → **{}**\n\n",
        clean_flagged,
        if clean_ok { "PASS" } else { "FAIL" },
        hot_flagged,
        if inject_ok { "PASS" } else { "FAIL" },
    ));

    // ---- per-level decomposition + imbalance at the headline -----------
    md.push_str(&format!(
        "## Per-level time decomposition at {} ranks\n\n",
        opts.ranks
    ));
    md.push_str(
        "| level | cells/rank | compute s | predicted s | exchange s | exchanges |\n\
         |---|---|---|---|---|---|\n",
    );
    for l in &headline.result.levels {
        md.push_str(&format!(
            "| {} | {} | {:.6} | {:.6} | {:.6} | {} |\n",
            l.level,
            l.cells_per_rank,
            l.compute_mean_s,
            l.compute_predicted_s,
            l.exchange_mean_s,
            l.exchanges,
        ));
    }
    md.push_str(&format!(
        "\nallreduce {:.6} s/rank · receive waits {:.6} s/rank · aggregate {:.2} GStencil/s\n\n",
        headline.result.allreduce_mean_s,
        headline.result.wait_mean_s,
        headline.result.gstencil_per_s,
    ));

    let imb = imbalance_from_seconds(headline.result.imbalance_rows(), headline.result.ranks);
    md.push_str("### Worst cross-rank imbalance (top 5)\n\n");
    md.push_str("| level | op | mean s | max s | factor | max rank |\n|---|---|---|---|---|---|\n");
    let mut by_factor = imb.clone();
    by_factor.sort_by(|a, b| b.factor.partial_cmp(&a.factor).unwrap());
    for r in by_factor.iter().take(5) {
        md.push_str(&format!(
            "| {} | {} | {:.6} | {:.6} | {:.3} | {} |\n",
            r.level, r.op, r.mean_s, r.max_s, r.factor, r.max_rank
        ));
    }
    md.push('\n');

    // ---- 5. window forensics through the postmortem pipes --------------
    let (wlo, whi) = (opts.window.0.min(opts.ranks), opts.window.1.min(opts.ranks));
    println!("window forensics over ranks {wlo}..{whi} ...");
    let logs = headline.result.logs.as_deref().unwrap_or(&[]);
    // The window's critical path needs sender context: include the window
    // ranks plus every rank that fed a message into the window.
    let mut keep: std::collections::BTreeSet<usize> = (wlo..whi).collect();
    for e in &headline.waits.edges {
        if (wlo..whi).contains(&e.dst) {
            keep.insert(e.src);
        }
    }
    let window_logs: Vec<gmg_flight::RankLog> = logs
        .iter()
        .filter(|l| keep.contains(&l.rank))
        .cloned()
        .collect();
    let window_waits = gmg_flight::analyze(&window_logs);
    let (medges, flows) = crate::postmortem::exact_edges(&window_waits);
    let trace = crate::postmortem::rebuild_trace(&window_logs);
    let path = critical_path_with_edges(&trace, &medges);
    // Utilization over the pure window (peers carry no compute spans and
    // would read as idle).
    let util = utilization(&trace.rank_window(wlo, whi));
    let trace_path = crate::report::save_raw(
        "scaling_window_trace.json",
        &trace.to_chrome_string_with_flows(&flows),
    );
    md.push_str(&format!("## Rank-window forensics ({wlo}..{whi})\n\n"));
    md.push_str(&format!(
        "{} ranks in view ({} window + {} message peers), {} events, \
         {} exact message edges, critical-path coverage {}.\n\n",
        keep.len(),
        whi - wlo,
        keep.len() - (whi - wlo),
        trace.events.len(),
        medges.len(),
        pct(path.coverage),
    ));
    md.push_str("| rank | compute | comm | idle |\n|---|---|---|---|\n");
    for u in &util {
        let extent = (u.compute_s + u.comm_s + u.idle_s).max(1e-30);
        md.push_str(&format!(
            "| {} | {} | {} | {} |\n",
            u.rank,
            pct(u.compute_s / extent),
            pct(u.comm_s / extent),
            pct(u.idle_s / extent),
        ));
    }
    md.push_str(&format!(
        "\nCritical-path op totals (top 8):\n\n| op | seconds |\n|---|---|\n"
    ));
    for (op, secs) in path.op_totals.iter().take(8) {
        md.push_str(&format!("| {op} | {secs:.6} |\n"));
    }
    md.push_str(&format!(
        "\nPerfetto timeline with flow arrows: `{}`\n\n",
        trace_path.display()
    ));

    // ---- 6. CPU-offload ablation ---------------------------------------
    println!("cpu-offload ablation ...");
    let gpu_cfg = {
        let mut c = weak_config(opts, opts.ranks);
        c.vcycles = 1;
        c.jitter_pct = 0.0;
        c.loss_rate = 0.0;
        c
    };
    let mut off_cfg = gpu_cfg.clone();
    off_cfg.cpu_offload_below_cells = Some(16 * 16 * 16);
    let gpu_run = simulate(&gpu_cfg);
    let off_run = simulate(&off_cfg);
    let mut crossover: Option<usize> = None;
    md.push_str("## Coarse-level CPU offload ablation\n\n");
    md.push_str(
        "| level | cells/rank | all-GPU s | offload s | where | faster |\n\
         |---|---|---|---|---|---|\n",
    );
    for (g, o) in gpu_run.levels.iter().zip(&off_run.levels) {
        let gt = g.compute_mean_s + g.exchange_mean_s;
        let ot = o.compute_mean_s + o.exchange_mean_s;
        let on_cpu = off_cfg.level_on_cpu(g.level);
        if on_cpu && ot < gt && crossover.is_none() {
            crossover = Some(g.level);
        }
        md.push_str(&format!(
            "| {} | {} | {:.6} | {:.6} | {} | {} |\n",
            g.level,
            g.cells_per_rank,
            gt,
            ot,
            if on_cpu { "host" } else { "device" },
            if ot < gt { "offload" } else { "all-GPU" },
        ));
    }
    md.push_str(&match crossover {
        Some(l) => format!(
            "\nOffload wins from level {l} down: kernel-launch overhead \
             dominates device time at coarse extents, and the host comm \
             path skips staging.\n\n"
        ),
        None => "\nOffload never wins at this scale/config.\n\n".to_string(),
    });

    // ---- verdict --------------------------------------------------------
    let ok = fit_ok && classified_ok && clean_ok && inject_ok;
    md.push_str(&format!(
        "## Verdict\n\n\
         | gate | value | bar | result |\n|---|---|---|---|\n\
         | model fit rel RMS | {} | ≤ {} | {} |\n\
         | classified waits @ {} ranks | {} | ≥ {} | {} |\n\
         | clean run flags | {:?} | empty | {} |\n\
         | injected run flags | {:?} | [{}] | {} |\n\n**{}**\n",
        pct(fit.rel_rms_err),
        pct(MAX_FIT_ERR),
        if fit_ok { "PASS" } else { "FAIL" },
        opts.ranks,
        pct(classified),
        pct(MIN_CLASSIFIED),
        if classified_ok { "PASS" } else { "FAIL" },
        clean_flagged,
        if clean_ok { "PASS" } else { "FAIL" },
        hot_flagged,
        inj_level,
        if inject_ok { "PASS" } else { "FAIL" },
        if ok {
            "SCALING GATES PASS"
        } else {
            "SCALING GATES FAIL"
        },
    ));
    let md_path = crate::report::save_raw("scaling_report.md", &md);
    println!("{md}");
    println!("[report: {md_path:?}]");

    // JSON summary (stub-safe: flat objects composed via intermediates).
    let weak_rows: Vec<Value> = weak
        .iter()
        .enumerate()
        .map(|(i, r)| {
            json!({
                "ranks": r.ranks,
                "nodes": r.nodes,
                "per_vcycle_s": r.per_vcycle_seconds,
                "efficiency": r.weak_efficiency(&weak[0]),
                "model_per_vcycle_s": fit.predicted[i],
                "sim_events": r.sim_events,
            })
        })
        .collect();
    let strong_rows: Vec<Value> = strong
        .iter()
        .map(|r| {
            json!({
                "ranks": r.ranks,
                "cells_per_rank": r.levels[0].cells_per_rank,
                "per_vcycle_s": r.per_vcycle_seconds,
                "efficiency": r.strong_efficiency(&strong[0]),
            })
        })
        .collect();
    let wait_rows: Vec<Value> = attrs
        .iter()
        .map(|a| {
            json!({
                "ranks": a.ranks,
                "classified_fraction": a.waits.total.classified_fraction(),
                "total_wait_s": a.waits.total.total_ns() as f64 / 1e9,
                "message_edges": a.waits.edges.len(),
            })
        })
        .collect();
    let level_rows: Vec<Value> = headline
        .result
        .levels
        .iter()
        .map(|l| {
            json!({
                "level": l.level,
                "cells_per_rank": l.cells_per_rank,
                "compute_s": l.compute_mean_s,
                "predicted_s": l.compute_predicted_s,
                "exchange_s": l.exchange_mean_s,
            })
        })
        .collect();
    let fit_v = json!({
        "alpha_s": fit.alpha_s,
        "per_stage_s": fit.per_stage_s,
        "per_tree_level_s": fit.per_tree_level_s,
        "rel_rms_err": fit.rel_rms_err,
        "pass": fit_ok,
    });
    let gates = json!({
        "fit_ok": fit_ok,
        "classified_ok": classified_ok,
        "clean_ok": clean_ok,
        "inject_ok": inject_ok,
    });
    let window_v = json!({
        "lo": wlo,
        "hi": whi,
        "ranks_in_view": keep.len(),
        "trace_events": trace.events.len(),
        "message_edges": medges.len(),
        "path_coverage": path.coverage,
        "trace": trace_path.display().to_string(),
    });
    json!({
        "ok": ok,
        "system": format!("{:?}", opts.system),
        "ranks": opts.ranks,
        "classified_fraction": classified,
        "clean_flagged": clean_flagged,
        "injected_flagged": hot_flagged,
        "inject_level": inj_level,
        "inject_pct": inj_pct,
        "crossover_level": crossover.map(|l| l as i64).unwrap_or(-1),
        "fit": fit_v,
        "gates": gates,
        "weak": Value::Array(weak_rows),
        "strong": Value::Array(strong_rows),
        "waits": wait_rows,
        "levels": level_rows,
        "window": window_v,
        "report": md_path.display().to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Laptop-sized campaign options: headline 512 ranks exercises every
    /// stage (sweep, fit, attribution, window, ablation) in well under a
    /// second of simulated-event volume.
    fn tiny_opts() -> ScalingOpts {
        ScalingOpts {
            ranks: 512,
            ..ScalingOpts::default()
        }
    }

    #[test]
    fn campaign_passes_all_gates_at_small_scale() {
        let v = run(&tiny_opts());
        assert_eq!(v["ok"], true, "{v}");
        assert_eq!(v["gates"]["fit_ok"], true, "{v}");
        assert_eq!(v["gates"]["classified_ok"], true, "{v}");
        assert_eq!(v["gates"]["clean_ok"], true, "{v}");
        assert_eq!(v["gates"]["inject_ok"], true, "{v}");
        assert!(v["classified_fraction"].as_f64().unwrap() >= MIN_CLASSIFIED);
        // The weak sweep covers the ladder up to the headline.
        let weak = v["weak"].as_array().unwrap();
        assert!(weak.len() >= 3);
        assert_eq!(weak.last().unwrap()["ranks"].as_u64(), Some(512));
        // The report exists and carries the verdict.
        let md = std::fs::read_to_string(v["report"].as_str().unwrap()).unwrap();
        assert!(md.contains("SCALING GATES PASS"), "{md}");
        assert!(md.contains("## Rank-window forensics"));
        // The window trace parses as a Chrome trace with flow arrows.
        let text = std::fs::read_to_string(v["window"]["trace"].as_str().unwrap()).unwrap();
        let back = gmg_trace::Trace::from_chrome_str(&text).expect("window trace parses");
        assert!(!back.events.is_empty());
        assert!(text.contains("\"ph\":\"s\""), "flow arrows present");
    }

    #[test]
    fn wrong_level_injection_does_not_satisfy_the_gate() {
        // The polarity check must compare the flagged *set*, not just
        // non-emptiness: plant level 1 but expect level 3.
        let mut opts = tiny_opts();
        opts.inject = (1, 30.0);
        let v = run(&opts);
        assert_eq!(v["gates"]["inject_ok"], true);
        let flagged = v["injected_flagged"].as_array().unwrap();
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].as_u64(), Some(1));
    }
}
