//! Crash postmortem: turn a flight-recorder dump into a diagnosis.
//!
//! The flight recorder (`gmg-flight`) rings are dumped automatically when
//! a world dies ([`gmg_comm::WorldFailure`]) or the solver's health
//! monitor trips. This module is the other half of that story: load the
//! dump, join the per-rank rings into one distributed timeline, and
//! answer the three questions an on-call engineer asks first:
//!
//! 1. **Who?** — the culprit rank: a rank that recorded an injected
//!    `fault:kill`, else the peer that cost everyone else the most
//!    late-sender wait time, else the rank whose ring went silent first.
//! 2. **Doing what?** — the culprit's last recorded operation.
//! 3. **Why was everyone waiting?** — every blocking receive classified
//!    (late-sender / late-receiver / ARQ-stall / starvation) per level,
//!    plus the true distributed critical path computed over exact
//!    cross-rank message edges rather than tag heuristics.
//!
//! Outputs land next to the dump: `postmortem.md` (human report) and
//! `postmortem_trace.json` (Perfetto timeline with cross-rank flow
//! arrows for every joined message).
//!
//! Run: `cargo run --release -p gmg-bench --bin postmortem -- --seed N`
//! (seeded kill-rank chaos solve, then self-analysis), or
//! `-- --dump DIR` to analyze an existing dump.

use gmg_comm::fault::{FaultConfig, FaultPlan};
use gmg_flight::{analyze, load_dump, DumpBundle, EventKind, RankLog, WaitAnalysis, WaitClass};
use gmg_metrics::analysis::{critical_path_with_edges, CriticalPath};
use gmg_trace::{intern, Counters, FlowArrow, Trace, TraceEvent, Track, LEVEL_NONE};
use serde_json::{json, Value};
use std::path::Path;
use std::time::Duration;

/// The last operation a rank's ring recorded.
fn last_op(logs: &[RankLog], rank: usize) -> String {
    logs.iter()
        .find(|l| l.rank == rank)
        .and_then(|l| l.events.last())
        .map(|e| format!("{} ({})", e.op, e.kind.name()))
        .unwrap_or_else(|| "(empty ring)".to_string())
}

/// The culprit rank and what it was last seen doing.
fn culprit(logs: &[RankLog], waits: &WaitAnalysis) -> (usize, String) {
    let last_op = |rank: usize| last_op(logs, rank);
    // An injected kill is definitive.
    if let Some(&r) = WaitAnalysis::killed_ranks(logs).first() {
        return (r, last_op(r));
    }
    // Else: the peer everyone else spent the most late-sender time on.
    let mut blame: std::collections::BTreeMap<usize, u64> = Default::default();
    for s in &waits.samples {
        if s.class == WaitClass::LateSender {
            *blame.entry(s.peer).or_default() += s.dur_ns;
        }
    }
    if let Some((&r, _)) = blame.iter().max_by_key(|&(_, &ns)| ns) {
        return (r, last_op(r));
    }
    // Else: whoever stopped recording first went silent first.
    let r = logs
        .iter()
        .min_by_key(|l| l.events.last().map(|e| e.end_ns()).unwrap_or(0))
        .map(|l| l.rank)
        .unwrap_or(0);
    (r, last_op(r))
}

/// Reconstruct a merged distributed [`Trace`] from the dumped rings, so
/// the generic analysis/exporter stack can consume flight data. Shared
/// with the scaling observatory, which rebuilds its simulated rank
/// window the same way.
pub(crate) fn rebuild_trace(logs: &[RankLog]) -> Trace {
    let mut events = Vec::new();
    for log in logs {
        for ev in &log.events {
            let level = if ev.level == gmg_flight::NO_LEVEL {
                LEVEL_NONE
            } else {
                ev.level as usize
            };
            let peer = (ev.peer != gmg_flight::NO_PEER).then_some(ev.peer as usize);
            let tag = (ev.tag != gmg_flight::NO_TAG).then_some(ev.tag);
            let (op, track, counters) = match ev.kind {
                EventKind::Compute => (
                    ev.op,
                    Track::Compute,
                    Counters {
                        stencil_points: ev.bytes,
                        ..Default::default()
                    },
                ),
                EventKind::Send => (
                    "send",
                    Track::Comm,
                    Counters {
                        messages: 1,
                        message_bytes: ev.bytes,
                        ..Default::default()
                    },
                ),
                EventKind::RecvWait => (ev.op, Track::Comm, Counters::default()),
                EventKind::MsgArrive => (
                    "arrive",
                    Track::Comm,
                    Counters {
                        message_bytes: ev.bytes,
                        ..Default::default()
                    },
                ),
                EventKind::Arq | EventKind::Control => (ev.op, Track::Fault, Counters::default()),
            };
            events.push(TraceEvent {
                rank: log.rank,
                level,
                op: intern(op),
                track,
                ts_ns: ev.ts_ns,
                dur_ns: ev.dur_ns,
                counters,
                peer,
                tag,
            });
        }
    }
    events.sort_by_key(|e| (e.ts_ns, e.dur_ns));
    Trace { events }
}

/// Exact happens-before edges in the two downstream vocabularies.
pub(crate) fn exact_edges(waits: &WaitAnalysis) -> (Vec<gmg_metrics::MessageEdge>, Vec<FlowArrow>) {
    let metric = waits
        .edges
        .iter()
        .map(|e| gmg_metrics::MessageEdge {
            src: e.src,
            // Flight sends are instants: end == ts.
            send_end_ns: e.send_ts_ns,
            dst: e.dst,
            recv_end_ns: e.recv_end_ns,
        })
        .collect();
    let flows = waits
        .edges
        .iter()
        .map(|e| FlowArrow {
            src_rank: e.src,
            src_ts_ns: e.send_ts_ns,
            dst_rank: e.dst,
            dst_ts_ns: e.recv_end_ns,
            id: e.msg_seq,
        })
        .collect();
    (metric, flows)
}

fn render_report(
    dir: &Path,
    bundle: &DumpBundle,
    waits: &WaitAnalysis,
    culprit_rank: usize,
    culprit_op: &str,
    cause: Option<&str>,
    path: &CriticalPath,
) -> String {
    let mut md = String::new();
    md.push_str(&format!(
        "# Postmortem — {} ({})\n\n",
        bundle.reason, bundle.detail
    ));
    md.push_str(&format!(
        "dump: `{}`, {} ranks\n\n",
        dir.display(),
        bundle.nranks
    ));
    let killed = WaitAnalysis::killed_ranks(&bundle.logs);
    md.push_str(&format!(
        "**Culprit: rank {culprit_rank}**, last seen in `{culprit_op}`"
    ));
    if killed.contains(&culprit_rank) {
        md.push_str(" — recorded an injected kill");
    }
    if let Some(cause) = cause {
        md.push_str(&format!(" — {cause}"));
    }
    md.push_str(".\n\n");
    for log in &bundle.logs {
        if log.lost > 0 {
            md.push_str(&format!(
                "note: rank {} lost {} events to writer contention\n\n",
                log.rank, log.lost
            ));
        }
    }
    md.push_str("## Wait-state attribution\n\n");
    md.push_str(&waits.render_table());
    md.push_str(&format!(
        "\nclassified fraction: {:.1}% of {:.3} ms total wait\n",
        100.0 * waits.total.classified_fraction(),
        waits.total.total_ns() as f64 / 1e6,
    ));
    md.push_str("\n## Distributed critical path (exact message edges)\n\n");
    md.push_str("| op | seconds |\n|---|---|\n");
    for (op, secs) in path.op_totals.iter().take(12) {
        md.push_str(&format!("| {op} | {secs:.6} |\n"));
    }
    md.push_str(&format!(
        "\npath coverage: {:.1}% · message edges: {} · timeline: `postmortem_trace.json`\n",
        100.0 * path.coverage,
        waits.edges.len(),
    ));
    md
}

/// Analyze a dump directory in place: classify waits, name the culprit,
/// write `postmortem.md` + `postmortem_trace.json` beside the ring data.
pub fn analyze_dump(dir: &Path) -> Value {
    analyze_dump_with(dir, None)
}

/// Like [`analyze_dump`], but with an authoritative culprit the caller
/// already knows (e.g. the membership controller SIGKILLed that rank
/// itself): the rank overrides the wait-state heuristics and `cause` is
/// quoted verbatim on the report's Culprit line.
pub fn analyze_dump_with(dir: &Path, known: Option<(usize, &str)>) -> Value {
    let bundle = match load_dump(dir) {
        Ok(b) => b,
        Err(e) => return json!({ "ok": false, "error": format!("load {}: {e}", dir.display()) }),
    };
    let waits = analyze(&bundle.logs);
    let (culprit_rank, culprit_op, cause) = match known {
        Some((r, cause)) => (r, last_op(&bundle.logs, r), Some(cause)),
        None => {
            let (r, op) = culprit(&bundle.logs, &waits);
            (r, op, None)
        }
    };
    let (medges, flows) = exact_edges(&waits);
    let trace = rebuild_trace(&bundle.logs);
    let path = critical_path_with_edges(&trace, &medges);
    let md = render_report(
        dir,
        &bundle,
        &waits,
        culprit_rank,
        &culprit_op,
        cause,
        &path,
    );
    let report_path = dir.join("postmortem.md");
    let trace_path = dir.join("postmortem_trace.json");
    let wrote = std::fs::write(&report_path, &md)
        .and_then(|_| std::fs::write(&trace_path, trace.to_chrome_string_with_flows(&flows)));
    println!("{md}");
    let killed = WaitAnalysis::killed_ranks(&bundle.logs);
    json!({
        "ok": wrote.is_ok(),
        "reason": bundle.reason,
        "detail": bundle.detail,
        "nranks": bundle.nranks,
        "culprit_rank": culprit_rank,
        "culprit_op": culprit_op,
        "killed_ranks": killed,
        "classified_fraction": waits.total.classified_fraction(),
        "total_wait_ms": waits.total.total_ns() as f64 / 1e6,
        "message_edges": waits.edges.len(),
        "path_coverage": path.coverage,
        "report": report_path.display().to_string(),
        "trace": trace_path.display().to_string(),
    })
}

/// Seeded black-box exercise: kill one rank mid-solve with the flight
/// recorder on, then load the automatic dump and verify the postmortem
/// blames the right rank with ≥ 90 % of wait time classified.
pub fn run_seeded(seed: u64) -> Value {
    crate::report::heading(&format!(
        "Postmortem — seeded kill + dump analysis (seed {seed})"
    ));
    let was_on = gmg_flight::set_enabled(true);
    let victim = (seed % 8) as usize;
    let at_op = 40 + seed % 29;
    let mut plan = FaultPlan::new(FaultConfig::kill_rank(victim, at_op), seed);
    plan.retry.op_timeout = Duration::from_millis(500);
    plan.retry.max_attempts = 6;
    let outcome = crate::chaos::faulted_solve(&plan, crate::chaos::chaos_solver_config());
    gmg_flight::set_enabled(was_on);
    let failure = match outcome {
        Ok(_) => {
            return json!({ "ok": false, "seed": seed, "victim": victim,
                           "error": "world unexpectedly survived the kill" })
        }
        Err(f) => f,
    };
    let Some(dump_dir) = failure.flight_dump.clone() else {
        return json!({ "ok": false, "seed": seed, "victim": victim,
                       "error": "world failed but left no flight dump" });
    };
    println!("world failed as planned; dump at {}\n", dump_dir.display());
    let pm = analyze_dump(&dump_dir);
    let named = pm["culprit_rank"].as_u64() == Some(victim as u64);
    let classified = pm["classified_fraction"].as_f64().unwrap_or(0.0);
    let ok = pm["ok"] == true && named && classified >= 0.9;
    println!(
        "postmortem verdict: culprit named={named} (rank {victim}), \
         classified {:.1}% → {}",
        100.0 * classified,
        if ok { "OK" } else { "NOT OK" }
    );
    json!({
        "ok": ok,
        "seed": seed,
        "victim": victim,
        "at_op": at_op,
        "dump_dir": dump_dir.display().to_string(),
        "culprit_named": named,
        "postmortem": pm,
    })
}

/// Default seeded run (seed 5).
pub fn run() -> Value {
    run_seeded(5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The flight enable switch is process-global; serialize the tests
    /// that toggle it.
    fn lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The acceptance criterion end to end: a seeded killed-rank solve
    /// must leave a dump whose postmortem names the victim and classifies
    /// at least 90 % of all comm wait time.
    #[test]
    fn postmortem_names_killed_rank_and_classifies_waits() {
        let _l = lock();
        let v = run_seeded(5);
        assert_eq!(v["ok"], true, "{v}");
        assert_eq!(v["culprit_named"], true, "{v}");
        let pm = &v["postmortem"];
        assert_eq!(pm["culprit_rank"], v["victim"], "{v}");
        assert!(pm["classified_fraction"].as_f64().unwrap() >= 0.9, "{v}");
        // The rendered artifacts exist inside the dump directory.
        let dir = std::path::PathBuf::from(v["dump_dir"].as_str().unwrap());
        assert!(dir.join("postmortem.md").is_file());
        assert!(dir.join("postmortem_trace.json").is_file());
        // The markdown names the culprit rank explicitly.
        let md = std::fs::read_to_string(dir.join("postmortem.md")).unwrap();
        assert!(
            md.contains(&format!("Culprit: rank {}", v["victim"])),
            "{md}"
        );
        // The timeline parses as a valid Chrome trace (flows skipped).
        let text = std::fs::read_to_string(dir.join("postmortem_trace.json")).unwrap();
        let back = Trace::from_chrome_str(&text).expect("timeline parses");
        assert!(!back.events.is_empty());
        assert!(text.contains("\"ph\":\"s\""), "flow arrows present");
    }

    /// Flight recording must never perturb the numerics: the same solve
    /// with the recorder on and off yields bit-identical residuals.
    #[test]
    fn recorder_on_off_residual_histories_are_bit_identical() {
        let _l = lock();
        let cfg = crate::chaos::chaos_solver_config();
        let was_on = gmg_flight::set_enabled(false);
        let off = crate::chaos::baseline_solve(cfg);
        gmg_flight::set_enabled(true);
        let on = crate::chaos::baseline_solve(cfg);
        gmg_flight::set_enabled(was_on);
        for (a, b) in off.iter().zip(&on) {
            assert_eq!(a.residual_history, b.residual_history);
            assert_eq!(a.converged, b.converged);
            assert_eq!(a.vcycles, b.vcycles);
        }
    }

    /// A dump that does not exist reports a structured error.
    #[test]
    fn analyzing_a_missing_dump_is_a_clean_error() {
        let v = analyze_dump(Path::new("/nonexistent/flightdump_0"));
        assert_eq!(v["ok"], false);
        assert!(v["error"].as_str().unwrap().contains("load"));
    }
}
