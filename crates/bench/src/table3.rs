//! Table III: performance portability Φ based on fraction of the roofline.

use gmg_machine::portability::{EfficiencyBasis, PortabilityTable};
use serde_json::{json, Value};

/// The computed table.
pub fn table() -> PortabilityTable {
    PortabilityTable::from_models(EfficiencyBasis::Roofline)
}

/// Shared pretty-printer for Tables III and V.
pub fn print_table(t: &PortabilityTable, paper_overall: f64) -> Value {
    println!(
        "{:<26} {:>10} {:>12} {:>10} {:>8}",
        "Operation", "A100/CUDA", "GCD/HIP", "PVC/SYCL", "per-op"
    );
    for row in &t.rows {
        println!(
            "{:<26} {:>9.0}% {:>11.0}% {:>9.0}% {:>7.0}%",
            row.op.name(),
            row.efficiency[0] * 100.0,
            row.efficiency[1] * 100.0,
            row.efficiency[2] * 100.0,
            row.per_op_phi * 100.0
        );
    }
    println!(
        "\noverall Φ (harmonic mean): {:.1}%   (paper: {:.0}%)",
        t.overall_phi * 100.0,
        paper_overall * 100.0
    );
    json!({
        "rows": t.rows.iter().map(|r| json!({
            "op": r.op.name(),
            "efficiency": r.efficiency,
            "per_op_phi": r.per_op_phi,
        })).collect::<Vec<_>>(),
        "overall_phi": t.overall_phi,
        "paper_overall_phi": paper_overall,
    })
}

/// Run the harness.
pub fn run() -> Value {
    crate::report::heading("Table III — performance portability Φ (fraction of roofline)");
    print_table(&table(), 0.73)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overall_phi_is_73_percent() {
        let t = table();
        assert!((t.overall_phi - 0.73).abs() < 0.02, "{}", t.overall_phi);
    }
}
