//! Figure 3: total execution time per multigrid level on all three systems.
//!
//! Configuration from the paper's Section VI: 8 nodes, one rank (one A100 /
//! GCD / PVC tile) per node, 512³ elements per rank (1024³ total), 6-level
//! V-cycle, 12 smooths per level, 100 bottom smooths, 12 V-cycles to
//! convergence, communication-avoiding enabled, all optimizations on.

use gmg_core::schedule::{simulate, ScheduleConfig, SimResult};
use gmg_machine::gpu::System;
use serde_json::{json, Value};

/// Simulated runs for all three systems.
pub fn simulate_all() -> Vec<SimResult> {
    System::ALL
        .iter()
        .map(|&sys| simulate(&ScheduleConfig::paper_section6(sys)))
        .collect()
}

/// Run the harness: print the per-level series and return them as JSON.
pub fn run() -> Value {
    crate::report::heading("Figure 3 — total execution time per level (8 nodes, 512^3/rank)");
    let results = simulate_all();
    println!(
        "{:<7} {:>14} {:>14} {:>14}",
        "level", "Perlmutter", "Frontier", "Sunspot"
    );
    let nlevels = results[0].levels.len();
    for li in 0..nlevels {
        print!("{li:<7}");
        for r in &results {
            print!(
                " {:>14}",
                crate::report::fmt_time(r.levels[li].total_seconds)
            );
        }
        println!();
    }
    println!("\nper-level scaling ratios (level l / level l+1; paper: ~4x, comm-bound):");
    for r in &results {
        let ratios: Vec<String> = (0..nlevels - 1)
            .map(|l| {
                format!(
                    "{:.1}",
                    r.levels[l].total_seconds / r.levels[l + 1].total_seconds
                )
            })
            .collect();
        println!("  {:<12} {}", format!("{:?}", r.system), ratios.join("  "));
    }
    json!({
        "config": "8 nodes x 1 rank, 512^3/rank, 6 levels, 12 smooths, 100 bottom, 12 V-cycles",
        "systems": results.iter().map(|r| json!({
            "system": format!("{:?}", r.system),
            "level_seconds": r.levels.iter().map(|l| l.total_seconds).collect::<Vec<_>>(),
            "level_exchanges": r.levels.iter().map(|l| l.exchanges).collect::<Vec<_>>(),
            "total_seconds": r.total_seconds,
        })).collect::<Vec<_>>(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_decrease_with_flattening_tail() {
        for r in simulate_all() {
            let t: Vec<f64> = r.levels.iter().map(|l| l.total_seconds).collect();
            // Fine levels decrease steeply; the coarsest level is inflated
            // by the 100-smooth bottom solve (paper: "significant increase
            // in wall clock time").
            assert!(t[0] > t[1] && t[1] > t[2], "{:?}: {t:?}", r.system);
            assert!(
                t[5] > 0.05 * t[4],
                "{:?}: bottom solve should be visible: {t:?}",
                r.system
            );
        }
    }

    #[test]
    fn sunspot_slowest_at_coarse_levels() {
        // Paper: Perlmutter and Frontier get faster at the coarsest levels
        // compared to Sunspot (CXI setting + GPU-aware MPI).
        let rs = simulate_all();
        let coarse = |r: &SimResult| r.levels[4].total_seconds + r.levels[5].total_seconds;
        assert!(coarse(&rs[2]) > coarse(&rs[0]));
        assert!(coarse(&rs[2]) > coarse(&rs[1]));
    }
}
