//! Figure 9: strong scaling — fixed total domain (1024³ on Perlmutter,
//! 2×1024³ on Frontier, 3×1024³ on Sunspot), full nodes, growing rank
//! counts; efficiency nose-dives as per-rank levels go latency-bound.

use gmg_core::schedule::{simulate, ScheduleConfig, SimResult};
use gmg_machine::gpu::System;
use gmg_mesh::Point3;
use serde_json::{json, Value};

/// Fixed global domain per system (the paper's Section VIII sizes).
pub fn domain(system: System) -> Point3 {
    match system {
        System::Perlmutter => Point3::new(1024, 1024, 1024),
        System::Frontier => Point3::new(2048, 1024, 1024),
        System::Sunspot => Point3::new(3072, 1024, 1024),
    }
}

/// Greedy process-grid factorization that respects the domain's axis
/// extents: repeatedly assign the smallest prime factor of the remaining
/// rank count to the axis with the largest per-rank extent it divides.
pub fn grid_for(domain: Point3, ranks: usize) -> Point3 {
    let mut grid = Point3::splat(1);
    let mut per = domain;
    let mut rem = ranks;
    let mut p = 2;
    while rem > 1 {
        while !rem.is_multiple_of(p) {
            p += 1;
        }
        // Pick the divisible axis with the largest current extent.
        let axis = (0..3)
            .filter(|&a| per[a] % (p as i64) == 0)
            .max_by_key(|&a| per[a])
            .unwrap_or_else(|| panic!("{ranks} ranks do not divide {domain:?}"));
        grid[axis] *= p as i64;
        per[axis] /= p as i64;
        rem /= p;
    }
    grid
}

/// One system's strong-scaling curve.
pub struct StrongCurve {
    pub system: System,
    /// `(nodes, ranks, per-rank extent, GStencil/s, efficiency)`.
    pub points: Vec<(usize, usize, Point3, f64, f64)>,
}

fn config(system: System, nodes: usize) -> ScheduleConfig {
    let dom = domain(system);
    let ranks = nodes * system.ranks_per_node();
    let grid = grid_for(dom, ranks);
    let per = Point3::new(dom.x / grid.x, dom.y / grid.y, dom.z / grid.z);
    let mut c = ScheduleConfig::paper_section6(system);
    c.nodes = nodes;
    c.ranks_per_node = system.ranks_per_node();
    c.sub_extent = per;
    // Keep a 6-deep hierarchy while the per-rank extent supports it.
    let min_axis = per.x.min(per.y).min(per.z);
    c.num_levels = 6.min((min_axis as f64).log2() as usize);
    c
}

/// Build one system's curve.
pub fn curve(system: System) -> StrongCurve {
    let sweep: Vec<usize> = match system {
        System::Sunspot => vec![1, 2, 4, 8, 16],
        _ => vec![2, 4, 8, 16, 32, 64, 128],
    };
    let runs: Vec<(usize, ScheduleConfig, SimResult)> = sweep
        .iter()
        .map(|&n| {
            let cfg = config(system, n);
            let r = simulate(&cfg);
            (n, cfg, r)
        })
        .collect();
    let base = &runs[0].2;
    let points = runs
        .iter()
        .map(|(n, cfg, r)| {
            (
                *n,
                r.nranks,
                cfg.sub_extent,
                r.gstencil_per_s,
                r.strong_efficiency(base),
            )
        })
        .collect();
    StrongCurve { system, points }
}

/// Run the harness.
pub fn run() -> Value {
    crate::report::heading("Figure 9 — strong scaling (fixed total domain, full nodes)");
    let mut out = Vec::new();
    for sys in System::ALL {
        let c = curve(sys);
        println!("\n{:?} (domain {}):", sys, domain(sys));
        println!(
            "{:>7} {:>7} {:>16} {:>14} {:>11}",
            "nodes", "ranks", "per-rank", "GStencil/s", "efficiency"
        );
        for (nodes, ranks, per, gs, eff) in &c.points {
            println!(
                "{nodes:>7} {ranks:>7} {:>16} {gs:>14.2} {:>10.1}%",
                format!("{}x{}x{}", per.x, per.y, per.z),
                eff * 100.0
            );
        }
        out.push(json!({
            "system": format!("{:?}", sys),
            "domain": [domain(sys).x, domain(sys).y, domain(sys).z],
            "nodes": c.points.iter().map(|p| p.0).collect::<Vec<_>>(),
            "ranks": c.points.iter().map(|p| p.1).collect::<Vec<_>>(),
            "gstencil_per_s": c.points.iter().map(|p| p.3).collect::<Vec<_>>(),
            "efficiency": c.points.iter().map(|p| p.4).collect::<Vec<_>>(),
        }));
    }
    json!({ "curves": out })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_factorization_respects_domain() {
        let d = Point3::new(3072, 1024, 1024);
        for ranks in [12, 24, 48, 96, 192] {
            let g = grid_for(d, ranks);
            assert_eq!(g.product(), ranks as i64);
            for a in 0..3 {
                assert_eq!(d[a] % g[a], 0, "ranks {ranks}: {g:?}");
            }
        }
        assert_eq!(grid_for(Point3::splat(1024), 8), Point3::splat(2));
    }

    #[test]
    fn throughput_grows_sublinearly() {
        for sys in System::ALL {
            let c = curve(sys);
            // Throughput still increases with ranks...
            for w in c.points.windows(2) {
                assert!(w[1].3 > w[0].3 * 0.95, "{sys:?}");
            }
            // ...but the largest job is far from linear speedup.
            let last = c.points.last().unwrap();
            assert!(
                last.4 < 0.75,
                "{sys:?}: strong efficiency {:.2} should nose-dive",
                last.4
            );
        }
    }

    #[test]
    fn efficiency_monotonically_degrades() {
        for sys in [System::Perlmutter, System::Frontier] {
            let c = curve(sys);
            for w in c.points.windows(2) {
                assert!(
                    w[1].4 <= w[0].4 + 0.02,
                    "{sys:?}: efficiency should not recover: {:?}",
                    c.points.iter().map(|p| p.4).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn frontier_about_double_perlmutter_throughput() {
        // Paper: "performance throughput on Frontier is close to double
        // that of Perlmutter" (double the problem, double the GCDs).
        let p = curve(System::Perlmutter);
        let f = curve(System::Frontier);
        for (pp, fp) in p.points.iter().zip(&f.points) {
            let ratio = fp.3 / pp.3;
            assert!((1.3..2.6).contains(&ratio), "nodes {}: {ratio:.2}", pp.0);
        }
    }
}
