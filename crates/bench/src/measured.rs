//! Measured (real hardware) companion to Figure 5: run the actual bricked
//! and conventional 7-point kernels on this host across the V-cycle level
//! sizes, fit the latency-throughput model to the measurements, and report
//! empirical α, β and R² — demonstrating the paper's methodology end to
//! end on hardware we really have.

use gmg_brick::{BrickLayout, BrickOrdering, BrickedField};
use gmg_machine::model::LatencyThroughput;
use gmg_mesh::{Array3, Box3, Point3};
use gmg_stencil::exec_array::apply_star7_array;
use gmg_stencil::exec_brick::apply_star7_bricked;
use serde_json::{json, Value};
use std::sync::Arc;
use std::time::Instant;

/// One measured sweep: layout name, per-size `(points, seconds)` samples,
/// and the fitted model.
pub struct MeasuredSweep {
    pub layout: &'static str,
    pub samples: Vec<(usize, f64)>,
    pub fit: LatencyThroughput,
    pub r_squared: f64,
}

fn time_best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Sweep the bricked kernel over cubic sizes.
pub fn sweep_bricked(sizes: &[i64], brick_dim: i64) -> MeasuredSweep {
    let mut samples = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let bd = brick_dim.min(n);
        let layout = Arc::new(BrickLayout::new(
            Box3::cube(n),
            bd,
            1,
            BrickOrdering::SurfaceMajor,
        ));
        let src = BrickedField::from_fn(layout.clone(), |p| (p.x + p.y + p.z) as f64 * 1e-3);
        let mut dst = BrickedField::new(layout);
        let t = time_best_of(5, || {
            apply_star7_bricked(&mut dst, &src, -6.0, 1.0, Box3::cube(n));
        });
        samples.push(((n * n * n) as usize, t));
    }
    finish("bricked", samples)
}

/// Sweep the conventional-array kernel over cubic sizes.
pub fn sweep_array(sizes: &[i64]) -> MeasuredSweep {
    let mut samples = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let v = Box3::cube(n);
        let src = Array3::from_fn(v, 1, |p: Point3| (p.x + p.y + p.z) as f64 * 1e-3);
        let mut dst = Array3::new(v, 1);
        let t = time_best_of(5, || {
            apply_star7_array(&mut dst, &src, -6.0, 1.0, v);
        });
        samples.push(((n * n * n) as usize, t));
    }
    finish("array", samples)
}

fn finish(layout: &'static str, samples: Vec<(usize, f64)>) -> MeasuredSweep {
    let ts: Vec<(f64, f64)> = samples.iter().map(|&(p, t)| (p as f64, t)).collect();
    let fit = LatencyThroughput::fit_time(&ts);
    let r_squared = fit.r_squared(&ts);
    MeasuredSweep {
        layout,
        samples,
        fit,
        r_squared,
    }
}

/// Run the measured harness (small sizes so it stays quick).
pub fn run() -> Value {
    crate::report::heading("Measured — real applyOp on this host, Figure 5 methodology");
    let sizes = [16i64, 24, 32, 48, 64, 96];
    let sweeps = [sweep_bricked(&sizes, 8), sweep_array(&sizes)];
    println!(
        "{:<9} {:>11} {:>11} {:>11}  {:>11} {:>12} {:>7}",
        "layout", "16^3", "32^3", "96^3", "fit alpha", "fit beta", "R^2"
    );
    let mut out = Vec::new();
    for s in &sweeps {
        let pick = |n: i64| {
            s.samples
                .iter()
                .find(|(p, _)| *p == (n * n * n) as usize)
                .map(|(p, t)| *p as f64 / t / 1e9)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{:<9} {:>10.3}G {:>10.3}G {:>10.3}G  {:>9.1} µs {:>7.3} G/s {:>7.3}",
            s.layout,
            pick(16),
            pick(32),
            pick(96),
            s.fit.alpha_s * 1e6,
            s.fit.beta / 1e9,
            s.r_squared
        );
        out.push(json!({
            "layout": s.layout,
            "points": s.samples.iter().map(|(p, _)| p).collect::<Vec<_>>(),
            "seconds": s.samples.iter().map(|(_, t)| t).collect::<Vec<_>>(),
            "fit_alpha_us": s.fit.alpha_s * 1e6,
            "fit_beta_gstencil_per_s": s.fit.beta / 1e9,
            "r_squared": s.r_squared,
        }));
    }
    println!(
        "\n(GStencil/s per size; α and β are least-squares fits of t = α + points/β,\n\
         the same extraction the paper applies to its GPU measurements.)"
    );
    json!({ "sweeps": out })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_sweep_fits_reasonably() {
        // Tiny sweep; the linear model should describe real kernels well.
        let s = sweep_bricked(&[8, 16, 24, 32], 8);
        assert_eq!(s.samples.len(), 4);
        for w in s.samples.windows(2) {
            assert!(w[1].0 > w[0].0);
            assert!(w[1].1 > 0.0);
        }
        assert!(s.fit.beta > 0.0);
        assert!(
            s.r_squared > 0.8,
            "linear model should fit real kernels: R² = {}",
            s.r_squared
        );
    }

    #[test]
    fn array_sweep_runs() {
        let s = sweep_array(&[8, 16, 24]);
        assert_eq!(s.samples.len(), 3);
        assert!(s.fit.beta > 1e5); // > 0.1 MStencil/s on any machine
    }
}
