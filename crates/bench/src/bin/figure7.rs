//! Regenerate the paper's figure7. Run: `cargo run --release -p gmg-bench --bin figure7`.
fn main() {
    let v = gmg_bench::figure7::run();
    gmg_bench::report::save("figure7", &v);
}
