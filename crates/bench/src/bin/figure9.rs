//! Regenerate the paper's figure9. Run: `cargo run --release -p gmg-bench --bin figure9`.
fn main() {
    let v = gmg_bench::figure9::run();
    gmg_bench::report::save("figure9", &v);
}
