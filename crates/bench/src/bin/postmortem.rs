//! Flight-recorder crash postmortem.
//! `--seed N` (default 5): run a seeded killed-rank chaos solve, capture
//! the automatic flight dump, and self-analyze it — the CI acceptance
//! path. `--dump DIR`: analyze an existing dump directory in place.
//! Both modes write `postmortem.md` + `postmortem_trace.json` beside the
//! ring data and exit non-zero unless the analysis succeeds.
fn main() {
    let mut seed = 5u64;
    let mut dump: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed needs an unsigned integer");
                    std::process::exit(2);
                }
            },
            "--dump" => match args.next() {
                Some(d) => dump = Some(d.into()),
                None => {
                    eprintln!("--dump needs a directory");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: postmortem [--seed N | --dump DIR]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    let v = gmg_bench::profile::with_env_hooks(|| match dump {
        Some(dir) => gmg_bench::postmortem::analyze_dump(&dir),
        None => gmg_bench::postmortem::run_seeded(seed),
    });
    gmg_bench::report::save("postmortem", &v);
    if v["ok"] != serde_json::Value::Bool(true) {
        std::process::exit(1);
    }
}
