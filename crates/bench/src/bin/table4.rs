//! Regenerate the paper's table4. Run: `cargo run --release -p gmg-bench --bin table4`.
fn main() {
    let v = gmg_bench::table4::run();
    gmg_bench::report::save("table4", &v);
}
