//! Run the design-choice ablation studies. `cargo run --release -p gmg-bench --bin ablations`.
fn main() {
    let v = gmg_bench::ablations::run();
    gmg_bench::report::save("ablations", &v);
}
