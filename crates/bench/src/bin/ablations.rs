//! Run the design-choice ablation studies. `cargo run --release -p gmg-bench --bin ablations`.
//! Set `GMG_TRACE=<path>` to also capture a Perfetto trace of the run.
fn main() {
    let v = gmg_bench::profile::with_env_hooks(gmg_bench::ablations::run);
    gmg_bench::report::save("ablations", &v);
}
