//! Trace-analysis report: critical path, imbalance, roofline, diffing.
//!
//! ```text
//! cargo run --release -p gmg-bench --bin analyze               # traced 2-rank solve
//!   --trace <file>            analyze an existing Chrome trace JSON
//!   --diff <a> <b>            compare two traces or two bench/BENCH_<n>.json entries
//!   --inject-slowdown OP:PCT  scale one op's durations before analyzing
//!   --min-coverage <pct>      exit 2 below this critical-path coverage (default 95)
//!   --threshold <pct>         diff regression threshold (default 10)
//! ```

use gmg_bench::analyze::{run, AnalyzeOpts};

fn main() {
    let mut opts = AnalyzeOpts::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace" => {
                opts.trace_path = Some(args.next().expect("--trace needs a path").into());
            }
            "--diff" => {
                let a = args.next().expect("--diff needs two paths");
                let b = args.next().expect("--diff needs two paths");
                opts.diff = Some((a.into(), b.into()));
            }
            "--inject-slowdown" => {
                let spec = args.next().expect("--inject-slowdown needs OP:PCT");
                let (op, pct) = spec
                    .rsplit_once(':')
                    .expect("--inject-slowdown needs OP:PCT");
                let pct: f64 = pct.parse().expect("--inject-slowdown PCT must be numeric");
                opts.inject_slowdown = Some((op.to_string(), pct));
            }
            "--min-coverage" => {
                opts.min_coverage_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--min-coverage needs a number");
            }
            "--threshold" => {
                opts.threshold_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threshold needs a number");
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    // No with_env_trace here: GMG_TRACE is this harness's *export*
    // channel (the analyzed — possibly injection-scaled — trace); an
    // outer capture would overwrite it with a trace of the analyzer.
    std::process::exit(gmg_bench::profile::with_env_prof(|| {
        gmg_bench::profile::with_env_metrics(|| run(&opts))
    }));
}
