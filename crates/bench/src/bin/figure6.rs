//! Regenerate the paper's figure6. Run: `cargo run --release -p gmg-bench --bin figure6`.
//! Set `GMG_TRACE=<path>` to also capture a Perfetto trace of the run.
fn main() {
    let v = gmg_bench::profile::with_env_hooks(gmg_bench::figure6::run);
    gmg_bench::report::save("figure6", &v);
}
