//! Regenerate the paper's figure6. Run: `cargo run --release -p gmg-bench --bin figure6`.
fn main() {
    let v = gmg_bench::figure6::run();
    gmg_bench::report::save("figure6", &v);
}
