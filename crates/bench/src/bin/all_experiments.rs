//! Run every table/figure harness in sequence and persist all results.
//! Set `GMG_TRACE=<path>` to capture one Perfetto trace covering the
//! whole sweep.
type Harness = fn() -> serde_json::Value;

fn main() {
    let runs: Vec<(&str, Harness)> = vec![
        ("figure3", gmg_bench::figure3::run),
        ("figure4", gmg_bench::figure4::run),
        ("figure5", gmg_bench::figure5::run),
        ("figure6", gmg_bench::figure6::run),
        ("figure7", gmg_bench::figure7::run),
        ("figure8", gmg_bench::figure8::run),
        ("figure9", gmg_bench::figure9::run),
        ("table2", gmg_bench::table2::run),
        ("table3", gmg_bench::table3::run),
        ("table4", gmg_bench::table4::run),
        ("table5", gmg_bench::table5::run),
    ];
    gmg_bench::profile::with_env_hooks(|| {
        for (name, f) in runs {
            let v = f();
            gmg_bench::report::save(name, &v);
        }
    });
}
