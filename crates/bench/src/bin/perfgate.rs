//! Macro-benchmark + regression gate over the committed `bench/` trajectory.
//!
//! ```text
//! cargo run --release -p gmg-bench --bin perfgate              # record: append BENCH_<n+1>.json
//! cargo run --release -p gmg-bench --bin perfgate -- --check   # gate: exit 1 on regression
//!   --grid <n>               fine-grid cube side (default 128)
//!   --samples <k>            median-of-k samples per side (default 5)
//!   --inject-slowdown <pct>  slow every candidate kernel artificially
//!                            (proves the gate fails when perf regresses)
//! ```

use gmg_bench::gate::{run, GateOpts};
use gmg_bench::profile::with_env_hooks;

fn main() {
    let mut opts = GateOpts::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut num = |name: &str| -> f64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} needs a numeric argument"))
        };
        match a.as_str() {
            "--check" => opts.check_only = true,
            "--grid" => opts.grid = num("--grid") as i64,
            "--samples" => opts.samples = num("--samples") as usize,
            "--inject-slowdown" => opts.inject_slowdown_pct = num("--inject-slowdown"),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    std::process::exit(with_env_hooks(|| run(&opts)));
}
