//! Regenerate the paper's figure5. Run: `cargo run --release -p gmg-bench --bin figure5`.
//! Set `GMG_TRACE=<path>` to also capture a Perfetto trace of the run.
fn main() {
    let v = gmg_bench::profile::with_env_hooks(gmg_bench::figure5::run);
    gmg_bench::report::save("figure5", &v);
}
