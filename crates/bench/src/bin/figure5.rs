//! Regenerate the paper's figure5. Run: `cargo run --release -p gmg-bench --bin figure5`.
fn main() {
    let v = gmg_bench::figure5::run();
    gmg_bench::report::save("figure5", &v);
}
