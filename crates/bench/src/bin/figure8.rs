//! Regenerate the paper's figure8. Run: `cargo run --release -p gmg-bench --bin figure8`.
fn main() {
    let v = gmg_bench::figure8::run();
    gmg_bench::report::save("figure8", &v);
}
