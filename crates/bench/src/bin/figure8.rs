//! Regenerate the paper's figure8. Run: `cargo run --release -p gmg-bench --bin figure8`.
//! Set `GMG_TRACE=<path>` to also capture a Perfetto trace of the run.
fn main() {
    let v = gmg_bench::profile::with_env_hooks(gmg_bench::figure8::run);
    gmg_bench::report::save("figure8", &v);
}
