//! Scaling observatory: contention-modeled schedule simulation of the
//! V-cycle at up to 100k ranks, with flight-grade wait attribution and
//! gated weak/strong scaling reports.
//! Run: `cargo run --release -p gmg-bench --bin scaling`.
//! `--ranks N` sets the headline rank count (default 10648 = 22³);
//! `--system perlmutter|frontier` picks the machine model;
//! `--inject-slowdown LEVEL:PCT` sets the planted slowdown for the
//! positive-polarity attribution self-test (the clean negative control
//! always runs too); `--window A:B` picks the rank window for the
//! Perfetto/critical-path forensics. Exit code 1 unless every gate
//! (model fit ≤ 10% misfit, ≥ 90% classified waits, both injection
//! polarities) passes.
use gmg_bench::scaling::ScalingOpts;

fn parse_inject(s: &str) -> Option<(usize, f64)> {
    let (l, p) = s.split_once(':')?;
    Some((l.parse().ok()?, p.parse().ok()?))
}

fn parse_window(s: &str) -> Option<(usize, usize)> {
    let (a, b) = s.split_once(':')?;
    let (a, b) = (a.parse().ok()?, b.parse().ok()?);
    (a < b).then_some((a, b))
}

fn main() {
    let mut opts = ScalingOpts::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--ranks" => match args.next().and_then(|v| v.parse().ok()) {
                Some(r) if r >= 8 => opts.ranks = r,
                _ => {
                    eprintln!("--ranks needs an integer >= 8");
                    std::process::exit(2);
                }
            },
            "--system" => match args.next().as_deref() {
                Some("perlmutter") => opts.system = gmg_machine::gpu::System::Perlmutter,
                Some("frontier") => opts.system = gmg_machine::gpu::System::Frontier,
                _ => {
                    eprintln!("--system needs `perlmutter` or `frontier`");
                    std::process::exit(2);
                }
            },
            "--inject-slowdown" => match args.next().as_deref().and_then(parse_inject) {
                Some(inj) => opts.inject = inj,
                None => {
                    eprintln!("--inject-slowdown needs LEVEL:PCT (e.g. 2:30)");
                    std::process::exit(2);
                }
            },
            "--window" => match args.next().as_deref().and_then(parse_window) {
                Some(w) => opts.window = w,
                None => {
                    eprintln!("--window needs A:B with A < B (e.g. 0:8)");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: scaling [--ranks N] [--system perlmutter|frontier] \
                     [--inject-slowdown LEVEL:PCT] [--window A:B]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    let v = gmg_bench::profile::with_env_hooks(|| gmg_bench::scaling::run(&opts));
    gmg_bench::report::save("scaling", &v);
    if v["ok"] != serde_json::Value::Bool(true) {
        std::process::exit(1);
    }
}
