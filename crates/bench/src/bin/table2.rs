//! Regenerate the paper's table2. Run: `cargo run --release -p gmg-bench --bin table2`.
fn main() {
    let v = gmg_bench::table2::run();
    gmg_bench::report::save("table2", &v);
}
