//! Sampled kernel efficiency observatory.
//!
//! ```text
//! cargo run --release -p gmg-bench --bin flame
//!   --grid N                   fine-grid cube side (default 96)
//!   --seconds S                sampling time per kernel (default 0.6)
//!   --interval-us U            sampling interval in µs (default 200)
//!   --min-coverage F           required named sub-phase fraction (default 0.90)
//!   --inject-slowdown PHASE:PCT  attribution self-test: slow matching
//!                              phases and require them to dominate the diff
//! ```
//!
//! Writes `results/flame.folded` + `results/efficiency.md`; exits nonzero
//! when coverage, sampled-vs-traced consistency, or attribution fails.

use gmg_bench::flame::FlameOpts;

fn main() {
    let mut opts = FlameOpts::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--grid" => {
                opts.grid = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--grid needs an integer");
            }
            "--seconds" => {
                opts.seconds_per_kernel = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seconds needs a number");
            }
            "--interval-us" => {
                opts.interval_us = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--interval-us needs an integer");
            }
            "--min-coverage" => {
                opts.min_coverage = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--min-coverage needs a fraction");
            }
            "--inject-slowdown" => {
                let spec = args.next().expect("--inject-slowdown needs PHASE:PCT");
                let (phase, pct) = spec
                    .rsplit_once(':')
                    .expect("--inject-slowdown needs PHASE:PCT");
                let pct: f64 = pct.parse().expect("--inject-slowdown PCT must be numeric");
                opts.inject = Some((phase.to_string(), pct));
            }
            "--help" | "-h" => {
                println!(
                    "usage: flame [--grid N] [--seconds S] [--interval-us U] \
                     [--min-coverage F] [--inject-slowdown PHASE:PCT]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    std::process::exit(gmg_bench::profile::with_env_hooks(|| {
        gmg_bench::flame::run(&opts)
    }));
}
