//! Live telemetry demo: multi-process solve with per-rank gmg-live
//! shippers, a controller-embedded collector serving Prometheus text,
//! a mid-solve endpoint scrape, and exit-code-enforced alert polarity.
//! Run: `cargo run --release -p gmg-bench --bin live -- --seed N`.
//! `--inject-slowdown R` plants an observation-layer straggler that the
//! alert engine must name; `--kill-process R` SIGKILLs rank R mid-solve
//! and the silent-rank detector must catch it (with the endpoint
//! parseable before and after the rejoin epoch). The clean leg always
//! runs as the negative control and must raise zero alerts.
//! `--transport thread` runs the single-process local-shim campaign
//! instead. `GMG_LIVE=0` disables all shipping; `GMG_PROM_ADDR` pins
//! the endpoint address.
fn main() {
    // If this process was spawned as a rank of a multi-process world,
    // run that rank's entry and exit — never returns in a child.
    #[cfg(unix)]
    gmg_comm::process::run_child_if_spawned(|entry, mut ctx, args| match entry {
        "live" => gmg_bench::live::live_child(&mut ctx, args),
        other => panic!("unknown live process entry {other:?}"),
    });

    let mut seed = 7u64;
    let mut process_mode = cfg!(unix);
    let mut slow: Option<usize> = None;
    let mut kill: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed needs an unsigned integer");
                    std::process::exit(2);
                }
            },
            "--transport" => match args.next().as_deref() {
                Some("thread") => process_mode = false,
                Some("process") => process_mode = true,
                _ => {
                    eprintln!("--transport needs `thread` or `process`");
                    std::process::exit(2);
                }
            },
            "--inject-slowdown" => match args.next().and_then(|v| v.parse().ok()) {
                Some(r) => slow = Some(r),
                None => {
                    eprintln!("--inject-slowdown needs a rank number");
                    std::process::exit(2);
                }
            },
            "--kill-process" => match args.next().and_then(|v| v.parse().ok()) {
                Some(r) => kill = Some(r),
                None => {
                    eprintln!("--kill-process needs a rank number");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: live [--seed N] [--transport thread|process] \
                     [--inject-slowdown R] [--kill-process R]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    if (kill.is_some() || slow.is_some()) && !process_mode {
        eprintln!("--kill-process / --inject-slowdown require --transport process");
        std::process::exit(2);
    }
    let v = if process_mode {
        #[cfg(unix)]
        {
            gmg_bench::profile::with_env_hooks(|| {
                gmg_bench::live::run_process_campaign(seed, kill, slow)
            })
        }
        #[cfg(not(unix))]
        {
            eprintln!("--transport process needs a unix host");
            std::process::exit(2);
        }
    } else {
        gmg_bench::profile::with_env_hooks(|| gmg_bench::live::run_with_seed(seed))
    };
    gmg_bench::report::save("live", &v);
    if v["ok"] != serde_json::Value::Bool(true) {
        std::process::exit(1);
    }
}
