//! Regenerate the paper's figure3. Run: `cargo run --release -p gmg-bench --bin figure3`.
fn main() {
    let v = gmg_bench::figure3::run();
    gmg_bench::report::save("figure3", &v);
}
