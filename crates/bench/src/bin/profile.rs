//! Traced solve with Perfetto export and roofline check.
//! Run: `cargo run --release -p gmg-bench --bin profile`.
fn main() {
    // No with_env_trace here: this harness owns its trace capture.
    let v = gmg_bench::profile::with_env_prof(|| {
        gmg_bench::profile::with_env_metrics(gmg_bench::profile::run)
    });
    gmg_bench::report::save("profile", &v);
}
