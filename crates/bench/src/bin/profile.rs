//! Traced solve with Perfetto export and roofline check.
//! Run: `cargo run --release -p gmg-bench --bin profile`.
fn main() {
    let v = gmg_bench::profile::with_env_prof(gmg_bench::profile::run);
    gmg_bench::report::save("profile", &v);
}
