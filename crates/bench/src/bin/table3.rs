//! Regenerate the paper's table3. Run: `cargo run --release -p gmg-bench --bin table3`.
fn main() {
    let v = gmg_bench::table3::run();
    gmg_bench::report::save("table3", &v);
}
