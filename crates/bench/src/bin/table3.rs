//! Regenerate the paper's table3. Run: `cargo run --release -p gmg-bench --bin table3`.
//! Set `GMG_TRACE=<path>` to also capture a Perfetto trace of the run.
fn main() {
    let v = gmg_bench::profile::with_env_hooks(gmg_bench::table3::run);
    gmg_bench::report::save("table3", &v);
}
