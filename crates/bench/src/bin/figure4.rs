//! Regenerate the paper's figure4. Run: `cargo run --release -p gmg-bench --bin figure4`.
fn main() {
    let v = gmg_bench::figure4::run();
    gmg_bench::report::save("figure4", &v);
}
