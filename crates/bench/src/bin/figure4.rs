//! Regenerate the paper's figure4. Run: `cargo run --release -p gmg-bench --bin figure4`.
//! Set `GMG_TRACE=<path>` to also capture a Perfetto trace of the run.
fn main() {
    let v = gmg_bench::profile::with_env_hooks(gmg_bench::figure4::run);
    gmg_bench::report::save("figure4", &v);
}
