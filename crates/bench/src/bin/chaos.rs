//! Seeded chaos soak: fault-injected distributed solves, self-healing, and
//! graceful failure reporting.
//! Run: `cargo run --release -p gmg-bench --bin chaos -- --seed N`.
//! Set `GMG_TRACE=<path>` to also capture a Perfetto trace of the run
//! (fault and recovery events appear on the dedicated fault track).
fn main() {
    let mut seed = 7u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed needs an unsigned integer");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: chaos [--seed N]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    let v = gmg_bench::profile::with_env_hooks(|| gmg_bench::chaos::run_with_seed(seed));
    gmg_bench::report::save("chaos", &v);
    if v["ok"] != serde_json::Value::Bool(true) {
        std::process::exit(1);
    }
}
