//! Seeded chaos soak: fault-injected distributed solves, self-healing, and
//! graceful failure reporting.
//! Run: `cargo run --release -p gmg-bench --bin chaos -- --seed N`.
//! `--transport process` reruns the campaign with every rank as a real OS
//! process over the UDS datagram transport; add `--kill-process R` to
//! SIGKILL rank R mid-solve and demonstrate checkpoint-based rejoin (the
//! merged flight dump's `postmortem.md` names the culprit).
//! Set `GMG_TRACE=<path>` to also capture a Perfetto trace of the run
//! (fault and recovery events appear on the dedicated fault track).
fn main() {
    // If this process was spawned as a rank of a multi-process world,
    // run that rank's entry and exit — never returns in a child.
    #[cfg(unix)]
    gmg_comm::process::run_child_if_spawned(|entry, mut ctx, args| match entry {
        "elastic" => gmg_bench::chaos::elastic_child(&mut ctx, args),
        other => panic!("unknown chaos process entry {other:?}"),
    });

    let mut seed = 7u64;
    let mut process_mode = false;
    let mut kill_process: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed needs an unsigned integer");
                    std::process::exit(2);
                }
            },
            "--transport" => match args.next().as_deref() {
                Some("thread") => process_mode = false,
                Some("process") => process_mode = true,
                _ => {
                    eprintln!("--transport needs `thread` or `process`");
                    std::process::exit(2);
                }
            },
            "--kill-process" => match args.next().and_then(|v| v.parse().ok()) {
                Some(r) => kill_process = Some(r),
                None => {
                    eprintln!("--kill-process needs a rank number");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: chaos [--seed N] [--transport thread|process] [--kill-process R]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    if kill_process.is_some() && !process_mode {
        eprintln!("--kill-process requires --transport process");
        std::process::exit(2);
    }
    let v = if process_mode {
        #[cfg(unix)]
        {
            gmg_bench::profile::with_env_hooks(|| {
                gmg_bench::chaos::run_process_campaign(seed, kill_process)
            })
        }
        #[cfg(not(unix))]
        {
            eprintln!("--transport process needs a unix host");
            std::process::exit(2);
        }
    } else {
        gmg_bench::profile::with_env_hooks(|| gmg_bench::chaos::run_with_seed(seed))
    };
    gmg_bench::report::save("chaos", &v);
    if v["ok"] != serde_json::Value::Bool(true) {
        std::process::exit(1);
    }
}
