//! Regenerate the paper's table5. Run: `cargo run --release -p gmg-bench --bin table5`.
fn main() {
    let v = gmg_bench::table5::run();
    gmg_bench::report::save("table5", &v);
}
