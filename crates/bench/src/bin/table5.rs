//! Regenerate the paper's table5. Run: `cargo run --release -p gmg-bench --bin table5`.
//! Set `GMG_TRACE=<path>` to also capture a Perfetto trace of the run.
fn main() {
    let v = gmg_bench::profile::with_env_hooks(gmg_bench::table5::run);
    gmg_bench::report::save("table5", &v);
}
