//! Measure the real 7-point kernels on this host and fit the paper's
//! latency-throughput model. `cargo run --release -p gmg-bench --bin measured`.
//! Set `GMG_TRACE=<path>` to also capture a Perfetto trace of the run.
fn main() {
    let v = gmg_bench::profile::with_env_hooks(gmg_bench::measured::run);
    gmg_bench::report::save("measured", &v);
}
