//! flame — the kernel efficiency observatory.
//!
//! Runs the perfgate hot kernels (bricked applyOp, array applyOp, fused
//! multi-smooth) under a gmg-prof sampling session, writes the folded
//! flamegraph stacks (`results/flame.folded`) and the kernel efficiency
//! report (`results/efficiency.md`), and gates on two self-checks:
//!
//! * **Consistency** — the sampled wall share of each kernel's root phase
//!   must agree with the gmg-trace span share recorded around the same
//!   invocations (tolerance stated in the report).
//! * **Coverage** — ≥ `min_coverage` of the bricked applyOp's samples
//!   must land in a *named* sub-phase (`interior`, `index`), so the gap
//!   decomposition actually decomposes. (The row-streamed kernel folded
//!   the old `brick_boundary` pass into `interior`.)
//!
//! `--inject-slowdown PHASE:PCT` is the attribution self-test: deliberately
//! stretch one phase, re-run, and require that exactly that phase dominates
//! the share diff — a profiler that cannot see a planted regression cannot
//! be trusted on a real one. Exit nonzero on misattribution.
//!
//! Run: `cargo run --release -p gmg-bench --bin flame`.

use gmg_brick::{BrickLayout, BrickOrdering, BrickedField};
use gmg_core::level::fused_tile_cells;
use gmg_mesh::{Array3, Box3, Point3};
use gmg_metrics::MachineEnvelope;
use gmg_prof::{KernelReport, Profile};
use gmg_stencil::exec_array::apply_star7_array;
use gmg_stencil::exec_brick::apply_star7_bricked;
use gmg_stencil::exec_fused::fused_multismooth_bricked;
use gmg_trace::{Counters, Track};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Options for the flame harness (the binary's command line).
#[derive(Clone, Debug)]
pub struct FlameOpts {
    /// Fine-grid cube side for the kernels.
    pub grid: i64,
    /// Target sampling time per kernel, seconds.
    pub seconds_per_kernel: f64,
    /// Sampling interval, microseconds.
    pub interval_us: u64,
    /// Attribution self-test: slow every phase containing the pattern by
    /// the given percentage and require it to dominate the report diff.
    pub inject: Option<(String, f64)>,
    /// Minimum fraction of bricked-applyOp samples that must land in a
    /// named sub-phase.
    pub min_coverage: f64,
}

impl Default for FlameOpts {
    fn default() -> Self {
        Self {
            grid: 96,
            seconds_per_kernel: 0.6,
            interval_us: 200,
            inject: None,
            min_coverage: 0.90,
        }
    }
}

/// One sampled pass over the three kernels.
pub struct FlamePass {
    pub profile: Profile,
    pub kernels: Vec<KernelReport>,
}

fn median(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Repeat `call` for ~`seconds`, recording one gmg-trace span per
/// invocation under `root` so the trace and the sampler observe the same
/// window. Returns per-call seconds.
fn drive(seconds: f64, root: &'static str, mut call: impl FnMut()) -> Vec<f64> {
    let mut secs = Vec::new();
    let start = Instant::now();
    loop {
        let t0 = Instant::now();
        call();
        let dt = t0.elapsed().as_secs_f64();
        gmg_trace::record_span_at(0, 0, root, Track::Compute, t0, dt, Counters::default());
        secs.push(dt);
        if start.elapsed().as_secs_f64() >= seconds {
            return secs;
        }
    }
}

fn init_x(p: Point3) -> f64 {
    ((p.x * 7 + p.y * 3 - p.z * 5).rem_euclid(13)) as f64 * 0.125
}

fn init_b(p: Point3) -> f64 {
    ((p.x * 2 - p.y * 5 + p.z * 11).rem_euclid(9)) as f64 * 0.25 - 1.0
}

/// Run the three perfgate hot kernels under one sampling session,
/// cross-recording gmg-trace spans for the consistency gate.
pub fn run_pass(opts: &FlameOpts) -> FlamePass {
    let n = opts.grid;
    let bd = 8i64;
    let owned = Box3::cube(n);
    let layout = Arc::new(BrickLayout::new(owned, bd, 1, BrickOrdering::SurfaceMajor));
    let ph = gmg_prof::brick_phases(bd);
    let points = owned.volume() as u64;

    // Bricked + array applyOp operands (mirrors perfgate's setup).
    let src = BrickedField::from_fn(layout.clone(), init_x);
    let mut dst = BrickedField::new(layout.clone());
    let a_src = Array3::from_fn(owned, 1, init_x);
    let mut a_dst = Array3::from_fn(owned, 1, |_| 0.0);
    // Fused multi-smooth operands (3 fused iterations per call).
    let x0 = BrickedField::from_fn(layout.clone(), init_x);
    let bf = BrickedField::from_fn(layout.clone(), init_b);
    let mut x = x0.clone();
    let mut r = BrickedField::new(layout.clone());
    let (alpha, beta) = (-6.0, 1.0);
    let gamma = -0.5 / 6.0 * (2.0 / 3.0);
    let depth = 3usize;
    let tile = fused_tile_cells(bd);

    let session = gmg_prof::start(Duration::from_micros(opts.interval_us));
    let mut fused_stats = None;
    let ((mut bricked, mut array, mut fused), trace) = gmg_trace::capture(|| {
        let bricked = drive(opts.seconds_per_kernel, ph.apply_root, || {
            apply_star7_bricked(&mut dst, &src, alpha, beta, owned)
        });
        let array = drive(opts.seconds_per_kernel, gmg_prof::APPLYOP_ARRAY, || {
            apply_star7_array(&mut a_dst, &a_src, alpha, beta, owned)
        });
        let fused = drive(opts.seconds_per_kernel, ph.fused_root, || {
            x.as_mut_slice().copy_from_slice(x0.as_slice());
            fused_stats = Some(fused_multismooth_bricked(
                &mut x,
                &bf,
                Some(&mut r),
                alpha,
                beta,
                gamma,
                owned,
                depth,
                tile,
            ));
        });
        (bricked, array, fused)
    });
    let profile = session.stop();
    let wall = profile.wall_s.max(1e-9);

    let traced_secs = |root: &str| -> f64 {
        trace
            .events
            .iter()
            .filter(|e| e.op.name() == root)
            .map(|e| e.dur_ns as f64 / 1e9)
            .sum()
    };
    let stats = fused_stats.expect("fused kernel ran at least once");
    let fused_dpp = (stats.doubles_read + stats.doubles_written) as f64
        / (stats.points_updated as f64).max(1.0);
    let kernels = vec![
        KernelReport {
            label: format!("bricked applyOp (b={bd}, {n}^3)"),
            root: ph.apply_root.to_string(),
            seconds_per_call: median(&mut bricked),
            calls: bricked.len() as u64,
            points_per_call: points,
            doubles_per_point: 2.0,
            traced_share: Some(traced_secs(ph.apply_root) / wall),
        },
        KernelReport {
            label: format!("array applyOp ({n}^3)"),
            root: gmg_prof::APPLYOP_ARRAY.to_string(),
            seconds_per_call: median(&mut array),
            calls: array.len() as u64,
            points_per_call: points,
            doubles_per_point: 2.0,
            traced_share: Some(traced_secs(gmg_prof::APPLYOP_ARRAY) / wall),
        },
        KernelReport {
            label: format!("fused multi-smooth (b={bd}, s={depth}, {n}^3)"),
            root: ph.fused_root.to_string(),
            seconds_per_call: median(&mut fused),
            calls: fused.len() as u64,
            points_per_call: stats.points_updated,
            doubles_per_point: fused_dpp,
            traced_share: Some(traced_secs(ph.fused_root) / wall),
        },
    ];
    FlamePass { profile, kernels }
}

/// The attribution self-test verdict: the sub-phase whose *absolute time*
/// (within-kernel sampled share × the kernel's seconds per call) grew by
/// the largest factor between the clean and slowed passes.
///
/// Time growth, not share delta: a planted slowdown multiplies its
/// phase's time, so the injected phase wins by ~the injection factor even
/// when it already dominated its kernel (share deltas saturate near 1.0
/// and lose to share *reshuffling* noise in the other kernels).
///
/// Both scoring and the visibility floor are rescaled by the worker count
/// each pass actually ran with (`Profile::threads_seen`), because a rayon
/// pool breaks the single-threaded assumptions the original heuristics
/// baked in: per-phase *CPU* time is `share × seconds_per_call × workers`
/// (share × wall time alone under-counts by the pool width, so two passes
/// at different widths would fabricate or mask growth), and with `W`
/// workers the sampler banks ~`W` ticks per wall-second, so the support
/// floor scales to `16 × W` to keep the same wall-time visibility bar.
/// Phases below the floor, or below 2% of their kernel's slowed-pass
/// samples, are skipped: a handful of ticks cannot support a growth-ratio
/// estimate (a 6-tick phase jitters ×3 on its own), so an injection must
/// be large enough to lift its phase above the floor — which any
/// few-hundred-percent slowdown does.
pub fn attribution_winner(clean: &FlamePass, slowed: &FlamePass) -> Option<(String, f64)> {
    let w0 = clean.profile.threads_seen.max(1);
    let w1 = slowed.profile.threads_seen.max(1);
    let support_floor = (16 * w0.max(w1)) as u64;
    let mut best: Option<(String, f64)> = None;
    for (k0, k1) in clean.kernels.iter().zip(&slowed.kernels) {
        debug_assert_eq!(k0.root, k1.root);
        let b0 = clean.profile.under_root(&k0.root);
        let b1 = slowed.profile.under_root(&k1.root);
        let mut names: Vec<&String> = b0.children.keys().collect();
        names.extend(b1.children.keys());
        names.sort();
        names.dedup();
        for name in names {
            let support = b0.children.get(name.as_str()).copied().unwrap_or(0)
                + b1.children.get(name.as_str()).copied().unwrap_or(0);
            if support < support_floor || b1.child_share(name) < 0.02 {
                continue;
            }
            let t0 = (b0.child_share(name) * k0.seconds_per_call * w0 as f64).max(1e-12);
            let t1 = b1.child_share(name) * k1.seconds_per_call * w1 as f64;
            let growth = t1 / t0;
            if best.as_ref().map_or(true, |(_, g)| growth > *g) {
                best = Some((name.clone(), growth));
            }
        }
    }
    best
}

/// Measure the machine envelope for the roofline columns (host microbench;
/// comm model falls back to host copy numbers — flame records no sends).
pub fn measure_env() -> MachineEnvelope {
    crate::analyze::envelope_for(&gmg_trace::Trace { events: Vec::new() })
}

/// Run the full harness: sampled pass, artifacts, gates, optional
/// attribution self-test. Returns the process exit code.
pub fn run_with(dir: &Path, opts: &FlameOpts, env: Option<&MachineEnvelope>) -> i32 {
    crate::report::heading("flame — sampled kernel efficiency observatory");
    let clean = run_pass(opts);

    let folded_path = crate::report::save_raw_in(dir, "flame.folded", &clean.profile.to_folded());
    println!(
        "sampled {} stacks over {:.2} s ({} ticks, {} dropped) -> {folded_path:?}",
        clean.profile.samples, clean.profile.wall_s, clean.profile.ticks, clean.profile.dropped
    );

    let (mut md, verdict) = gmg_prof::render(&clean.profile, &clean.kernels, env);
    let mut code = 0;

    let bricked_root = &clean.kernels[0].root;
    let cov = verdict.coverage_of(bricked_root).unwrap_or(0.0);
    if cov < opts.min_coverage {
        println!(
            "FAIL coverage: {:.1}% of bricked applyOp samples in named sub-phases (< {:.1}%)",
            cov * 100.0,
            opts.min_coverage * 100.0
        );
        code = 1;
    } else {
        println!(
            "coverage ok: {:.1}% of bricked applyOp samples in named sub-phases",
            cov * 100.0
        );
    }
    if !verdict.consistent {
        println!("FAIL consistency: sampled phase shares disagree with gmg-trace span shares");
        for (root, sampled, traced, ok) in &verdict.consistency {
            if !ok {
                println!("  {root}: sampled {sampled:.3} vs traced {traced:.3}");
            }
        }
        code = 1;
    } else {
        println!("consistency ok: sampled shares match traced spans within tolerance");
    }

    if let Some((pattern, pct)) = &opts.inject {
        gmg_prof::set_slowdown(Some((pattern.as_str(), *pct)));
        let slowed = run_pass(opts);
        gmg_prof::set_slowdown(None);
        let winner = attribution_winner(&clean, &slowed);
        md.push_str("## Attribution self-test\n\n");
        let ok = match &winner {
            Some((name, growth)) => {
                md.push_str(&format!(
                    "Injected a {pct}% slowdown into phases matching `{pattern}`; the \
                     phase whose absolute time grew most was **{name}** (×{growth:.2}).\n\n"
                ));
                name.contains(pattern.as_str())
            }
            None => {
                md.push_str("No sub-phase shares were observed in either pass.\n\n");
                false
            }
        };
        if ok {
            println!(
                "attribution ok: slowed phase `{pattern}` dominates the diff ({:?})",
                winner
            );
        } else {
            println!("FAIL attribution: injected `{pattern}` but the dominant diff was {winner:?}");
            code = 1;
        }
    }

    let md_path = crate::report::save_raw_in(dir, "efficiency.md", &md);
    println!("efficiency report -> {md_path:?}");
    code
}

/// Binary entry point: measure the envelope, write under `results/`.
pub fn run(opts: &FlameOpts) -> i32 {
    run_with(&crate::report::results_dir(), opts, Some(&measure_env()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> FlameOpts {
        FlameOpts {
            grid: 32,
            seconds_per_kernel: 0.25,
            interval_us: 100,
            inject: None,
            min_coverage: 0.80,
        }
    }

    #[test]
    fn pass_samples_all_three_kernels_with_coverage() {
        let pass = run_pass(&quick_opts());
        assert_eq!(pass.kernels.len(), 3);
        for k in &pass.kernels {
            assert!(k.calls > 0, "{} never ran", k.label);
            assert!(k.seconds_per_call > 0.0);
        }
        let b = pass.profile.under_root(&pass.kernels[0].root);
        assert!(b.total > 0, "bricked kernel never sampled");
        assert!(
            b.coverage() > 0.8,
            "sub-phase coverage too low: {}",
            b.coverage()
        );
        // The folded output names the decomposition phases.
        let folded = pass.profile.to_folded();
        assert!(
            folded.contains("applyop_bricked@b8;interior@b8"),
            "{folded}"
        );
    }

    #[test]
    fn run_with_writes_artifacts_and_passes_gates() {
        let dir = std::env::temp_dir().join("gmg_flame_test");
        std::fs::create_dir_all(&dir).unwrap();
        let code = run_with(&dir, &quick_opts(), None);
        assert_eq!(code, 0, "clean flame run must pass its own gates");
        let folded = std::fs::read_to_string(dir.join("flame.folded")).unwrap();
        assert!(gmg_prof::folded::parse(&folded).is_ok());
        let md = std::fs::read_to_string(dir.join("efficiency.md")).unwrap();
        assert!(md.contains("phase decomposition"));
        assert!(md.contains("gap decomposition"));
        assert!(md.contains("cross-validation"));
    }

    #[test]
    fn inject_slowdown_flags_exactly_the_injected_phase() {
        // Determinism of attribution: a heavy slowdown planted in the
        // streamed-interior phase must dominate the diff, and the same
        // for the fused executor's tile phase — the winner tracks the
        // injection exactly across two different kernels.
        for target in ["interior@b8", "tile_smooth@b8"] {
            let clean = run_pass(&quick_opts());
            gmg_prof::set_slowdown(Some((target, 400.0)));
            let slowed = run_pass(&quick_opts());
            gmg_prof::set_slowdown(None);
            let (winner, growth) =
                attribution_winner(&clean, &slowed).expect("sub-phases observed");
            assert!(
                winner.contains(target),
                "injected {target}, but attribution picked {winner} (x{growth:.2})"
            );
        }
    }

    #[test]
    fn misattributed_injection_exits_nonzero() {
        // Inject a pattern matching no real phase: nothing actually slows
        // down, so whatever noise phase wins the diff cannot match the
        // pattern and the self-test must exit nonzero.
        let dir = std::env::temp_dir().join("gmg_flame_misattr_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut opts = quick_opts();
        opts.inject = Some(("no_such_phase".to_string(), 300.0));
        let code = run_with(&dir, &opts, None);
        assert_ne!(code, 0, "misattributed slowdown must exit nonzero");
    }
}
