//! Figure 8: weak scaling — GStencil/s and parallel efficiency with 512³
//! per rank, full nodes (4 ranks/node Perlmutter, 8 Frontier, 12 Sunspot),
//! 2→128 nodes (Perlmutter/Frontier) and 1→16 nodes (Sunspot testbed).

use gmg_core::schedule::{simulate, ScheduleConfig, SimResult};
use gmg_machine::gpu::System;
use serde_json::{json, Value};

/// Node counts swept per system (Sunspot capped at its 128-node testbed
/// scale, of which the paper could use 16).
pub fn node_sweep(system: System) -> Vec<usize> {
    match system {
        System::Sunspot => vec![1, 2, 4, 8, 16],
        _ => vec![2, 4, 8, 16, 32, 64, 128],
    }
}

/// One system's weak-scaling curve.
pub struct WeakCurve {
    pub system: System,
    /// `(nodes, ranks, GStencil/s, efficiency)` per sweep point.
    pub points: Vec<(usize, usize, f64, f64)>,
}

fn config(system: System, nodes: usize) -> ScheduleConfig {
    let mut c = ScheduleConfig::paper_section6(system);
    c.nodes = nodes;
    c.ranks_per_node = system.ranks_per_node();
    c
}

/// Build one system's curve.
pub fn curve(system: System) -> WeakCurve {
    let sweep = node_sweep(system);
    let runs: Vec<SimResult> = sweep
        .iter()
        .map(|&n| simulate(&config(system, n)))
        .collect();
    let base = &runs[0];
    let points = sweep
        .iter()
        .zip(&runs)
        .map(|(&n, r)| (n, r.nranks, r.gstencil_per_s, r.weak_efficiency(base)))
        .collect();
    WeakCurve { system, points }
}

/// Run the harness.
pub fn run() -> Value {
    crate::report::heading("Figure 8 — weak scaling (512^3 per rank, full nodes)");
    let mut out = Vec::new();
    for sys in System::ALL {
        let c = curve(sys);
        println!("\n{:?} ({} ranks/node):", sys, sys.ranks_per_node());
        println!(
            "{:>7} {:>7} {:>14} {:>11}",
            "nodes", "ranks", "GStencil/s", "efficiency"
        );
        for (nodes, ranks, gs, eff) in &c.points {
            println!("{nodes:>7} {ranks:>7} {gs:>14.2} {:>10.1}%", eff * 100.0);
        }
        out.push(json!({
            "system": format!("{:?}", sys),
            "nodes": c.points.iter().map(|p| p.0).collect::<Vec<_>>(),
            "ranks": c.points.iter().map(|p| p.1).collect::<Vec<_>>(),
            "gstencil_per_s": c.points.iter().map(|p| p.2).collect::<Vec<_>>(),
            "efficiency": c.points.iter().map(|p| p.3).collect::<Vec<_>>(),
        }));
    }
    json!({ "curves": out })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_stays_above_87_percent() {
        // The paper's headline: >87% parallel efficiency weak scaling to
        // 512 GPUs.
        for sys in System::ALL {
            let c = curve(sys);
            for (nodes, _, _, eff) in &c.points {
                assert!(
                    *eff >= 0.87,
                    "{sys:?} at {nodes} nodes: {:.1}%",
                    eff * 100.0
                );
            }
        }
    }

    #[test]
    fn throughput_grows_with_nodes() {
        for sys in System::ALL {
            let c = curve(sys);
            for w in c.points.windows(2) {
                assert!(
                    w[1].2 > w[0].2,
                    "{sys:?}: {:?}",
                    c.points.iter().map(|p| p.2).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn frontier_about_double_perlmutter_at_equal_nodes() {
        // Paper: "Frontier presents almost double GStencil/s performance
        // compared to Perlmutter" (8 GCDs vs 4 GPUs per node).
        let p = curve(System::Perlmutter);
        let f = curve(System::Frontier);
        for (pp, fp) in p.points.iter().zip(&f.points) {
            assert_eq!(pp.0, fp.0);
            let ratio = fp.2 / pp.2;
            assert!((1.5..2.5).contains(&ratio), "nodes {}: {ratio:.2}", pp.0);
        }
    }

    #[test]
    fn largest_jobs_reach_512_gpus() {
        let p = curve(System::Perlmutter);
        assert_eq!(p.points.last().unwrap().1, 512);
        let f = curve(System::Frontier);
        assert_eq!(f.points.last().unwrap().1, 1024); // 512 MI250X = 1024 GCD ranks
        let s = curve(System::Sunspot);
        assert_eq!(s.points.last().unwrap().1, 192); // 96 PVC = 192 tiles? (12 tiles/node × 16)
    }
}
