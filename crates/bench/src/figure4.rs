//! Figure 4: relative per-V-cycle performance of the bricked GMG against
//! the HPGMG-style conventional baseline.
//!
//! Paper values: 1.58× on Perlmutter, 1.46× on Frontier, and ≈1× when the
//! Sunspot result is held against HPGMG-CUDA (which has no SYCL port, so
//! the comparison is cross-machine, as in the paper's text).

use gmg_core::schedule::{simulate, ScheduleConfig};
use gmg_hpgmg::simulate_hpgmg;
use gmg_machine::gpu::System;
use gmg_mesh::Point3;
use serde_json::{json, Value};

/// One bar of the figure.
#[derive(Debug)]
pub struct Figure4Bar {
    pub system: System,
    pub brick_vcycle_s: f64,
    pub baseline_vcycle_s: f64,
    pub speedup: f64,
}

/// Compute all three bars.
pub fn bars() -> Vec<Figure4Bar> {
    System::ALL
        .iter()
        .map(|&sys| {
            let brick = simulate(&ScheduleConfig::paper_section6(sys));
            // HPGMG is CUDA-only: on Sunspot the paper compares against the
            // CUDA baseline on the A100.
            let baseline_sys = match sys {
                System::Sunspot => System::Perlmutter,
                other => other,
            };
            let base = simulate_hpgmg(baseline_sys, Point3::splat(512), 6, 12, 100, 12, 8);
            Figure4Bar {
                system: sys,
                brick_vcycle_s: brick.per_vcycle_seconds,
                baseline_vcycle_s: base.per_vcycle_seconds,
                speedup: base.per_vcycle_seconds / brick.per_vcycle_seconds,
            }
        })
        .collect()
}

/// Run the harness.
pub fn run() -> Value {
    crate::report::heading("Figure 4 — relative performance vs HPGMG (time per V-cycle)");
    let bars = bars();
    println!(
        "{:<12} {:>16} {:>16} {:>10}  paper",
        "system", "bricks/Vcycle", "HPGMG/Vcycle", "speedup"
    );
    let paper = [1.58, 1.46, 1.0];
    for (b, p) in bars.iter().zip(paper) {
        println!(
            "{:<12} {:>16} {:>16} {:>9.2}x  {p:.2}x",
            format!("{:?}", b.system),
            crate::report::fmt_time(b.brick_vcycle_s),
            crate::report::fmt_time(b.baseline_vcycle_s),
            b.speedup
        );
    }
    println!(
        "\n{}",
        crate::plot::bars(
            "speedup vs HPGMG (x)",
            &bars
                .iter()
                .map(|b| (format!("{:?}", b.system), b.speedup))
                .collect::<Vec<_>>(),
            40
        )
    );
    json!({
        "bars": bars.iter().map(|b| json!({
            "system": format!("{:?}", b.system),
            "brick_vcycle_s": b.brick_vcycle_s,
            "baseline_vcycle_s": b.baseline_vcycle_s,
            "speedup": b.speedup,
        })).collect::<Vec<_>>(),
        "paper_speedups": paper,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedups_match_paper_shape() {
        let b = bars();
        assert!(
            (b[0].speedup - 1.58).abs() < 0.15,
            "Perlmutter {}",
            b[0].speedup
        );
        assert!(
            (b[1].speedup - 1.46).abs() < 0.15,
            "Frontier {}",
            b[1].speedup
        );
        assert!((b[2].speedup - 1.0).abs() < 0.4, "Sunspot {}", b[2].speedup);
        // Bricks win on Perlmutter and Frontier.
        assert!(b[0].speedup > 1.2 && b[1].speedup > 1.2);
    }
}
