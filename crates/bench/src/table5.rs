//! Table V: performance portability Φ based on fraction of the theoretical
//! arithmetic intensity (data-movement proximity to compulsory misses).

use gmg_machine::portability::{EfficiencyBasis, PortabilityTable};
use serde_json::Value;

/// The computed table.
pub fn table() -> PortabilityTable {
    PortabilityTable::from_models(EfficiencyBasis::TheoreticalAi)
}

/// Run the harness.
pub fn run() -> Value {
    crate::report::heading("Table V — performance portability Φ (fraction of theoretical AI)");
    crate::table3::print_table(&table(), 0.92)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overall_phi_is_92_percent() {
        let t = table();
        assert!((t.overall_phi - 0.92).abs() < 0.02, "{}", t.overall_phi);
    }

    #[test]
    fn ai_fractions_exceed_roofline_fractions_overall() {
        // The paper's observation: data movement is near-ideal (92%) even
        // where code-generation efficiency (73%) is not.
        let ai = table().overall_phi;
        let roofline = crate::table3::table().overall_phi;
        assert!(ai > roofline + 0.1);
    }
}
