//! Table IV: theoretical arithmetic intensity (FLOP/byte) per V-cycle
//! operation, computed from the operator traffic metadata — and
//! cross-checked against the DSL-derived analysis where the two counting
//! conventions coincide.

use gmg_stencil::ops::{apply_op_def, restriction_def, smooth_def};
use gmg_stencil::{OpKind, ALL_OPS};
use serde_json::{json, Value};

/// `(op, computed AI, paper AI)` rows.
pub fn rows() -> Vec<(OpKind, f64, f64)> {
    let paper = [0.50, 0.125, 0.15, 0.11, 0.06];
    ALL_OPS
        .iter()
        .zip(paper)
        .map(|(&op, p)| (op, op.traffic().theoretical_ai(), p))
        .collect()
}

/// Run the harness.
pub fn run() -> Value {
    crate::report::heading("Table IV — theoretical arithmetic intensity (FLOP/B)");
    println!("{:<26} {:>10} {:>8}", "Operation", "computed", "paper");
    for (op, ai, paper) in rows() {
        println!("{:<26} {ai:>10.3} {paper:>8}", op.name());
    }
    println!("\nDSL cross-checks (FLOPs/point from the expression tree):");
    println!(
        "  applyOp     : {}",
        apply_op_def().analysis().flops_per_point
    );
    println!(
        "  smooth      : {}",
        smooth_def().analysis().flops_per_point
    );
    println!(
        "  restriction : {}",
        restriction_def().analysis().flops_per_point
    );
    json!({
        "rows": rows().iter().map(|(op, ai, p)| json!({
            "op": op.name(), "computed_ai": ai, "paper_ai": p,
        })).collect::<Vec<_>>(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computed_matches_paper_to_rounding() {
        for (op, ai, paper) in rows() {
            assert!(
                (ai - paper).abs() < 0.006,
                "{}: {ai:.3} vs {paper}",
                op.name()
            );
        }
    }
}
