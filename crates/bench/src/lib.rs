//! # gmg-bench — harnesses regenerating every table and figure
//!
//! One module (and one `cargo run -p gmg-bench --bin <name>` binary) per
//! experiment in the paper's evaluation:
//!
//! | paper element | module / binary |
//! |---|---|
//! | Figure 3 — time per level             | [`figure3`] |
//! | Figure 4 — vs HPGMG                   | [`figure4`] |
//! | Figure 5 — kernel GStencil/s + model  | [`figure5`] |
//! | Figure 6 — exchange GB/s + model      | [`figure6`] |
//! | Figure 7 — potential speedup scatter  | [`figure7`] |
//! | Figure 8 — weak scaling               | [`figure8`] |
//! | Figure 9 — strong scaling             | [`figure9`] |
//! | Table II — finest-level op fractions  | [`table2`] |
//! | Table III — Φ (roofline basis)        | [`table3`] |
//! | Table IV — theoretical AI             | [`table4`] |
//! | Table V — Φ (theoretical-AI basis)    | [`table5`] |
//!
//! Plus [`ablations`] — the Section V design-choice studies (CA on/off,
//! GPU-aware MPI, rendezvous thresholds, brick size, ordering, CPU
//! offload), run via `--bin ablations` — [`profile`] — a traced solve
//! with Perfetto (Chrome trace-event) export and a roofline check, run via
//! `--bin profile` — and [`chaos`] — the seeded fault-injection soak
//! (transport faults, solver self-healing, graceful rank death), run via
//! `--bin chaos -- --seed N` — and [`gate`] — the perfgate hot-kernel
//! macro-benchmark and noise-robust regression gate over the committed
//! `bench/BENCH_<n>.json` trajectory, run via `--bin perfgate`
//! (`-- --check` in CI) — and [`analyze`] — the trace-analysis report
//! (per-V-cycle critical path, load imbalance, roofline attribution,
//! outliers, run-vs-run diffing) over a traced solve or any `GMG_TRACE`
//! capture, run via `--bin analyze` (`-- --diff a b` to compare runs) —
//! and [`postmortem`] — the flight-recorder crash forensics pipeline
//! (seeded killed-rank solve → automatic dump → culprit naming,
//! wait-state attribution, edge-exact critical path, Perfetto timeline
//! with cross-rank flow arrows), run via `--bin postmortem -- --seed N`
//! or `-- --dump DIR` — and [`flame`] — the sampled kernel efficiency
//! observatory (gmg-prof folded stacks, per-phase decomposition of the
//! bricked applyOp, roofline columns, sampled-vs-traced cross-validation,
//! `--inject-slowdown PHASE:PCT` attribution self-test), run via
//! `--bin flame` — and [`live`] — the cross-process live telemetry demo
//! (per-rank gmg-live shippers, mid-solve Prometheus scrape, straggler /
//! silent-rank alerting with both polarities exit-code-enforced), run via
//! `--bin live -- --seed N` (`--inject-slowdown R` plants a straggler,
//! `--kill-process R` SIGKILLs a rank mid-solve) — and [`scaling`] — the
//! 10k-rank scaling observatory (contention-modeled schedule simulation
//! via `gmg-scale`, weak/strong sweeps, alpha–beta+contention model fit,
//! flight-grade wait attribution, rank-window Perfetto forensics, and
//! the planted-slowdown polarity self-test), run via `--bin scaling`
//! (`--ranks N`, `--inject-slowdown LEVEL:PCT`, `--window A:B`).
//! Every binary honours `GMG_TRACE=<path>` to capture a trace of its run,
//! `GMG_PROF=<path>` to write folded sampling stacks of its run, and
//! `GMG_METRICS=<path>` to write its final metrics snapshot as JSON.
//!
//! Each `run()` prints the same rows/series the paper reports and returns a
//! JSON value; binaries also persist it under `results/`. Criterion
//! micro-benchmarks of the *real* CPU kernels live in `benches/`.

pub mod ablations;
pub mod analyze;
pub mod chaos;
pub mod figure3;
pub mod figure4;
pub mod figure5;
pub mod figure6;
pub mod figure7;
pub mod figure8;
pub mod figure9;
pub mod flame;
pub mod gate;
pub mod live;
pub mod measured;
pub mod plot;
pub mod postmortem;
pub mod profile;
pub mod report;
pub mod scaling;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
