//! Figure 5: GStencil/s per invocation for `applyOp` and `smooth+residual`
//! across the V-cycle levels, against the latency-throughput model and the
//! theoretical per-machine ceilings.

use gmg_machine::gpu::System;
use gmg_machine::model::LatencyThroughput;
use gmg_machine::timing::KernelTiming;
use gmg_stencil::OpKind;
use serde_json::{json, Value};

/// One measured series: GStencil/s per level for one op on one system.
pub struct KernelSeries {
    pub system: System,
    pub op: OpKind,
    /// `(points, gstencil_per_s)` per level, finest first.
    pub samples: Vec<(usize, f64)>,
    /// Theoretical ceiling (GStencil/s) from bandwidth / compulsory bytes.
    pub ceiling: f64,
    /// Fitted latency α (s) and throughput β (stencil/s) of the model.
    pub fit: LatencyThroughput,
    /// R² of the fit — the paper notes the model is "well-correlated".
    pub r_squared: f64,
}

/// Build the series for one op on one system over the paper's level sizes
/// (512³ … 16³).
pub fn series(system: System, op: OpKind) -> KernelSeries {
    let gpu = system.gpu();
    let samples: Vec<(usize, f64)> = (0..6)
        .map(|l| {
            let n = 512usize >> l;
            let points = n * n * n;
            let k = KernelTiming::model(&gpu, op, points);
            (points, k.gstencil_per_s)
        })
        .collect();
    let time_samples: Vec<(f64, f64)> = samples
        .iter()
        .map(|&(p, g)| (p as f64, p as f64 / (g * 1e9)))
        .collect();
    let fit = LatencyThroughput::fit_time(&time_samples);
    let r2 = fit.r_squared(&time_samples);
    KernelSeries {
        system,
        op,
        samples,
        ceiling: gpu.gstencil_ceiling(op),
        fit,
        r_squared: r2,
    }
}

/// Run the harness.
pub fn run() -> Value {
    crate::report::heading("Figure 5 — kernel GStencil/s vs per-level problem size");
    let mut out = Vec::new();
    for op in [OpKind::ApplyOp, OpKind::SmoothResidual] {
        println!("\n-- {} --", op.name());
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}  {:>9} {:>11} {:>7}",
            "system",
            "512^3",
            "256^3",
            "128^3",
            "64^3",
            "32^3",
            "16^3",
            "ceiling",
            "fit alpha",
            "R^2"
        );
        for sys in System::ALL {
            let s = series(sys, op);
            print!("{:<12}", format!("{:?}", s.system));
            for (_, g) in &s.samples {
                print!(" {g:>10.2}");
            }
            println!(
                "  {:>9.2} {:>9.1}us {:>7.4}",
                s.ceiling,
                s.fit.alpha_s * 1e6,
                s.r_squared
            );
            out.push(json!({
                "system": format!("{:?}", s.system),
                "op": op.name(),
                "points": s.samples.iter().map(|(p, _)| p).collect::<Vec<_>>(),
                "gstencil_per_s": s.samples.iter().map(|(_, g)| g).collect::<Vec<_>>(),
                "ceiling_gstencil_per_s": s.ceiling,
                "fit_alpha_us": s.fit.alpha_s * 1e6,
                "fit_beta_gstencil_per_s": s.fit.beta / 1e9,
                "r_squared": s.r_squared,
            }));
        }
    }
    // ASCII rendering of the figure (levels on x, GStencil/s on y).
    for op in [OpKind::ApplyOp, OpKind::SmoothResidual] {
        let series: Vec<crate::plot::Series> = System::ALL
            .iter()
            .zip(['P', 'F', 'S'])
            .map(|(&sys, glyph)| {
                let s = series(sys, op);
                crate::plot::Series::new(
                    format!("{sys:?}"),
                    glyph,
                    s.samples.iter().map(|&(p, g)| (p as f64, g)).collect(),
                )
            })
            .collect();
        println!(
            "
{}",
            crate::plot::loglog(
                &format!("{} — GStencil/s vs points", op.name()),
                &series,
                60,
                12
            )
        );
    }
    json!({ "series": out })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finest_levels_near_ceiling_coarse_levels_latency_bound() {
        for sys in System::ALL {
            for op in [OpKind::ApplyOp, OpKind::SmoothResidual] {
                let s = series(sys, op);
                let finest = s.samples[0].1;
                let coarsest = s.samples[5].1;
                assert!(
                    finest / s.ceiling > 0.4,
                    "{sys:?} {} finest {finest:.1} vs ceiling {:.1}",
                    op.name(),
                    s.ceiling
                );
                assert!(finest <= s.ceiling * 1.0001);
                // 16³ sits deep in the latency regime.
                assert!(coarsest < 0.2 * finest, "{sys:?} {}", op.name());
            }
        }
    }

    #[test]
    fn fitted_latency_in_5_to_20_us_band() {
        // Paper Figure 5: empirical latencies between 5 µs and 20 µs.
        for sys in System::ALL {
            for op in [OpKind::ApplyOp, OpKind::SmoothResidual] {
                let s = series(sys, op);
                assert!(
                    (4e-6..22e-6).contains(&s.fit.alpha_s),
                    "{sys:?} {} alpha {:.1}us",
                    op.name(),
                    s.fit.alpha_s * 1e6
                );
                assert!(s.r_squared > 0.999, "model should correlate");
            }
        }
    }

    #[test]
    fn nvidia_highest_throughput_per_process() {
        let a = series(System::Perlmutter, OpKind::ApplyOp).samples[0].1;
        let m = series(System::Frontier, OpKind::ApplyOp).samples[0].1;
        let p = series(System::Sunspot, OpKind::ApplyOp).samples[0].1;
        assert!(a > m && a > p, "A100 {a:.1}, GCD {m:.1}, PVC {p:.1}");
    }
}
