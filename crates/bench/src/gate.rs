//! perfgate — a deterministic macro-benchmark of the hot kernels plus a
//! noise-robust regression gate over a committed benchmark trajectory.
//!
//! Run: `cargo run --release -p gmg-bench --bin perfgate` (record mode:
//! appends `bench/BENCH_<n+1>.json`) or `-- --check` (gate mode: compare
//! against the latest committed entry and exit nonzero on a regression or
//! a hard-floor violation, without writing anything).
//!
//! The gate is machine-portable because it scores dimensionless *ratios*
//! (optimized kernel vs its in-tree baseline), not absolute seconds:
//!
//! | id | candidate | baseline |
//! |---|---|---|
//! | `applyop_bricked_vs_array`   | bricked 7-point apply (≥ 1.0× floor, at [`APPLYOP_BLOCK`]³) | conventional array apply |
//! | `applyop_bricked_vs_array_stream` | same kernels at `--grid` (ungated context) | conventional array apply |
//! | `smooth_residual_fused_vs_split` | one-pass smooth+residual | smooth then residual |
//! | `multismooth_fused_vs_sweep` | fused cache-tile multi-smooth (≥ 1.15× floor, at [`MULTISMOOTH_BLOCK`]³) | sweep-by-sweep CA |
//! | `multismooth_fused_vs_sweep_stream` | same schedules at `--grid` (ungated context) | sweep-by-sweep CA |
//! | `exchange_packfree_vs_packed` | surface-major gather | lexicographic gather |
//! | `vcycle_fused_vs_sweep`      | V-cycles with fusion | V-cycles without |
//! | `live_shipper_overhead`      | V-cycles with a gmg-live shipper attached (≥ [`LIVE_OVERHEAD_FLOOR`] floor) | same V-cycles, no telemetry |
//! | `sim_events_per_sec`         | gmg-scale 1000-rank V-cycle simulation (≥ 1.0× floor) | [`SIM_EVENT_BUDGET_NS`] ns/event budget |
//!
//! The two hard-floored comparisons are pinned to fixed cache-blocked
//! sizes rather than `--grid`: blocking's win is a cache-hierarchy claim,
//! and holding it as an invariant only makes sense in the regime where
//! the block working set is cache-resident. At DRAM-streaming sizes a
//! star-7 sweep over lexicographic storage is already bandwidth-optimal,
//! so the same comparison there is recorded by the `_stream` twins as
//! ungated trajectory context instead of pretending a floor could hold.
//!
//! Each side is timed `samples` times; the score is the ratio of medians
//! and the noise estimate is the relative MAD (median absolute deviation)
//! of each sample set. A benchmark regresses when its ratio falls below
//! the trajectory baseline by more than `max(10%, 3·max(mad_now,
//! mad_then))` — so a noisy box widens its own tolerance instead of
//! flapping the gate, without quiet components compounding into a
//! tolerance that hides a real regression. `multismooth_fused_vs_sweep` additionally carries a hard floor
//! (≥ 1.15×, the paper-motivated communication-avoiding payoff) and a
//! deterministic traffic check (fused doubles/point must undercut the
//! 7-doubles/point sweep model). `applyop_bricked_vs_array` carries a
//! ≥ 1.0× hard floor: the shape-specialized row-streamed brick kernel
//! must at least match the conventional array kernel — the paper's
//! fine-grain data blocking claim, held as an invariant.
//!
//! Every entry's `extra` records `rayon_threads` (the live rayon pool
//! width) so trajectory comparisons can confirm medians were taken at
//! like-for-like parallelism; CI pins `RAYON_NUM_THREADS` in the perf
//! job for exactly this reason. Likewise every `extra` records the
//! execution context's `transport` (`GMG_TRANSPORT`, default `thread`)
//! and `ranks` (`GMG_PROC_NRANKS` when spawned into a process world,
//! else 1), so entries taken under different transports never get
//! compared as like-for-like silently.
//!
//! Absolute medians — and, since schema 2, per-side p50/p90/p99 plus the
//! full log-bucketed nanosecond sample histograms (mergeable across
//! entries via `gmg_metrics::Histogram`) — are recorded in every entry
//! purely as trajectory context; they are never gated on, and schema-1
//! entries gate exactly as before.

use gmg_brick::{BrickLayout, BrickOrdering, BrickedField};
use gmg_comm::runtime::RankWorld;
use gmg_core::level::fused_tile_cells;
use gmg_core::solver::{GmgSolver, SolverConfig};
use gmg_mesh::ghost::DIRECTIONS_26;
use gmg_mesh::{Array3, Box3, Decomposition, Point3};
use gmg_stencil::exec_array::apply_star7_array;
use gmg_stencil::exec_brick::{apply_star7_bricked, par_pointwise_mut1, par_pointwise_mut2};
use gmg_stencil::exec_fused::fused_multismooth_bricked;
use serde_json::{json, Value};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Hard floor for the fused multi-smooth speedup (ISSUE acceptance bar).
pub const MULTISMOOTH_FLOOR: f64 = 1.15;
/// Hard floor for bricked applyOp vs the array kernel: data blocking must
/// not lose (ISSUE acceptance bar).
pub const APPLYOP_FLOOR: f64 = 1.0;
/// Cube side of the *gated* applyOp comparison. The floors are held in
/// the regime fine-grain data blocking targets — a block whose working
/// set is L2-resident, where short per-brick streams beat the array
/// kernel's long-row hardware prefetch. At DRAM-streaming sizes a 7-point
/// sweep over lexicographic storage is already bandwidth-optimal and
/// *no* layout can beat it, so gating there would pin the floor to
/// memory-system noise; the full-grid streaming regime is still recorded,
/// ungated, by the `*_stream` twin benchmarks at `--grid`.
pub const APPLYOP_BLOCK: i64 = 24;
/// Cube side of the gated fused-multismooth comparison (same rationale as
/// [`APPLYOP_BLOCK`]: the fused tile's 3-field scratch must be
/// cache-resident for fusion to pay; 32³ keeps it inside L2 while leaving
/// room for a depth-4 halo).
pub const MULTISMOOTH_BLOCK: i64 = 32;
/// Minimum relative regression tolerated before the MAD widening kicks in.
pub const BASE_TOLERANCE: f64 = 0.10;
/// Hard floor for the live-telemetry shipper's solve overhead: a V-cycle
/// run with per-cycle beacons (and production-cadence metric deltas)
/// shipping into a live collector must stay within ~11% of the
/// telemetry-free twin (ratio no-telemetry/with-telemetry ≥ 0.9). The
/// telemetry plane's honesty claim — observability must not tax the
/// solve — held as an invariant.
pub const LIVE_OVERHEAD_FLOOR: f64 = 0.9;

/// Per-simulated-event time budget for the scaling observatory's
/// schedule simulator, nanoseconds. The budget is the *baseline* of the
/// `sim_events_per_sec` entry: the 1000-rank clock-only observatory
/// V-cycle simulation must process events at least this fast (measured
/// ~5 ns/event single-threaded, so 50 ns is ~10× headroom for CI noise)
/// or the 10k-rank sweep stops being a laptop-class operation.
pub const SIM_EVENT_BUDGET_NS: f64 = 50.0;

/// Gate options (the binary's command line).
#[derive(Clone, Copy, Debug)]
pub struct GateOpts {
    /// Fine-grid cube side for the kernel benchmarks.
    pub grid: i64,
    /// Median-of-k sample count per timed side.
    pub samples: usize,
    /// Artificially slow every *candidate* kernel by this percentage —
    /// used once to prove the gate actually fails (`--inject-slowdown`).
    pub inject_slowdown_pct: f64,
    /// Gate only: compare against the committed trajectory and exit
    /// nonzero on violation without appending a new entry.
    pub check_only: bool,
}

impl Default for GateOpts {
    fn default() -> Self {
        Self {
            grid: 128,
            samples: 5,
            inject_slowdown_pct: 0.0,
            check_only: false,
        }
    }
}

/// Robust summary of one timed side.
#[derive(Clone, Debug)]
pub struct Stats {
    /// Median seconds across the samples.
    pub median: f64,
    /// Median absolute deviation relative to the median.
    pub rel_mad: f64,
    /// 50th/90th/99th percentile seconds, estimated from the log-bucketed
    /// sample histogram (exact to one bucket, i.e. ≤ 1/8 relative error).
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
    /// Raw nanosecond sample histogram — recorded into the trajectory
    /// entry so later runs can merge distributions across entries instead
    /// of comparing lossy point statistics.
    pub hist: gmg_metrics::Histogram,
}

impl Stats {
    /// Noise-free synthetic stats (single sample at `median`) for gate-math
    /// tests and schema fixtures.
    pub fn synthetic(median: f64, rel_mad: f64) -> Self {
        let mut hist = gmg_metrics::Histogram::new();
        hist.record((median * 1e9).max(0.0) as u64);
        Stats {
            median,
            rel_mad,
            p50: median,
            p90: median,
            p99: median,
            hist,
        }
    }
}

/// One benchmark's outcome.
#[derive(Clone, Debug)]
pub struct BenchOut {
    pub id: &'static str,
    pub baseline_label: &'static str,
    pub candidate_label: &'static str,
    pub baseline: Stats,
    pub candidate: Stats,
    /// Speedup of candidate over baseline (median/median, > 1 is faster).
    pub ratio: f64,
    /// Hard floor on `ratio`, if this benchmark carries one.
    pub floor: Option<f64>,
    /// Benchmark-specific context recorded into the trajectory entry.
    pub extra: Value,
}

/// Median of a sample set (panics on empty input).
pub fn median(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "median of empty sample set");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
    let m = v.len() / 2;
    if v.len() % 2 == 1 {
        v[m]
    } else {
        0.5 * (v[m - 1] + v[m])
    }
}

/// Median absolute deviation around the median.
pub fn mad(xs: &[f64]) -> f64 {
    let m = median(xs);
    let dev: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&dev)
}

fn stats_of(samples: &[f64]) -> Stats {
    let m = median(samples);
    let mut hist = gmg_metrics::Histogram::new();
    for &s in samples {
        hist.record((s * 1e9).max(0.0) as u64);
    }
    let q = |p: f64| hist.quantile(p).map_or(m, |ns| ns as f64 * 1e-9);
    Stats {
        median: m,
        rel_mad: if m > 0.0 { mad(samples) / m } else { 0.0 },
        p50: q(0.50),
        p90: q(0.90),
        p99: q(0.99),
        hist,
    }
}

/// Collect `k` samples from a self-timing closure (the closure does its
/// own untimed prep, then returns the measured seconds — one closure, so
/// prep and work can share mutable state) and summarize with median +
/// relative MAD.
pub fn time_median(k: usize, mut sample: impl FnMut() -> f64) -> Stats {
    let samples: Vec<f64> = (0..k).map(|_| sample()).collect();
    stats_of(&samples)
}

/// Time one closure invocation.
pub fn timed(work: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    work();
    t0.elapsed().as_secs_f64()
}

/// Trajectory directory: `$GMG_BENCH_DIR`, or the in-repo `bench/`.
pub fn bench_dir() -> PathBuf {
    crate::report::ensure_dir(Some(
        std::env::var_os("GMG_BENCH_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("bench")),
    ))
}

fn entry_index(name: &str) -> Option<u64> {
    name.strip_prefix("BENCH_")?
        .strip_suffix(".json")?
        .parse()
        .ok()
}

/// Latest committed trajectory entry in `dir`, if any.
pub fn latest_entry(dir: &std::path::Path) -> Option<(u64, Value)> {
    let mut best: Option<(u64, PathBuf)> = None;
    for e in std::fs::read_dir(dir).ok()? {
        let e = e.ok()?;
        if let Some(i) = entry_index(&e.file_name().to_string_lossy()) {
            if best.as_ref().map_or(true, |(b, _)| i > *b) {
                best = Some((i, e.path()));
            }
        }
    }
    let (i, path) = best?;
    let text = std::fs::read_to_string(path).ok()?;
    let v: Value = serde_json::from_str(&text).ok()?;
    Some((i, v))
}

fn init_x(p: Point3) -> f64 {
    ((p.x * 7 + p.y * 3 - p.z * 5).rem_euclid(13)) as f64 * 0.125
}

fn init_b(p: Point3) -> f64 {
    ((p.x * 2 - p.y * 5 + p.z * 11).rem_euclid(9)) as f64 * 0.25 - 1.0
}

/// Star-7 coefficients of the unit-spacing Poisson operator plus the
/// matching Jacobi damping (mirrors `Level`'s `alpha/beta/gamma`).
fn coeffs() -> (f64, f64, f64) {
    (-6.0, 1.0, -0.5 / 6.0 * (2.0 / 3.0))
}

fn mk_layout(n: i64, bd: i64) -> Arc<BrickLayout> {
    Arc::new(BrickLayout::new(
        Box3::cube(n),
        bd,
        1,
        BrickOrdering::SurfaceMajor,
    ))
}

/// Sampled sub-phase breakdown of the bricked applyOp for the trajectory's
/// `extra` field: run the kernel under a short gmg-prof session and report
/// each direct sub-phase's share of in-kernel samples. Pure context — the
/// gate never scores it — but it lets `--diff`-style trajectory analysis
/// see *which* part of the kernel moved, not just that it moved.
fn applyop_phase_breakdown(
    dst: &mut BrickedField,
    src: &BrickedField,
    alpha: f64,
    beta: f64,
    owned: Box3,
) -> Value {
    let ph = gmg_prof::brick_phases(8);
    let session = gmg_prof::start(std::time::Duration::from_micros(100));
    let t0 = Instant::now();
    while t0.elapsed().as_secs_f64() < 0.15 {
        apply_star7_bricked(dst, src, alpha, beta, owned);
    }
    let b = session.stop().under_root(ph.apply_root);
    let mut phases = Vec::new();
    for name in b.children.keys() {
        phases.push(json!({ "phase": name.as_str(), "share": b.child_share(name) }));
    }
    json!({ "samples": b.total, "coverage": b.coverage(), "phases": phases })
}

fn applyop_at(
    n: i64,
    id: &'static str,
    floor: Option<f64>,
    with_breakdown: bool,
    opts: &GateOpts,
) -> BenchOut {
    let owned = Box3::cube(n);
    let layout = mk_layout(n, 8);
    let src = BrickedField::from_fn(layout.clone(), init_x);
    let mut dst = BrickedField::new(layout);
    let (alpha, beta, _) = coeffs();
    // Batch repetitions per timed sample on small grids so the hard-floor
    // ratio is not dominated by timer resolution (the gated block and the
    // self-tests run at grid 16–32, where one apply is microseconds).
    // Both sides batch identically, so the ratio of medians is unchanged.
    let reps = {
        let r = (128 / n).max(1) as usize;
        r * r
    };
    let cand = time_median(opts.samples, || {
        timed(|| {
            for _ in 0..reps {
                apply_star7_bricked(&mut dst, &src, alpha, beta, owned);
            }
        })
    });

    let a_src = Array3::from_fn(owned, 1, init_x);
    let mut a_dst = Array3::from_fn(owned, 1, |_| 0.0);
    let base = time_median(opts.samples, || {
        timed(|| {
            for _ in 0..reps {
                apply_star7_array(&mut a_dst, &a_src, alpha, beta, owned);
            }
        })
    });
    let threads = rayon::current_num_threads() as u64;
    let extra = if with_breakdown {
        let breakdown = applyop_phase_breakdown(&mut dst, &src, alpha, beta, owned);
        json!({ "grid": n, "brick_dim": 8i64, "rayon_threads": threads, "phase_breakdown": breakdown,
                "transport": run_transport(), "ranks": run_ranks() })
    } else {
        json!({ "grid": n, "brick_dim": 8i64, "rayon_threads": threads,
                "transport": run_transport(), "ranks": run_ranks() })
    };
    finish(
        id,
        "array applyOp",
        "bricked applyOp",
        base,
        cand,
        floor,
        extra,
        opts,
    )
}

/// Gated comparison at the L2-resident block size (see [`APPLYOP_BLOCK`]).
fn bench_applyop(opts: &GateOpts) -> BenchOut {
    applyop_at(
        APPLYOP_BLOCK,
        "applyop_bricked_vs_array",
        Some(APPLYOP_FLOOR),
        true,
        opts,
    )
}

/// Ungated full-`--grid` twin: records how the same kernels compare in
/// the DRAM-streaming regime, as trajectory context only.
fn bench_applyop_stream(opts: &GateOpts) -> BenchOut {
    applyop_at(
        opts.grid,
        "applyop_bricked_vs_array_stream",
        None,
        false,
        opts,
    )
}

fn bench_smooth_residual(opts: &GateOpts) -> BenchOut {
    let n = opts.grid;
    let owned = Box3::cube(n);
    let layout = mk_layout(n, 8);
    let x0 = BrickedField::from_fn(layout.clone(), init_x);
    let bf = BrickedField::from_fn(layout.clone(), init_b);
    let mut x = x0.clone();
    let mut ax = BrickedField::new(layout.clone());
    let mut r = BrickedField::new(layout.clone());
    let (alpha, beta, gamma) = coeffs();
    let pieces = layout.slots_intersecting(owned);

    // Candidate: applyOp + one pointwise pass updating x *and* r.
    let cand = time_median(opts.samples, || {
        x.as_mut_slice().copy_from_slice(x0.as_slice());
        timed(|| {
            apply_star7_bricked(&mut ax, &x, alpha, beta, owned);
            par_pointwise_mut2(&mut x, &mut r, &ax, &bf, &pieces, move |x, r, ax, b| {
                *r = b - ax;
                *x += gamma * (ax - b);
            });
        })
    });
    // Baseline: applyOp + smooth, then a second applyOp + residual pass.
    let base = time_median(opts.samples, || {
        x.as_mut_slice().copy_from_slice(x0.as_slice());
        timed(|| {
            apply_star7_bricked(&mut ax, &x, alpha, beta, owned);
            par_pointwise_mut1(&mut x, &ax, &bf, &pieces, move |x, ax, b| {
                *x += gamma * (ax - b);
            });
            apply_star7_bricked(&mut ax, &x, alpha, beta, owned);
            par_pointwise_mut1(&mut r, &ax, &bf, &pieces, move |r, ax, b| {
                *r = b - ax;
            });
        })
    });
    let threads = rayon::current_num_threads() as u64;
    finish(
        "smooth_residual_fused_vs_split",
        "smooth then residual",
        "fused smooth+residual",
        base,
        cand,
        None,
        json!({ "grid": n, "brick_dim": 8i64, "rayon_threads": threads,
                "transport": run_transport(), "ranks": run_ranks() }),
        opts,
    )
}

fn multismooth_at(n: i64, id: &'static str, floor: Option<f64>, opts: &GateOpts) -> BenchOut {
    let bd = 8i64;
    let owned = Box3::cube(n);
    let layout = mk_layout(n, bd);
    let x0 = BrickedField::from_fn(layout.clone(), init_x);
    let bf = BrickedField::from_fn(layout.clone(), init_b);
    let mut x = x0.clone();
    let mut r = BrickedField::new(layout.clone());
    let mut ax = BrickedField::new(layout.clone());
    let (alpha, beta, gamma) = coeffs();
    // The paper's 12 smooths as 3 fused groups of 4 (the solver default),
    // vs the identical logical schedule sweep-by-sweep: iteration k of a
    // group updates owned.shrink(k) — same points, same FLOPs.
    let (groups, depth) = (3usize, 4usize);
    let tile = fused_tile_cells(bd);

    // One untimed pass of each schedule first: with `--samples 1` (the
    // self-tests) the single timed sample must not carry the cold-cache /
    // first-allocation cost of whichever side runs first.
    fused_multismooth_bricked(
        &mut x,
        &bf,
        Some(&mut r),
        alpha,
        beta,
        gamma,
        owned,
        depth,
        tile,
    );
    apply_star7_bricked(&mut ax, &x, alpha, beta, owned);

    let mut last_stats = None;
    let cand = time_median(opts.samples, || {
        x.as_mut_slice().copy_from_slice(x0.as_slice());
        timed(|| {
            for _ in 0..groups {
                last_stats = Some(fused_multismooth_bricked(
                    &mut x,
                    &bf,
                    Some(&mut r),
                    alpha,
                    beta,
                    gamma,
                    owned,
                    depth,
                    tile,
                ));
            }
        })
    });
    let base = time_median(opts.samples, || {
        x.as_mut_slice().copy_from_slice(x0.as_slice());
        timed(|| {
            for _ in 0..groups {
                for k in 0..depth as i64 {
                    let rk = owned.shrink(k);
                    apply_star7_bricked(&mut ax, &x, alpha, beta, rk);
                    let pieces = layout.slots_intersecting(rk);
                    par_pointwise_mut2(&mut x, &mut r, &ax, &bf, &pieces, move |x, r, ax, b| {
                        *r = b - ax;
                        *x += gamma * (ax - b);
                    });
                }
            }
        })
    });
    let stats = last_stats.expect("fused executor ran");
    // `points_updated` already counts every point-iteration, so this is
    // doubles per point per smooth iteration — the sweep path moves ~7.
    let fused_dpp = stats.doubles_per_point();
    let threads = rayon::current_num_threads() as u64;
    finish(
        id,
        "sweep-by-sweep CA smooth",
        "fused multi-smooth",
        base,
        cand,
        floor,
        json!({
            "grid": n,
            "brick_dim": bd,
            "rayon_threads": threads,
            "smooths": (groups * depth) as u64,
            "fused_depth": depth as u64,
            "tile_cells": tile,
            "fused_doubles_per_point_per_iter": fused_dpp,
            "sweep_doubles_per_point_per_iter": 7.0f64,
            "transport": run_transport(),
            "ranks": run_ranks(),
        }),
        opts,
    )
}

/// Gated comparison at the cache-blocked size (see [`MULTISMOOTH_BLOCK`]).
fn bench_multismooth(opts: &GateOpts) -> BenchOut {
    multismooth_at(
        MULTISMOOTH_BLOCK,
        "multismooth_fused_vs_sweep",
        Some(MULTISMOOTH_FLOOR),
        opts,
    )
}

/// Ungated full-`--grid` twin of the fused-vs-sweep comparison.
fn bench_multismooth_stream(opts: &GateOpts) -> BenchOut {
    multismooth_at(opts.grid, "multismooth_fused_vs_sweep_stream", None, opts)
}

fn bench_exchange(opts: &GateOpts) -> BenchOut {
    let n = (opts.grid / 2).max(16);
    let v = Box3::cube(n);
    let time_gather = |ord: BrickOrdering, samples: usize| {
        let layout = Arc::new(BrickLayout::new(v, 8, 1, ord));
        let field = BrickedField::from_fn(layout.clone(), init_x);
        let sends: Vec<Vec<u32>> = DIRECTIONS_26
            .iter()
            .map(|&d| layout.send_slots(d))
            .collect();
        let mut buf = Vec::new();
        time_median(samples, || {
            timed(|| {
                for slots in &sends {
                    field.gather_bricks(slots, &mut buf);
                    std::hint::black_box(buf.len());
                }
            })
        })
    };
    let cand = time_gather(BrickOrdering::SurfaceMajor, opts.samples);
    let base = time_gather(BrickOrdering::Lexicographic, opts.samples);
    let threads = rayon::current_num_threads() as u64;
    finish(
        "exchange_packfree_vs_packed",
        "lexicographic gather",
        "surface-major gather",
        base,
        cand,
        None,
        json!({ "grid": n, "brick_dim": 8i64, "directions": 26u64, "rayon_threads": threads,
                "transport": run_transport(), "ranks": run_ranks() }),
        opts,
    )
}

fn bench_vcycle(opts: &GateOpts) -> BenchOut {
    let n = (opts.grid / 2).max(16);
    let decomp = Decomposition::new(Box3::cube(n), Point3::splat(1));
    let mut cfg = SolverConfig {
        num_levels: 3,
        tolerance: 0.0,
        max_vcycles: 2,
        brick_dim: 8,
        ..SolverConfig::test_default()
    };
    let solve = |cfg: SolverConfig, samples: usize| {
        let d = &decomp;
        time_median(samples, || {
            timed(|| {
                RankWorld::run(1, move |mut ctx| {
                    let mut s = GmgSolver::new(d.clone(), ctx.rank(), cfg);
                    s.solve(&mut ctx);
                });
            })
        })
    };
    let cand = solve(cfg, opts.samples);
    cfg.fused_smooths = 1;
    let base = solve(cfg, opts.samples);
    let threads = rayon::current_num_threads() as u64;
    finish(
        "vcycle_fused_vs_sweep",
        "V-cycle, sweep smoothing",
        "V-cycle, fused smoothing",
        base,
        cand,
        None,
        json!({ "grid": n, "levels": 3u64, "vcycles": 2u64, "rayon_threads": threads,
                "transport": run_transport(), "ranks": run_ranks() }),
        opts,
    )
}

/// Overhead of the gmg-live telemetry plane on a real solve: the same
/// fixed V-cycle run with and without a per-rank shipper attached to the
/// solver's progress hook. The candidate ships a beacon every cycle and
/// (delta period 0 → every beacon) a metrics delta into a live in-process
/// collector, metrics registry enabled on both sides so the comparison
/// isolates the *shipping*, not the metering.
fn bench_live_overhead(opts: &GateOpts) -> BenchOut {
    use gmg_live::{AlertConfig, Beacon, Collector, Shipper};
    let n = (opts.grid / 2).max(16);
    let decomp = Decomposition::new(Box3::cube(n), Point3::splat(1));
    let cfg = SolverConfig {
        num_levels: 3,
        tolerance: 0.0,
        max_vcycles: 2,
        brick_dim: 8,
        ..SolverConfig::test_default()
    };
    let was_enabled = gmg_metrics::enable();
    let solve = |with_live: bool, samples: usize| {
        let d = &decomp;
        time_median(samples, || {
            let collector = Collector::new(AlertConfig::default()).into_handle();
            timed(|| {
                RankWorld::run(1, move |mut ctx| {
                    let mut s = GmgSolver::new(d.clone(), ctx.rank(), cfg);
                    if with_live {
                        // Production cadence: a beacon every cycle (the
                        // hot path), deltas on the default 100 ms period
                        // — a per-cycle delta would make the measurement
                        // scale with whatever the process-global registry
                        // happens to hold, not with the shipper.
                        let mut shipper = Shipper::local(ctx.rank(), Arc::clone(&collector))
                            .expect("live enabled");
                        s.progress_hook = Some(Box::new(move |p| {
                            shipper.beacon(&Beacon {
                                rank: 0,
                                cycle: p.cycle as u64,
                                residual: p.residual,
                                epoch: p.epoch,
                                level_seconds: p.level_seconds.clone(),
                                done: false,
                            });
                        }));
                    }
                    s.solve(&mut ctx);
                });
            })
        })
    };
    // One untimed warmup of each twin: quick 1-sample runs would
    // otherwise charge first-run world setup to the candidate side.
    solve(true, 1);
    solve(false, 1);
    let cand = solve(true, opts.samples);
    let base = solve(false, opts.samples);
    if !was_enabled {
        gmg_metrics::disable();
    }
    let threads = rayon::current_num_threads() as u64;
    finish(
        "live_shipper_overhead",
        "V-cycles, no telemetry",
        "V-cycles + live shipper",
        base,
        cand,
        Some(LIVE_OVERHEAD_FLOOR),
        json!({ "grid": n, "levels": 3u64, "vcycles": 2u64, "rayon_threads": threads,
                "transport": run_transport(), "ranks": run_ranks() }),
        opts,
    )
}

/// Simulator throughput vs a fixed per-event budget: the candidate is
/// the measured wall time of the 1000-rank clock-only observatory
/// simulation, the baseline is [`SIM_EVENT_BUDGET_NS`] per simulated
/// event. Floor 1.0 ⇒ the simulator must beat its budget outright, so
/// the scaling observatory itself can't silently regress below
/// laptop-class feasibility.
fn bench_sim_throughput(opts: &GateOpts) -> BenchOut {
    let cfg = gmg_scale::ScaleConfig::observatory(gmg_machine::gpu::System::Perlmutter, 1000);
    let events = gmg_scale::simulate(&cfg).sim_events; // warmup + event count
    let cand = time_median(opts.samples, || {
        timed(|| {
            gmg_scale::simulate(&cfg);
        })
    });
    let base = Stats::synthetic(events as f64 * SIM_EVENT_BUDGET_NS * 1e-9, 0.0);
    let events_per_sec = events as f64 / cand.median;
    let threads = rayon::current_num_threads() as u64;
    finish(
        "sim_events_per_sec",
        "event budget",
        "schedule simulation",
        base,
        cand,
        Some(SIM_THROUGHPUT_FLOOR),
        json!({ "sim_ranks": 1000u64, "sim_events": events, "events_per_sec": events_per_sec,
                "budget_ns_per_event": SIM_EVENT_BUDGET_NS, "rayon_threads": threads,
                "transport": run_transport(), "ranks": run_ranks() }),
        opts,
    )
}

/// Hard floor of the [`bench_sim_throughput`] comparison (budget time /
/// measured time must be ≥ 1 — the simulator beats its budget).
pub const SIM_THROUGHPUT_FLOOR: f64 = 1.0;

/// Execution context recorded in every entry's extras: the comm transport
/// this process rides (`GMG_TRANSPORT`, default the in-process `thread`
/// world) and its world size (`GMG_PROC_NRANKS` when spawned as a
/// process-world rank, else 1).
fn run_transport() -> String {
    std::env::var("GMG_TRANSPORT").unwrap_or_else(|_| "thread".to_string())
}

fn run_ranks() -> u64 {
    std::env::var("GMG_PROC_NRANKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

#[allow(clippy::too_many_arguments)]
fn finish(
    id: &'static str,
    baseline_label: &'static str,
    candidate_label: &'static str,
    baseline: Stats,
    mut candidate: Stats,
    floor: Option<f64>,
    extra: Value,
    opts: &GateOpts,
) -> BenchOut {
    if opts.inject_slowdown_pct > 0.0 {
        let f = 1.0 + opts.inject_slowdown_pct / 100.0;
        candidate.median *= f;
        candidate.p50 *= f;
        candidate.p90 *= f;
        candidate.p99 *= f;
    }
    let ratio = baseline.median / candidate.median;
    BenchOut {
        id,
        baseline_label,
        candidate_label,
        baseline,
        candidate,
        ratio,
        floor,
        extra,
    }
}

/// Run the full suite.
pub fn run_suite(opts: &GateOpts) -> Vec<BenchOut> {
    crate::report::heading("perfgate — hot-kernel macro-benchmarks");
    let mut out = Vec::new();
    for (name, f) in [
        ("applyop", bench_applyop as fn(&GateOpts) -> BenchOut),
        ("applyop-stream", bench_applyop_stream),
        ("smooth+residual", bench_smooth_residual),
        ("multi-smooth", bench_multismooth),
        ("multi-smooth-stream", bench_multismooth_stream),
        ("exchange", bench_exchange),
        ("vcycle", bench_vcycle),
        ("live-overhead", bench_live_overhead),
        ("sim-throughput", bench_sim_throughput),
    ] {
        println!("running {name} ...");
        let b = f(opts);
        println!(
            "  {:<32} {:>9} vs {:>9}  ratio {:.3}{} (±{:.1}% MAD)",
            b.id,
            crate::report::fmt_time(b.candidate.median),
            crate::report::fmt_time(b.baseline.median),
            b.ratio,
            b.floor.map(|f| format!(" [floor {f}]")).unwrap_or_default(),
            100.0 * (b.baseline.rel_mad + b.candidate.rel_mad),
        );
        out.push(b);
    }
    out
}

/// A gate violation (printed and counted toward the exit code).
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    pub id: String,
    pub what: String,
}

/// Noise-widened regression tolerance for one comparison: 3× the *worst*
/// relative MAD in play (either side now, or the recorded entry), floored
/// at [`BASE_TOLERANCE`]. The worst component — not the sum — so one
/// noisy side widens the gate proportionally but three quiet-ish sides
/// cannot compound into a tolerance that swallows a real 30% regression.
pub fn tolerance(now: &BenchOut, then_rel_mad: f64) -> f64 {
    let worst = now
        .baseline
        .rel_mad
        .max(now.candidate.rel_mad)
        .max(then_rel_mad);
    BASE_TOLERANCE.max(3.0 * worst)
}

/// Apply the gate rules: hard floors, deterministic traffic invariants,
/// and regression against the latest trajectory entry (if present).
pub fn check(benches: &[BenchOut], trajectory: Option<&Value>) -> Vec<Violation> {
    let mut v = Vec::new();
    for b in benches {
        if let Some(floor) = b.floor {
            if b.ratio < floor {
                v.push(Violation {
                    id: b.id.to_string(),
                    what: format!("ratio {:.3} below hard floor {floor}", b.ratio),
                });
            }
        }
        if b.id == "multismooth_fused_vs_sweep" {
            let dpp = b.extra["fused_doubles_per_point_per_iter"]
                .as_f64()
                .unwrap_or(f64::INFINITY);
            if dpp >= 7.0 {
                v.push(Violation {
                    id: b.id.to_string(),
                    what: format!("fused traffic {dpp:.2} doubles/pt/iter not below sweep's 7"),
                });
            }
        }
        if let Some(t) = trajectory {
            let rows = match t["benchmarks"].as_array() {
                Some(r) => r,
                None => continue,
            };
            let prev = rows.iter().find(|r| r["id"].as_str() == Some(b.id));
            if let Some(prev) = prev {
                let (Some(prev_ratio), prev_mad) = (
                    prev["ratio"].as_f64(),
                    prev["rel_mad"].as_f64().unwrap_or(0.0),
                ) else {
                    continue;
                };
                let tol = tolerance(b, prev_mad);
                if b.ratio < prev_ratio * (1.0 - tol) {
                    v.push(Violation {
                        id: b.id.to_string(),
                        what: format!(
                            "ratio {:.3} regressed {:.0}% vs trajectory {:.3} (tolerance {:.0}%)",
                            b.ratio,
                            100.0 * (1.0 - b.ratio / prev_ratio),
                            prev_ratio,
                            100.0 * tol
                        ),
                    });
                }
            }
        }
    }
    v
}

/// Serialize one sample histogram: summary fields plus the sparse
/// `[bucket_index, count]` pairs `gmg_metrics::Histogram::from_parts`
/// reconstructs from.
fn hist_to_json(h: &gmg_metrics::Histogram) -> Value {
    let buckets: Vec<Value> = h
        .nonzero_buckets()
        .map(|(i, c)| json!(vec![i as u64, c]))
        .collect();
    json!({
        "count": h.count(),
        "sum_ns": h.sum(),
        "min_ns": h.min().unwrap_or(0),
        "max_ns": h.max().unwrap_or(0),
        "buckets": buckets,
    })
}

/// Serialize one trajectory entry. Schema 2 adds per-side p50/p90/p99 and
/// the nanosecond sample histograms; `check()` reads every field
/// defensively, so schema-1 entries (BENCH_1) still gate cleanly.
pub fn entry_to_json(opts: &GateOpts, index: u64, benches: &[BenchOut]) -> Value {
    let rows: Vec<Value> = benches
        .iter()
        .map(|b| {
            json!({
                "id": b.id,
                "baseline": b.baseline_label,
                "candidate": b.candidate_label,
                "baseline_seconds": b.baseline.median,
                "candidate_seconds": b.candidate.median,
                "baseline_p50": b.baseline.p50,
                "baseline_p90": b.baseline.p90,
                "baseline_p99": b.baseline.p99,
                "candidate_p50": b.candidate.p50,
                "candidate_p90": b.candidate.p90,
                "candidate_p99": b.candidate.p99,
                "baseline_hist": hist_to_json(&b.baseline.hist),
                "candidate_hist": hist_to_json(&b.candidate.hist),
                "ratio": b.ratio,
                "rel_mad": b.baseline.rel_mad.max(b.candidate.rel_mad),
                "floor": b.floor.unwrap_or(0.0),
                "extra": b.extra.clone(),
            })
        })
        .collect();
    json!({
        "schema": 2u64,
        "entry": index,
        "grid": opts.grid,
        "samples": opts.samples,
        "threads": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        "injected_slowdown_pct": opts.inject_slowdown_pct,
        "benchmarks": rows,
    })
}

/// Full perfgate run; returns the process exit code.
pub fn run(opts: &GateOpts) -> i32 {
    let dir = bench_dir();
    let benches = run_suite(opts);
    let latest = latest_entry(&dir);
    let trajectory = latest.as_ref().map(|(_, v)| v);
    let violations = check(&benches, trajectory);
    for v in &violations {
        eprintln!("VIOLATION [{}]: {}", v.id, v.what);
    }
    if !opts.check_only {
        let index = latest.map(|(i, _)| i).unwrap_or(0) + 1;
        let entry = entry_to_json(opts, index, &benches);
        let text = serde_json::to_string_pretty(&entry).expect("serialize entry");
        let path = crate::report::save_raw_in(&dir, &format!("BENCH_{index}.json"), &(text + "\n"));
        println!("[appended trajectory entry {path:?}]");
    }
    if violations.is_empty() {
        println!("perfgate: PASS ({} benchmarks)", benches.len());
        0
    } else {
        eprintln!("perfgate: FAIL ({} violations)", violations.len());
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> GateOpts {
        GateOpts {
            grid: 32,
            samples: 3,
            inject_slowdown_pct: 0.0,
            check_only: true,
        }
    }

    #[test]
    fn median_and_mad_are_robust() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        // One wild outlier barely moves either statistic.
        assert_eq!(median(&[1.0, 1.1, 0.9, 100.0, 1.0]), 1.0);
        assert!(mad(&[1.0, 1.1, 0.9, 100.0, 1.0]) <= 0.1 + 1e-12);
    }

    #[test]
    fn suite_runs_and_produces_sane_ratios() {
        let opts = tiny_opts();
        let benches = run_suite(&opts);
        assert_eq!(benches.len(), 9);
        for b in &benches {
            assert!(b.ratio.is_finite() && b.ratio > 0.0, "{}: {:?}", b.id, b);
            assert!(b.baseline.median > 0.0 && b.candidate.median > 0.0);
            // Every entry's extras must name the execution context
            // (exact values depend on the harness environment).
            assert!(b.extra["transport"].as_str().is_some(), "{}", b.id);
            assert!(b.extra["ranks"].as_u64().is_some(), "{}", b.id);
        }
        // The traffic invariant is deterministic at any size.
        let ms = benches
            .iter()
            .find(|b| b.id == "multismooth_fused_vs_sweep")
            .unwrap();
        let dpp = ms.extra["fused_doubles_per_point_per_iter"]
            .as_f64()
            .unwrap();
        assert!(dpp < 7.0, "fused traffic model {dpp} >= sweep");
    }

    #[test]
    fn applyop_entry_carries_phase_breakdown() {
        let b = bench_applyop(&tiny_opts());
        let bd = &b.extra["phase_breakdown"];
        assert!(bd["samples"].as_u64().unwrap() > 0, "{bd:?}");
        assert!(bd["coverage"].as_f64().unwrap() > 0.5, "{bd:?}");
        let phases = bd["phases"].as_array().unwrap();
        assert!(
            phases
                .iter()
                .any(|p| p["phase"].as_str() == Some("interior@b8")),
            "{phases:?}"
        );
        let total: f64 = phases.iter().map(|p| p["share"].as_f64().unwrap()).sum();
        assert!(total <= 1.0 + 1e-9, "shares sum to {total}");
    }

    #[test]
    fn injected_slowdown_trips_the_gate() {
        // Synthetic benches: no timing noise, so the gate math is exact.
        let mk = |ratio: f64, floor: Option<f64>| BenchOut {
            id: "multismooth_fused_vs_sweep",
            baseline_label: "b",
            candidate_label: "c",
            baseline: Stats::synthetic(ratio, 0.0),
            candidate: Stats::synthetic(1.0, 0.0),
            ratio,
            floor,
            extra: json!({ "fused_doubles_per_point_per_iter": 3.5f64 }),
        };
        // Healthy: above floor, matches trajectory.
        let prev = entry_to_json(&tiny_opts(), 1, &[mk(1.3, Some(MULTISMOOTH_FLOOR))]);
        assert!(check(&[mk(1.3, Some(MULTISMOOTH_FLOOR))], Some(&prev)).is_empty());
        // A 30% injected slowdown divides the ratio by 1.3: floor AND
        // trajectory regression both fire.
        let slowed = mk(1.3 / 1.3, Some(MULTISMOOTH_FLOOR));
        let v = check(&[slowed], Some(&prev));
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].what.contains("hard floor"));
        assert!(v[1].what.contains("regressed"));
    }

    #[test]
    fn applyop_floor_fires_below_parity() {
        // The bricked kernel losing to the array kernel is a hard gate
        // violation regardless of trajectory history.
        let mk = |ratio: f64| BenchOut {
            id: "applyop_bricked_vs_array",
            baseline_label: "b",
            candidate_label: "c",
            baseline: Stats::synthetic(ratio, 0.0),
            candidate: Stats::synthetic(1.0, 0.0),
            ratio,
            floor: Some(APPLYOP_FLOOR),
            extra: json!({}),
        };
        assert!(check(&[mk(1.2)], None).is_empty());
        let v = check(&[mk(0.9)], None);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].what.contains("hard floor"));
    }

    #[test]
    fn traffic_invariant_fires_when_model_regresses() {
        let bad = BenchOut {
            id: "multismooth_fused_vs_sweep",
            baseline_label: "b",
            candidate_label: "c",
            baseline: Stats::synthetic(2.0, 0.0),
            candidate: Stats::synthetic(1.0, 0.0),
            ratio: 2.0,
            floor: None,
            extra: json!({ "fused_doubles_per_point_per_iter": 7.5f64 }),
        };
        let v = check(&[bad], None);
        assert_eq!(v.len(), 1);
        assert!(v[0].what.contains("doubles/pt"));
    }

    #[test]
    fn noisy_samples_widen_the_tolerance() {
        let noisy = BenchOut {
            id: "vcycle_fused_vs_sweep",
            baseline_label: "b",
            candidate_label: "c",
            baseline: Stats::synthetic(1.0, 0.08),
            candidate: Stats::synthetic(1.0, 0.08),
            ratio: 1.0,
            floor: None,
            extra: json!({}),
        };
        // 3·max(0.08, 0.08, 0.04) = 24% — above the 10% base tolerance,
        // but the components do not compound.
        assert!((tolerance(&noisy, 0.04) - 0.24).abs() < 1e-12);
    }

    #[test]
    fn stats_record_quantiles_and_histogram() {
        let s = stats_of(&[0.001, 0.002, 0.003, 0.010]);
        assert_eq!(s.hist.count(), 4);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99, "{s:?}");
        // Quantiles are bucket-midpoint estimates clamped to the observed
        // sample range [1ms, 10ms].
        assert!(s.p50 >= 0.0009 && s.p99 <= 0.0101, "{s:?}");
        let entry = entry_to_json(
            &tiny_opts(),
            1,
            &[BenchOut {
                id: "vcycle_fused_vs_sweep",
                baseline_label: "b",
                candidate_label: "c",
                baseline: s.clone(),
                candidate: s.clone(),
                ratio: 1.0,
                floor: None,
                extra: json!({}),
            }],
        );
        assert_eq!(entry["schema"].as_u64(), Some(2));
        let row = &entry["benchmarks"].as_array().unwrap()[0];
        assert_eq!(row["candidate_hist"]["count"].as_u64(), Some(4));
        assert!(row["candidate_p99"].as_f64().unwrap() > 0.0);
        // The sparse bucket pairs reconstruct the identical histogram.
        let h = &row["candidate_hist"];
        let pairs: Vec<(usize, u64)> = h["buckets"]
            .as_array()
            .unwrap()
            .iter()
            .map(|p| {
                let p = p.as_array().unwrap();
                (p[0].as_u64().unwrap() as usize, p[1].as_u64().unwrap())
            })
            .collect();
        let rebuilt = gmg_metrics::Histogram::from_parts(
            &pairs,
            h["count"].as_u64().unwrap(),
            h["sum_ns"].as_u64().unwrap(),
            h["min_ns"].as_u64().unwrap(),
            h["max_ns"].as_u64().unwrap(),
        );
        assert_eq!(rebuilt, s.hist);
    }

    #[test]
    fn schema1_trajectory_entries_still_gate() {
        // BENCH_1 predates the quantile/histogram fields; the gate must
        // read it exactly as before.
        let prev: Value = serde_json::from_str(
            r#"{"schema":1,"entry":1,"benchmarks":[
                {"id":"vcycle_fused_vs_sweep","ratio":1.2,"rel_mad":0.0}]}"#,
        )
        .unwrap();
        let mk = |ratio: f64| BenchOut {
            id: "vcycle_fused_vs_sweep",
            baseline_label: "b",
            candidate_label: "c",
            baseline: Stats::synthetic(ratio, 0.0),
            candidate: Stats::synthetic(1.0, 0.0),
            ratio,
            floor: None,
            extra: json!({}),
        };
        assert!(check(&[mk(1.19)], Some(&prev)).is_empty());
        let v = check(&[mk(0.9)], Some(&prev));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].what.contains("regressed"));
    }

    #[test]
    fn trajectory_files_index_and_roundtrip() {
        let dir = std::env::temp_dir().join("gmg_perfgate_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(latest_entry(&dir).is_none());
        let opts = tiny_opts();
        let b = run_suite(&GateOpts {
            grid: 16,
            samples: 1,
            ..opts
        });
        for i in 1..=2u64 {
            let entry = entry_to_json(&opts, i, &b);
            let text = serde_json::to_string_pretty(&entry).unwrap();
            crate::report::save_raw_in(&dir, &format!("BENCH_{i}.json"), &text);
        }
        let (i, v) = latest_entry(&dir).unwrap();
        assert_eq!(i, 2);
        assert_eq!(v["entry"].as_u64(), Some(2));
        let rows = v["benchmarks"].as_array().unwrap();
        assert_eq!(rows.len(), 9);
        assert_eq!(rows[0]["id"].as_str(), Some("applyop_bricked_vs_array"));
        // And the fresh run gates cleanly against its own entry.
        assert!(check(&b, Some(&v)).is_empty());
    }
}
