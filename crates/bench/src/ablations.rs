//! Ablation studies for the design choices called out in the paper's
//! Section V (and its discussion-section proposals):
//!
//! 1. communication-avoiding smoothing on/off,
//! 2. GPU-aware MPI vs host staging,
//! 3. the `FI_CXI_RDZV_*` rendezvous-threshold settings,
//! 4. brick size (4³ vs 8³ vs 16³ ghost depth trade-off),
//! 5. surface-major vs lexicographic brick ordering (pack-free property),
//! 6. CPU offload of latency-bound coarse levels (future-work remedy).

use gmg_brick::{BrickLayout, BrickOrdering};
use gmg_comm::model::NetworkModel;
use gmg_comm::plan::BrickExchangePlan;
use gmg_core::schedule::{simulate, ScheduleConfig};
use gmg_machine::gpu::System;
use gmg_mesh::ghost::DIRECTIONS_26;
use gmg_mesh::Point3;
use serde_json::{json, Value};

/// Ablation 1: CA on/off — total and coarsest-level time per system.
pub fn communication_avoiding() -> Value {
    let mut rows = Vec::new();
    for sys in System::ALL {
        let on = simulate(&ScheduleConfig::paper_section6(sys));
        let mut cfg = ScheduleConfig::paper_section6(sys);
        cfg.communication_avoiding = false;
        let off = simulate(&cfg);
        let last = on.levels.len() - 1;
        rows.push(json!({
            "system": format!("{sys:?}"),
            "total_on_s": on.total_seconds,
            "total_off_s": off.total_seconds,
            "coarsest_on_s": on.levels[last].total_seconds,
            "coarsest_off_s": off.levels[last].total_seconds,
            "exchanges_on": on.levels.iter().map(|l| l.exchanges).sum::<usize>(),
            "exchanges_off": off.levels.iter().map(|l| l.exchanges).sum::<usize>(),
        }));
    }
    json!({ "rows": rows })
}

/// Ablation 2: GPU-aware MPI vs host staging, per system.
pub fn gpu_aware() -> Value {
    let mut rows = Vec::new();
    for sys in System::ALL {
        let mut on = ScheduleConfig::paper_section6(sys);
        on.gpu_aware_override = Some(true);
        let mut off = on.clone();
        off.gpu_aware_override = Some(false);
        rows.push(json!({
            "system": format!("{sys:?}"),
            "gpu_aware_s": simulate(&on).total_seconds,
            "host_staged_s": simulate(&off).total_seconds,
        }));
    }
    json!({ "rows": rows })
}

/// Ablation 3: rendezvous threshold sweep — coarse-level exchange time on
/// Frontier (where the paper observed the CXI settings matter most).
pub fn rendezvous_threshold() -> Value {
    let plan = BrickExchangePlan::new(Point3::splat(32), 8, 1, BrickOrdering::SurfaceMajor);
    let mut rows = Vec::new();
    for threshold in [0usize, 4 << 10, 16 << 10, 64 << 10, usize::MAX] {
        let net = NetworkModel::frontier().with_rendezvous_threshold(threshold);
        rows.push(json!({
            "threshold": if threshold == usize::MAX { -1i64 } else { threshold as i64 },
            "exchange_us": net.exchange_time_s(&plan.message_bytes) * 1e6,
        }));
    }
    json!({ "level_extent": 32, "rows": rows })
}

/// Ablation 4: brick size — ghost depth vs redundant work vs message size.
pub fn brick_size() -> Value {
    let mut rows = Vec::new();
    for bd in [4i64, 8, 16] {
        // The trade-off is purely geometric (message bytes, exchange
        // frequency, redundant ghost work), so it is derived from the
        // exchange plan directly rather than a full schedule run.
        let plan = BrickExchangePlan::new(Point3::splat(512), bd, 1, BrickOrdering::SurfaceMajor);
        let exchanges_per_24_smooths = (24 + bd - 1) / bd;
        // Mean of ((512 + 2(m-1))³/512³ − 1) over margins m = bd..1.
        let mut acc = 0.0;
        for m in 1..=bd {
            let g = 512.0 + 2.0 * (m as f64 - 1.0);
            acc += (g / 512.0).powi(3) - 1.0;
        }
        let redundant_compute_fraction = acc / bd as f64;
        rows.push(json!({
            "brick_dim": bd,
            "ghost_cells": bd,
            "bytes_per_exchange": plan.total_bytes(),
            "exchanges_per_24_smooths": exchanges_per_24_smooths,
            "bytes_per_24_smooths": plan.total_bytes() as i64 * exchanges_per_24_smooths,
            "redundant_compute_fraction": redundant_compute_fraction,
        }));
    }
    json!({ "rows": rows })
}

/// Ablation 5: ordering — contiguous-run counts for a full 26-neighbor
/// exchange (the pack-free figure of merit).
pub fn ordering_runs() -> Value {
    let mut rows = Vec::new();
    for (name, ord) in [
        ("surface-major", BrickOrdering::SurfaceMajor),
        ("lexicographic", BrickOrdering::Lexicographic),
    ] {
        let layout = BrickLayout::new(gmg_mesh::Box3::cube(64), 8, 1, ord);
        let send: usize = DIRECTIONS_26
            .iter()
            .map(|&d| BrickLayout::contiguous_runs(&layout.send_slots(d)).len())
            .sum();
        let recv: usize = DIRECTIONS_26
            .iter()
            .map(|&d| BrickLayout::contiguous_runs(&layout.ghost_slots(d)).len())
            .sum();
        rows.push(json!({
            "ordering": name,
            "send_runs": send,
            "recv_runs": recv,
            "total_runs": send + recv,
        }));
    }
    json!({ "rows": rows })
}

/// Ablation 6: CPU offload of coarse levels in the strong-scaling tail.
pub fn cpu_offload() -> Value {
    let mk = |offload: Option<usize>| {
        let mut c = ScheduleConfig::paper_section6(System::Perlmutter);
        c.nodes = 128;
        c.ranks_per_node = 4;
        c.sub_extent = Point3::splat(128);
        c.num_levels = 5;
        c.cpu_offload_below_cells = offload;
        simulate(&c)
    };
    let plain = mk(None);
    let offloaded = mk(Some(32 * 32 * 32));
    json!({
        "config": "strong-scaling tail: 512 ranks, 128^3/rank, offload levels <= 32^3",
        "gpu_only_s": plain.total_seconds,
        "cpu_offload_s": offloaded.total_seconds,
        "speedup": plain.total_seconds / offloaded.total_seconds,
        "coarse_level_seconds_gpu": plain.levels.iter().skip(2).map(|l| l.total_seconds).sum::<f64>(),
        "coarse_level_seconds_offload": offloaded.levels.iter().skip(2).map(|l| l.total_seconds).sum::<f64>(),
    })
}

/// Run every ablation, print a condensed report, return the JSON bundle.
pub fn run() -> Value {
    crate::report::heading("Ablations — Section V optimizations, one at a time");
    let ca = communication_avoiding();
    println!("\n1. communication-avoiding (total seconds on/off, exchange counts):");
    for r in ca["rows"].as_array().unwrap() {
        println!(
            "   {:<12} {:>8.2}s -> {:>8.2}s without CA   (exchanges {} -> {})",
            r["system"].as_str().unwrap(),
            r["total_on_s"].as_f64().unwrap(),
            r["total_off_s"].as_f64().unwrap(),
            r["exchanges_on"],
            r["exchanges_off"],
        );
    }
    let ga = gpu_aware();
    println!("\n2. GPU-aware MPI vs host staging (total seconds):");
    for r in ga["rows"].as_array().unwrap() {
        println!(
            "   {:<12} aware {:>8.2}s   staged {:>8.2}s",
            r["system"].as_str().unwrap(),
            r["gpu_aware_s"].as_f64().unwrap(),
            r["host_staged_s"].as_f64().unwrap(),
        );
    }
    let rz = rendezvous_threshold();
    println!("\n3. rendezvous threshold (Frontier, 32^3-level exchange):");
    for r in rz["rows"].as_array().unwrap() {
        println!(
            "   threshold {:>8}: {:>8.1} µs",
            r["threshold"],
            r["exchange_us"].as_f64().unwrap()
        );
    }
    let bs = brick_size();
    println!("\n4. brick size (512^3 level, 24 smooths):");
    for r in bs["rows"].as_array().unwrap() {
        println!(
            "   {}³: {:>6.1} MB/exchange × {} exchanges, redundant compute {:>4.1}%",
            r["brick_dim"],
            r["bytes_per_exchange"].as_i64().unwrap() as f64 / 1e6,
            r["exchanges_per_24_smooths"],
            r["redundant_compute_fraction"].as_f64().unwrap() * 100.0
        );
    }
    let runs = ordering_runs();
    println!("\n5. ordering (26-neighbor exchange, 64^3 of 8^3 bricks):");
    for r in runs["rows"].as_array().unwrap() {
        println!(
            "   {:<14} send {:>4} + recv {:>3} = {:>4} contiguous runs",
            r["ordering"].as_str().unwrap(),
            r["send_runs"],
            r["recv_runs"],
            r["total_runs"]
        );
    }
    let off = cpu_offload();
    println!(
        "\n6. CPU offload of coarse levels (strong-scaling tail): {:.3}s -> {:.3}s ({:.2}x)",
        off["gpu_only_s"].as_f64().unwrap(),
        off["cpu_offload_s"].as_f64().unwrap(),
        off["speedup"].as_f64().unwrap()
    );
    json!({
        "communication_avoiding": ca,
        "gpu_aware": ga,
        "rendezvous_threshold": rz,
        "brick_size": bs,
        "ordering_runs": runs,
        "cpu_offload": off,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ca_always_wins_overall() {
        let v = communication_avoiding();
        for r in v["rows"].as_array().unwrap() {
            assert!(r["total_on_s"].as_f64().unwrap() < r["total_off_s"].as_f64().unwrap());
            assert!(r["exchanges_on"].as_u64().unwrap() < r["exchanges_off"].as_u64().unwrap());
        }
    }

    #[test]
    fn gpu_aware_always_wins() {
        let v = gpu_aware();
        for r in v["rows"].as_array().unwrap() {
            assert!(r["gpu_aware_s"].as_f64().unwrap() < r["host_staged_s"].as_f64().unwrap());
        }
    }

    #[test]
    fn forced_rendezvous_fastest_for_small_messages() {
        let v = rendezvous_threshold();
        let rows = v["rows"].as_array().unwrap();
        let t0 = rows[0]["exchange_us"].as_f64().unwrap(); // threshold 0
        let teager = rows.last().unwrap()["exchange_us"].as_f64().unwrap(); // all eager
        assert!(t0 < teager, "forced rendezvous {t0} vs all-eager {teager}");
    }

    #[test]
    fn bigger_bricks_fewer_exchanges_more_redundancy() {
        let v = brick_size();
        let rows = v["rows"].as_array().unwrap();
        let ex: Vec<i64> = rows
            .iter()
            .map(|r| r["exchanges_per_24_smooths"].as_i64().unwrap())
            .collect();
        assert!(ex[0] > ex[1] && ex[1] > ex[2]);
        let red: Vec<f64> = rows
            .iter()
            .map(|r| r["redundant_compute_fraction"].as_f64().unwrap())
            .collect();
        assert!(red[0] < red[1] && red[1] < red[2]);
    }

    #[test]
    fn surface_major_is_pack_free() {
        let v = ordering_runs();
        let rows = v["rows"].as_array().unwrap();
        assert_eq!(rows[0]["recv_runs"].as_u64().unwrap(), 26);
        assert!(
            rows[1]["total_runs"].as_u64().unwrap() > 3 * rows[0]["total_runs"].as_u64().unwrap()
        );
    }

    #[test]
    fn cpu_offload_speedup_above_one() {
        let v = cpu_offload();
        assert!(v["speedup"].as_f64().unwrap() > 1.0);
    }
}
