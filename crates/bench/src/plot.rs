//! Minimal ASCII plotting for the figure harnesses: log-log scatter/line
//! charts and horizontal bar charts rendered to stdout, so the regenerated
//! figures are *visible*, not just tabulated.

/// A named series of `(x, y)` points.
#[derive(Clone, Debug)]
pub struct Series {
    pub name: String,
    pub points: Vec<(f64, f64)>,
    /// Glyph used for this series' markers.
    pub glyph: char,
}

impl Series {
    /// Build a series from points.
    pub fn new(name: impl Into<String>, glyph: char, points: Vec<(f64, f64)>) -> Self {
        Self {
            name: name.into(),
            points,
            glyph,
        }
    }
}

fn log_span(vals: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in vals {
        if v > 0.0 && v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    assert!(lo.is_finite() && hi.is_finite(), "no positive data to plot");
    if lo == hi {
        hi = lo * 10.0;
    }
    (lo.log10(), hi.log10())
}

/// Render a log-log chart of the series into a `width × height` character
/// grid (plus axes). Returns the rendered string.
pub fn loglog(title: &str, series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 10 && height >= 4);
    let (x0, x1) = log_span(series.iter().flat_map(|s| s.points.iter().map(|p| p.0)));
    let (y0, y1) = log_span(series.iter().flat_map(|s| s.points.iter().map(|p| p.1)));
    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        for &(x, y) in &s.points {
            if x <= 0.0 || y <= 0.0 {
                continue;
            }
            let cx = ((x.log10() - x0) / (x1 - x0) * (width - 1) as f64).round() as usize;
            let cy = ((y.log10() - y0) / (y1 - y0) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = s.glyph;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!("{:>9.2e} ┤", 10f64.powf(y1)));
    out.push_str(&grid[0].iter().collect::<String>());
    out.push('\n');
    for row in &grid[1..height - 1] {
        out.push_str("          │");
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("{:>9.2e} ┤", 10f64.powf(y0)));
    out.push_str(&grid[height - 1].iter().collect::<String>());
    out.push('\n');
    out.push_str("          └");
    out.push_str(&"─".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "           {:<.2e}{}{:>.2e}\n",
        10f64.powf(x0),
        " ".repeat(width.saturating_sub(18)),
        10f64.powf(x1)
    ));
    for s in series {
        out.push_str(&format!("           {} {}\n", s.glyph, s.name));
    }
    out
}

/// Render a horizontal bar chart of `(label, value)` pairs, scaled to
/// `width` characters at the maximum value.
pub fn bars(title: &str, rows: &[(String, f64)], width: usize) -> String {
    let max = rows.iter().map(|r| r.1).fold(0.0f64, f64::max).max(1e-300);
    let label_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
    let mut out = format!("{title}\n");
    for (label, v) in rows {
        let n = ((v / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "  {label:<label_w$} ┤{} {v:.3}\n",
            "█".repeat(n.max(if *v > 0.0 { 1 } else { 0 }))
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loglog_places_extremes_on_axes() {
        let s = Series::new("t", '*', vec![(1.0, 1.0), (1000.0, 1e6)]);
        let out = loglog("test", &[s], 40, 10);
        let lines: Vec<&str> = out.lines().collect();
        // Title, 10 grid rows, axis, x labels, legend.
        assert_eq!(lines[0], "test");
        // Min point lands bottom-left, max top-right.
        assert!(lines[1].ends_with('*') || lines[1].trim_end().ends_with('*'));
        assert!(lines[10].contains('*'));
        assert!(out.contains("* t"));
    }

    #[test]
    fn loglog_multiple_series_distinct_glyphs() {
        let a = Series::new("a", 'o', vec![(1.0, 10.0), (10.0, 100.0)]);
        let b = Series::new("b", 'x', vec![(1.0, 20.0), (10.0, 50.0)]);
        let out = loglog("two", &[a, b], 30, 8);
        assert!(out.contains('o') && out.contains('x'));
    }

    #[test]
    #[should_panic]
    fn loglog_rejects_empty() {
        loglog("empty", &[Series::new("e", '*', vec![])], 30, 8);
    }

    #[test]
    fn bars_scale_to_width() {
        let rows = vec![("alpha".to_string(), 2.0), ("beta".to_string(), 1.0)];
        let out = bars("bars", &rows, 20);
        let alpha_len = out.lines().nth(1).unwrap().matches('█').count();
        let beta_len = out.lines().nth(2).unwrap().matches('█').count();
        assert_eq!(alpha_len, 20);
        assert_eq!(beta_len, 10);
    }

    #[test]
    fn bars_zero_value_has_no_block() {
        let rows = vec![("z".to_string(), 0.0), ("one".to_string(), 1.0)];
        let out = bars("b", &rows, 10);
        assert!(!out.lines().nth(1).unwrap().contains('█'));
    }
}
