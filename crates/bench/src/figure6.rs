//! Figure 6: exchange bandwidth (GB/s) per V-cycle level against the
//! latency-throughput model, single NIC per rank.

use gmg_brick::BrickOrdering;
use gmg_comm::model::NetworkModel;
use gmg_comm::plan::BrickExchangePlan;
use gmg_machine::gpu::System;
use gmg_mesh::Point3;
use serde_json::{json, Value};

/// One system's exchange series over the V-cycle levels.
pub struct ExchangeSeries {
    pub system: System,
    /// `(total message bytes, GB/s)` per level, finest first.
    pub samples: Vec<(usize, f64)>,
    /// Model-equivalent α (s) and β (GB/s) for a 26-message exchange.
    pub alpha_s: f64,
    pub beta_gbs: f64,
}

fn network_for(system: System) -> NetworkModel {
    match system {
        System::Perlmutter => NetworkModel::perlmutter(),
        System::Frontier => NetworkModel::frontier(),
        System::Sunspot => NetworkModel::sunspot(),
    }
}

/// Build one system's series (512³ per rank, brick ghost exchange at each
/// level, brick dim from the machine model).
pub fn series(system: System) -> ExchangeSeries {
    let net = network_for(system);
    let bd = system.gpu().optimal_brick_dim;
    let samples = (0..6)
        .map(|l| {
            let n = 512i64 >> l;
            let plan =
                BrickExchangePlan::new(Point3::splat(n), bd.min(n), 1, BrickOrdering::SurfaceMajor);
            let gbs = net.exchange_gbs(&plan.message_bytes);
            (plan.total_bytes(), gbs)
        })
        .collect();
    let (alpha_s, beta_gbs) = net.effective_alpha_beta(26);
    ExchangeSeries {
        system,
        samples,
        alpha_s,
        beta_gbs,
    }
}

/// Run the harness.
pub fn run() -> Value {
    crate::report::heading("Figure 6 — exchange GB/s vs total message size (single NIC)");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>11} {:>9}",
        "system", "L0", "L1", "L2", "L3", "L4", "L5", "alpha", "beta"
    );
    let mut out = Vec::new();
    for sys in System::ALL {
        let s = series(sys);
        print!("{:<12}", format!("{:?}", s.system));
        for (_, gbs) in &s.samples {
            print!(" {gbs:>12.2}");
        }
        println!("  {:>8.0} µs {:>6.1} GB/s", s.alpha_s * 1e6, s.beta_gbs);
        out.push(json!({
            "system": format!("{:?}", s.system),
            "total_bytes": s.samples.iter().map(|(b, _)| b).collect::<Vec<_>>(),
            "gbs": s.samples.iter().map(|(_, g)| g).collect::<Vec<_>>(),
            "alpha_us": s.alpha_s * 1e6,
            "beta_gbs": s.beta_gbs,
            "nic_peak_gbs": 25.0,
        }));
    }
    println!("\ntheoretical NIC ceiling: 25 GB/s (Slingshot 11)");
    let plot_series: Vec<crate::plot::Series> = System::ALL
        .iter()
        .zip(['P', 'F', 'S'])
        .map(|(&sys, glyph)| {
            let s = series(sys);
            crate::plot::Series::new(
                format!("{sys:?}"),
                glyph,
                s.samples.iter().map(|&(b, g)| (b as f64, g)).collect(),
            )
        })
        .collect();
    println!(
        "\n{}",
        crate::plot::loglog("exchange GB/s vs total message bytes", &plot_series, 60, 12)
    );
    json!({ "series": out })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_best_sunspot_worst() {
        let f = series(System::Frontier);
        let p = series(System::Perlmutter);
        let s = series(System::Sunspot);
        // Paper: Frontier ~16 GB/s best, Perlmutter close behind, Sunspot
        // behind (no GPU-aware MPI); peak bandwidths 7–16 GB/s.
        assert!(f.samples[0].1 > p.samples[0].1);
        assert!(p.samples[0].1 > s.samples[0].1);
        assert!(f.beta_gbs <= 16.5 && f.beta_gbs > 14.0);
        assert!((6.0..15.0).contains(&s.beta_gbs));
        assert!((6.0..15.0).contains(&p.beta_gbs));
    }

    #[test]
    fn latency_dominates_below_one_megabyte() {
        // Paper: latency dominates for total message size < 1 MB.
        for sys in System::ALL {
            let s = series(sys);
            for &(bytes, gbs) in &s.samples {
                if bytes < 1 << 20 {
                    assert!(
                        gbs < 0.5 * s.beta_gbs,
                        "{sys:?}: {bytes}B at {gbs:.1} GB/s should be latency-bound"
                    );
                }
            }
        }
    }

    #[test]
    fn all_below_nic_peak() {
        for sys in System::ALL {
            for (_, gbs) in series(sys).samples {
                assert!(gbs < 25.0);
            }
        }
    }
}
