//! Roofline-aware profiling harness: run a traced distributed solve, export
//! a Perfetto-loadable trace, and cross-check the trace-derived per-op time
//! fractions against the solver's own [`OpTimer`] report.
//!
//! Run: `cargo run --release -p gmg-bench --bin profile`. The Chrome
//! trace-event JSON lands in `results/profile_trace.json`; open it at
//! <https://ui.perfetto.dev> to see one process per rank with separate
//! compute and comm tracks.
//!
//! Any other harness binary can be traced too by setting
//! `GMG_TRACE=<path>` in the environment — see [`with_env_trace`].
//!
//! [`OpTimer`]: gmg_core::timers::OpTimer

use gmg_comm::runtime::RankWorld;
use gmg_core::solver::{GmgSolver, SolverConfig};
use gmg_core::timers::TimerReport;
use gmg_machine::microbench::{measure_host, HostRoofline};
use gmg_mesh::{Box3, Decomposition, Point3};
use gmg_trace::TraceSummary;
use serde_json::{json, Value};
use std::path::{Path, PathBuf};

/// If `GMG_TRACE=<path>` is set, run `f` under a trace capture and write the
/// resulting Chrome trace-event JSON to `<path>`; otherwise run `f` directly
/// (tracing stays disabled, so instrumented code pays only a relaxed atomic
/// load). Harness binaries wrap their `run()` in this.
pub fn with_env_trace<T>(f: impl FnOnce() -> T) -> T {
    with_trace_to(std::env::var_os("GMG_TRACE").map(PathBuf::from), f)
}

/// Env-independent core of [`with_env_trace`]: trace to `path` if given.
pub fn with_trace_to<T>(path: Option<PathBuf>, f: impl FnOnce() -> T) -> T {
    let Some(path) = path else { return f() };
    let (out, trace) = gmg_trace::capture(f);
    // Route through the shared writer so directory creation and write
    // errors behave exactly like every other results artifact.
    let dir = crate::report::ensure_dir(Some(
        path.parent()
            .filter(|p| !p.as_os_str().is_empty())
            .map(Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from(".")),
    ));
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "trace.json".into());
    let path = crate::report::save_raw_in(&dir, &name, &trace.to_chrome_string());
    eprintln!("[trace: {} events -> {path:?}]", trace.events.len());
    out
}

/// If `GMG_PROF=<path>` is set, run `f` under a gmg-prof sampling session
/// and write the folded flamegraph stacks to `<path>`; otherwise run `f`
/// directly (phase markers stay disabled: one relaxed atomic load each).
/// The sampling interval follows `GMG_PROF_INTERVAL_US` (default 200µs).
/// Mirrors [`with_env_trace`].
pub fn with_env_prof<T>(f: impl FnOnce() -> T) -> T {
    with_prof_to(std::env::var_os("GMG_PROF").map(PathBuf::from), f)
}

/// Env-independent core of [`with_env_prof`]: profile to `path` if given.
pub fn with_prof_to<T>(path: Option<PathBuf>, f: impl FnOnce() -> T) -> T {
    let Some(path) = path else { return f() };
    let session = gmg_prof::start_default();
    let out = f();
    let profile = session.stop();
    let dir = crate::report::ensure_dir(Some(
        path.parent()
            .filter(|p| !p.as_os_str().is_empty())
            .map(Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from(".")),
    ));
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "prof.folded".into());
    let path = crate::report::save_raw_in(&dir, &name, &profile.to_folded());
    eprintln!(
        "[prof: {} samples / {} ticks, {} dropped -> {path:?}]",
        profile.samples, profile.ticks, profile.dropped
    );
    out
}

/// If `GMG_METRICS=<path>` is set, enable the global metrics registry
/// around `f` and write the final snapshot (what grew during the run) to
/// `<path>` as schema-1 JSON; otherwise run `f` directly. Mirrors
/// [`with_env_trace`].
pub fn with_env_metrics<T>(f: impl FnOnce() -> T) -> T {
    with_metrics_to(std::env::var_os("GMG_METRICS").map(PathBuf::from), f)
}

/// Env-independent core of [`with_env_metrics`]: snapshot to `path` if
/// given. The write is a *delta* over the run (the registry is
/// process-global and may already hold rows), so the file reflects this
/// run's activity.
pub fn with_metrics_to<T>(path: Option<PathBuf>, f: impl FnOnce() -> T) -> T {
    let Some(path) = path else { return f() };
    let before = gmg_metrics::Registry::global().snapshot();
    let was_enabled = gmg_metrics::enable();
    let out = f();
    if !was_enabled {
        gmg_metrics::disable();
    }
    let delta = gmg_metrics::Registry::global()
        .snapshot()
        .delta_since(&before);
    let dir = crate::report::ensure_dir(Some(
        path.parent()
            .filter(|p| !p.as_os_str().is_empty())
            .map(Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from(".")),
    ));
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "metrics.json".into());
    let path = crate::report::save_raw_in(&dir, &name, &delta.to_json().to_string());
    eprintln!("[metrics: {} rows -> {path:?}]", delta.entries.len());
    out
}

/// All env hooks at once: `GMG_TRACE` (Chrome trace), `GMG_PROF` (folded
/// stacks), and `GMG_METRICS` (final metrics snapshot JSON). Every
/// harness binary wraps its `run()` in this.
pub fn with_env_hooks<T>(f: impl FnOnce() -> T) -> T {
    with_env_trace(|| with_env_prof(|| with_env_metrics(f)))
}

/// Problem the profiler runs: a fixed number of V-cycles so the timed work
/// is deterministic, split across two ranks so the trace shows real
/// send/recv/pack/unpack activity.
fn profile_config() -> (Decomposition, usize, SolverConfig) {
    let decomp = Decomposition::new(Box3::cube(32), Point3::new(2, 1, 1));
    let cfg = SolverConfig {
        num_levels: 3,
        tolerance: 0.0,
        max_vcycles: 4,
        ..SolverConfig::test_default()
    };
    (decomp, 2, cfg)
}

/// Traced solve: returns rank 0's aggregated [`TimerReport`] plus the trace.
fn traced_solve() -> (TimerReport, gmg_trace::Trace) {
    let (decomp, nranks, cfg) = profile_config();
    let d = &decomp;
    let (mut reports, trace) = gmg_trace::capture(|| {
        RankWorld::run(nranks, move |mut ctx| {
            let mut s = GmgSolver::new(d.clone(), ctx.rank(), cfg);
            s.solve(&mut ctx);
            s.timers.aggregate(&mut ctx)
        })
    });
    (reports.swap_remove(0), trace)
}

/// Run the harness, writing the trace under `dir` and comparing achieved
/// rates against `host`'s measured memory roofline.
pub fn run_in(dir: &Path, host: &HostRoofline) -> Value {
    crate::report::heading("profile — traced V-cycles, Perfetto export, roofline check");
    let (report, trace) = traced_solve();
    let summary = TraceSummary::from_trace(&trace);

    let trace_path =
        crate::report::save_raw_in(dir, "profile_trace.json", &trace.to_chrome_string());
    println!(
        "wrote {} events from {} ranks -> {trace_path:?}",
        trace.events.len(),
        summary.nranks
    );

    print!("{}", summary.render());

    // Level-0 fractions two ways: the solver's OpTimer and the trace. They
    // observe the same (t0, t1) pairs, so they must agree.
    println!("\nlevel-0 fractions: OpTimer vs trace");
    let timer_fr = report.level_fractions(0);
    let trace_fr = summary.level_fractions(0);
    let mut fraction_rows = Vec::new();
    let mut max_diff = 0.0f64;
    for ((op, tf), (top, cf)) in timer_fr.iter().zip(trace_fr.iter()) {
        assert_eq!(op, top, "fraction rows out of order");
        let diff = (tf - cf).abs();
        max_diff = max_diff.max(diff);
        println!(
            "  {op:<28} {:>7.2}% {:>7.2}%  (|diff| {diff:.2e})",
            tf * 100.0,
            cf * 100.0
        );
        fraction_rows.push(json!({"op": op.as_str(), "timer": *tf, "trace": *cf}));
    }
    println!("  max |diff| {max_diff:.2e}");

    // Roofline: achieved GStencil/s per op vs the memory-bandwidth ceiling
    // from the op's static traffic (Table IV doubles per point).
    println!(
        "\nroofline (STREAM triad {:.1} GB/s, {} threads)",
        host.triad_gbs, host.threads
    );
    let mut roofline_rows = Vec::new();
    for (op, _) in &timer_fr {
        let Some(t) = gmg_core::trace::per_point(op) else {
            continue;
        };
        let Some(achieved) = summary.gstencil_per_s(0, op) else {
            continue;
        };
        let doubles = t.reads + t.writes;
        let ceiling = host.gstencil_ceiling(doubles);
        let frac = host.roofline_fraction(achieved * 1e9, doubles);
        println!(
            "  {op:<28} {achieved:>8.3} GStencil/s  ceiling {ceiling:>8.3}  ({:.1}% of roofline)",
            frac * 100.0
        );
        roofline_rows.push(json!({
            "op": op.as_str(),
            "achieved_gstencil_per_s": achieved,
            "ceiling_gstencil_per_s": ceiling,
            "roofline_fraction": frac,
        }));
    }

    // Kept flat (nested objects via a variable) so the offline stub
    // `json!` macro can compile this module too.
    let comm = json!({
        "messages": summary.comm.messages,
        "message_bytes": summary.comm.message_bytes,
        "seconds": summary.comm_seconds
    });
    json!({
        "nranks": summary.nranks,
        "events": trace.events.len(),
        "trace_path": trace_path.display().to_string(),
        "wall_seconds": summary.wall_seconds,
        "level0_fractions": fraction_rows,
        "max_fraction_diff": max_diff,
        "roofline": roofline_rows,
        "comm": comm,
        "triad_gbs": host.triad_gbs
    })
}

/// Run the harness against the measured host roofline, writing under the
/// conventional results directory.
pub fn run() -> Value {
    run_in(&crate::report::results_dir(), &measure_host())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmg_trace::{Trace, Track};

    fn fake_host() -> HostRoofline {
        HostRoofline {
            triad_gbs: 100.0,
            copy_alpha_s: 1e-6,
            copy_beta_gbs: 120.0,
            threads: 8,
        }
    }

    #[test]
    fn profile_writes_perfetto_loadable_trace_with_two_ranks_and_comm() {
        let dir = std::env::temp_dir().join("gmg_profile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let v = run_in(&dir, &fake_host());

        // The written file must round-trip through the Chrome trace parser.
        let text = std::fs::read_to_string(dir.join("profile_trace.json")).unwrap();
        let trace = Trace::from_chrome_str(&text).expect("perfetto JSON parses");
        let ranks = trace.ranks();
        assert!(ranks.len() >= 2, "expected >= 2 ranks, got {ranks:?}");
        for &r in &ranks {
            assert!(
                !trace.track_events(r, Track::Comm).is_empty(),
                "rank {r} has no comm spans"
            );
            assert!(
                trace.track_is_serial(r, Track::Comm),
                "rank {r} comm overlaps"
            );
        }

        // Acceptance criterion: trace fractions agree with OpTimer within 1%.
        assert!(v["max_fraction_diff"].as_f64().unwrap() < 0.01);
        assert!(v["comm"]["messages"].as_u64().unwrap() > 0);
        assert!(!v["level0_fractions"].as_array().unwrap().is_empty());
        assert!(!v["roofline"].as_array().unwrap().is_empty());
    }

    #[test]
    fn with_trace_to_writes_file_and_passes_result_through() {
        let path = std::env::temp_dir().join("gmg_with_trace_test.json");
        let _ = std::fs::remove_file(&path);
        let out = with_trace_to(Some(path.clone()), || {
            gmg_trace::span(0, 0, "applyOp", Track::Compute);
            42
        });
        assert_eq!(out, 42);
        let text = std::fs::read_to_string(&path).unwrap();
        let trace = Trace::from_chrome_str(&text).unwrap();
        assert_eq!(trace.events.len(), 1);
    }

    #[test]
    fn with_trace_to_none_is_passthrough() {
        assert_eq!(with_trace_to(None, || 7), 7);
    }
}
