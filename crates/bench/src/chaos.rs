//! Chaos soak harness: the distributed V-cycle under deterministic,
//! seeded fault injection (`gmg_comm::fault`), exercising every layer of
//! the robustness story end to end:
//!
//! 1. **Transport faults absorbed exactly** — drops, duplicates,
//!    reorderings, and detected corruption at swept rates must leave the
//!    converged residual history bit-identical to the fault-free baseline
//!    (the ARQ layer retransmits; numerics never see the chaos).
//! 2. **Solver-level self-healing** — a seeded one-shot silent corruption
//!    of the iterate (past any checksum) trips the health guards and is
//!    repaired by rollback recovery; the solve still converges.
//! 3. **Graceful structured failure** — a rank killed mid-exchange must
//!    surface as a [`WorldFailure`] listing every affected rank, with no
//!    panic reaching the caller.
//!
//! Run: `cargo run --release -p gmg-bench --bin chaos -- --seed N`.

use gmg_brick::BrickedField;
use gmg_comm::fault::{FaultConfig, FaultPlan};
use gmg_comm::runtime::RankWorld;
use gmg_comm::WorldFailure;
use gmg_core::solver::{GmgSolver, SolveStats, SolverConfig};
use gmg_core::RecoveryPolicy;
use gmg_mesh::{Box3, Decomposition, Point3};
use serde_json::{json, Value};
use std::time::{Duration, Instant};

const N: i64 = 16;

pub(crate) fn chaos_decomp() -> Decomposition {
    // The acceptance geometry: a 2×2×2 rank grid.
    Decomposition::new(Box3::cube(N), Point3::splat(2))
}

pub(crate) fn chaos_solver_config() -> SolverConfig {
    let mut cfg = SolverConfig::test_default();
    cfg.num_levels = 2;
    cfg.max_vcycles = 12;
    cfg.tolerance = 1e-8;
    cfg
}

/// Distributed solve under a fault plan; per-rank stats or the structured
/// world failure.
pub(crate) fn faulted_solve(
    plan: &FaultPlan,
    cfg: SolverConfig,
) -> Result<Vec<SolveStats>, WorldFailure> {
    let decomp = chaos_decomp();
    let nranks = decomp.num_ranks();
    let d = &decomp;
    RankWorld::run_with_faults(nranks, plan, move |mut ctx| {
        let mut s = GmgSolver::new(d.clone(), ctx.rank(), cfg);
        s.solve(&mut ctx)
    })
}

/// Fault-free reference run (same geometry and config).
pub(crate) fn baseline_solve(cfg: SolverConfig) -> Vec<SolveStats> {
    let decomp = chaos_decomp();
    let nranks = decomp.num_ranks();
    let d = &decomp;
    RankWorld::run(nranks, move |mut ctx| {
        let mut s = GmgSolver::new(d.clone(), ctx.rank(), cfg);
        s.solve(&mut ctx)
    })
}

/// One transport-fault soak run: drop + duplicate + delay + corrupt all at
/// `rate`, seeded; reports whether the world survived, converged, and
/// reproduced the baseline history exactly.
fn transport_run(rate: f64, seed: u64, cfg: SolverConfig, baseline: &[f64]) -> Value {
    let plan = FaultPlan::new(FaultConfig::lossy(rate), seed);
    let t0 = Instant::now();
    let outcome = faulted_solve(&plan, cfg);
    let seconds = t0.elapsed().as_secs_f64();
    match outcome {
        Ok(stats) => {
            let exact = stats.iter().all(|s| s.residual_history == baseline);
            let converged = stats.iter().all(|s| s.converged);
            println!(
                "  rate {rate:>5.3}  seed {seed:>20}  survived  converged={converged}  \
                 exact={exact}  {seconds:.2}s"
            );
            json!({
                "rate": rate, "seed": seed, "survived": true,
                "converged": converged, "exact_match": exact, "seconds": seconds,
            })
        }
        Err(f) => {
            println!("  rate {rate:>5.3}  seed {seed:>20}  FAILED: {f}");
            json!({
                "rate": rate, "seed": seed, "survived": false,
                "converged": false, "exact_match": false, "seconds": seconds,
                "failure": f.to_string(),
            })
        }
    }
}

/// The self-healing demonstration: a seeded one-shot corruption of one
/// rank's iterate (a "silent" upset that no transport checksum can catch)
/// under lossy transport, with rollback recovery enabled.
fn recovery_run(seed: u64) -> Value {
    let mut cfg = chaos_solver_config();
    cfg.recovery = RecoveryPolicy::Rollback;
    cfg.checkpoint_interval = 1;
    cfg.max_vcycles = 25;
    let victim = (seed % 8) as usize;
    let at_cycle = 2 + (seed % 3) as usize;
    let plan = FaultPlan::new(FaultConfig::lossy(0.01), seed);
    let decomp = chaos_decomp();
    let nranks = decomp.num_ranks();
    let d = &decomp;
    let outcome = RankWorld::run_with_faults(nranks, &plan, move |mut ctx| {
        let mut s = GmgSolver::new(d.clone(), ctx.rank(), cfg);
        let rank = ctx.rank();
        s.fault_hook = Some(Box::new(move |cycle, level| {
            if cycle == at_cycle && rank == victim {
                // Scale the iterate by 1e9: a silent data corruption the
                // transport layer cannot see.
                let old = level.x.clone();
                level.x = BrickedField::from_fn(level.layout.clone(), move |p| old.get(p) * 1e9);
            }
        }));
        s.solve(&mut ctx)
    });
    match outcome {
        Ok(stats) => {
            let s0 = &stats[0];
            let agree = stats
                .iter()
                .all(|s| s.residual_history == s0.residual_history);
            println!(
                "  corrupt rank {victim} at cycle {at_cycle}: converged={} after {} cycles, \
                 {} rollback(s), health {:?}, ranks agree={agree}",
                s0.converged, s0.vcycles, s0.recoveries, s0.health
            );
            json!({
                "seed": seed, "victim": victim, "at_cycle": at_cycle, "survived": true,
                "converged": s0.converged, "recoveries": s0.recoveries,
                "health": format!("{:?}", s0.health),
                "final_residual": s0.final_residual(), "ranks_agree": agree,
            })
        }
        Err(f) => {
            println!("  recovery run FAILED: {f}");
            json!({ "seed": seed, "survived": false, "failure": f.to_string() })
        }
    }
}

/// The graceful-failure demonstration: kill one rank mid-exchange and show
/// the world reports a structured [`WorldFailure`] instead of hanging or
/// propagating a bare panic.
pub(crate) fn kill_run(seed: u64) -> Value {
    let victim = (seed % 8) as usize;
    let at_op = 40 + seed % 29; // lands inside the first cycle's exchanges
    let mut plan = FaultPlan::new(FaultConfig::kill_rank(victim, at_op), seed);
    // Tighten the timeouts so peer ranks discover the death quickly.
    plan.retry.op_timeout = Duration::from_millis(500);
    plan.retry.max_attempts = 6;
    let outcome = faulted_solve(&plan, chaos_solver_config());
    match outcome {
        Ok(_) => {
            println!("  kill rank {victim} at op {at_op}: world unexpectedly survived");
            json!({ "seed": seed, "victim": victim, "structured_failure": false })
        }
        Err(f) => {
            let ranks = f.ranks();
            let killed_reported = ranks.contains(&victim);
            println!(
                "  kill rank {victim} at op {at_op}: {} of {} ranks reported, \
                 failed ranks {ranks:?} (no panic reached the caller)",
                f.failures.len(),
                f.nranks
            );
            json!({
                "seed": seed, "victim": victim, "at_op": at_op,
                "structured_failure": true, "failed_ranks": ranks,
                "killed_rank_reported": killed_reported,
                "report": f.to_string(),
            })
        }
    }
}

/// Run the full chaos campaign with the given base seed.
pub fn run_with_seed(seed: u64) -> Value {
    crate::report::heading(&format!(
        "Chaos — seeded fault injection soak (base seed {seed})"
    ));
    let cfg = chaos_solver_config();
    let baseline = baseline_solve(cfg);
    let base_history = baseline[0].residual_history.clone();
    assert!(
        baseline.iter().all(|s| s.residual_history == base_history),
        "baseline ranks disagree"
    );
    println!(
        "baseline: converged={} in {} cycles, final residual {:.3e}\n",
        baseline[0].converged,
        baseline[0].vcycles,
        baseline[0].final_residual()
    );

    // Meter the ARQ layer across the whole campaign: the registry is
    // process-global, so diff a snapshot taken before any faulted run.
    let metrics_before = gmg_metrics::Registry::global().snapshot();
    let metrics_were_enabled = gmg_metrics::enable();

    println!("transport faults (drop+dup+delay+corrupt, ARQ must absorb exactly):");
    let mut sweep = Vec::new();
    for (i, &rate) in [0.002, 0.01, 0.03].iter().enumerate() {
        for k in 0..3u64 {
            let run_seed = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(1000 * i as u64 + k);
            sweep.push(transport_run(rate, run_seed, cfg, &base_history));
        }
    }
    let sweep_ok = sweep
        .iter()
        .all(|r| r["survived"] == true && r["exact_match"] == true);

    println!("\nself-healing (silent iterate corruption + rollback recovery):");
    let recovery = recovery_run(seed);
    let recovery_ok =
        recovery["converged"] == true && recovery["recoveries"].as_u64().unwrap_or(0) >= 1;

    println!("\ngraceful failure (rank killed mid-exchange):");
    let kill = kill_run(seed);
    let kill_ok = kill["structured_failure"] == true && kill["killed_rank_reported"] == true;

    if !metrics_were_enabled {
        gmg_metrics::disable();
    }
    let arq = gmg_metrics::Registry::global()
        .snapshot()
        .delta_since(&metrics_before);
    let arq_table = arq.render_table("arq_");
    println!("\nfault-handling metrics (ARQ layer, campaign total):\n\n{arq_table}");

    let ok = sweep_ok && recovery_ok && kill_ok;
    println!(
        "\nchaos verdict: transport={} recovery={} kill-report={} → {}",
        sweep_ok,
        recovery_ok,
        kill_ok,
        if ok { "OK" } else { "NOT OK" }
    );
    let baseline_v = json!({
        "converged": baseline[0].converged,
        "vcycles": baseline[0].vcycles,
        "final_residual": baseline[0].final_residual(),
    });
    let arq_retransmits = arq.counter_total("arq_retransmits_total");
    let arq_checksum_failures = arq.counter_total("arq_checksum_failures_total");
    let arq_dedup_drops = arq.counter_total("arq_dedup_drops_total");
    json!({
        "seed": seed,
        "baseline": baseline_v,
        "transport_sweep": sweep,
        "transport_ok": sweep_ok,
        "recovery": recovery,
        "recovery_ok": recovery_ok,
        "kill": kill,
        "kill_ok": kill_ok,
        "arq_retransmits": arq_retransmits,
        "arq_checksum_failures": arq_checksum_failures,
        "arq_dedup_drops": arq_dedup_drops,
        "arq_metrics_table": arq_table,
        "ok": ok,
    })
}

/// Default campaign (seed 7).
pub fn run() -> Value {
    run_with_seed(7)
}

// ---------------------------------------------------------------------
// Elastic multi-process campaign (`chaos --transport process`)
// ---------------------------------------------------------------------

/// Entry body for the ranks of the elastic multi-process campaign. The
/// chaos binary's (and the test binary's) `run_child_if_spawned` hook
/// dispatches spawned children here by entry name.
#[cfg(unix)]
pub fn elastic_child(ctx: &mut gmg_comm::RankCtx, args: &str) -> String {
    let mut cfg = chaos_solver_config();
    cfg.recovery = RecoveryPolicy::Rejoin;
    let mut s = GmgSolver::new(chaos_decomp(), ctx.rank(), cfg);
    if args.contains("paced") {
        // Stretch the solve so the controller's progress-triggered
        // SIGKILL lands mid-run instead of after the finish line.
        s.phase_hook = Some(Box::new(|_cycle, _phase, _level| {
            std::thread::sleep(Duration::from_millis(8));
        }));
    }
    let st = s.solve(ctx);
    let hist: Vec<String> = st
        .residual_history
        .iter()
        .map(|r| format!("{:x}", r.to_bits()))
        .collect();
    format!("{}|{}|{}", hist.join(","), st.rejoin_epochs, st.converged)
}

/// Parse [`elastic_child`]'s result string: (history bits, rejoin
/// epochs, converged).
#[cfg(unix)]
fn parse_elastic(result: &str) -> (Vec<u64>, usize, bool) {
    let mut it = result.trim().split('|');
    let hist = it
        .next()
        .unwrap_or_default()
        .split(',')
        .map(|h| u64::from_str_radix(h, 16).expect("hex residual"))
        .collect();
    let epochs = it.next().and_then(|s| s.parse().ok()).unwrap_or(0);
    let converged = it.next() == Some("true");
    (hist, epochs, converged)
}

/// One multi-process solve over the UDS datagram transport (plus seeded
/// packet loss the ARQ layer must absorb), optionally SIGKILLing
/// `kill` once its reported progress passes V-cycle 3. Verifies the
/// per-rank histories against the thread-transport `baseline`
/// bit-for-bit, and for a kill run writes the merged flight dump's
/// postmortem naming the victim.
#[cfg(unix)]
fn process_leg(seed: u64, kill: Option<usize>, child_args: &[&str], baseline: &[u64]) -> Value {
    use gmg_comm::{ProcessWorld, SocketKind};
    let nranks = chaos_decomp().num_ranks();
    let mut world = ProcessWorld::new(nranks, "elastic")
        .transport(SocketKind::Uds)
        .args(if kill.is_some() { "paced" } else { "fast" })
        .child_args(child_args)
        .faults(FaultPlan::new(FaultConfig::lossy(0.005), seed))
        .deadline(Duration::from_secs(180));
    if let Some(victim) = kill {
        world = world.kill_process_at(victim, 3);
    }
    let report = match world.run() {
        Ok(r) => r,
        Err(e) => {
            println!("  process world FAILED: {e}");
            return json!({ "seed": seed, "survived": false, "failure": e, "ok": false });
        }
    };

    let mut exact = true;
    let mut converged_all = true;
    let mut epochs: Vec<usize> = Vec::new();
    for res in &report.results {
        let (hist, ep, conv) = parse_elastic(res);
        exact &= hist == baseline;
        converged_all &= conv;
        epochs.push(ep);
    }
    let rejoined_once = report.rejoins.len() == 1
        && kill.map_or(false, |v| report.rejoins[0].rank == v)
        && epochs.iter().all(|&e| e == 1);
    let clean = kill.is_none() && report.rejoins.is_empty() && epochs.iter().all(|&e| e == 0);

    // Forensics: the merged flight dump's postmortem must name the
    // killed rank (the controller knows who it killed — authoritative).
    let mut postmortem_path = String::new();
    let mut culprit_named = kill.is_none();
    if let (Some(victim), Some(dump)) = (kill, report.flight_dump.as_ref()) {
        let ev = &report.rejoins[0];
        let cause = format!(
            "SIGKILLed by the chaos controller and rejoined at epoch {} \
             from the cycle-{} checkpoint",
            ev.epoch, ev.resume_cycle
        );
        let pm = crate::postmortem::analyze_dump_with(dump, Some((victim, &cause)));
        postmortem_path = pm["report"].as_str().unwrap_or_default().to_string();
        culprit_named = pm["ok"] == true
            && std::fs::read_to_string(&postmortem_path)
                .map(|md| md.contains(&format!("Culprit: rank {victim}")))
                .unwrap_or(false);
    }

    let ok = exact && converged_all && culprit_named && (clean || rejoined_once);
    println!(
        "  {}  seed {seed}: exact={exact} converged={converged_all} rejoins={} epochs={epochs:?} \
         culprit_named={culprit_named} → {}",
        if kill.is_some() { "kill " } else { "clean" },
        report.rejoins.len(),
        if ok { "OK" } else { "NOT OK" }
    );
    json!({
        "seed": seed,
        "survived": true,
        "transport": report.transport,
        "kill_rank": kill.map_or(-1, |v| v as i64),
        "exact_match": exact,
        "converged": converged_all,
        "rejoins": report.rejoins.len(),
        "rejoin_epochs": epochs,
        "resume_cycle": report.rejoins.first().map_or(-2, |e| e.resume_cycle),
        "culprit_named": culprit_named,
        "postmortem": postmortem_path,
        "ok": ok,
    })
}

/// The elastic multi-process campaign: every rank is a real OS process
/// on the UDS datagram transport with seeded packet loss; one run is
/// clean, and with `kill` one rank is SIGKILLed mid-solve, respawned,
/// and rejoined from its durable checkpoints. Both runs must reproduce
/// the thread-transport baseline bit-for-bit.
#[cfg(unix)]
pub fn run_process_campaign(seed: u64, kill: Option<usize>) -> Value {
    run_process_campaign_with(seed, kill, &[])
}

/// [`run_process_campaign`] with explicit child argv (the in-crate test
/// harness must pass a libtest filter so spawned copies of the test
/// binary land in their entry hook instead of running the whole suite).
#[cfg(unix)]
pub fn run_process_campaign_with(seed: u64, kill: Option<usize>, child_args: &[&str]) -> Value {
    crate::report::heading(&format!(
        "Chaos — elastic multi-process campaign (base seed {seed})"
    ));
    gmg_metrics::enable();

    // Thread-transport ground truth: under Rejoin without a membership
    // world the same config is a plain solve.
    let mut cfg = chaos_solver_config();
    cfg.recovery = RecoveryPolicy::Rejoin;
    let baseline = baseline_solve(cfg);
    let base_hist: Vec<u64> = baseline[0]
        .residual_history
        .iter()
        .map(|r| r.to_bits())
        .collect();
    assert!(
        baseline
            .iter()
            .all(|s| s.residual_history == baseline[0].residual_history),
        "baseline ranks disagree"
    );
    println!(
        "thread baseline: converged={} in {} cycles, final residual {:.3e}\n",
        baseline[0].converged,
        baseline[0].vcycles,
        baseline[0].final_residual()
    );

    println!("process transport (uds datagrams + seeded loss, thread equivalence):");
    let clean = process_leg(seed, None, child_args, &base_hist);
    let kill_leg = kill.map(|v| {
        println!("\nprocess kill + checkpoint rejoin (SIGKILL rank {v} at V-cycle 3):");
        process_leg(seed, Some(v), child_args, &base_hist)
    });

    let ok = clean["ok"] == true && kill_leg.as_ref().map_or(true, |k| k["ok"] == true);
    println!(
        "\nprocess chaos verdict: clean={} kill={} → {}",
        clean["ok"],
        kill_leg
            .as_ref()
            .map_or("skipped".to_string(), |k| k["ok"].to_string()),
        if ok { "OK" } else { "NOT OK" }
    );
    let baseline_v = json!({
        "converged": baseline[0].converged,
        "vcycles": baseline[0].vcycles,
        "final_residual": baseline[0].final_residual(),
    });
    json!({
        "seed": seed,
        "mode": "process",
        "baseline": baseline_v,
        "clean": clean,
        "kill": kill_leg.unwrap_or(Value::Null),
        "ok": ok,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossy_transport_reproduces_baseline_exactly() {
        let cfg = chaos_solver_config();
        let baseline = baseline_solve(cfg);
        let hist = &baseline[0].residual_history;
        let v = transport_run(0.01, 42, cfg, hist);
        assert_eq!(v["survived"], true, "{v}");
        assert_eq!(v["exact_match"], true, "{v}");
        assert_eq!(v["converged"], true, "{v}");
    }

    #[test]
    fn rollback_recovery_demo_converges() {
        let v = recovery_run(5);
        assert_eq!(v["survived"], true, "{v}");
        assert_eq!(v["converged"], true, "{v}");
        assert!(v["recoveries"].as_u64().unwrap() >= 1, "{v}");
        assert_eq!(v["ranks_agree"], true, "{v}");
    }

    #[test]
    fn killed_rank_yields_structured_report() {
        let v = kill_run(11);
        assert_eq!(v["structured_failure"], true, "{v}");
        assert_eq!(v["killed_rank_reported"], true, "{v}");
    }

    #[cfg(unix)]
    const CHILD_ARGS: &[&str] = &["chaos_child_entry", "--test-threads=1", "--nocapture"];

    /// The hook a spawned copy of this test binary lands in (the process
    /// controller passes a libtest filter selecting exactly this test).
    /// In a normal run it is an instant no-op.
    #[cfg(unix)]
    #[test]
    fn chaos_child_entry() {
        gmg_comm::process::run_child_if_spawned(|entry, mut ctx, args| match entry {
            "elastic" => elastic_child(&mut ctx, args),
            other => panic!("unknown chaos process entry {other:?}"),
        });
    }

    /// The milestone's acceptance demo end to end: real processes over
    /// datagrams with seeded loss, SIGKILL rank 3 mid-solve, respawn +
    /// checkpoint rejoin, bit-identical history vs the thread world, and
    /// a merged-flight postmortem naming the killed rank.
    #[cfg(unix)]
    #[test]
    fn process_campaign_kill_and_rejoin_names_culprit() {
        let v = run_process_campaign_with(3, Some(3), CHILD_ARGS);
        assert_eq!(v["ok"], true, "{v}");
        assert_eq!(v["clean"]["exact_match"], true, "{v}");
        let kill = &v["kill"];
        assert_eq!(kill["exact_match"], true, "{v}");
        assert_eq!(kill["rejoins"].as_u64(), Some(1), "{v}");
        assert_eq!(kill["culprit_named"], true, "{v}");
        let pm = std::path::PathBuf::from(kill["postmortem"].as_str().unwrap());
        let md = std::fs::read_to_string(&pm).unwrap();
        assert!(md.contains("Culprit: rank 3"), "{md}");
        if let Some(dir) = pm.parent() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    /// The fused multi-smooth executor must compose with checkpoint /
    /// rollback recovery: under the same seeded silent corruption and
    /// lossy transport, the fused and sweep-by-sweep schedules both trip
    /// the health guards, both recover, and — because the fused path is
    /// bit-identical — leave identical residual histories.
    #[test]
    fn fused_smoothing_composes_with_rollback_recovery() {
        let run = |fused_smooths: usize| {
            let mut cfg = chaos_solver_config();
            cfg.recovery = RecoveryPolicy::Rollback;
            cfg.checkpoint_interval = 1;
            cfg.max_vcycles = 25;
            cfg.fused_smooths = fused_smooths;
            let plan = FaultPlan::new(FaultConfig::lossy(0.01), 7);
            let decomp = chaos_decomp();
            let d = &decomp;
            RankWorld::run_with_faults(decomp.num_ranks(), &plan, move |mut ctx| {
                let mut s = GmgSolver::new(d.clone(), ctx.rank(), cfg);
                let rank = ctx.rank();
                s.fault_hook = Some(Box::new(move |cycle, level| {
                    if cycle == 2 && rank == 3 {
                        let old = level.x.clone();
                        level.x =
                            BrickedField::from_fn(level.layout.clone(), move |p| old.get(p) * 1e9);
                    }
                }));
                s.solve(&mut ctx)
            })
            .expect("world survives the corruption")
        };
        let fused = run(chaos_solver_config().fused_smooths);
        let sweep = run(1);
        for (f, s) in fused.iter().zip(&sweep) {
            assert!(f.converged && s.converged, "both schedules must converge");
            assert!(
                f.recoveries >= 1 && s.recoveries >= 1,
                "both schedules must roll back at least once"
            );
            assert_eq!(
                f.residual_history, s.residual_history,
                "fused and sweep recovery histories must be bit-identical"
            );
        }
    }
}
