//! Chaos soak harness: the distributed V-cycle under deterministic,
//! seeded fault injection (`gmg_comm::fault`), exercising every layer of
//! the robustness story end to end:
//!
//! 1. **Transport faults absorbed exactly** — drops, duplicates,
//!    reorderings, and detected corruption at swept rates must leave the
//!    converged residual history bit-identical to the fault-free baseline
//!    (the ARQ layer retransmits; numerics never see the chaos).
//! 2. **Solver-level self-healing** — a seeded one-shot silent corruption
//!    of the iterate (past any checksum) trips the health guards and is
//!    repaired by rollback recovery; the solve still converges.
//! 3. **Graceful structured failure** — a rank killed mid-exchange must
//!    surface as a [`WorldFailure`] listing every affected rank, with no
//!    panic reaching the caller.
//!
//! Run: `cargo run --release -p gmg-bench --bin chaos -- --seed N`.

use gmg_brick::BrickedField;
use gmg_comm::fault::{FaultConfig, FaultPlan};
use gmg_comm::runtime::RankWorld;
use gmg_comm::WorldFailure;
use gmg_core::solver::{GmgSolver, SolveStats, SolverConfig};
use gmg_core::RecoveryPolicy;
use gmg_mesh::{Box3, Decomposition, Point3};
use serde_json::{json, Value};
use std::time::{Duration, Instant};

const N: i64 = 16;

pub(crate) fn chaos_decomp() -> Decomposition {
    // The acceptance geometry: a 2×2×2 rank grid.
    Decomposition::new(Box3::cube(N), Point3::splat(2))
}

pub(crate) fn chaos_solver_config() -> SolverConfig {
    let mut cfg = SolverConfig::test_default();
    cfg.num_levels = 2;
    cfg.max_vcycles = 12;
    cfg.tolerance = 1e-8;
    cfg
}

/// Distributed solve under a fault plan; per-rank stats or the structured
/// world failure.
pub(crate) fn faulted_solve(
    plan: &FaultPlan,
    cfg: SolverConfig,
) -> Result<Vec<SolveStats>, WorldFailure> {
    let decomp = chaos_decomp();
    let nranks = decomp.num_ranks();
    let d = &decomp;
    RankWorld::run_with_faults(nranks, plan, move |mut ctx| {
        let mut s = GmgSolver::new(d.clone(), ctx.rank(), cfg);
        s.solve(&mut ctx)
    })
}

/// Fault-free reference run (same geometry and config).
pub(crate) fn baseline_solve(cfg: SolverConfig) -> Vec<SolveStats> {
    let decomp = chaos_decomp();
    let nranks = decomp.num_ranks();
    let d = &decomp;
    RankWorld::run(nranks, move |mut ctx| {
        let mut s = GmgSolver::new(d.clone(), ctx.rank(), cfg);
        s.solve(&mut ctx)
    })
}

/// One transport-fault soak run: drop + duplicate + delay + corrupt all at
/// `rate`, seeded; reports whether the world survived, converged, and
/// reproduced the baseline history exactly.
fn transport_run(rate: f64, seed: u64, cfg: SolverConfig, baseline: &[f64]) -> Value {
    let plan = FaultPlan::new(FaultConfig::lossy(rate), seed);
    let t0 = Instant::now();
    let outcome = faulted_solve(&plan, cfg);
    let seconds = t0.elapsed().as_secs_f64();
    match outcome {
        Ok(stats) => {
            let exact = stats.iter().all(|s| s.residual_history == baseline);
            let converged = stats.iter().all(|s| s.converged);
            println!(
                "  rate {rate:>5.3}  seed {seed:>20}  survived  converged={converged}  \
                 exact={exact}  {seconds:.2}s"
            );
            json!({
                "rate": rate, "seed": seed, "survived": true,
                "converged": converged, "exact_match": exact, "seconds": seconds,
            })
        }
        Err(f) => {
            println!("  rate {rate:>5.3}  seed {seed:>20}  FAILED: {f}");
            json!({
                "rate": rate, "seed": seed, "survived": false,
                "converged": false, "exact_match": false, "seconds": seconds,
                "failure": f.to_string(),
            })
        }
    }
}

/// The self-healing demonstration: a seeded one-shot corruption of one
/// rank's iterate (a "silent" upset that no transport checksum can catch)
/// under lossy transport, with rollback recovery enabled.
fn recovery_run(seed: u64) -> Value {
    let mut cfg = chaos_solver_config();
    cfg.recovery = RecoveryPolicy::Rollback;
    cfg.checkpoint_interval = 1;
    cfg.max_vcycles = 25;
    let victim = (seed % 8) as usize;
    let at_cycle = 2 + (seed % 3) as usize;
    let plan = FaultPlan::new(FaultConfig::lossy(0.01), seed);
    let decomp = chaos_decomp();
    let nranks = decomp.num_ranks();
    let d = &decomp;
    let outcome = RankWorld::run_with_faults(nranks, &plan, move |mut ctx| {
        let mut s = GmgSolver::new(d.clone(), ctx.rank(), cfg);
        let rank = ctx.rank();
        s.fault_hook = Some(Box::new(move |cycle, level| {
            if cycle == at_cycle && rank == victim {
                // Scale the iterate by 1e9: a silent data corruption the
                // transport layer cannot see.
                let old = level.x.clone();
                level.x = BrickedField::from_fn(level.layout.clone(), move |p| old.get(p) * 1e9);
            }
        }));
        s.solve(&mut ctx)
    });
    match outcome {
        Ok(stats) => {
            let s0 = &stats[0];
            let agree = stats
                .iter()
                .all(|s| s.residual_history == s0.residual_history);
            println!(
                "  corrupt rank {victim} at cycle {at_cycle}: converged={} after {} cycles, \
                 {} rollback(s), health {:?}, ranks agree={agree}",
                s0.converged, s0.vcycles, s0.recoveries, s0.health
            );
            json!({
                "seed": seed, "victim": victim, "at_cycle": at_cycle, "survived": true,
                "converged": s0.converged, "recoveries": s0.recoveries,
                "health": format!("{:?}", s0.health),
                "final_residual": s0.final_residual(), "ranks_agree": agree,
            })
        }
        Err(f) => {
            println!("  recovery run FAILED: {f}");
            json!({ "seed": seed, "survived": false, "failure": f.to_string() })
        }
    }
}

/// The graceful-failure demonstration: kill one rank mid-exchange and show
/// the world reports a structured [`WorldFailure`] instead of hanging or
/// propagating a bare panic.
pub(crate) fn kill_run(seed: u64) -> Value {
    let victim = (seed % 8) as usize;
    let at_op = 40 + seed % 29; // lands inside the first cycle's exchanges
    let mut plan = FaultPlan::new(FaultConfig::kill_rank(victim, at_op), seed);
    // Tighten the timeouts so peer ranks discover the death quickly.
    plan.retry.op_timeout = Duration::from_millis(500);
    plan.retry.max_attempts = 6;
    let outcome = faulted_solve(&plan, chaos_solver_config());
    match outcome {
        Ok(_) => {
            println!("  kill rank {victim} at op {at_op}: world unexpectedly survived");
            json!({ "seed": seed, "victim": victim, "structured_failure": false })
        }
        Err(f) => {
            let ranks = f.ranks();
            let killed_reported = ranks.contains(&victim);
            println!(
                "  kill rank {victim} at op {at_op}: {} of {} ranks reported, \
                 failed ranks {ranks:?} (no panic reached the caller)",
                f.failures.len(),
                f.nranks
            );
            json!({
                "seed": seed, "victim": victim, "at_op": at_op,
                "structured_failure": true, "failed_ranks": ranks,
                "killed_rank_reported": killed_reported,
                "report": f.to_string(),
            })
        }
    }
}

/// Run the full chaos campaign with the given base seed.
pub fn run_with_seed(seed: u64) -> Value {
    crate::report::heading(&format!(
        "Chaos — seeded fault injection soak (base seed {seed})"
    ));
    let cfg = chaos_solver_config();
    let baseline = baseline_solve(cfg);
    let base_history = baseline[0].residual_history.clone();
    assert!(
        baseline.iter().all(|s| s.residual_history == base_history),
        "baseline ranks disagree"
    );
    println!(
        "baseline: converged={} in {} cycles, final residual {:.3e}\n",
        baseline[0].converged,
        baseline[0].vcycles,
        baseline[0].final_residual()
    );

    // Meter the ARQ layer across the whole campaign: the registry is
    // process-global, so diff a snapshot taken before any faulted run.
    let metrics_before = gmg_metrics::Registry::global().snapshot();
    let metrics_were_enabled = gmg_metrics::enable();

    println!("transport faults (drop+dup+delay+corrupt, ARQ must absorb exactly):");
    let mut sweep = Vec::new();
    for (i, &rate) in [0.002, 0.01, 0.03].iter().enumerate() {
        for k in 0..3u64 {
            let run_seed = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(1000 * i as u64 + k);
            sweep.push(transport_run(rate, run_seed, cfg, &base_history));
        }
    }
    let sweep_ok = sweep
        .iter()
        .all(|r| r["survived"] == true && r["exact_match"] == true);

    println!("\nself-healing (silent iterate corruption + rollback recovery):");
    let recovery = recovery_run(seed);
    let recovery_ok =
        recovery["converged"] == true && recovery["recoveries"].as_u64().unwrap_or(0) >= 1;

    println!("\ngraceful failure (rank killed mid-exchange):");
    let kill = kill_run(seed);
    let kill_ok = kill["structured_failure"] == true && kill["killed_rank_reported"] == true;

    if !metrics_were_enabled {
        gmg_metrics::disable();
    }
    let arq = gmg_metrics::Registry::global()
        .snapshot()
        .delta_since(&metrics_before);
    let arq_table = arq.render_table("arq_");
    println!("\nfault-handling metrics (ARQ layer, campaign total):\n\n{arq_table}");

    let ok = sweep_ok && recovery_ok && kill_ok;
    println!(
        "\nchaos verdict: transport={} recovery={} kill-report={} → {}",
        sweep_ok,
        recovery_ok,
        kill_ok,
        if ok { "OK" } else { "NOT OK" }
    );
    let baseline_v = json!({
        "converged": baseline[0].converged,
        "vcycles": baseline[0].vcycles,
        "final_residual": baseline[0].final_residual(),
    });
    let arq_retransmits = arq.counter_total("arq_retransmits_total");
    let arq_checksum_failures = arq.counter_total("arq_checksum_failures_total");
    let arq_dedup_drops = arq.counter_total("arq_dedup_drops_total");
    json!({
        "seed": seed,
        "baseline": baseline_v,
        "transport_sweep": sweep,
        "transport_ok": sweep_ok,
        "recovery": recovery,
        "recovery_ok": recovery_ok,
        "kill": kill,
        "kill_ok": kill_ok,
        "arq_retransmits": arq_retransmits,
        "arq_checksum_failures": arq_checksum_failures,
        "arq_dedup_drops": arq_dedup_drops,
        "arq_metrics_table": arq_table,
        "ok": ok,
    })
}

/// Default campaign (seed 7).
pub fn run() -> Value {
    run_with_seed(7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossy_transport_reproduces_baseline_exactly() {
        let cfg = chaos_solver_config();
        let baseline = baseline_solve(cfg);
        let hist = &baseline[0].residual_history;
        let v = transport_run(0.01, 42, cfg, hist);
        assert_eq!(v["survived"], true, "{v}");
        assert_eq!(v["exact_match"], true, "{v}");
        assert_eq!(v["converged"], true, "{v}");
    }

    #[test]
    fn rollback_recovery_demo_converges() {
        let v = recovery_run(5);
        assert_eq!(v["survived"], true, "{v}");
        assert_eq!(v["converged"], true, "{v}");
        assert!(v["recoveries"].as_u64().unwrap() >= 1, "{v}");
        assert_eq!(v["ranks_agree"], true, "{v}");
    }

    #[test]
    fn killed_rank_yields_structured_report() {
        let v = kill_run(11);
        assert_eq!(v["structured_failure"], true, "{v}");
        assert_eq!(v["killed_rank_reported"], true, "{v}");
    }

    /// The fused multi-smooth executor must compose with checkpoint /
    /// rollback recovery: under the same seeded silent corruption and
    /// lossy transport, the fused and sweep-by-sweep schedules both trip
    /// the health guards, both recover, and — because the fused path is
    /// bit-identical — leave identical residual histories.
    #[test]
    fn fused_smoothing_composes_with_rollback_recovery() {
        let run = |fused_smooths: usize| {
            let mut cfg = chaos_solver_config();
            cfg.recovery = RecoveryPolicy::Rollback;
            cfg.checkpoint_interval = 1;
            cfg.max_vcycles = 25;
            cfg.fused_smooths = fused_smooths;
            let plan = FaultPlan::new(FaultConfig::lossy(0.01), 7);
            let decomp = chaos_decomp();
            let d = &decomp;
            RankWorld::run_with_faults(decomp.num_ranks(), &plan, move |mut ctx| {
                let mut s = GmgSolver::new(d.clone(), ctx.rank(), cfg);
                let rank = ctx.rank();
                s.fault_hook = Some(Box::new(move |cycle, level| {
                    if cycle == 2 && rank == 3 {
                        let old = level.x.clone();
                        level.x =
                            BrickedField::from_fn(level.layout.clone(), move |p| old.get(p) * 1e9);
                    }
                }));
                s.solve(&mut ctx)
            })
            .expect("world survives the corruption")
        };
        let fused = run(chaos_solver_config().fused_smooths);
        let sweep = run(1);
        for (f, s) in fused.iter().zip(&sweep) {
            assert!(f.converged && s.converged, "both schedules must converge");
            assert!(
                f.recoveries >= 1 && s.recoveries >= 1,
                "both schedules must roll back at least once"
            );
            assert_eq!(
                f.residual_history, s.residual_history,
                "fused and sweep recovery histories must be bit-identical"
            );
        }
    }
}
