//! Stress and adversarial-ordering tests of the rank runtime: the tag
//! matching must survive heavy out-of-order traffic, interleaved
//! collectives, and repeated exchanges on many simultaneous fields.

use gmg_brick::{BrickLayout, BrickOrdering, BrickedField};
use gmg_comm::runtime::{exchange_array, exchange_bricked, RankWorld};
use gmg_mesh::{Array3, Box3, Decomposition, Point3};
use std::sync::Arc;

#[test]
fn many_tags_delivered_out_of_order() {
    // Rank 0 floods rank 1 with 200 tagged messages; rank 1 receives them
    // in reverse order. Every payload must match its tag.
    RankWorld::run(2, |mut ctx| {
        let n = 200u64;
        if ctx.rank() == 0 {
            for t in 0..n {
                ctx.send(1, t, vec![t as f64, (t * t) as f64]);
            }
        } else {
            for t in (0..n).rev() {
                let m = ctx.recv(0, t);
                assert_eq!(m, vec![t as f64, (t * t) as f64]);
            }
        }
    });
}

#[test]
fn all_to_all_with_interleaved_reductions() {
    let out = RankWorld::run(6, |mut ctx| {
        let me = ctx.rank();
        let n = ctx.nranks();
        // Everyone sends to everyone (including a self-copy via channel).
        for to in 0..n {
            if to != me {
                ctx.send(to, 1000 + me as u64, vec![me as f64]);
            }
        }
        let mut sum = me as f64;
        for from in 0..n {
            if from != me {
                sum += ctx.recv(from, 1000 + from as u64)[0];
            }
        }
        // Interleave a collective to shake the stash.
        let total = ctx.allreduce_sum(1.0);
        assert_eq!(total, n as f64);
        ctx.barrier();
        sum
    });
    let expect: f64 = (0..6).map(|r| r as f64).sum();
    for s in out {
        assert_eq!(s, expect);
    }
}

#[test]
fn repeated_bricked_exchanges_many_fields() {
    // Three fields exchanged in round-robin over 5 rounds with distinct
    // tag bases; all ghosts must be the periodic image of the owning
    // field's data each round.
    let decomp = Decomposition::new(Box3::cube(16), Point3::new(2, 2, 1));
    let d = &decomp;
    RankWorld::run(4, move |mut ctx| {
        let sub = d.subdomain(ctx.rank());
        let layout = Arc::new(BrickLayout::new(sub, 4, 1, BrickOrdering::SurfaceMajor));
        let dom = d.domain().extent();
        let mut fields: Vec<BrickedField> = (0..3)
            .map(|k| {
                BrickedField::from_fn(layout.clone(), move |p| {
                    let q = p.rem_euclid(dom);
                    (q.x + 100 * q.y + 10_000 * q.z + 1_000_000 * k) as f64
                })
            })
            .collect();
        let mut tag = 1;
        let mut total_delta = [0.0f64; 3];
        for round in 0..5 {
            for (k, f) in fields.iter_mut().enumerate() {
                // Perturb all local data so each round has fresh values
                // (every rank applies the same delta, so the global field
                // stays consistent and ghosts must track it).
                let delta = (round * 10 + k) as f64;
                total_delta[k] += delta;
                for v in f.as_mut_slice() {
                    *v += delta;
                }
                exchange_bricked(&mut ctx, d, f, tag);
                tag += 1;
            }
        }
        // Every storage cell equals the analytic value plus the cumulative
        // perturbation — including all ghosts.
        for (k, f) in fields.iter().enumerate() {
            let lay = f.layout().clone();
            lay.storage_cell_box().for_each(|p| {
                let q = p.rem_euclid(dom);
                let expect = (q.x + 100 * q.y + 10_000 * q.z) as f64
                    + 1_000_000.0 * k as f64
                    + total_delta[k];
                assert_eq!(f.get(p), expect, "field {k} at {p:?}");
            });
        }
    });
}

#[test]
fn mixed_array_and_brick_exchanges_share_tag_space() {
    let decomp = Decomposition::new(Box3::cube(16), Point3::new(2, 1, 1));
    let d = &decomp;
    RankWorld::run(2, move |mut ctx| {
        let sub = d.subdomain(ctx.rank());
        let dom = d.domain().extent();
        let layout = Arc::new(BrickLayout::new(sub, 4, 1, BrickOrdering::SurfaceMajor));
        let mut bf = BrickedField::from_fn(layout, move |p| {
            let q = p.rem_euclid(dom);
            (q.x + 20 * q.y + 400 * q.z) as f64
        });
        let mut af = Array3::from_fn(sub, 2, |p| {
            let q = p.rem_euclid(dom);
            (q.x * 3 + q.y) as f64
        });
        // Alternate exchange kinds with strictly increasing tag bases.
        for round in 0..4u64 {
            exchange_bricked(&mut ctx, d, &mut bf, 100 + round * 2);
            exchange_array(&mut ctx, d, &mut af, 2, 101 + round * 2);
        }
        sub.grow(2).for_each(|p| {
            let q = p.rem_euclid(dom);
            assert_eq!(af[p], (q.x * 3 + q.y) as f64);
        });
    });
}

#[test]
fn large_world_allreduce() {
    let out = RankWorld::run(16, |mut ctx| {
        let m = ctx.allreduce_max((ctx.rank() * 7 % 13) as f64);
        let s = ctx.allreduce_sum(ctx.rank() as f64);
        (m, s)
    });
    let expect_max = (0..16).map(|r| (r * 7 % 13) as f64).fold(0.0, f64::max);
    let expect_sum: f64 = (0..16).map(|r| r as f64).sum();
    for (m, s) in out {
        assert_eq!(m, expect_max);
        assert_eq!(s, expect_sum);
    }
}

#[test]
#[should_panic]
fn rank_panic_propagates() {
    RankWorld::run(2, |ctx| {
        if ctx.rank() == 1 {
            panic!("deliberate failure injection");
        }
    });
}
