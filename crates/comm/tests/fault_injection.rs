//! Property-based coverage of the resilient runtime: tag matching must be
//! correct under arbitrary seeded reordering/duplication/loss, and a
//! failed `recv_timeout` must never lose a message that arrived meanwhile.

use std::time::Duration;

use gmg_comm::fault::{CommError, FaultConfig, FaultPlan};
use gmg_comm::runtime::{exchange_array, RankWorld};
use gmg_mesh::{Array3, Box3, Decomposition, Point3};
use proptest::prelude::*;

fn idx_fn(p: Point3) -> f64 {
    (p.x + 1000 * p.y + 1_000_000 * p.z) as f64
}

/// A 2×2×1 ghost exchange + allreduce under a random fault plan must
/// produce exactly the fault-free result (the ARQ layer absorbs drops,
/// reorderings, duplicates, and detected corruption).
fn lossy_exchange_world(plan: &FaultPlan) -> Result<Vec<f64>, gmg_comm::WorldFailure> {
    let decomp = Decomposition::new(Box3::cube(8), Point3::new(2, 2, 1));
    let n = decomp.num_ranks();
    let d = &decomp;
    RankWorld::run_with_faults(n, plan, move |mut ctx| {
        let sub = d.subdomain(ctx.rank());
        let mut a = Array3::from_fn(
            sub,
            1,
            |p| {
                if sub.contains(p) {
                    idx_fn(p)
                } else {
                    f64::NAN
                }
            },
        );
        exchange_array(&mut ctx, d, &mut a, 1, 2);
        let dom = d.domain().extent();
        let mut sum = 0.0;
        sub.grow(1).for_each(|p| {
            assert_eq!(a[p], idx_fn(p.rem_euclid(dom)), "ghost cell {p:?} wrong");
            sum += a[p];
        });
        ctx.allreduce_sum(sum)
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    #[test]
    fn exchange_tag_matching_survives_arbitrary_fault_seeds(
        seed in any::<u64>(),
        drop in 0.0f64..0.08,
        dup in 0.0f64..0.08,
        delay in 0.0f64..0.08,
        corrupt in 0.0f64..0.08,
    ) {
        let config = FaultConfig {
            drop_rate: drop,
            duplicate_rate: dup,
            delay_rate: delay,
            max_delay_slots: 4,
            corrupt_rate: corrupt,
            ..Default::default()
        };
        let sums = lossy_exchange_world(&FaultPlan::new(config, seed))
            .map_err(|f| TestCaseError::fail(format!("world failed: {f}")))?;
        // Every rank agrees on the (fault-free) global sum.
        for w in sums.windows(2) {
            prop_assert_eq!(w[0], w[1]);
        }
    }

    #[test]
    fn recv_timeout_never_loses_a_stashed_message(
        seed in any::<u64>(),
        tags in proptest::collection::vec(0u64..16, 1..6),
        lossy in any::<bool>(),
    ) {
        // Rank 0 sends one message per tag (values encode the send index);
        // rank 1 first waits on a tag that never comes, then must still be
        // able to receive every real message — arrivals during the failed
        // wait are stashed, not dropped.
        let rate = if lossy { 0.05 } else { 0.0 };
        let plan = FaultPlan::new(FaultConfig::lossy(rate), seed);
        let tags_ref = &tags;
        let result = RankWorld::run_with_faults(2, &plan, move |mut ctx| {
            if ctx.rank() == 0 {
                for (i, &t) in tags_ref.iter().enumerate() {
                    // Tag 100+t keeps duplicate tags distinct per index.
                    ctx.send(1, 100 + t * 16 + i as u64, vec![i as f64]);
                }
            } else {
                let err = ctx
                    .recv_timeout(0, 99, Duration::from_millis(30))
                    .unwrap_err();
                assert!(
                    matches!(err, CommError::Timeout { from: 0, tag: 99, .. }),
                    "unexpected error {err}"
                );
                // Drain in reverse order to force stash traffic.
                for (i, &t) in tags_ref.iter().enumerate().rev() {
                    let got = ctx.recv(0, 100 + t * 16 + i as u64);
                    assert_eq!(got, vec![i as f64], "message {i} (tag {t}) lost");
                }
            }
        });
        prop_assert!(result.is_ok(), "{}", result.unwrap_err());
    }
}
