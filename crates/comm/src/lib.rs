//! # gmg-comm — interconnect model and MPI-like rank runtime
//!
//! The paper's communication story has two layers, and so does this crate:
//!
//! * [`model`] — a message-level performance model of a Slingshot-11-class
//!   NIC: sustained bandwidth, software latency, eager vs rendezvous
//!   protocol selection (the `FI_CXI_RDZV_*` environment knobs of Table I),
//!   hardware message matching, GPU-aware vs host-staged injection, and a
//!   mild contention term for multi-node jobs. Calibrated per system from
//!   the paper's Figure 6 discussion.
//! * [`plan`] — geometry → message plan: which of the 26 neighbors gets how
//!   many bytes per ghost exchange at a given level, ghost depth and layout
//!   (bricked plans also carry the contiguous-run counts that quantify the
//!   pack-free property of the surface-major ordering).
//! * [`runtime`] — a real, threaded, in-process rank runtime with
//!   ISend/IRecv/WaitAll semantics (channels + tag matching) used to execute
//!   the *actual* distributed V-cycle numerics at test scale, including the
//!   26-neighbor bricked and conventional ghost exchanges.
//! * [`fault`] — a deterministic, seedable fault-injection layer (drop /
//!   reorder / duplicate / corrupt / stall / kill) plus the typed
//!   [`CommError`] / [`WorldFailure`] vocabulary; the runtime's reliable
//!   protocol (sequence numbers, checksums, ACK + bounded retransmission)
//!   absorbs the recoverable faults and reports the rest structurally.
//! * [`transport`] / [`frame`] / [`socket`] / [`process`] — the runtime's
//!   `Transport` abstraction and its two backends: the original
//!   in-process channels (`ThreadTransport`) and a one-OS-process-per-rank
//!   backend over Unix-domain-socket datagrams (TCP fallback, selected by
//!   `GMG_TRANSPORT=uds|tcp`) with a checksummed, fragmenting frame codec.
//!   `process` adds the elastic-membership controller: heartbeat failure
//!   detection, respawn, and checkpoint-based rank rejoin.

pub mod fault;
pub mod frame;
pub mod model;
pub mod plan;
#[cfg(unix)]
pub mod process;
pub mod runtime;
#[cfg(unix)]
pub mod socket;
pub(crate) mod transport;

pub use fault::{CommError, FaultConfig, FaultPlan, RankFailure, RetryPolicy, WorldFailure};
pub use frame::{Frame, FrameError, FrameKind};
pub use model::{NetworkModel, Protocol};
pub use plan::{ArrayExchangePlan, BrickExchangePlan};
#[cfg(unix)]
pub use process::{telemetry_sock_path, ProcessReport, ProcessWorld, RejoinEvent};
pub use runtime::{exchange_array, exchange_bricked, RankCtx, RankWorld};
#[cfg(unix)]
pub use socket::{SocketKind, SocketTransport};
