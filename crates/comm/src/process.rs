//! One OS process per rank, with elastic membership.
//!
//! A [`ProcessWorld`] controller spawns `nranks` child processes (by
//! re-invoking the current executable with `GMG_PROC_*` environment
//! variables), hands them a socket transport ([`crate::socket`]), and
//! then *watches* them: every child runs a heartbeat thread, and the
//! controller runs a failure detector over heartbeats plus `waitpid`.
//! When a rank dies — a real `SIGKILL`, a crash, or a fault-injected
//! kill that escalated to a process exit — the controller:
//!
//! 1. respawns a replacement process for the dead rank (flagged
//!    `GMG_PROC_REJOIN=1`),
//! 2. broadcasts `PARK(epoch+1)` to the survivors, who finish their
//!    current operation, report their latest checkpointed cycle, and
//!    block at the membership barrier,
//! 3. waits for the replacement's `READY` (it restores the newest valid
//!    checkpoint it can find for its rank),
//! 4. computes the world-wide resume point (the *minimum* reported
//!    checkpoint cycle — every rank keeps all of its checkpoint files,
//!    so the minimum is loadable everywhere), and
//! 5. broadcasts `RESUME(epoch+1, resume)`; every rank fences off the
//!    old epoch (ARQ state, stashes, and in-flight frames from the dead
//!    world are discarded) and re-runs from the agreed cycle.
//!
//! Control traffic rides dedicated Unix datagram sockets in the world
//! directory — `c.sock` (controller inbound), `m<r>.sock` (rank *r*'s
//! membership inbox), `h<r>.sock` (rank *r*'s heartbeat-ACK inbox) —
//! and is framed by the same [`crate::frame`] codec as the data plane
//! (kind [`FrameKind::Control`], opcode in `tag`). The data plane
//! (`d<r>.sock`) never carries control frames and vice versa.
//!
//! The TCP transport flavor works for plain process worlds but refuses
//! elastic rejoin: a dead process takes its listener port with it,
//! whereas a respawned rank can rebind its predecessor's Unix socket
//! path.
//!
//! Failure-detector and membership health are exported through
//! `gmg-metrics`: `heartbeat_rtt_ns` / `heartbeat_missed_total` per
//! rank, `respawn_latency_ns`, `rejoin_epoch_ns`,
//! `membership_deaths_total`, and the `membership_epoch` gauge.

use std::os::unix::net::UnixDatagram;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::fault::{FaultPlan, RetryPolicy};
use crate::frame::{Frame, FrameKind, MAX_FRAME_LEN};
use crate::runtime::RankCtx;
use crate::socket::{SocketKind, SocketTransport};
use crate::transport::Transport;

// Membership opcodes (carried in a control frame's `tag`).
const OP_HELLO: u64 = 1;
const OP_GO: u64 = 2;
const OP_BEAT: u64 = 3;
const OP_BEAT_ACK: u64 = 4;
const OP_PARK: u64 = 5;
const OP_PARKED: u64 = 6;
const OP_RESUME: u64 = 7;
const OP_READY: u64 = 8;
const OP_DONE: u64 = 9;

const BEAT_INTERVAL: Duration = Duration::from_millis(20);
/// A gap longer than this counts as a missed beat (metrics only).
const MISS_AFTER: Duration = Duration::from_millis(150);
/// A gap longer than this declares the rank dead even if the process
/// still exists (hung, not crashed): it is killed and rejoined.
const HB_TIMEOUT: Duration = Duration::from_millis(2500);
const STARTUP_TIMEOUT: Duration = Duration::from_secs(30);
const EPOCH_TIMEOUT: Duration = Duration::from_secs(60);
const HELLO_RESEND: Duration = Duration::from_millis(200);
const PARK_RESEND: Duration = Duration::from_millis(150);
/// How long a parked rank waits for `RESUME` before concluding the
/// controller itself is gone.
const PARK_WAIT_TIMEOUT: Duration = Duration::from_secs(120);

fn ctl_sock_path(dir: &Path) -> PathBuf {
    dir.join("c.sock")
}

fn member_sock_path(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("m{rank}.sock"))
}

fn beat_sock_path(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("h{rank}.sock"))
}

/// The world's gmg-live telemetry sidecar socket. Public so a per-rank
/// shipper can address it from `GMG_PROC_DIR`; datagrams here are
/// loss-tolerant [`FrameKind::Telemetry`] frames, never ARQ traffic.
pub fn telemetry_sock_path(dir: &Path) -> PathBuf {
    dir.join("t.sock")
}

fn out_path(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("out_r{rank}.txt"))
}

/// Where rank-rejoin checkpoints live inside a world directory.
pub fn checkpoint_dir(dir: &Path) -> PathBuf {
    dir.join("ckpt")
}

/// Integers ride control payloads bit-cast, never converted.
fn bits(v: u64) -> f64 {
    f64::from_bits(v)
}

fn unbits(payload: &[f64], i: usize) -> u64 {
    payload.get(i).map(|v| v.to_bits()).unwrap_or(0)
}

fn ctl_frame(src: u32, op: u64, seq: u64, epoch: u64, payload: Vec<f64>) -> Vec<u8> {
    Frame {
        kind: FrameKind::Control,
        src,
        dst: 0,
        tag: op,
        seq,
        epoch,
        frag_index: 0,
        frag_count: 1,
        arq_checksum: 0,
        payload,
    }
    .encode()
}

fn recv_ctl(sock: &UnixDatagram, timeout: Duration) -> Option<Frame> {
    sock.set_read_timeout(Some(timeout.max(Duration::from_micros(100))))
        .ok()?;
    let mut buf = vec![0u8; MAX_FRAME_LEN];
    match sock.recv(&mut buf) {
        Ok(n) => Frame::decode(&buf[..n]).ok(),
        Err(_) => None,
    }
}

/// Checkpoint-cycle wire encoding: `0` means "no checkpoint", `c + 1`
/// means "checkpoint for completed cycle `c`". Keeps the happy path in
/// unsigned arithmetic while letting a freshly booted rank say "none".
fn enc_cycle(c: i64) -> u64 {
    (c + 1).max(0) as u64
}

/// Drain every pending datagram on the telemetry sidecar into the
/// embedded collector sink, stamping each with the controller's current
/// membership epoch (the sink fences stale-epoch frames itself).
fn drain_telemetry(
    sock: Option<&UnixDatagram>,
    sink: &mut Option<Box<dyn FnMut(&[u8], u64)>>,
    epoch: u64,
) {
    let (Some(sock), Some(sink)) = (sock, sink.as_mut()) else {
        return;
    };
    let mut buf = vec![0u8; MAX_FRAME_LEN];
    while let Ok(n) = sock.recv(&mut buf) {
        sink(&buf[..n], epoch);
    }
}

// ---------------------------------------------------------------------
// Child side
// ---------------------------------------------------------------------

/// The per-rank membership endpoint living inside a child process.
/// `RankCtx` polls it from `pump` (cheap nonblocking read) and calls
/// into it to park/rejoin; a background thread keeps heartbeats flowing
/// even while the rank is deep in compute.
pub(crate) struct MembershipClient {
    rank: usize,
    epoch: u64,
    m_sock: UnixDatagram,
    tx: UnixDatagram,
    ctl_path: PathBuf,
    ckpt_dir: PathBuf,
    rejoining: bool,
    parked: Option<u64>,
    progress: Arc<AtomicU64>,
    stop_hb: Arc<AtomicBool>,
}

impl Drop for MembershipClient {
    fn drop(&mut self) {
        self.stop_hb.store(true, Ordering::Relaxed);
    }
}

impl MembershipClient {
    pub(crate) fn rejoining(&self) -> bool {
        self.rejoining
    }

    pub(crate) fn epoch(&self) -> u64 {
        self.epoch
    }

    pub(crate) fn ckpt_dir(&self) -> &Path {
        &self.ckpt_dir
    }

    pub(crate) fn set_progress(&self, cycle: u64) {
        self.progress.store(cycle, Ordering::Relaxed);
    }

    /// Nonblocking membership poll: drains the inbox and returns the
    /// pending park epoch, if any. Sticky — keeps returning `Some`
    /// until the rank actually parks, so every comm call between the
    /// `PARK` arriving and the solver noticing fails fast.
    pub(crate) fn poll_park(&mut self) -> Option<u64> {
        self.m_sock.set_nonblocking(true).ok();
        let mut buf = vec![0u8; MAX_FRAME_LEN];
        while let Ok(n) = self.m_sock.recv(&mut buf) {
            if let Ok(f) = Frame::decode(&buf[..n]) {
                if f.kind == FrameKind::Control && f.tag == OP_PARK && f.epoch > self.epoch {
                    self.parked = Some(f.epoch);
                }
            }
        }
        self.m_sock.set_nonblocking(false).ok();
        self.parked
    }

    /// Survivor path: report the latest locally checkpointed cycle and
    /// block until the controller's `RESUME`. Returns
    /// `(new_epoch, resume_enc)` where `resume_enc` uses [`enc_cycle`]
    /// encoding (`0` = restart from scratch, `c + 1` = re-run from the
    /// cycle-`c` checkpoint).
    pub(crate) fn park_and_await_resume(&mut self, ckpt_cycle: i64) -> (u64, u64) {
        self.report_and_await(OP_PARKED, ckpt_cycle)
    }

    /// Rejoined-replacement path: announce readiness with the newest
    /// checkpoint found on disk (`-1` for none) and await the `RESUME`.
    pub(crate) fn ready_and_await_resume(&mut self, ckpt_cycle: i64) -> (u64, u64) {
        self.report_and_await(OP_READY, ckpt_cycle)
    }

    fn report_and_await(&mut self, op: u64, ckpt_cycle: i64) -> (u64, u64) {
        let enc = enc_cycle(ckpt_cycle);
        // A parked ring is exactly what a membership postmortem wants to
        // see; the controller merges these per-process dumps.
        let _ = gmg_flight::dump_installed(
            if op == OP_PARKED {
                "membership-park"
            } else {
                "membership-rejoin"
            },
            &format!(
                "rank {} (epoch {}, checkpoint cycle {ckpt_cycle})",
                self.rank, self.epoch
            ),
        );
        self.m_sock.set_nonblocking(false).ok();
        let deadline = Instant::now() + PARK_WAIT_TIMEOUT;
        let mut last_report = None::<Instant>;
        let mut buf = vec![0u8; MAX_FRAME_LEN];
        loop {
            if last_report.map_or(true, |t| t.elapsed() >= PARK_RESEND) {
                let f = ctl_frame(self.rank as u32, op, 0, self.epoch, vec![bits(enc)]);
                let _ = self.tx.send_to(&f, &self.ctl_path);
                last_report = Some(Instant::now());
            }
            self.m_sock
                .set_read_timeout(Some(Duration::from_millis(50)))
                .ok();
            if let Ok(n) = self.m_sock.recv(&mut buf) {
                if let Ok(f) = Frame::decode(&buf[..n]) {
                    if f.kind != FrameKind::Control {
                        continue;
                    }
                    match f.tag {
                        // A fresh PARK (second death mid-collection, or a
                        // resend) just re-triggers our report.
                        OP_PARK if f.epoch > self.epoch => last_report = None,
                        OP_RESUME if f.epoch > self.epoch => {
                            self.epoch = f.epoch;
                            self.parked = None;
                            self.rejoining = false;
                            return (f.epoch, f.seq);
                        }
                        _ => {}
                    }
                }
            }
            assert!(
                Instant::now() < deadline,
                "rank {} parked for membership epoch but the controller never resumed it",
                self.rank
            );
        }
    }
}

fn spawn_heartbeat(
    rank: usize,
    dir: &Path,
    progress: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
) -> std::io::Result<()> {
    let h_path = beat_sock_path(dir, rank);
    let _ = std::fs::remove_file(&h_path);
    let sock = UnixDatagram::bind(&h_path)?;
    sock.set_read_timeout(Some(BEAT_INTERVAL))?;
    let tx = UnixDatagram::unbound()?;
    let ctl = ctl_sock_path(dir);
    std::thread::Builder::new()
        .name(format!("gmg-heartbeat-{rank}"))
        .spawn(move || {
            let mut seq = 0u64;
            let mut last_rtt = 0u64;
            let mut buf = [0u8; 256];
            while !stop.load(Ordering::Relaxed) {
                let beat = ctl_frame(
                    rank as u32,
                    OP_BEAT,
                    seq,
                    0,
                    vec![bits(progress.load(Ordering::Relaxed)), bits(last_rtt)],
                );
                let sent = Instant::now();
                let _ = tx.send_to(&beat, &ctl);
                if let Ok(n) = sock.recv(&mut buf) {
                    if let Ok(f) = Frame::decode(&buf[..n]) {
                        if f.tag == OP_BEAT_ACK {
                            last_rtt = sent.elapsed().as_nanos() as u64;
                        }
                    }
                }
                seq += 1;
                std::thread::sleep(BEAT_INTERVAL);
            }
        })?;
    Ok(())
}

/// If this process was spawned by a [`ProcessWorld`] controller, run
/// the rank's entry (via `dispatch(entry_name, ctx, args)`), write the
/// result, and **exit the process** — this never returns in a child.
/// In a normal (non-spawned) process it returns immediately, so binaries
/// and test entries can call it unconditionally at the top of `main`.
pub fn run_child_if_spawned<F>(dispatch: F)
where
    F: FnOnce(&str, RankCtx, &str) -> String,
{
    let Ok(rank) = std::env::var("GMG_PROC_RANK") else {
        return;
    };
    let rank: usize = rank.parse().expect("GMG_PROC_RANK");
    let nranks: usize = std::env::var("GMG_PROC_NRANKS")
        .expect("GMG_PROC_NRANKS")
        .parse()
        .expect("GMG_PROC_NRANKS");
    let dir = PathBuf::from(std::env::var("GMG_PROC_DIR").expect("GMG_PROC_DIR"));
    let entry = std::env::var("GMG_PROC_ENTRY").expect("GMG_PROC_ENTRY");
    let args = std::env::var("GMG_PROC_ARGS").unwrap_or_default();
    let kind = match std::env::var("GMG_PROC_TRANSPORT").as_deref() {
        Ok("tcp") => SocketKind::Tcp,
        _ => SocketKind::Uds,
    };
    let rejoining = std::env::var("GMG_PROC_REJOIN").as_deref() == Ok("1");
    let plan = std::env::var("GMG_PROC_FAULTS")
        .ok()
        .and_then(|s| FaultPlan::from_env_string(&s));
    let code = child_main(
        rank, nranks, &dir, &entry, &args, kind, rejoining, plan, dispatch,
    );
    std::process::exit(code);
}

#[allow(clippy::too_many_arguments)]
fn child_main<F>(
    rank: usize,
    nranks: usize,
    dir: &Path,
    entry: &str,
    args: &str,
    kind: SocketKind,
    rejoining: bool,
    plan: Option<FaultPlan>,
    dispatch: F,
) -> i32
where
    F: FnOnce(&str, RankCtx, &str) -> String,
{
    // A flight ring of our own; parks and panics dump it into the world
    // directory, where the controller merges all surviving rings.
    let flight_world = gmg_flight::FlightWorld::new(nranks);
    let _flight = gmg_flight::install(&flight_world, rank);

    let progress = Arc::new(AtomicU64::new(0));
    let stop_hb = Arc::new(AtomicBool::new(false));

    // Membership inbox first (a respawn rebinds its predecessor's path).
    let m_path = member_sock_path(dir, rank);
    let _ = std::fs::remove_file(&m_path);
    let m_sock = UnixDatagram::bind(&m_path).expect("bind membership socket");
    spawn_heartbeat(rank, dir, progress.clone(), stop_hb.clone()).expect("heartbeat thread");

    // Data endpoint *before* HELLO, so no data frame can race the bind.
    let mut uds_transport = None;
    let mut tcp_listener = None;
    let mut hello_payload = Vec::new();
    match kind {
        SocketKind::Uds => {
            uds_transport = Some(SocketTransport::uds(rank, nranks, dir).expect("bind data socket"))
        }
        SocketKind::Tcp => {
            let (l, port) = SocketTransport::tcp_listener().expect("tcp listener");
            hello_payload = vec![bits(port as u64)];
            tcp_listener = Some(l);
        }
    }

    let tx = UnixDatagram::unbound().expect("ctl send socket");
    let ctl_path = ctl_sock_path(dir);
    let (epoch, ports) = hello_and_wait_go(&m_sock, &tx, &ctl_path, rank, hello_payload);

    let mut transport = match kind {
        SocketKind::Uds => uds_transport.take().unwrap(),
        SocketKind::Tcp => {
            let ports: Vec<u16> = ports.iter().map(|&p| p as u16).collect();
            SocketTransport::tcp(rank, tcp_listener.take().unwrap(), &ports).expect("tcp mesh")
        }
    };
    transport.set_epoch(epoch);

    // The socket medium is genuinely unreliable (a dying peer absorbs
    // in-flight frames), so the ARQ layer always engages here — a
    // zero-rate plan when no chaos was requested. A *rejoined* rank
    // drops any injected kill: that fault already fired, on the
    // predecessor it replaced.
    let mut plan = plan.unwrap_or(FaultPlan {
        config: Default::default(),
        seed: 1,
        retry: RetryPolicy::default(),
    });
    if rejoining {
        plan.config.kill = None;
    }
    let retry = plan.retry;
    let injector = plan.injector(rank);
    let mut ctx = RankCtx::from_parts(rank, nranks, Box::new(transport), Some(injector), retry);
    ctx.membership = Some(MembershipClient {
        rank,
        // A rejoined replacement is spawned *into* the new epoch (its GO
        // already carries it), but it must still accept that epoch's
        // RESUME — so its membership clock starts one behind.
        epoch: if rejoining {
            epoch.saturating_sub(1)
        } else {
            epoch
        },
        m_sock,
        tx: UnixDatagram::unbound().expect("membership send socket"),
        ctl_path: ctl_path.clone(),
        ckpt_dir: checkpoint_dir(dir),
        rejoining,
        parked: None,
        progress,
        stop_hb,
    });

    let entry_owned = entry.to_string();
    let args_owned = args.to_string();
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        dispatch(&entry_owned, ctx, &args_owned)
    }));
    match out {
        Ok(result) => {
            // Result file is the authoritative "done" signal: written
            // and renamed *before* the process can exit 0.
            let path = out_path(dir, rank);
            let tmp = path.with_extension("tmp");
            std::fs::write(&tmp, &result).expect("write result");
            std::fs::rename(&tmp, &path).expect("publish result");
            let done = ctl_frame(rank as u32, OP_DONE, 0, 0, Vec::new());
            let _ = tx.send_to(&done, &ctl_path);
            0
        }
        Err(p) => {
            let msg = p
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| p.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into());
            let _ = gmg_flight::dump_installed("child-panic", &format!("rank {rank}: {msg}"));
            eprintln!("gmg-comm child rank {rank} panicked: {msg}");
            101
        }
    }
}

fn hello_and_wait_go(
    m_sock: &UnixDatagram,
    tx: &UnixDatagram,
    ctl_path: &Path,
    rank: usize,
    hello_payload: Vec<f64>,
) -> (u64, Vec<u64>) {
    let deadline = Instant::now() + STARTUP_TIMEOUT;
    let mut last_hello = None::<Instant>;
    let mut buf = vec![0u8; MAX_FRAME_LEN];
    loop {
        if last_hello.map_or(true, |t| t.elapsed() >= HELLO_RESEND) {
            let hello = ctl_frame(rank as u32, OP_HELLO, 0, 0, hello_payload.clone());
            let _ = tx.send_to(&hello, ctl_path);
            last_hello = Some(Instant::now());
        }
        m_sock
            .set_read_timeout(Some(Duration::from_millis(50)))
            .ok();
        if let Ok(n) = m_sock.recv(&mut buf) {
            if let Ok(f) = Frame::decode(&buf[..n]) {
                if f.kind == FrameKind::Control && f.tag == OP_GO {
                    let ports = f.payload.iter().map(|v| v.to_bits()).collect();
                    return (f.epoch, ports);
                }
            }
        }
        assert!(
            Instant::now() < deadline,
            "rank {rank} never received GO from the membership controller"
        );
    }
}

// ---------------------------------------------------------------------
// Controller side
// ---------------------------------------------------------------------

/// One rejoin epoch, as observed by the controller.
#[derive(Clone, Debug)]
pub struct RejoinEvent {
    /// The rank that died and was replaced.
    pub rank: usize,
    /// The membership epoch the world resumed into.
    pub epoch: u64,
    /// The cycle whose checkpoint the world re-ran from (`-1` = full
    /// restart: the death predated every checkpoint).
    pub resume_cycle: i64,
    /// Death detection → replacement process spawned.
    pub respawn_latency: Duration,
    /// Death detection → `RESUME` broadcast (the whole epoch).
    pub epoch_duration: Duration,
}

/// What a completed process world hands back.
#[derive(Clone, Debug)]
pub struct ProcessReport {
    /// Per-rank result strings, in rank order.
    pub results: Vec<String>,
    /// Every rejoin epoch that happened, in order.
    pub rejoins: Vec<RejoinEvent>,
    /// Transport flavor the world ran on (`"uds"` / `"tcp"`).
    pub transport: &'static str,
    /// Merged flight dump (all surviving ranks' rings), when any child
    /// dumped one.
    pub flight_dump: Option<PathBuf>,
}

struct RankState {
    child: Child,
    said_hello: bool,
    port: u64,
    last_beat: Instant,
    last_miss_mark: Instant,
    progress: u64,
    exited: bool,
    done: bool,
}

/// Controller/builder for a multi-process rank world.
pub struct ProcessWorld {
    nranks: usize,
    entry: String,
    args: String,
    kind: SocketKind,
    plan: Option<FaultPlan>,
    child_exe: PathBuf,
    child_args: Vec<String>,
    kill_at: Option<(usize, u64)>,
    max_rejoins: u32,
    deadline: Duration,
    telemetry_sink: Option<Box<dyn FnMut(&[u8], u64)>>,
}

impl ProcessWorld {
    /// A world of `nranks` processes each running `entry` (a name the
    /// child executable's dispatch function understands). The child
    /// executable defaults to the current one, which must call
    /// [`run_child_if_spawned`] on startup.
    pub fn new(nranks: usize, entry: &str) -> ProcessWorld {
        assert!(nranks >= 1);
        ProcessWorld {
            nranks,
            entry: entry.to_string(),
            args: String::new(),
            kind: SocketKind::from_env(),
            plan: None,
            child_exe: std::env::current_exe().expect("current_exe"),
            child_args: Vec::new(),
            kill_at: None,
            max_rejoins: 4,
            deadline: Duration::from_secs(120),
            telemetry_sink: None,
        }
    }

    /// Opaque argument string passed through to the entry.
    pub fn args(mut self, args: &str) -> Self {
        self.args = args.to_string();
        self
    }

    pub fn transport(mut self, kind: SocketKind) -> Self {
        self.kind = kind;
        self
    }

    /// Run every rank under this seeded fault plan (same plan semantics
    /// as the thread world: fates are deterministic in `(seed, rank)`).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Extra argv for the child executable — e.g. a libtest filter so a
    /// spawned test binary runs only its dispatch entry test.
    pub fn child_args(mut self, args: &[&str]) -> Self {
        self.child_args = args.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Chaos trigger: `SIGKILL` rank `rank`'s process once its
    /// heartbeat-reported progress reaches `cycle`.
    pub fn kill_process_at(mut self, rank: usize, cycle: u64) -> Self {
        assert!(rank < self.nranks);
        self.kill_at = Some((rank, cycle));
        self
    }

    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = d;
        self
    }

    /// Embed a telemetry collector: the controller binds the world's
    /// sidecar socket ([`telemetry_sock_path`]) and hands every datagram
    /// that arrives there to `sink` together with its current membership
    /// epoch. Telemetry is best-effort — a full socket buffer drops
    /// frames, and no sink means the socket is never bound.
    pub fn telemetry_sink(mut self, sink: Box<dyn FnMut(&[u8], u64)>) -> Self {
        self.telemetry_sink = Some(sink);
        self
    }

    /// Spawn, supervise, rejoin as needed, and collect results.
    pub fn run(mut self) -> Result<ProcessReport, String> {
        static WORLD_SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "gmg-procworld-{}-{}",
            std::process::id(),
            WORLD_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(checkpoint_dir(&dir)).map_err(|e| e.to_string())?;
        let out = self.run_in(&dir);
        if out.is_ok() && std::env::var("GMG_KEEP_PROCDIR").as_deref() != Ok("1") {
            let _ = std::fs::remove_dir_all(&dir);
        } else if out.is_err() {
            eprintln!("gmg-comm process world kept its directory for debugging: {dir:?}");
        }
        out
    }

    fn run_in(&mut self, dir: &Path) -> Result<ProcessReport, String> {
        let ctl_path = ctl_sock_path(dir);
        let ctl = UnixDatagram::bind(&ctl_path).map_err(|e| format!("bind controller: {e}"))?;
        let tx = UnixDatagram::unbound().map_err(|e| e.to_string())?;
        let tele = if self.telemetry_sink.is_some() {
            let path = telemetry_sock_path(dir);
            let _ = std::fs::remove_file(&path);
            let s = UnixDatagram::bind(&path).map_err(|e| format!("bind telemetry: {e}"))?;
            s.set_nonblocking(true).ok();
            Some(s)
        } else {
            None
        };

        let mut ranks: Vec<RankState> = (0..self.nranks)
            .map(|r| self.spawn_child(dir, r, false).map(new_rank_state))
            .collect::<Result<_, _>>()?;

        // Startup barrier: every rank HELLOs, then everyone gets GO.
        let startup_deadline = Instant::now() + STARTUP_TIMEOUT;
        while ranks.iter().any(|s| !s.said_hello) {
            if let Some(f) = recv_ctl(&ctl, Duration::from_millis(50)) {
                let src = f.src as usize;
                if src < self.nranks && f.kind == FrameKind::Control {
                    match f.tag {
                        OP_HELLO => {
                            ranks[src].said_hello = true;
                            ranks[src].port = unbits(&f.payload, 0);
                            ranks[src].last_beat = Instant::now();
                        }
                        OP_BEAT => self.handle_beat(&tx, dir, &mut ranks[src], &f),
                        _ => {}
                    }
                }
            }
            for (r, s) in ranks.iter_mut().enumerate() {
                if let Ok(Some(st)) = s.child.try_wait() {
                    return Err(format!("rank {r} died during startup ({st})"));
                }
            }
            if Instant::now() > startup_deadline {
                kill_all(&mut ranks);
                return Err("process world startup timed out waiting for HELLOs".into());
            }
        }
        let ports: Vec<f64> = match self.kind {
            SocketKind::Uds => Vec::new(),
            SocketKind::Tcp => ranks.iter().map(|s| bits(s.port)).collect(),
        };
        for r in 0..self.nranks {
            let go = ctl_frame(u32::MAX, OP_GO, 0, 0, ports.clone());
            let _ = tx.send_to(&go, member_sock_path(dir, r));
        }

        // Steady state: supervise until every rank published a result.
        let hard_deadline = Instant::now() + self.deadline;
        let mut epoch = 0u64;
        let mut rejoins: Vec<RejoinEvent> = Vec::new();
        let mut kill_armed = self.kill_at;
        loop {
            if let Some(f) = recv_ctl(&ctl, Duration::from_millis(10)) {
                let src = f.src as usize;
                if src < self.nranks && f.kind == FrameKind::Control {
                    match f.tag {
                        OP_BEAT => self.handle_beat(&tx, dir, &mut ranks[src], &f),
                        OP_DONE => ranks[src].done = true,
                        // A GO lost to a race: the child keeps HELLOing.
                        OP_HELLO => {
                            let go = ctl_frame(u32::MAX, OP_GO, 0, epoch, ports.clone());
                            let _ = tx.send_to(&go, member_sock_path(dir, src));
                        }
                        _ => {}
                    }
                }
            }

            drain_telemetry(tele.as_ref(), &mut self.telemetry_sink, epoch);

            // Chaos trigger: a real SIGKILL, driven by reported progress.
            if let Some((kr, kc)) = kill_armed {
                if !ranks[kr].exited && ranks[kr].progress >= kc {
                    let _ = ranks[kr].child.kill();
                    let _ = ranks[kr].child.wait();
                    kill_armed = None;
                }
            }

            // Failure detection: waitpid first (authoritative), then
            // heartbeat timeout (hung-but-alive ranks get killed).
            let mut dead: Option<(usize, String)> = None;
            for (r, s) in ranks.iter_mut().enumerate() {
                if s.exited {
                    continue;
                }
                if let Ok(Some(st)) = s.child.try_wait() {
                    s.exited = true;
                    if st.success() && out_path(dir, r).exists() {
                        s.done = true;
                    } else {
                        dead = Some((r, format!("exited: {st}")));
                    }
                    continue;
                }
                let gap = s.last_beat.elapsed();
                if gap > MISS_AFTER && s.last_miss_mark < s.last_beat {
                    s.last_miss_mark = Instant::now();
                    if gmg_metrics::enabled() {
                        gmg_metrics::counter("heartbeat_missed_total", r, None, "membership").inc();
                    }
                }
                if gap > HB_TIMEOUT {
                    let _ = s.child.kill();
                    let _ = s.child.wait();
                    s.exited = true;
                    dead = Some((r, format!("heartbeat silent for {gap:?}")));
                }
            }

            if let Some((r, why)) = dead {
                if ranks.iter().any(|s| s.done) {
                    kill_all(&mut ranks);
                    return Err(format!(
                        "rank {r} died ({why}) after another rank already finished; \
                         cannot rejoin a world that is partially complete"
                    ));
                }
                if self.kind == SocketKind::Tcp {
                    kill_all(&mut ranks);
                    return Err(format!(
                        "rank {r} died ({why}) under the tcp transport, which does not \
                         support elastic rejoin (set GMG_TRANSPORT=uds)"
                    ));
                }
                if rejoins.len() as u32 >= self.max_rejoins {
                    kill_all(&mut ranks);
                    return Err(format!(
                        "rank {r} died ({why}) but the rejoin budget ({}) is exhausted",
                        self.max_rejoins
                    ));
                }
                epoch += 1;
                let ev = self.rejoin_epoch(dir, &ctl, &tx, &mut ranks, r, &why, epoch)?;
                rejoins.push(ev);
            }

            if ranks.iter().all(|s| s.done) {
                break;
            }
            if Instant::now() > hard_deadline {
                kill_all(&mut ranks);
                return Err(format!(
                    "process world exceeded its deadline ({:?}); progress: {:?}",
                    self.deadline,
                    ranks.iter().map(|s| s.progress).collect::<Vec<_>>()
                ));
            }
        }

        for s in &mut ranks {
            let _ = s.child.wait();
        }
        // Scoop any trailing end-of-solve telemetry still in the buffer.
        drain_telemetry(tele.as_ref(), &mut self.telemetry_sink, epoch);
        let results = (0..self.nranks)
            .map(|r| std::fs::read_to_string(out_path(dir, r)).map_err(|e| e.to_string()))
            .collect::<Result<Vec<_>, _>>()?;
        let flight_dump = merge_child_dumps(dir, &rejoins);
        Ok(ProcessReport {
            results,
            rejoins,
            transport: self.kind.as_str(),
            flight_dump,
        })
    }

    fn handle_beat(&self, tx: &UnixDatagram, dir: &Path, s: &mut RankState, f: &Frame) {
        s.last_beat = Instant::now();
        s.progress = unbits(&f.payload, 0);
        let rtt = unbits(&f.payload, 1);
        if rtt > 0 && gmg_metrics::enabled() {
            gmg_metrics::histogram("heartbeat_rtt_ns", f.src as usize, None, "membership")
                .record(rtt);
        }
        let ack = ctl_frame(u32::MAX, OP_BEAT_ACK, f.seq, 0, Vec::new());
        let _ = tx.send_to(&ack, beat_sock_path(dir, f.src as usize));
    }

    /// One membership epoch: respawn the dead rank, park the survivors,
    /// agree on a resume cycle, release everyone into the new epoch.
    #[allow(clippy::too_many_arguments)]
    fn rejoin_epoch(
        &self,
        dir: &Path,
        ctl: &UnixDatagram,
        tx: &UnixDatagram,
        ranks: &mut [RankState],
        dead: usize,
        why: &str,
        epoch: u64,
    ) -> Result<RejoinEvent, String> {
        let t0 = Instant::now();
        if gmg_metrics::enabled() {
            gmg_metrics::counter("membership_deaths_total", dead, None, "membership").inc();
        }

        let spawn_t = Instant::now();
        ranks[dead] = new_rank_state(self.spawn_child(dir, dead, true)?);
        let respawn_latency = spawn_t.elapsed();

        let deadline = Instant::now() + EPOCH_TIMEOUT;
        let mut parked: Vec<Option<u64>> = vec![None; self.nranks];
        let mut ready_enc: Option<u64> = None;
        let mut last_park = Instant::now()
            .checked_sub(PARK_RESEND)
            .unwrap_or_else(Instant::now);
        loop {
            if last_park.elapsed() >= PARK_RESEND {
                for (r, p) in parked.iter().enumerate() {
                    if r != dead && p.is_none() {
                        let park = ctl_frame(u32::MAX, OP_PARK, 0, epoch, Vec::new());
                        let _ = tx.send_to(&park, member_sock_path(dir, r));
                    }
                }
                last_park = Instant::now();
            }
            if let Some(f) = recv_ctl(ctl, Duration::from_millis(20)) {
                let src = f.src as usize;
                if src < self.nranks && f.kind == FrameKind::Control {
                    match f.tag {
                        OP_BEAT => self.handle_beat(tx, dir, &mut ranks[src], &f),
                        OP_HELLO if src == dead => {
                            ranks[src].said_hello = true;
                            ranks[src].last_beat = Instant::now();
                            let go = ctl_frame(u32::MAX, OP_GO, 0, epoch, Vec::new());
                            let _ = tx.send_to(&go, member_sock_path(dir, src));
                        }
                        OP_PARKED if src != dead => parked[src] = Some(unbits(&f.payload, 0)),
                        OP_READY if src == dead => ready_enc = Some(unbits(&f.payload, 0)),
                        OP_DONE => {
                            return Err(format!(
                                "rank {src} finished mid-membership-epoch; \
                                 the dead rank {dead} cannot be rejoined"
                            ))
                        }
                        _ => {}
                    }
                }
            }
            for (r, s) in ranks.iter_mut().enumerate() {
                if !s.exited {
                    if let Ok(Some(st)) = s.child.try_wait() {
                        s.exited = true;
                        return Err(format!(
                            "rank {r} died ({st}) during the membership epoch for rank {dead}"
                        ));
                    }
                }
            }
            let all_parked = parked
                .iter()
                .enumerate()
                .all(|(r, p)| r == dead || p.is_some());
            if all_parked && ready_enc.is_some() {
                break;
            }
            if Instant::now() > deadline {
                return Err(format!(
                    "membership epoch {epoch} for rank {dead} ({why}) timed out; \
                     parked={parked:?} ready={ready_enc:?}"
                ));
            }
        }

        // Every rank keeps all its checkpoint files, so the minimum
        // reported cycle is loadable everywhere; `0` forces a restart.
        let resume_enc = parked
            .iter()
            .flatten()
            .copied()
            .chain(ready_enc)
            .min()
            .unwrap_or(0);
        for r in 0..self.nranks {
            // Twice, unconditionally: receivers dedupe on epoch.
            for _ in 0..2 {
                let resume = ctl_frame(u32::MAX, OP_RESUME, resume_enc, epoch, Vec::new());
                let _ = tx.send_to(&resume, member_sock_path(dir, r));
            }
        }
        let epoch_duration = t0.elapsed();
        if gmg_metrics::enabled() {
            gmg_metrics::histogram("respawn_latency_ns", dead, None, "membership")
                .record(respawn_latency.as_nanos() as u64);
            gmg_metrics::histogram("rejoin_epoch_ns", dead, None, "membership")
                .record(epoch_duration.as_nanos() as u64);
            gmg_metrics::gauge("membership_epoch", 0, None, "membership").set(epoch as f64);
        }
        Ok(RejoinEvent {
            rank: dead,
            epoch,
            resume_cycle: resume_enc as i64 - 1,
            respawn_latency,
            epoch_duration,
        })
    }

    fn spawn_child(&self, dir: &Path, rank: usize, rejoin: bool) -> Result<Child, String> {
        let mut cmd = Command::new(&self.child_exe);
        cmd.args(&self.child_args)
            .env("GMG_PROC_RANK", rank.to_string())
            .env("GMG_PROC_NRANKS", self.nranks.to_string())
            .env("GMG_PROC_DIR", dir)
            .env("GMG_PROC_ENTRY", &self.entry)
            .env("GMG_PROC_ARGS", &self.args)
            .env("GMG_PROC_TRANSPORT", self.kind.as_str())
            .env("GMG_TRANSPORT", self.kind.as_str())
            // Children dump flight rings into the world dir, where the
            // controller finds and merges them.
            .env("GMG_FLIGHT_DIR", dir)
            .stdin(Stdio::null());
        if rejoin {
            cmd.env("GMG_PROC_REJOIN", "1");
        } else {
            cmd.env_remove("GMG_PROC_REJOIN");
        }
        if let Some(p) = &self.plan {
            cmd.env("GMG_PROC_FAULTS", p.to_env_string());
        }
        let log =
            std::fs::File::create(dir.join(format!("r{rank}.log"))).map_err(|e| e.to_string())?;
        cmd.stdout(log.try_clone().map_err(|e| e.to_string())?)
            .stderr(log);
        cmd.spawn().map_err(|e| format!("spawn rank {rank}: {e}"))
    }
}

fn new_rank_state(child: Child) -> RankState {
    RankState {
        child,
        said_hello: false,
        port: 0,
        last_beat: Instant::now(),
        last_miss_mark: Instant::now()
            .checked_sub(Duration::from_secs(3600))
            .unwrap_or_else(Instant::now),
        progress: 0,
        exited: false,
        done: false,
    }
}

fn kill_all(ranks: &mut [RankState]) {
    for s in ranks {
        if !s.exited {
            let _ = s.child.kill();
            let _ = s.child.wait();
            s.exited = true;
        }
    }
}

/// Merge every per-child flight dump found in the world directory into
/// one world-wide dump under the controller's flight base dir.
fn merge_child_dumps(dir: &Path, rejoins: &[RejoinEvent]) -> Option<PathBuf> {
    let mut sources: Vec<PathBuf> = std::fs::read_dir(dir)
        .ok()?
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.is_dir()
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("flightdump_"))
        })
        .collect();
    if sources.is_empty() {
        return None;
    }
    sources.sort();
    let detail = if rejoins.is_empty() {
        "process world".to_string()
    } else {
        rejoins
            .iter()
            .map(|e| {
                format!(
                    "rank {} died and was rejoined at epoch {} (resume cycle {})",
                    e.rank, e.epoch, e.resume_cycle
                )
            })
            .collect::<Vec<_>>()
            .join("; ")
    };
    gmg_flight::merge_dumps(&sources, "process-world", &detail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::CommError;

    const TOTAL_CYCLES: u64 = 12;
    const CHILD_ARGS: &[&str] = &["proc_child_entry", "--test-threads=1", "--nocapture"];

    /// Entry bodies run in *spawned child processes*, dispatched by name.
    fn dispatch(entry: &str, mut ctx: RankCtx, _args: &str) -> String {
        match entry {
            "ring" => ring_once(&mut ctx),
            "rejoin_ring" => rejoin_ring(ctx),
            other => panic!("unknown process-test entry {other:?}"),
        }
    }

    /// The hook a spawned copy of this test binary lands in (the
    /// controller passes a libtest filter selecting exactly this test).
    /// In a normal run it is an instant no-op.
    #[test]
    fn proc_child_entry() {
        run_child_if_spawned(dispatch);
    }

    fn ring_once(ctx: &mut RankCtx) -> String {
        let (n, me) = (ctx.nranks(), ctx.rank());
        ctx.try_send((me + 1) % n, 7, vec![me as f64 * 2.0])
            .unwrap();
        let got = ctx
            .recv_timeout((me + n - 1) % n, 7, Duration::from_secs(20))
            .unwrap();
        format!("{}", got[0])
    }

    // --- checkpointing for the rejoin entry (kept per cycle, bit-exact
    // --- payload via the f64 bit pattern) ---

    fn ck_path(dir: &Path, me: usize, cycle: u64) -> PathBuf {
        dir.join(format!("t{me}_c{cycle}.ck"))
    }

    fn save_ck(dir: &Path, me: usize, cycle: u64, acc: f64) {
        let p = ck_path(dir, me, cycle);
        let tmp = p.with_extension("tmp");
        std::fs::write(&tmp, format!("{:x}", acc.to_bits())).unwrap();
        std::fs::rename(&tmp, &p).unwrap();
    }

    fn load_ck(dir: &Path, me: usize, cycle: u64) -> Option<f64> {
        let s = std::fs::read_to_string(ck_path(dir, me, cycle)).ok()?;
        u64::from_str_radix(s.trim(), 16).ok().map(f64::from_bits)
    }

    fn latest_ck(dir: &Path, me: usize) -> i64 {
        let prefix = format!("t{me}_c");
        let mut best = -1i64;
        if let Ok(rd) = std::fs::read_dir(dir) {
            for e in rd.flatten() {
                if let Some(c) = e
                    .file_name()
                    .to_str()
                    .and_then(|n| n.strip_prefix(&prefix)?.strip_suffix(".ck")?.parse().ok())
                {
                    best = best.max(c);
                }
            }
        }
        best
    }

    fn ring_step(ctx: &mut RankCtx, cycle: u64) -> Result<f64, CommError> {
        let (n, me) = (ctx.nranks(), ctx.rank());
        ctx.try_send(
            (me + 1) % n,
            cycle + 10,
            vec![(cycle * 100 + me as u64) as f64],
        )?;
        let got = ctx.recv_timeout((me + n - 1) % n, cycle + 10, Duration::from_secs(30))?;
        Ok(got[0])
    }

    /// A miniature elastic solve: per-cycle ring exchange, per-cycle
    /// checkpoint, park-on-membership-change, resume from the agreed
    /// cycle. This is the same state machine `gmg`'s solver runs at
    /// scale.
    fn rejoin_ring(mut ctx: RankCtx) -> String {
        let dir = ctx.checkpoint_dir().expect("membership checkpoint dir");
        let me = ctx.rank();
        let mut acc = 0.0f64;
        let mut saved: i64 = -1;
        let mut c = 0u64;
        if ctx.membership_rejoining() {
            let (_epoch, enc) = ctx.rejoin_ready(latest_ck(&dir, me));
            if enc > 0 {
                acc = load_ck(&dir, me, enc - 1).expect("agreed checkpoint must exist");
                c = enc;
                saved = enc as i64 - 1;
            }
        }
        while c < TOTAL_CYCLES {
            ctx.membership_progress(c);
            match ring_step(&mut ctx, c) {
                Ok(v) => {
                    acc += v;
                    save_ck(&dir, me, c, acc);
                    saved = c as i64;
                    c += 1;
                    // Pace the solve so the progress-triggered SIGKILL
                    // lands mid-run, not after the finish line.
                    std::thread::sleep(Duration::from_millis(30));
                }
                Err(CommError::Parked { .. }) => {
                    let (_epoch, enc) = ctx.park_for_rejoin(saved);
                    if enc > 0 {
                        acc = load_ck(&dir, me, enc - 1).expect("agreed checkpoint must exist");
                        c = enc;
                        saved = enc as i64 - 1;
                    } else {
                        acc = 0.0;
                        c = 0;
                        saved = -1;
                    }
                }
                Err(e) => panic!("rank {me} failed at cycle {c}: {e}"),
            }
        }
        format!("{:x}", acc.to_bits())
    }

    fn expected_acc(me: usize, n: usize) -> f64 {
        let left = (me + n - 1) % n;
        let mut acc = 0.0;
        for c in 0..TOTAL_CYCLES {
            acc += (c * 100 + left as u64) as f64;
        }
        acc
    }

    #[test]
    fn process_world_runs_a_ring_over_uds() {
        let report = ProcessWorld::new(3, "ring")
            .transport(SocketKind::Uds)
            .child_args(CHILD_ARGS)
            .deadline(Duration::from_secs(60))
            .run()
            .expect("process world");
        assert_eq!(report.transport, "uds");
        assert!(report.rejoins.is_empty());
        for (me, r) in report.results.iter().enumerate() {
            let left = (me + 2) % 3;
            assert_eq!(r, &format!("{}", left as f64 * 2.0), "rank {me}");
        }
    }

    #[test]
    fn process_world_runs_a_ring_over_tcp() {
        let report = ProcessWorld::new(2, "ring")
            .transport(SocketKind::Tcp)
            .child_args(CHILD_ARGS)
            .deadline(Duration::from_secs(60))
            .run()
            .expect("tcp process world");
        assert_eq!(report.transport, "tcp");
        for (me, r) in report.results.iter().enumerate() {
            let left = (me + 1) % 2;
            assert_eq!(r, &format!("{}", left as f64 * 2.0), "rank {me}");
        }
    }

    #[test]
    fn sigkill_mid_run_is_rejoined_from_checkpoint_bit_exactly() {
        gmg_metrics::enable();
        let victim = 1usize;
        let report = ProcessWorld::new(3, "rejoin_ring")
            .transport(SocketKind::Uds)
            .child_args(CHILD_ARGS)
            .kill_process_at(victim, 5)
            .deadline(Duration::from_secs(90))
            .run()
            .expect("rejoin world");

        assert_eq!(report.rejoins.len(), 1, "exactly one rejoin epoch");
        let ev = &report.rejoins[0];
        assert_eq!((ev.rank, ev.epoch), (victim, 1));
        assert!(
            ev.resume_cycle >= 0,
            "kill at progress 5 follows checkpoints"
        );
        assert!(ev.resume_cycle < TOTAL_CYCLES as i64);

        // The recovered world's answers are bit-identical to an
        // unfaulted run's.
        for (me, r) in report.results.iter().enumerate() {
            let got = f64::from_bits(u64::from_str_radix(r.trim(), 16).unwrap());
            assert_eq!(
                got.to_bits(),
                expected_acc(me, 3).to_bits(),
                "rank {me}: resume must be bit-exact"
            );
        }

        // Failure-detector health is a first-class metric, visible
        // through the Prometheus exposition (satellite: metrics).
        let snap = gmg_metrics::Registry::global().snapshot();
        assert!(snap.counter_total("membership_deaths_total") >= 1);
        assert!(snap.histogram_total("heartbeat_rtt_ns").count() >= 1);
        assert!(snap.histogram_total("respawn_latency_ns").count() >= 1);
        assert!(snap.histogram_total("rejoin_epoch_ns").count() >= 1);
        let prom = gmg_metrics::prom::render_prometheus(&snap);
        for name in [
            "heartbeat_rtt_ns",
            "respawn_latency_ns",
            "rejoin_epoch_ns",
            "membership_deaths_total",
            "membership_epoch",
        ] {
            assert!(prom.contains(name), "prometheus exposition missing {name}");
        }

        // The merged flight dump exists and its detail names the dead
        // rank and the epoch it rejoined into.
        let dump = report.flight_dump.expect("merged flight dump");
        let bundle = gmg_flight::load_dump(&dump).unwrap();
        assert_eq!(bundle.reason, "process-world");
        assert!(bundle.detail.contains(&format!("rank {victim} died")));
        assert!(bundle.logs.len() >= 3);
        let _ = std::fs::remove_dir_all(&dump);
    }
}
