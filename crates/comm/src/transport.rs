//! The transport abstraction under the ARQ layer.
//!
//! [`crate::runtime::RankCtx`] speaks one reliable protocol (sequence
//! numbers, checksums, ACK + dedup, bounded-backoff retransmit) over any
//! [`Transport`]: an unreliable, unordered-under-fault-injection pipe
//! that moves [`Wire`]s between ranks. Two backends exist:
//!
//! * [`ThreadTransport`] — the original in-process crossbeam channels,
//!   byte-for-byte the pre-trait behavior (blocking receives, channel
//!   disconnection maps to a transport error).
//! * [`crate::socket::SocketTransport`] — Unix-domain-socket datagrams
//!   (TCP fallback) between one OS process per rank, framed by
//!   [`crate::frame`].
//!
//! Transport errors are deliberately untyped (`()`): the ARQ layer owns
//! the typed [`crate::CommError`] vocabulary and knows which peer it was
//! talking to; the transport only knows "this pipe is gone".

use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender, TryRecvError};

/// What actually travels between ranks.
#[derive(Clone, Debug)]
pub(crate) enum Wire {
    /// A payload message. `seq` is per-sender monotone; `checksum` covers
    /// `(src, tag, seq, payload)`.
    Data {
        src: usize,
        tag: u64,
        seq: u64,
        checksum: u64,
        payload: Vec<f64>,
    },
    /// Acknowledges receipt of the sender's `seq`. `src` is the ACKing
    /// rank.
    Ack { src: usize, seq: u64 },
}

/// An unreliable pipe between this rank and its peers. Fault injection
/// happens *above* this layer (in `RankCtx`), on `Wire`s, so the same
/// seeded [`crate::FaultPlan`] produces the same fates on every backend.
pub(crate) trait Transport: Send {
    /// Best-effort delivery of `wire` to rank `to`. `Err(())` means the
    /// pipe to that peer is known-dead (the thread backend's channel is
    /// closed); backends where loss is silent simply return `Ok`.
    fn send(&mut self, to: usize, wire: Wire) -> Result<(), ()>;

    /// Receive the next wire addressed to this rank.
    ///
    /// * `None` — block until a wire arrives (or the pipe dies).
    /// * `Some(Duration::ZERO)` — non-blocking poll.
    /// * `Some(d)` — block at most `d`; `Ok(None)` on timeout.
    fn recv(&mut self, timeout: Option<Duration>) -> Result<Option<Wire>, ()>;

    /// Advance an epoch fence (membership change). Wires from older
    /// epochs are dropped by the transport; the default backend has no
    /// epochs because its ranks cannot rejoin.
    fn set_epoch(&mut self, _epoch: u64) {}

    /// Drive backend housekeeping (flush backlogs, accept connections).
    fn pump(&mut self) {}

    /// Backend name for diagnostics.
    fn kind(&self) -> &'static str;
}

/// The in-process backend: one crossbeam channel per rank, exactly as
/// the pre-`Transport` runtime wired them.
pub(crate) struct ThreadTransport {
    pub peers: Vec<Sender<Wire>>,
    pub inbox: Receiver<Wire>,
}

impl Transport for ThreadTransport {
    fn send(&mut self, to: usize, wire: Wire) -> Result<(), ()> {
        self.peers[to].send(wire).map_err(|_| ())
    }

    fn recv(&mut self, timeout: Option<Duration>) -> Result<Option<Wire>, ()> {
        match timeout {
            None => match self.inbox.recv() {
                Ok(w) => Ok(Some(w)),
                Err(_) => Err(()),
            },
            Some(d) if d == Duration::ZERO => match self.inbox.try_recv() {
                Ok(w) => Ok(Some(w)),
                Err(TryRecvError::Empty) => Ok(None),
                Err(TryRecvError::Disconnected) => Err(()),
            },
            Some(d) => match self.inbox.recv_timeout(d) {
                Ok(w) => Ok(Some(w)),
                Err(RecvTimeoutError::Timeout) => Ok(None),
                Err(RecvTimeoutError::Disconnected) => Err(()),
            },
        }
    }

    fn kind(&self) -> &'static str {
        "thread"
    }
}
