//! A real, in-process, threaded rank runtime with MPI-like semantics.
//!
//! Each rank runs on its own OS thread; `send` is non-blocking
//! (`MPI_Isend`), `recv` blocks with `(source, tag)` matching
//! (`MPI_Irecv` + `MPI_Wait`). On top of this the module implements the
//! paper's `exchange()` for both bricked and conventional fields: 26
//! neighbors, periodic wrap, deterministic tag matching, and a correct
//! treatment of self-neighbors (subdomains that wrap onto themselves).
//!
//! This runtime exists for *numerical correctness* of the distributed
//! V-cycle at test scale; performance at scale is the business of
//! [`crate::model`].

use crossbeam::channel::{unbounded, Receiver, Sender};
use gmg_brick::BrickedField;
use gmg_mesh::ghost::{direction_index, DIRECTIONS_26};
use gmg_mesh::{Array3, Box3, Decomposition, Point3};
use gmg_trace::{Counters, Span, Track, LEVEL_NONE};

/// A message: source rank, tag, payload.
type Msg = (usize, u64, Vec<f64>);

/// Reserved tag space for collectives; user tags must stay below this.
const COLLECTIVE_TAG: u64 = u64::MAX - 1024;

/// Per-rank communication context handed to the rank body.
pub struct RankCtx {
    rank: usize,
    nranks: usize,
    peers: Vec<Sender<Msg>>,
    inbox: Receiver<Msg>,
    /// Messages received but not yet matched.
    stash: Vec<Msg>,
}

impl RankCtx {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Open a comm-track span for one message. Collective tags live near
    /// `u64::MAX` and would not survive the trace's JSON f64 encoding, so
    /// they are attributed by peer only.
    fn comm_span(&self, op: &'static str, peer: usize, tag: u64) -> Span {
        let mut sp = gmg_trace::span(self.rank, LEVEL_NONE, op, Track::Comm);
        if sp.is_live() {
            if tag < COLLECTIVE_TAG {
                sp.peer(peer, tag);
            } else {
                sp.peer_rank(peer);
            }
        }
        sp
    }

    /// Non-blocking tagged send (`MPI_Isend` with buffered semantics).
    pub fn send(&self, to: usize, tag: u64, payload: Vec<f64>) {
        let mut sp = self.comm_span("send", to, tag);
        sp.counters(Counters {
            messages: 1,
            message_bytes: (payload.len() * 8) as u64,
            ..Default::default()
        });
        self.peers[to]
            .send((self.rank, tag, payload))
            .expect("receiver hung up");
    }

    /// Blocking receive matching `(from, tag)`.
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<f64> {
        let mut sp = self.comm_span("recv", from, tag);
        let payload = self.recv_untraced(from, tag);
        sp.counters(Counters {
            messages: 1,
            message_bytes: (payload.len() * 8) as u64,
            ..Default::default()
        });
        payload
    }

    fn recv_untraced(&mut self, from: usize, tag: u64) -> Vec<f64> {
        if let Some(pos) = self
            .stash
            .iter()
            .position(|(f, t, _)| *f == from && *t == tag)
        {
            return self.stash.swap_remove(pos).2;
        }
        loop {
            let m = self.inbox.recv().expect("world shut down while receiving");
            if m.0 == from && m.1 == tag {
                return m.2;
            }
            self.stash.push(m);
        }
    }

    /// Max-reduction over one value per rank, result on every rank.
    pub fn allreduce_max(&mut self, v: f64) -> f64 {
        self.allreduce(v, f64::max)
    }

    /// Sum-reduction over one value per rank, result on every rank.
    pub fn allreduce_sum(&mut self, v: f64) -> f64 {
        self.allreduce(v, |a, b| a + b)
    }

    fn allreduce(&mut self, v: f64, combine: impl Fn(f64, f64) -> f64) -> f64 {
        // Gather to rank 0, reduce, broadcast. O(P) but P is small here.
        let tag = COLLECTIVE_TAG;
        if self.rank == 0 {
            let mut acc = v;
            for r in 1..self.nranks {
                let m = self.recv(r, tag);
                acc = combine(acc, m[0]);
            }
            for r in 1..self.nranks {
                self.send(r, tag + 1, vec![acc]);
            }
            acc
        } else {
            self.send(0, tag, vec![v]);
            self.recv(0, tag + 1)[0]
        }
    }

    /// Barrier: everyone waits until all ranks arrive.
    pub fn barrier(&mut self) {
        self.allreduce_sum(0.0);
    }
}

/// The world: spawns `nranks` threads, each running `body`, and collects
/// their results in rank order.
pub struct RankWorld;

impl RankWorld {
    /// Run `body(ctx)` on every rank concurrently and return the per-rank
    /// results. Panics in any rank propagate.
    ///
    /// If the calling thread has a `gmg_trace` capture scope installed,
    /// it is re-installed inside every rank thread, so one `capture`
    /// around `run` sees spans from all ranks.
    pub fn run<T: Send>(nranks: usize, body: impl Fn(RankCtx) -> T + Sync) -> Vec<T> {
        assert!(nranks >= 1);
        let mut senders = Vec::with_capacity(nranks);
        let mut receivers = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let body = &body;
        let senders_ref = &senders;
        let trace_scope = gmg_trace::current_scope();
        let trace_scope_ref = &trace_scope;
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(nranks);
            for (rank, inbox) in receivers.into_iter().enumerate() {
                handles.push(s.spawn(move || {
                    let _trace = trace_scope_ref.as_ref().map(|sc| sc.install());
                    body(RankCtx {
                        rank,
                        nranks,
                        peers: senders_ref.to_vec(),
                        inbox,
                        stash: Vec::new(),
                    })
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panicked"))
                .collect()
        })
    }
}

/// Tag for a halo message: the sender's direction index, offset by
/// `tag_base` (callers bump `tag_base` per exchange round so rounds can't
/// cross-match).
fn halo_tag(tag_base: u64, dir: Point3) -> u64 {
    let t = tag_base * 32 + direction_index(dir) as u64;
    assert!(t < COLLECTIVE_TAG, "tag space exhausted");
    t
}

/// The paper's `exchange()` for bricked fields: fill every ghost brick of
/// `field` from the owning neighbor under `decomp`, using whole-brick
/// messages in deterministic (lexicographic) brick order.
pub fn exchange_bricked(
    ctx: &mut RankCtx,
    decomp: &Decomposition,
    field: &mut BrickedField,
    tag_base: u64,
) {
    let rank = ctx.rank();
    let layout = field.layout().clone();
    let bd = layout.brick_dim();
    // Post all sends first (Isend), then satisfy receives.
    for dir in DIRECTIONS_26 {
        let nbr = decomp.neighbor(rank, dir);
        if nbr.rank == rank {
            continue; // handled locally below
        }
        let slots = layout.send_slots(dir);
        let mut sp = gmg_trace::span(rank, LEVEL_NONE, "pack", Track::Comm);
        let mut buf = Vec::with_capacity(slots.len() * layout.brick_volume());
        for &s in &slots {
            buf.extend_from_slice(field.brick(s));
        }
        sp.counters(Counters {
            bytes_read: (buf.len() * 8) as u64,
            bytes_written: (buf.len() * 8) as u64,
            ..Default::default()
        });
        drop(sp);
        ctx.send(nbr.rank, halo_tag(tag_base, dir), buf);
    }
    for dir in DIRECTIONS_26 {
        let nbr = decomp.neighbor(rank, dir);
        if nbr.rank == rank {
            // Periodic wrap onto myself: local brick copies.
            let _sp = gmg_trace::span(rank, LEVEL_NONE, "self-exchange", Track::Comm);
            let shift_bricks = nbr.wrap_shift.div_floor(Point3::splat(bd));
            field.copy_ghost_from_self(dir, shift_bricks);
            continue;
        }
        // My ghost in direction `dir` comes from the neighbor's send in
        // direction `-dir` (its direction toward me).
        let payload = ctx.recv(nbr.rank, halo_tag(tag_base, -dir));
        let mut sp = gmg_trace::span(rank, LEVEL_NONE, "unpack", Track::Comm);
        let ghosts = layout.ghost_slots(dir);
        assert_eq!(
            payload.len(),
            ghosts.len() * layout.brick_volume(),
            "halo payload size mismatch in {dir:?}"
        );
        for (i, &g) in ghosts.iter().enumerate() {
            let bvol = layout.brick_volume();
            field
                .brick_mut(g)
                .copy_from_slice(&payload[i * bvol..(i + 1) * bvol]);
        }
        sp.counters(Counters {
            bytes_read: (payload.len() * 8) as u64,
            bytes_written: (payload.len() * 8) as u64,
            ..Default::default()
        });
    }
}

/// The conventional `exchange()` for `Array3` fields with pack/unpack
/// staging (the HPGMG-baseline path): depth-`depth` ghost exchange with all
/// 26 neighbors.
pub fn exchange_array(
    ctx: &mut RankCtx,
    decomp: &Decomposition,
    a: &mut Array3<f64>,
    depth: i64,
    tag_base: u64,
) {
    let rank = ctx.rank();
    let sub: Box3 = a.valid();
    assert!(
        depth <= a.ghost(),
        "exchange depth exceeds ghost allocation"
    );
    let mut buf = Vec::new();
    for dir in DIRECTIONS_26 {
        let nbr = decomp.neighbor(rank, dir);
        if nbr.rank == rank {
            continue;
        }
        let mut sp = gmg_trace::span(rank, LEVEL_NONE, "pack", Track::Comm);
        a.pack(sub.face_region(dir, depth), &mut buf);
        sp.counters(Counters {
            bytes_read: (buf.len() * 8) as u64,
            bytes_written: (buf.len() * 8) as u64,
            ..Default::default()
        });
        drop(sp);
        ctx.send(nbr.rank, halo_tag(tag_base, dir), std::mem::take(&mut buf));
    }
    for dir in DIRECTIONS_26 {
        let nbr = decomp.neighbor(rank, dir);
        let recv_region = sub.halo_region(dir, depth);
        if nbr.rank == rank {
            // Self-wrap: my halo cell p equals my own cell p − wrap_shift.
            let _sp = gmg_trace::span(rank, LEVEL_NONE, "self-exchange", Track::Comm);
            a.pack(recv_region.shift(-nbr.wrap_shift), &mut buf);
            let moved = std::mem::take(&mut buf);
            a.unpack(recv_region, &moved);
            buf = moved;
            continue;
        }
        let payload = ctx.recv(nbr.rank, halo_tag(tag_base, -dir));
        let mut sp = gmg_trace::span(rank, LEVEL_NONE, "unpack", Track::Comm);
        a.unpack(recv_region, &payload);
        sp.counters(Counters {
            bytes_read: (payload.len() * 8) as u64,
            bytes_written: (payload.len() * 8) as u64,
            ..Default::default()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmg_brick::{BrickLayout, BrickOrdering};
    use std::sync::Arc;

    fn idx_fn(p: Point3) -> f64 {
        (p.x + 1000 * p.y + 1_000_000 * p.z) as f64
    }

    #[test]
    fn world_runs_and_collects_in_rank_order() {
        let out = RankWorld::run(4, |ctx| ctx.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn send_recv_matching_out_of_order() {
        RankWorld::run(2, |mut ctx| {
            if ctx.rank() == 0 {
                // Send two tags; receiver asks for them in reverse order.
                ctx.send(1, 7, vec![7.0]);
                ctx.send(1, 8, vec![8.0]);
            } else {
                let b = ctx.recv(0, 8);
                let a = ctx.recv(0, 7);
                assert_eq!(a, vec![7.0]);
                assert_eq!(b, vec![8.0]);
            }
        });
    }

    #[test]
    fn allreduce_and_barrier() {
        let out = RankWorld::run(5, |mut ctx| {
            let m = ctx.allreduce_max(ctx.rank() as f64);
            let s = ctx.allreduce_sum(1.0);
            ctx.barrier();
            (m, s)
        });
        for (m, s) in out {
            assert_eq!(m, 4.0);
            assert_eq!(s, 5.0);
        }
    }

    #[test]
    fn bricked_exchange_fills_all_ghosts_periodically() {
        // 2×2×2 ranks over a 16³ domain, 4³ bricks, ghost shell 1 brick.
        let decomp = Decomposition::new(Box3::cube(16), Point3::splat(2));
        let n = decomp.num_ranks();
        let d = &decomp;
        RankWorld::run(n, move |mut ctx| {
            let sub = d.subdomain(ctx.rank());
            let layout = Arc::new(BrickLayout::new(sub, 4, 1, BrickOrdering::SurfaceMajor));
            let mut f = BrickedField::from_fn(layout.clone(), |p| {
                if sub.contains(p) {
                    idx_fn(p)
                } else {
                    f64::NAN
                }
            });
            exchange_bricked(&mut ctx, d, &mut f, 1);
            // Every storage cell must now hold the periodic image value.
            let dom = d.domain().extent();
            layout.storage_cell_box().for_each(|p| {
                let expect = idx_fn(p.rem_euclid(dom));
                assert_eq!(f.get(p), expect, "rank {} cell {p:?}", ctx.rank());
            });
        });
    }

    #[test]
    fn bricked_exchange_single_rank_wraps() {
        let decomp = Decomposition::single(Box3::cube(8));
        let d = &decomp;
        RankWorld::run(1, move |mut ctx| {
            let layout = Arc::new(BrickLayout::new(
                Box3::cube(8),
                4,
                1,
                BrickOrdering::SurfaceMajor,
            ));
            let mut f = BrickedField::from_fn(layout.clone(), |p| {
                if Box3::cube(8).contains(p) {
                    idx_fn(p)
                } else {
                    -1.0
                }
            });
            exchange_bricked(&mut ctx, d, &mut f, 1);
            layout.storage_cell_box().for_each(|p| {
                assert_eq!(f.get(p), idx_fn(p.rem_euclid(Point3::splat(8))));
            });
        });
    }

    #[test]
    fn array_exchange_fills_ghosts_at_depth() {
        for grid in [Point3::new(2, 1, 1), Point3::splat(2)] {
            let decomp = Decomposition::new(Box3::cube(16), grid);
            let n = decomp.num_ranks();
            let d = &decomp;
            let depth = 2;
            RankWorld::run(n, move |mut ctx| {
                let sub = d.subdomain(ctx.rank());
                let mut a = Array3::from_fn(sub, depth, |p| {
                    if sub.contains(p) {
                        idx_fn(p)
                    } else {
                        f64::NAN
                    }
                });
                exchange_array(&mut ctx, d, &mut a, depth, 3);
                let dom = d.domain().extent();
                sub.grow(depth).for_each(|p| {
                    let expect = idx_fn(p.rem_euclid(dom));
                    assert_eq!(a[p], expect, "rank {} cell {p:?}", ctx.rank());
                });
            });
        }
    }

    #[test]
    fn trace_captures_all_ranks_with_serial_comm_tracks() {
        // A capture around RankWorld::run must see spans from every rank,
        // and each rank's comm track must be a real timeline: spans
        // strictly ordered, none overlapping.
        let decomp = Decomposition::new(Box3::cube(16), Point3::splat(2));
        let n = decomp.num_ranks();
        let d = &decomp;
        let (_, trace) = gmg_trace::capture(|| {
            RankWorld::run(n, move |mut ctx| {
                let sub = d.subdomain(ctx.rank());
                let mut a = Array3::from_fn(sub, 1, idx_fn);
                exchange_array(&mut ctx, d, &mut a, 1, 5);
                ctx.barrier();
            });
        });
        assert_eq!(trace.ranks().len(), n);
        for rank in trace.ranks() {
            assert!(
                trace.track_is_serial(rank, gmg_trace::Track::Comm),
                "rank {rank} comm track has overlapping spans"
            );
            let evs = trace.track_events(rank, gmg_trace::Track::Comm);
            assert!(!evs.is_empty());
            // Halo traffic on 8 ranks: 26 sends, 26 recvs, plus packs,
            // unpacks, and collective barrier traffic.
            let ops: Vec<_> = evs.iter().map(|e| e.op.name()).collect();
            for needed in ["pack", "send", "recv", "unpack"] {
                assert!(ops.contains(&needed), "rank {rank} missing {needed}");
            }
        }
    }

    #[test]
    fn every_recv_span_ends_after_its_matching_send_begins() {
        let decomp = Decomposition::new(Box3::cube(16), Point3::new(2, 2, 1));
        let n = decomp.num_ranks();
        let d = &decomp;
        let (_, trace) = gmg_trace::capture(|| {
            RankWorld::run(n, move |mut ctx| {
                let sub = d.subdomain(ctx.rank());
                let mut a = Array3::from_fn(sub, 1, idx_fn);
                exchange_array(&mut ctx, d, &mut a, 1, 6);
            });
        });
        let sends: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.op.name() == "send" && e.tag.is_some())
            .collect();
        let recvs: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.op.name() == "recv" && e.tag.is_some())
            .collect();
        assert!(!recvs.is_empty());
        for r in &recvs {
            // The matching send: posted by my peer, addressed to me, same
            // tag. A recv cannot complete before that send was posted.
            let s = sends
                .iter()
                .find(|s| s.rank == r.peer.unwrap() && s.peer == Some(r.rank) && s.tag == r.tag)
                .unwrap_or_else(|| panic!("no matching send for recv {r:?}"));
            assert!(
                r.ts_ns + r.dur_ns >= s.ts_ns,
                "recv {r:?} ended before matching send {s:?} began"
            );
            assert_eq!(r.counters.message_bytes, s.counters.message_bytes);
        }
    }

    #[test]
    fn repeated_exchanges_with_distinct_tag_bases() {
        // Two back-to-back exchanges must not cross-match.
        let decomp = Decomposition::new(Box3::cube(8), Point3::new(2, 1, 1));
        let d = &decomp;
        RankWorld::run(2, move |mut ctx| {
            let sub = d.subdomain(ctx.rank());
            let mut a = Array3::from_fn(sub, 1, idx_fn);
            exchange_array(&mut ctx, d, &mut a, 1, 10);
            // Mutate and exchange again.
            let valid = a.valid();
            a.for_each_mut(valid, |_, v| *v += 1.0);
            exchange_array(&mut ctx, d, &mut a, 1, 11);
            let dom = d.domain().extent();
            sub.grow(1).for_each(|p| {
                assert_eq!(a[p], idx_fn(p.rem_euclid(dom)) + 1.0);
            });
        });
    }
}
