//! A real, in-process, threaded rank runtime with MPI-like semantics.
//!
//! Each rank runs on its own OS thread; `send` is non-blocking
//! (`MPI_Isend`), `recv` blocks with `(source, tag)` matching
//! (`MPI_Irecv` + `MPI_Wait`). On top of this the module implements the
//! paper's `exchange()` for both bricked and conventional fields: 26
//! neighbors, periodic wrap, deterministic tag matching, and a correct
//! treatment of self-neighbors (subdomains that wrap onto themselves).
//!
//! ## Resilience
//!
//! The runtime speaks a reliable protocol over an (optionally) faulty
//! transport. When a [`FaultPlan`] is installed (`RankWorld::run_with_faults`),
//! every payload message carries a sequence number and an FNV checksum,
//! receivers ACK and deduplicate, and senders retransmit unACKed messages
//! with exponential backoff — so injected drops, reorderings, duplicates,
//! and detectable corruption are absorbed without the solver noticing.
//! Failures that *cannot* be absorbed (a killed rank, exhausted retries, a
//! receive deadline) surface as typed [`CommError`]s from the `try_*` API;
//! the panicking convenience wrappers (`send`/`recv`) are thin
//! `try_*().unwrap()` shims for call sites that treat comm failure as
//! fatal. `RankWorld::try_run` collects *all* per-rank failures into one
//! structured [`WorldFailure`] instead of propagating the first join
//! panic.
//!
//! Without a fault plan the wire format is the same but the machinery is
//! off: no checksum verification, no ACK traffic, no retransmit state —
//! the in-process channel transport is already reliable, so the fault-free
//! path stays byte-for-byte as fast and as traceable as before.
//!
//! This runtime exists for *numerical correctness* of the distributed
//! V-cycle at test scale; performance at scale is the business of
//! [`crate::model`].

use std::collections::HashMap;
use std::collections::HashSet;
use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;
use gmg_brick::BrickedField;
use gmg_mesh::ghost::{direction_index, DIRECTIONS_26};
use gmg_mesh::{Array3, Box3, Decomposition, Point3};
use gmg_trace::{Counters, Span, Track, LEVEL_NONE};

use crate::fault::{
    checksum, flip_bit, CommError, ControlFault, FaultInjector, FaultPlan, RankFailure,
    RetryPolicy, WorldFailure,
};
use crate::transport::{ThreadTransport, Transport, Wire};

/// Reserved tag space for collectives; user tags must stay below this.
pub(crate) const COLLECTIVE_TAG: u64 = u64::MAX - 1024;

/// An unACKed reliable send, kept for retransmission.
struct PendingSend {
    to: usize,
    tag: u64,
    seq: u64,
    payload: Vec<f64>,
    /// Transmissions so far.
    attempts: u32,
    next_retry: Instant,
}

/// A fate-delayed wire awaiting release (models in-flight reordering).
struct DelayedWire {
    to: usize,
    wire: Wire,
    /// Released once the sender's transmission counter reaches this …
    release_at_transmission: u64,
    /// … or this much time passes, whichever first (so a sender that goes
    /// quiet cannot strand a delayed message forever).
    release_at_time: Instant,
}

/// Per-rank communication context handed to the rank body.
pub struct RankCtx {
    rank: usize,
    nranks: usize,
    transport: Box<dyn Transport>,
    /// Messages received but not yet matched: `(src, tag, seq, payload)`.
    stash: Vec<(usize, u64, u64, Vec<f64>)>,
    /// Next outgoing sequence number (assigned in both modes so the
    /// flight recorder can join send/recv pairs across ranks; only the
    /// reliable protocol *acts* on it).
    next_seq: u64,
    /// `(src, seq)` pairs already delivered (reliable-mode dedup).
    seen: HashSet<(usize, u64)>,
    /// Re-ACK counts per `(src, seq)`, so repeated ACK drops redraw.
    ack_attempts: HashMap<(usize, u64), u32>,
    pending: Vec<PendingSend>,
    delayed: Vec<DelayedWire>,
    injector: Option<FaultInjector>,
    retry: RetryPolicy,
    /// Set when this rank is killed by fault injection: suppresses the
    /// drop-time drain so peers observe a hard failure.
    dead: bool,
    /// Elastic-membership client (multi-process worlds only).
    #[cfg(unix)]
    pub(crate) membership: Option<crate::process::MembershipClient>,
}

impl RankCtx {
    /// Assemble a context over an arbitrary transport (used by the
    /// thread world below and by `process` child bootstrap).
    pub(crate) fn from_parts(
        rank: usize,
        nranks: usize,
        transport: Box<dyn Transport>,
        injector: Option<FaultInjector>,
        retry: RetryPolicy,
    ) -> Self {
        RankCtx {
            rank,
            nranks,
            transport,
            stash: Vec::new(),
            next_seq: 0,
            seen: HashSet::new(),
            ack_attempts: HashMap::new(),
            pending: Vec::new(),
            delayed: Vec::new(),
            injector,
            retry,
            dead: false,
            #[cfg(unix)]
            membership: None,
        }
    }

    /// Which transport backend this rank speaks (`"thread"`, `"uds"`,
    /// `"tcp"`).
    pub fn transport_kind(&self) -> &'static str {
        self.transport.kind()
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Whether the reliable (ARQ) protocol layer is engaged.
    fn reliable(&self) -> bool {
        self.injector.is_some()
    }

    /// Open a comm-track span for one message. Collective tags live near
    /// `u64::MAX` and would not survive the trace's JSON f64 encoding, so
    /// they are attributed by peer only.
    fn comm_span(&self, op: &'static str, peer: usize, tag: u64) -> Span {
        let mut sp = gmg_trace::span(self.rank, LEVEL_NONE, op, Track::Comm);
        if sp.is_live() {
            if tag < COLLECTIVE_TAG {
                sp.peer(peer, tag);
            } else {
                sp.peer_rank(peer);
            }
        }
        sp
    }

    /// Record an injected fault / recovery action on the fault track.
    fn fault_event(&self, op: &'static str, peer: Option<usize>, tag: Option<u64>) {
        let tag = tag.filter(|t| *t < COLLECTIVE_TAG);
        gmg_trace::record_instant(self.rank, LEVEL_NONE, op, Track::Fault, peer, tag);
    }

    /// Apply any pending control fault (stall / kill) at a comm-op entry.
    fn check_control(&mut self) -> Result<(), CommError> {
        let Some(inj) = &mut self.injector else {
            return Ok(());
        };
        match inj.control() {
            ControlFault::None => Ok(()),
            ControlFault::Stall(d) => {
                self.fault_event("fault:stall", None, None);
                gmg_flight::record_control("fault:stall", d.as_nanos() as u64);
                std::thread::sleep(d);
                Ok(())
            }
            ControlFault::Kill => {
                let at_op = inj.control_ops();
                self.dead = true;
                self.fault_event("fault:kill", None, None);
                gmg_flight::record_control("fault:kill", 0);
                Err(CommError::Killed {
                    rank: self.rank,
                    at_op,
                })
            }
        }
    }

    /// Non-blocking tagged send (`MPI_Isend` with buffered semantics).
    /// In reliable mode the message is tracked until ACKed and
    /// retransmitted as needed; delivery failure surfaces later, from the
    /// operation that was blocked by it ([`CommError::RetriesExhausted`] or
    /// [`CommError::Timeout`]).
    pub fn try_send(&mut self, to: usize, tag: u64, payload: Vec<f64>) -> Result<(), CommError> {
        self.check_control()?;
        let mut sp = self.comm_span("send", to, tag);
        sp.counters(Counters {
            messages: 1,
            message_bytes: (payload.len() * 8) as u64,
            ..Default::default()
        });
        let seq = self.next_seq;
        self.next_seq += 1;
        gmg_flight::record_send(to, tag, seq, (payload.len() * 8) as u64);
        if !self.reliable() {
            return self
                .transport
                .send(
                    to,
                    Wire::Data {
                        src: self.rank,
                        tag,
                        seq,
                        checksum: 0,
                        payload,
                    },
                )
                .map_err(|_| CommError::Disconnected { peer: to });
        }
        self.pending.push(PendingSend {
            to,
            tag,
            seq,
            payload,
            attempts: 0,
            next_retry: Instant::now(),
        });
        self.transmit_pending(self.pending.len() - 1);
        Ok(())
    }

    /// Panicking wrapper around [`RankCtx::try_send`].
    pub fn send(&mut self, to: usize, tag: u64, payload: Vec<f64>) {
        if let Err(e) = self.try_send(to, tag, payload) {
            panic!("comm failure: {e}");
        }
    }

    /// One (re)transmission of `pending[idx]`, with its injected fate
    /// applied. Channel-level send failures are ignored here: a vanished
    /// peer is indistinguishable from a drop, and is surfaced by the
    /// blocked operation's timeout / retry budget instead.
    fn transmit_pending(&mut self, idx: usize) {
        let (to, tag, seq, attempt) = {
            let p = &mut self.pending[idx];
            p.attempts += 1;
            (p.to, p.tag, p.seq, p.attempts - 1)
        };
        let backoff = self.retry.backoff_base * 2u32.saturating_pow(attempt.min(16));
        self.pending[idx].next_retry = Instant::now() + backoff;
        if attempt > 0 {
            self.fault_event("fault:retransmit", Some(to), Some(tag));
            gmg_flight::record_arq(
                "arq:retransmit",
                Some(to),
                Some(tag),
                Some(seq),
                backoff.as_nanos() as u64,
            );
            if gmg_metrics::enabled() {
                gmg_metrics::counter("arq_retransmits_total", self.rank, None, "arq").inc();
                gmg_metrics::histogram("arq_backoff_ns", self.rank, None, "arq")
                    .record(backoff.as_nanos() as u64);
            }
        }
        let fate = self
            .injector
            .as_mut()
            .expect("transmit_pending requires reliable mode")
            .fate(seq, attempt);
        if fate.drop {
            self.fault_event("fault:drop", Some(to), Some(tag));
            gmg_flight::record_arq("arq:drop", Some(to), Some(tag), Some(seq), 0);
            return;
        }
        let mut payload = self.pending[idx].payload.clone();
        let mut cs = checksum(self.rank, tag, seq, &payload);
        if fate.sdc {
            // Silent data corruption: the checksum is recomputed over the
            // flipped payload, so only solver-level health guards can see
            // it.
            flip_bit(&mut payload, fate.entropy);
            cs = checksum(self.rank, tag, seq, &payload);
            self.fault_event("fault:sdc", Some(to), Some(tag));
        } else if fate.corrupt {
            flip_bit(&mut payload, fate.entropy);
            self.fault_event("fault:corrupt", Some(to), Some(tag));
        }
        let wire = Wire::Data {
            src: self.rank,
            tag,
            seq,
            checksum: cs,
            payload,
        };
        if fate.duplicates > 0 {
            self.fault_event("fault:dup", Some(to), Some(tag));
        }
        for _ in 0..1 + fate.duplicates {
            if fate.delay_slots > 0 {
                self.fault_event("fault:delay", Some(to), Some(tag));
                let inj = self.injector.as_ref().unwrap();
                self.delayed.push(DelayedWire {
                    to,
                    wire: wire.clone(),
                    release_at_transmission: inj.transmissions() + fate.delay_slots as u64,
                    release_at_time: Instant::now()
                        + self.retry.backoff_base * (fate.delay_slots + 1),
                });
            } else {
                let _ = self.transport.send(to, wire.clone());
            }
        }
    }

    /// Drive protocol progress: backend housekeeping, membership-park
    /// polling, then (reliable mode only) release due delayed wires and
    /// retransmit overdue unACKed sends.
    fn pump(&mut self) -> Result<(), CommError> {
        self.transport.pump();
        #[cfg(unix)]
        if let Some(m) = self.membership.as_mut() {
            if let Some(epoch) = m.poll_park() {
                return Err(CommError::Parked { epoch });
            }
        }
        if !self.reliable() {
            return Ok(());
        }
        let now = Instant::now();
        let tx = self.injector.as_ref().unwrap().transmissions();
        let mut i = 0;
        while i < self.delayed.len() {
            if tx >= self.delayed[i].release_at_transmission
                || now >= self.delayed[i].release_at_time
            {
                let d = self.delayed.swap_remove(i);
                let _ = self.transport.send(d.to, d.wire);
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < self.pending.len() {
            if now >= self.pending[i].next_retry {
                let p = &self.pending[i];
                if p.attempts >= self.retry.max_attempts {
                    return Err(CommError::RetriesExhausted {
                        to: p.to,
                        tag: p.tag,
                        seq: p.seq,
                        attempts: p.attempts,
                    });
                }
                self.transmit_pending(i);
            }
            i += 1;
        }
        Ok(())
    }

    /// Process one incoming wire. Returns a deliverable `(src, tag, seq,
    /// payload)` or `None` (ACKs, rejected corruption, deduplicated
    /// copies).
    fn handle_wire(&mut self, w: Wire) -> Option<(usize, u64, u64, Vec<f64>)> {
        match w {
            Wire::Data {
                src,
                tag,
                seq,
                checksum: cs,
                payload,
            } => {
                if !self.reliable() {
                    gmg_flight::record_msg_arrive(src, tag, seq, (payload.len() * 8) as u64);
                    return Some((src, tag, seq, payload));
                }
                if checksum(src, tag, seq, &payload) != cs {
                    // Discard without ACK: the sender's retry timer will
                    // retransmit a clean copy.
                    self.fault_event("fault:reject", Some(src), Some(tag));
                    gmg_flight::record_arq("arq:reject", Some(src), Some(tag), Some(seq), 0);
                    if gmg_metrics::enabled() {
                        gmg_metrics::counter("arq_checksum_failures_total", self.rank, None, "arq")
                            .inc();
                    }
                    return None;
                }
                // ACK every valid copy, duplicates included — a duplicate
                // usually means our previous ACK was lost in flight.
                let attempt = {
                    let a = self.ack_attempts.entry((src, seq)).or_insert(0);
                    let cur = *a;
                    *a += 1;
                    cur
                };
                let drop_ack = self
                    .injector
                    .as_mut()
                    .unwrap()
                    .ack_dropped(src, seq, attempt);
                if drop_ack {
                    self.fault_event("fault:ack-drop", Some(src), None);
                } else {
                    let _ = self.transport.send(
                        src,
                        Wire::Ack {
                            src: self.rank,
                            seq,
                        },
                    );
                }
                if !self.seen.insert((src, seq)) {
                    self.fault_event("fault:dedup", Some(src), Some(tag));
                    gmg_flight::record_arq("arq:dedup", Some(src), Some(tag), Some(seq), 0);
                    if gmg_metrics::enabled() {
                        gmg_metrics::counter("arq_dedup_drops_total", self.rank, None, "arq").inc();
                    }
                    return None;
                }
                gmg_flight::record_msg_arrive(src, tag, seq, (payload.len() * 8) as u64);
                Some((src, tag, seq, payload))
            }
            Wire::Ack { src, seq } => {
                // An ACK retires the pending entry; its attempt count is
                // the message's final transmission tally.
                if gmg_metrics::enabled() {
                    for p in self.pending.iter().filter(|p| p.to == src && p.seq == seq) {
                        gmg_metrics::histogram("arq_attempts", self.rank, None, "arq")
                            .record(p.attempts as u64);
                    }
                }
                self.pending.retain(|p| !(p.to == src && p.seq == seq));
                None
            }
        }
    }

    /// Blocking receive matching `(from, tag)` — panicking wrapper.
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<f64> {
        match self.recv_traced(from, tag, None) {
            Ok(p) => p,
            Err(e) => panic!("comm failure: {e}"),
        }
    }

    /// Receive matching `(from, tag)`, failing with
    /// [`CommError::Timeout`] if no matching message arrives in time.
    /// A message that arrives but does not match is stashed, never lost.
    pub fn recv_timeout(
        &mut self,
        from: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<f64>, CommError> {
        self.recv_traced(from, tag, Some(Instant::now() + timeout))
    }

    /// Non-blocking receive: `Ok(None)` when no matching message is
    /// currently available.
    pub fn try_recv(&mut self, from: usize, tag: u64) -> Result<Option<Vec<f64>>, CommError> {
        self.check_control()?;
        self.pump()?;
        while let Ok(Some(w)) = self.transport.recv(Some(Duration::ZERO)) {
            if let Some(m) = self.handle_wire(w) {
                self.stash.push(m);
            }
        }
        if let Some(pos) = self
            .stash
            .iter()
            .position(|(f, t, _, _)| *f == from && *t == tag)
        {
            return Ok(Some(self.stash.swap_remove(pos).3));
        }
        Ok(None)
    }

    fn recv_traced(
        &mut self,
        from: usize,
        tag: u64,
        deadline: Option<Instant>,
    ) -> Result<Vec<f64>, CommError> {
        let start_ns = gmg_trace::now_ns();
        let mut sp = self.comm_span("recv", from, tag);
        match self.recv_deadline(from, tag, deadline) {
            Ok((seq, payload)) => {
                sp.counters(Counters {
                    messages: 1,
                    message_bytes: (payload.len() * 8) as u64,
                    ..Default::default()
                });
                gmg_flight::record_recv_wait(
                    from,
                    tag,
                    Some(seq),
                    start_ns,
                    gmg_trace::now_ns().saturating_sub(start_ns),
                );
                Ok(payload)
            }
            Err(e) => {
                // A failed wait is exactly what the postmortem needs to
                // see: record it with no matched message.
                gmg_flight::record_recv_wait(
                    from,
                    tag,
                    None,
                    start_ns,
                    gmg_trace::now_ns().saturating_sub(start_ns),
                );
                Err(e)
            }
        }
    }

    fn recv_deadline(
        &mut self,
        from: usize,
        tag: u64,
        deadline: Option<Instant>,
    ) -> Result<(u64, Vec<f64>), CommError> {
        self.check_control()?;
        if let Some(pos) = self
            .stash
            .iter()
            .position(|(f, t, _, _)| *f == from && *t == tag)
        {
            let (_, _, seq, payload) = self.stash.swap_remove(pos);
            return Ok((seq, payload));
        }
        // Under fault injection a blocking receive must not block forever:
        // the matching send may be gone for good (killed peer, exhausted
        // retries elsewhere). Fault-free receives keep the original
        // indefinite-blocking semantics.
        //
        // The deadline is computed exactly once, before the wait loop:
        // stashing a steady stream of mismatched messages must consume
        // the wait budget, never reset it.
        let deadline = deadline.or_else(|| {
            self.reliable()
                .then(|| Instant::now() + self.retry.op_timeout)
        });
        let start = Instant::now();
        loop {
            self.pump()?;
            let got = if self.reliable() || deadline.is_some() || self.membership_active() {
                // Short slices keep the retransmission pump (and the
                // membership poll) live while blocked.
                let mut slice = Duration::from_millis(1);
                if let Some(d) = deadline {
                    slice = slice.min(d.saturating_duration_since(Instant::now()));
                }
                match self.transport.recv(Some(slice)) {
                    Ok(w) => w,
                    Err(()) => return Err(CommError::Disconnected { peer: from }),
                }
            } else {
                match self.transport.recv(None) {
                    Ok(w) => w,
                    Err(()) => return Err(CommError::Disconnected { peer: from }),
                }
            };
            if let Some(w) = got {
                if let Some((src, t, seq, payload)) = self.handle_wire(w) {
                    if src == from && t == tag {
                        return Ok((seq, payload));
                    }
                    self.stash.push((src, t, seq, payload));
                }
            } else if let Some(d) = deadline {
                if Instant::now() >= d {
                    return Err(CommError::Timeout {
                        from,
                        tag,
                        waited_ms: start.elapsed().as_millis() as u64,
                    });
                }
            }
        }
    }

    /// Max-reduction over one value per rank, result on every rank.
    pub fn allreduce_max(&mut self, v: f64) -> f64 {
        match self.try_allreduce_max(v) {
            Ok(r) => r,
            Err(e) => panic!("comm failure: {e}"),
        }
    }

    /// Sum-reduction over one value per rank, result on every rank.
    pub fn allreduce_sum(&mut self, v: f64) -> f64 {
        match self.try_allreduce_sum(v) {
            Ok(r) => r,
            Err(e) => panic!("comm failure: {e}"),
        }
    }

    /// Fallible max-reduction (elastic solvers recover from
    /// [`CommError::Parked`] instead of panicking).
    pub fn try_allreduce_max(&mut self, v: f64) -> Result<f64, CommError> {
        self.allreduce(v, f64::max)
    }

    /// Fallible sum-reduction.
    pub fn try_allreduce_sum(&mut self, v: f64) -> Result<f64, CommError> {
        self.allreduce(v, |a, b| a + b)
    }

    fn allreduce(&mut self, v: f64, combine: impl Fn(f64, f64) -> f64) -> Result<f64, CommError> {
        // Gather to rank 0, reduce, broadcast. O(P) but P is small here.
        let tag = COLLECTIVE_TAG;
        if self.rank == 0 {
            let mut acc = v;
            for r in 1..self.nranks {
                let m = self.recv_traced(r, tag, None)?;
                acc = combine(acc, m[0]);
            }
            for r in 1..self.nranks {
                self.try_send(r, tag + 1, vec![acc])?;
            }
            Ok(acc)
        } else {
            self.try_send(0, tag, vec![v])?;
            Ok(self.recv_traced(0, tag + 1, None)?[0])
        }
    }

    /// Barrier: everyone waits until all ranks arrive.
    pub fn barrier(&mut self) {
        self.allreduce_sum(0.0);
    }

    // -----------------------------------------------------------------
    // Elastic membership (multi-process worlds)
    // -----------------------------------------------------------------

    /// Whether this rank runs under a membership controller (one OS
    /// process per rank) that can park the world and rejoin dead ranks.
    pub fn membership_active(&self) -> bool {
        #[cfg(unix)]
        {
            self.membership.is_some()
        }
        #[cfg(not(unix))]
        {
            false
        }
    }

    /// Whether this process is a respawned replacement for a dead rank
    /// (it must restore from checkpoint before touching the data plane).
    pub fn membership_rejoining(&self) -> bool {
        #[cfg(unix)]
        {
            self.membership.as_ref().is_some_and(|m| m.rejoining())
        }
        #[cfg(not(unix))]
        {
            false
        }
    }

    /// Directory where rejoin checkpoints live, when membership is on.
    pub fn checkpoint_dir(&self) -> Option<std::path::PathBuf> {
        #[cfg(unix)]
        {
            self.membership.as_ref().map(|m| m.ckpt_dir().to_path_buf())
        }
        #[cfg(not(unix))]
        {
            None
        }
    }

    /// Report solve progress (latest completed cycle) to the heartbeat,
    /// so the controller can observe a live solve. No-op without
    /// membership.
    /// The rank's current membership epoch: 0 in a plain (thread or
    /// membership-less) world, bumped by each controller `RESUME`. The
    /// gmg-live shipper stamps telemetry frames with this so collectors
    /// can fence frames from before a rejoin.
    pub fn membership_epoch(&self) -> u64 {
        #[cfg(unix)]
        {
            self.membership.as_ref().map(|m| m.epoch()).unwrap_or(0)
        }
        #[cfg(not(unix))]
        {
            0
        }
    }

    pub fn membership_progress(&self, cycle: u64) {
        #[cfg(unix)]
        if let Some(m) = &self.membership {
            m.set_progress(cycle);
        }
        #[cfg(not(unix))]
        let _ = cycle;
    }

    /// Park at the membership barrier after a [`CommError::Parked`] (or
    /// any comm failure while a controller is reconfiguring the world):
    /// reports the latest locally checkpointed cycle, waits for the
    /// world-wide `RESUME`, fences off the old epoch, and returns
    /// `(new_epoch, resume_cycle)`. Panics if the controller is gone.
    pub fn park_for_rejoin(&mut self, ckpt_cycle: i64) -> (u64, u64) {
        #[cfg(unix)]
        {
            let m = self
                .membership
                .as_mut()
                .expect("park_for_rejoin requires an active membership controller");
            let (epoch, resume_cycle) = m.park_and_await_resume(ckpt_cycle);
            self.begin_epoch(epoch);
            (epoch, resume_cycle)
        }
        #[cfg(not(unix))]
        {
            let _ = ckpt_cycle;
            unreachable!("membership is unix-only")
        }
    }

    /// Rejoined-rank variant of [`RankCtx::park_for_rejoin`]: announces
    /// readiness (state restored up to `ckpt_cycle`, `-1` for none) and
    /// waits for the `RESUME` that readmits this rank.
    pub fn rejoin_ready(&mut self, ckpt_cycle: i64) -> (u64, u64) {
        #[cfg(unix)]
        {
            let m = self
                .membership
                .as_mut()
                .expect("rejoin_ready requires an active membership controller");
            let (epoch, resume_cycle) = m.ready_and_await_resume(ckpt_cycle);
            self.begin_epoch(epoch);
            (epoch, resume_cycle)
        }
        #[cfg(not(unix))]
        {
            let _ = ckpt_cycle;
            unreachable!("membership is unix-only")
        }
    }

    /// Fence off a finished epoch: unmatched stashes, in-flight ARQ
    /// state, and dedup history all belong to the pre-park world and are
    /// discarded; the transport drops any wire still carrying an older
    /// epoch number.
    fn begin_epoch(&mut self, epoch: u64) {
        self.stash.clear();
        self.pending.clear();
        self.delayed.clear();
        self.seen.clear();
        self.ack_attempts.clear();
        self.transport.set_epoch(epoch);
    }
}

impl Drop for RankCtx {
    /// Reliable-mode drain: a finishing rank keeps servicing the protocol
    /// (release delayed wires, retransmit unACKed sends, ACK late
    /// arrivals) until its own sends are confirmed and the wire goes
    /// quiet, so a lost final ACK cannot strand a peer. Skipped for
    /// fault-free worlds, killed ranks, and panicking unwinds — those
    /// must look like hard failures to their peers.
    fn drop(&mut self) {
        if !self.reliable() || self.dead || std::thread::panicking() {
            return;
        }
        let deadline = Instant::now() + self.retry.drain_timeout;
        let quiet = self.retry.backoff_base * 20;
        let mut last_activity = Instant::now();
        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            if self.pending.is_empty()
                && self.delayed.is_empty()
                && now.duration_since(last_activity) >= quiet
            {
                break;
            }
            if let Err(CommError::RetriesExhausted { to, seq, .. }) = self.pump() {
                // The peer is gone for good; nothing left to confirm.
                self.pending.retain(|p| !(p.to == to && p.seq == seq));
                continue;
            }
            match self.transport.recv(Some(Duration::from_millis(1))) {
                Ok(Some(w)) => {
                    last_activity = Instant::now();
                    // Late deliveries are ACKed (inside handle_wire) and
                    // then discarded — no one will read them here.
                    let _ = self.handle_wire(w);
                }
                Ok(None) => {}
                Err(()) => break,
            }
        }
    }
}

/// The world: spawns `nranks` threads, each running `body`, and collects
/// their results in rank order.
pub struct RankWorld;

#[cfg(unix)]
static SOCK_WORLD_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl RankWorld {
    /// Run `body(ctx)` on every rank concurrently and return the per-rank
    /// results. Any rank failure panics with the full [`WorldFailure`]
    /// report; use [`RankWorld::try_run`] to handle it structurally.
    ///
    /// If the calling thread has a `gmg_trace` capture scope installed,
    /// it is re-installed inside every rank thread, so one `capture`
    /// around `run` sees spans from all ranks.
    pub fn run<T: Send>(nranks: usize, body: impl Fn(RankCtx) -> T + Sync) -> Vec<T> {
        Self::try_run(nranks, body).unwrap_or_else(|f| panic!("{f}"))
    }

    /// Like [`RankWorld::run`], but collects every rank's panic into a
    /// structured [`WorldFailure`] instead of panicking: the caller sees
    /// *all* failed ranks with their payloads, not just whichever join
    /// was observed first.
    pub fn try_run<T: Send>(
        nranks: usize,
        body: impl Fn(RankCtx) -> T + Sync,
    ) -> Result<Vec<T>, WorldFailure> {
        Self::run_under(nranks, None, body)
    }

    /// Run under deterministic fault injection: each rank's transport is
    /// wrapped by `plan`'s injector and the reliable (seq + checksum +
    /// ACK + retry) protocol engages. Recoverable faults are absorbed;
    /// unrecoverable ones produce a structured [`WorldFailure`].
    pub fn run_with_faults<T: Send>(
        nranks: usize,
        plan: &FaultPlan,
        body: impl Fn(RankCtx) -> T + Sync,
    ) -> Result<Vec<T>, WorldFailure> {
        Self::run_under(nranks, Some(plan), body)
    }

    /// Like [`RankWorld::run_with_faults`], but the ranks speak through
    /// real socket transports (still one thread per rank, in-process).
    /// Because fault injection happens above the transport, the same
    /// seeded plan produces the same wire fates here as on the thread
    /// backend — this is the equivalence harness the transport proptests
    /// lean on.
    #[cfg(unix)]
    pub fn run_socket_with_faults<T: Send>(
        nranks: usize,
        kind: crate::socket::SocketKind,
        plan: &FaultPlan,
        body: impl Fn(RankCtx) -> T + Sync,
    ) -> Result<Vec<T>, WorldFailure> {
        let dir = std::env::temp_dir().join(format!(
            "gmg-sockworld-{}-{}",
            std::process::id(),
            SOCK_WORLD_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("socket world dir");
        let transports: Vec<Box<dyn Transport>> = match kind {
            crate::socket::SocketKind::Uds => {
                crate::socket::uds_world(&dir, nranks).expect("uds world")
            }
            crate::socket::SocketKind::Tcp => crate::socket::tcp_world(nranks).expect("tcp world"),
        }
        .into_iter()
        .map(|t| Box::new(t) as Box<dyn Transport>)
        .collect();
        let out = Self::run_over(transports, Some(plan), body);
        let _ = std::fs::remove_dir_all(&dir);
        out
    }

    fn run_under<T: Send>(
        nranks: usize,
        plan: Option<&FaultPlan>,
        body: impl Fn(RankCtx) -> T + Sync,
    ) -> Result<Vec<T>, WorldFailure> {
        assert!(nranks >= 1);
        let mut senders = Vec::with_capacity(nranks);
        let mut receivers = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let transports = receivers
            .into_iter()
            .map(|inbox| {
                Box::new(ThreadTransport {
                    peers: senders.clone(),
                    inbox,
                }) as Box<dyn Transport>
            })
            .collect();
        Self::run_over(transports, plan, body)
    }

    /// Run every rank over a thread of its own, each speaking through the
    /// given transport backend. The thread world and the in-process
    /// socket worlds share this harness, so trace capture, flight rings,
    /// and structured failure collection behave identically on both.
    fn run_over<T: Send>(
        transports: Vec<Box<dyn Transport>>,
        plan: Option<&FaultPlan>,
        body: impl Fn(RankCtx) -> T + Sync,
    ) -> Result<Vec<T>, WorldFailure> {
        let nranks = transports.len();
        let body = &body;
        let trace_scope = gmg_trace::current_scope();
        let trace_scope_ref = &trace_scope;
        // One flight-recorder ring per rank, alive for the whole run so a
        // failure can dump every surviving rank's black box.
        let flight = gmg_flight::enabled().then(|| gmg_flight::FlightWorld::new(nranks));
        let flight_ref = &flight;
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(nranks);
            for (rank, transport) in transports.into_iter().enumerate() {
                handles.push(s.spawn(move || {
                    let _trace = trace_scope_ref.as_ref().map(|sc| sc.install());
                    let _flight = flight_ref.as_ref().map(|w| gmg_flight::install(w, rank));
                    let ctx = RankCtx::from_parts(
                        rank,
                        nranks,
                        transport,
                        plan.map(|p| p.injector(rank)),
                        plan.map(|p| p.retry).unwrap_or_default(),
                    );
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || body(ctx)))
                }));
            }
            let mut oks = Vec::with_capacity(nranks);
            let mut failures = Vec::new();
            for (rank, h) in handles.into_iter().enumerate() {
                // catch_unwind inside the thread means join itself only
                // fails on non-unwinding aborts; fold both into the report.
                let outcome = match h.join() {
                    Ok(r) => r,
                    Err(payload) => Err(payload),
                };
                match outcome {
                    Ok(v) => oks.push(v),
                    Err(payload) => failures.push(RankFailure {
                        rank,
                        // `.as_ref()`, not `&payload`: a `&Box<dyn Any>`
                        // would unsize to the *box* as `dyn Any` and every
                        // downcast would miss.
                        message: panic_message(payload.as_ref()),
                    }),
                }
            }
            if let Some(w) = &flight {
                gmg_flight::export_metrics(w);
            }
            if failures.is_empty() {
                Ok(oks)
            } else {
                // Black-box the whole world before the rings die with
                // this scope: every surviving rank's history, not just
                // the failed ones'.
                let detail = failures
                    .iter()
                    .map(|f| format!("rank {}: {}", f.rank, f.message))
                    .collect::<Vec<_>>()
                    .join("; ");
                let flight_dump = flight
                    .as_ref()
                    .and_then(|w| gmg_flight::dump_world(w, "world-failure", &detail));
                Err(WorldFailure {
                    nranks,
                    failures,
                    flight_dump,
                })
            }
        })
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Tag for a halo message: the sender's direction index, offset by
/// `tag_base` (callers bump `tag_base` per exchange round so rounds can't
/// cross-match).
fn halo_tag(tag_base: u64, dir: Point3) -> u64 {
    let t = tag_base * 32 + direction_index(dir) as u64;
    assert!(t < COLLECTIVE_TAG, "tag space exhausted");
    t
}

/// The paper's `exchange()` for bricked fields: fill every ghost brick of
/// `field` from the owning neighbor under `decomp`, using whole-brick
/// messages in deterministic (lexicographic) brick order. Panicking
/// wrapper around [`try_exchange_bricked`].
pub fn exchange_bricked(
    ctx: &mut RankCtx,
    decomp: &Decomposition,
    field: &mut BrickedField,
    tag_base: u64,
) {
    if let Err(e) = try_exchange_bricked(ctx, decomp, field, tag_base) {
        panic!("comm failure: {e}");
    }
}

/// Fallible [`exchange_bricked`]: comm failures (including the membership
/// controller's [`CommError::Parked`]) surface as errors so an elastic
/// solver can park and rejoin instead of tearing the process down.
pub fn try_exchange_bricked(
    ctx: &mut RankCtx,
    decomp: &Decomposition,
    field: &mut BrickedField,
    tag_base: u64,
) -> Result<(), CommError> {
    let rank = ctx.rank();
    let layout = field.layout().clone();
    let bd = layout.brick_dim();
    // Post all sends first (Isend), then satisfy receives.
    for dir in DIRECTIONS_26 {
        let nbr = decomp.neighbor(rank, dir);
        if nbr.rank == rank {
            continue; // handled locally below
        }
        let slots = layout.send_slots(dir);
        let mut sp = gmg_trace::span(rank, LEVEL_NONE, "pack", Track::Comm);
        let mut buf = Vec::with_capacity(slots.len() * layout.brick_volume());
        for &s in &slots {
            buf.extend_from_slice(field.brick(s));
        }
        sp.counters(Counters {
            bytes_read: (buf.len() * 8) as u64,
            bytes_written: (buf.len() * 8) as u64,
            ..Default::default()
        });
        drop(sp);
        ctx.try_send(nbr.rank, halo_tag(tag_base, dir), buf)?;
    }
    for dir in DIRECTIONS_26 {
        let nbr = decomp.neighbor(rank, dir);
        if nbr.rank == rank {
            // Periodic wrap onto myself: local brick copies.
            let _sp = gmg_trace::span(rank, LEVEL_NONE, "self-exchange", Track::Comm);
            let shift_bricks = nbr.wrap_shift.div_floor(Point3::splat(bd));
            field.copy_ghost_from_self(dir, shift_bricks);
            continue;
        }
        // My ghost in direction `dir` comes from the neighbor's send in
        // direction `-dir` (its direction toward me).
        let payload = ctx.recv_traced(nbr.rank, halo_tag(tag_base, -dir), None)?;
        let mut sp = gmg_trace::span(rank, LEVEL_NONE, "unpack", Track::Comm);
        let ghosts = layout.ghost_slots(dir);
        assert_eq!(
            payload.len(),
            ghosts.len() * layout.brick_volume(),
            "halo payload size mismatch in {dir:?}"
        );
        for (i, &g) in ghosts.iter().enumerate() {
            let bvol = layout.brick_volume();
            field
                .brick_mut(g)
                .copy_from_slice(&payload[i * bvol..(i + 1) * bvol]);
        }
        sp.counters(Counters {
            bytes_read: (payload.len() * 8) as u64,
            bytes_written: (payload.len() * 8) as u64,
            ..Default::default()
        });
    }
    Ok(())
}

/// The conventional `exchange()` for `Array3` fields with pack/unpack
/// staging (the HPGMG-baseline path): depth-`depth` ghost exchange with all
/// 26 neighbors.
pub fn exchange_array(
    ctx: &mut RankCtx,
    decomp: &Decomposition,
    a: &mut Array3<f64>,
    depth: i64,
    tag_base: u64,
) {
    let rank = ctx.rank();
    let sub: Box3 = a.valid();
    assert!(
        depth <= a.ghost(),
        "exchange depth exceeds ghost allocation"
    );
    let mut buf = Vec::new();
    for dir in DIRECTIONS_26 {
        let nbr = decomp.neighbor(rank, dir);
        if nbr.rank == rank {
            continue;
        }
        let mut sp = gmg_trace::span(rank, LEVEL_NONE, "pack", Track::Comm);
        a.pack(sub.face_region(dir, depth), &mut buf);
        sp.counters(Counters {
            bytes_read: (buf.len() * 8) as u64,
            bytes_written: (buf.len() * 8) as u64,
            ..Default::default()
        });
        drop(sp);
        ctx.send(nbr.rank, halo_tag(tag_base, dir), std::mem::take(&mut buf));
    }
    for dir in DIRECTIONS_26 {
        let nbr = decomp.neighbor(rank, dir);
        let recv_region = sub.halo_region(dir, depth);
        if nbr.rank == rank {
            // Self-wrap: my halo cell p equals my own cell p − wrap_shift.
            let _sp = gmg_trace::span(rank, LEVEL_NONE, "self-exchange", Track::Comm);
            a.pack(recv_region.shift(-nbr.wrap_shift), &mut buf);
            let moved = std::mem::take(&mut buf);
            a.unpack(recv_region, &moved);
            buf = moved;
            continue;
        }
        let payload = ctx.recv(nbr.rank, halo_tag(tag_base, -dir));
        let mut sp = gmg_trace::span(rank, LEVEL_NONE, "unpack", Track::Comm);
        a.unpack(recv_region, &payload);
        sp.counters(Counters {
            bytes_read: (payload.len() * 8) as u64,
            bytes_written: (payload.len() * 8) as u64,
            ..Default::default()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use gmg_brick::{BrickLayout, BrickOrdering};
    use std::sync::Arc;

    fn idx_fn(p: Point3) -> f64 {
        (p.x + 1000 * p.y + 1_000_000 * p.z) as f64
    }

    #[test]
    fn world_runs_and_collects_in_rank_order() {
        let out = RankWorld::run(4, |ctx| ctx.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn send_recv_matching_out_of_order() {
        RankWorld::run(2, |mut ctx| {
            if ctx.rank() == 0 {
                // Send two tags; receiver asks for them in reverse order.
                ctx.send(1, 7, vec![7.0]);
                ctx.send(1, 8, vec![8.0]);
            } else {
                let b = ctx.recv(0, 8);
                let a = ctx.recv(0, 7);
                assert_eq!(a, vec![7.0]);
                assert_eq!(b, vec![8.0]);
            }
        });
    }

    #[test]
    fn allreduce_and_barrier() {
        let out = RankWorld::run(5, |mut ctx| {
            let m = ctx.allreduce_max(ctx.rank() as f64);
            let s = ctx.allreduce_sum(1.0);
            ctx.barrier();
            (m, s)
        });
        for (m, s) in out {
            assert_eq!(m, 4.0);
            assert_eq!(s, 5.0);
        }
    }

    #[test]
    fn bricked_exchange_fills_all_ghosts_periodically() {
        // 2×2×2 ranks over a 16³ domain, 4³ bricks, ghost shell 1 brick.
        let decomp = Decomposition::new(Box3::cube(16), Point3::splat(2));
        let n = decomp.num_ranks();
        let d = &decomp;
        RankWorld::run(n, move |mut ctx| {
            let sub = d.subdomain(ctx.rank());
            let layout = Arc::new(BrickLayout::new(sub, 4, 1, BrickOrdering::SurfaceMajor));
            let mut f = BrickedField::from_fn(layout.clone(), |p| {
                if sub.contains(p) {
                    idx_fn(p)
                } else {
                    f64::NAN
                }
            });
            exchange_bricked(&mut ctx, d, &mut f, 1);
            // Every storage cell must now hold the periodic image value.
            let dom = d.domain().extent();
            layout.storage_cell_box().for_each(|p| {
                let expect = idx_fn(p.rem_euclid(dom));
                assert_eq!(f.get(p), expect, "rank {} cell {p:?}", ctx.rank());
            });
        });
    }

    #[test]
    fn bricked_exchange_single_rank_wraps() {
        let decomp = Decomposition::single(Box3::cube(8));
        let d = &decomp;
        RankWorld::run(1, move |mut ctx| {
            let layout = Arc::new(BrickLayout::new(
                Box3::cube(8),
                4,
                1,
                BrickOrdering::SurfaceMajor,
            ));
            let mut f = BrickedField::from_fn(layout.clone(), |p| {
                if Box3::cube(8).contains(p) {
                    idx_fn(p)
                } else {
                    -1.0
                }
            });
            exchange_bricked(&mut ctx, d, &mut f, 1);
            layout.storage_cell_box().for_each(|p| {
                assert_eq!(f.get(p), idx_fn(p.rem_euclid(Point3::splat(8))));
            });
        });
    }

    #[test]
    fn array_exchange_fills_ghosts_at_depth() {
        for grid in [Point3::new(2, 1, 1), Point3::splat(2)] {
            let decomp = Decomposition::new(Box3::cube(16), grid);
            let n = decomp.num_ranks();
            let d = &decomp;
            let depth = 2;
            RankWorld::run(n, move |mut ctx| {
                let sub = d.subdomain(ctx.rank());
                let mut a = Array3::from_fn(sub, depth, |p| {
                    if sub.contains(p) {
                        idx_fn(p)
                    } else {
                        f64::NAN
                    }
                });
                exchange_array(&mut ctx, d, &mut a, depth, 3);
                let dom = d.domain().extent();
                sub.grow(depth).for_each(|p| {
                    let expect = idx_fn(p.rem_euclid(dom));
                    assert_eq!(a[p], expect, "rank {} cell {p:?}", ctx.rank());
                });
            });
        }
    }

    #[test]
    fn trace_captures_all_ranks_with_serial_comm_tracks() {
        // A capture around RankWorld::run must see spans from every rank,
        // and each rank's comm track must be a real timeline: spans
        // strictly ordered, none overlapping.
        let decomp = Decomposition::new(Box3::cube(16), Point3::splat(2));
        let n = decomp.num_ranks();
        let d = &decomp;
        let (_, trace) = gmg_trace::capture(|| {
            RankWorld::run(n, move |mut ctx| {
                let sub = d.subdomain(ctx.rank());
                let mut a = Array3::from_fn(sub, 1, idx_fn);
                exchange_array(&mut ctx, d, &mut a, 1, 5);
                ctx.barrier();
            });
        });
        assert_eq!(trace.ranks().len(), n);
        for rank in trace.ranks() {
            assert!(
                trace.track_is_serial(rank, gmg_trace::Track::Comm),
                "rank {rank} comm track has overlapping spans"
            );
            let evs = trace.track_events(rank, gmg_trace::Track::Comm);
            assert!(!evs.is_empty());
            // Halo traffic on 8 ranks: 26 sends, 26 recvs, plus packs,
            // unpacks, and collective barrier traffic.
            let ops: Vec<_> = evs.iter().map(|e| e.op.name()).collect();
            for needed in ["pack", "send", "recv", "unpack"] {
                assert!(ops.contains(&needed), "rank {rank} missing {needed}");
            }
        }
    }

    #[test]
    fn every_recv_span_ends_after_its_matching_send_begins() {
        let decomp = Decomposition::new(Box3::cube(16), Point3::new(2, 2, 1));
        let n = decomp.num_ranks();
        let d = &decomp;
        let (_, trace) = gmg_trace::capture(|| {
            RankWorld::run(n, move |mut ctx| {
                let sub = d.subdomain(ctx.rank());
                let mut a = Array3::from_fn(sub, 1, idx_fn);
                exchange_array(&mut ctx, d, &mut a, 1, 6);
            });
        });
        let sends: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.op.name() == "send" && e.tag.is_some())
            .collect();
        let recvs: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.op.name() == "recv" && e.tag.is_some())
            .collect();
        assert!(!recvs.is_empty());
        for r in &recvs {
            // The matching send: posted by my peer, addressed to me, same
            // tag. A recv cannot complete before that send was posted.
            let s = sends
                .iter()
                .find(|s| s.rank == r.peer.unwrap() && s.peer == Some(r.rank) && s.tag == r.tag)
                .unwrap_or_else(|| panic!("no matching send for recv {r:?}"));
            assert!(
                r.ts_ns + r.dur_ns >= s.ts_ns,
                "recv {r:?} ended before matching send {s:?} began"
            );
            assert_eq!(r.counters.message_bytes, s.counters.message_bytes);
        }
    }

    #[test]
    fn repeated_exchanges_with_distinct_tag_bases() {
        // Two back-to-back exchanges must not cross-match.
        let decomp = Decomposition::new(Box3::cube(8), Point3::new(2, 1, 1));
        let d = &decomp;
        RankWorld::run(2, move |mut ctx| {
            let sub = d.subdomain(ctx.rank());
            let mut a = Array3::from_fn(sub, 1, idx_fn);
            exchange_array(&mut ctx, d, &mut a, 1, 10);
            // Mutate and exchange again.
            let valid = a.valid();
            a.for_each_mut(valid, |_, v| *v += 1.0);
            exchange_array(&mut ctx, d, &mut a, 1, 11);
            let dom = d.domain().extent();
            sub.grow(1).for_each(|p| {
                assert_eq!(a[p], idx_fn(p.rem_euclid(dom)) + 1.0);
            });
        });
    }

    // ---------------------------------------------------------------
    // Resilience
    // ---------------------------------------------------------------

    #[test]
    fn try_run_collects_every_failed_rank() {
        let err = RankWorld::try_run(4, |ctx| {
            if ctx.rank() % 2 == 1 {
                panic!("rank {} exploded", ctx.rank());
            }
            ctx.rank()
        })
        .unwrap_err();
        assert_eq!(err.nranks, 4);
        assert_eq!(err.ranks(), vec![1, 3]);
        assert!(err.failures[0].message.contains("rank 1 exploded"));
        assert!(err.failures[1].message.contains("rank 3 exploded"));
    }

    #[test]
    fn run_panics_with_structured_report() {
        let caught = std::panic::catch_unwind(|| {
            RankWorld::run(3, |ctx| {
                if ctx.rank() == 2 {
                    panic!("boom");
                }
            });
        })
        .unwrap_err();
        let msg = panic_message(caught.as_ref());
        assert!(msg.contains("1 of 3 ranks failed"), "{msg}");
        assert!(msg.contains("rank 2: boom"), "{msg}");
    }

    #[test]
    fn recv_timeout_times_out_cleanly_and_never_loses_messages() {
        RankWorld::run(2, |mut ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 5, vec![5.0]);
                ctx.barrier();
            } else {
                // Tag 9 never arrives; tag 5 arrives meanwhile and must be
                // stashed by the failed wait, not lost.
                let err = ctx
                    .recv_timeout(0, 9, Duration::from_millis(50))
                    .unwrap_err();
                assert!(matches!(
                    err,
                    CommError::Timeout {
                        from: 0,
                        tag: 9,
                        ..
                    }
                ));
                ctx.barrier();
                assert_eq!(ctx.recv(0, 5), vec![5.0]);
            }
        });
    }

    #[test]
    fn try_recv_is_nonblocking() {
        RankWorld::run(2, |mut ctx| {
            if ctx.rank() == 0 {
                ctx.barrier();
                ctx.send(1, 3, vec![3.0]);
            } else {
                assert_eq!(ctx.try_recv(0, 3).unwrap(), None);
                ctx.barrier();
                // Poll until the in-flight send lands.
                loop {
                    if let Some(p) = ctx.try_recv(0, 3).unwrap() {
                        assert_eq!(p, vec![3.0]);
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        });
    }

    /// Exchanges and collectives running over a transport that drops,
    /// reorders, duplicates, and corrupts — the ARQ layer must make the
    /// result identical to the fault-free run.
    #[test]
    fn exchange_survives_lossy_transport() {
        let decomp = Decomposition::new(Box3::cube(16), Point3::splat(2));
        let n = decomp.num_ranks();
        let d = &decomp;
        for seed in [1u64, 2, 3] {
            let plan = FaultPlan::new(FaultConfig::lossy(0.05), seed);
            let sums = RankWorld::run_with_faults(n, &plan, move |mut ctx| {
                let sub = d.subdomain(ctx.rank());
                let mut a =
                    Array3::from_fn(
                        sub,
                        1,
                        |p| {
                            if sub.contains(p) {
                                idx_fn(p)
                            } else {
                                f64::NAN
                            }
                        },
                    );
                exchange_array(&mut ctx, d, &mut a, 1, 2);
                let dom = d.domain().extent();
                let mut sum = 0.0;
                sub.grow(1).for_each(|p| {
                    assert_eq!(a[p], idx_fn(p.rem_euclid(dom)), "seed {seed}");
                    sum += a[p];
                });
                ctx.allreduce_sum(sum)
            })
            .unwrap_or_else(|f| panic!("seed {seed}: {f}"));
            assert!(sums.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn lossy_transport_actually_injected_faults() {
        // Guard against the ARQ test passing vacuously: the fault track
        // must show injections and recoveries.
        let plan = FaultPlan::new(FaultConfig::lossy(0.2), 7);
        let (_, trace) = gmg_trace::capture(|| {
            RankWorld::run_with_faults(2, &plan, |mut ctx| {
                for round in 0..50u64 {
                    let peer = 1 - ctx.rank();
                    ctx.send(peer, round, vec![round as f64]);
                    assert_eq!(ctx.recv(peer, round), vec![round as f64]);
                }
            })
            .unwrap();
        });
        let faults: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.track == Track::Fault)
            .map(|e| e.op.name())
            .collect();
        assert!(!faults.is_empty());
        assert!(faults.contains(&"fault:drop"));
        assert!(faults.contains(&"fault:retransmit"));
        assert!(
            faults.contains(&"fault:reject"),
            "corruption was never detected: {faults:?}"
        );
    }

    #[test]
    fn arq_metrics_record_retransmits_under_loss() {
        // The registry is process-global and other tests may run in
        // parallel, so assert on the delta across this run and use ≥
        // comparisons only.
        let before = gmg_metrics::Registry::global().snapshot();
        let was_enabled = gmg_metrics::enable();
        let plan = FaultPlan::new(FaultConfig::lossy(0.2), 11);
        RankWorld::run_with_faults(2, &plan, |mut ctx| {
            for round in 0..50u64 {
                let peer = 1 - ctx.rank();
                ctx.send(peer, round, vec![round as f64]);
                assert_eq!(ctx.recv(peer, round), vec![round as f64]);
            }
        })
        .unwrap();
        if !was_enabled {
            gmg_metrics::disable();
        }
        let delta = gmg_metrics::Registry::global()
            .snapshot()
            .delta_since(&before);
        assert!(
            delta.counter_total("arq_retransmits_total") >= 1,
            "20% loss over 100 messages must retransmit"
        );
        let backoff = delta.histogram_total("arq_backoff_ns");
        assert!(backoff.count() >= 1);
        assert!(backoff.min().unwrap() > 0, "backoff delays are nonzero");
        // Every ACKed message records its final transmission tally.
        let attempts = delta.histogram_total("arq_attempts");
        assert!(attempts.count() >= 1);
        assert!(attempts.max().unwrap() >= 2, "some message needed a retry");
    }

    #[test]
    fn killed_rank_is_reported_not_hung() {
        let cfg = FaultConfig::kill_rank(1, 3);
        let mut plan = FaultPlan::new(cfg, 0);
        // Keep peers from blocking forever on the dead rank.
        plan.retry.op_timeout = Duration::from_millis(200);
        plan.retry.max_attempts = 4;
        let err = RankWorld::run_with_faults(4, &plan, |mut ctx| {
            // Ring exchange: everyone depends on everyone transitively.
            for round in 0..10u64 {
                let next = (ctx.rank() + 1) % ctx.nranks();
                let prev = (ctx.rank() + ctx.nranks() - 1) % ctx.nranks();
                ctx.send(next, round, vec![ctx.rank() as f64]);
                let got = ctx.recv(prev, round);
                assert_eq!(got, vec![prev as f64]);
            }
        })
        .unwrap_err();
        // The killed rank reports Killed; at least one peer reports the
        // timeout it caused. No hang, no unstructured panic.
        assert!(err.ranks().contains(&1), "{err}");
        let killed = err.failures.iter().find(|f| f.rank == 1).unwrap();
        assert!(killed.message.contains("fault injection"), "{err}");
        assert!(
            err.failures
                .iter()
                .any(|f| f.rank != 1 && f.message.contains("timed out")),
            "{err}"
        );
    }

    #[test]
    fn stalled_rank_delays_but_completes() {
        let cfg = FaultConfig {
            stall: Some((
                crate::fault::ControlSpec { rank: 0, at_op: 2 },
                Duration::from_millis(30),
            )),
            ..Default::default()
        };
        let plan = FaultPlan::new(cfg, 0);
        let out = RankWorld::run_with_faults(2, &plan, |mut ctx| {
            let peer = 1 - ctx.rank();
            ctx.send(peer, 1, vec![ctx.rank() as f64]);
            let got = ctx.recv(peer, 1)[0];
            ctx.allreduce_sum(got)
        })
        .unwrap();
        assert_eq!(out, vec![1.0, 1.0]);
    }

    #[test]
    fn fault_free_plan_changes_nothing() {
        // run_with_faults with an inactive config must agree with run.
        let plan = FaultPlan::new(FaultConfig::default(), 0);
        let a =
            RankWorld::run_with_faults(3, &plan, |mut ctx| ctx.allreduce_sum(ctx.rank() as f64))
                .unwrap();
        let b = RankWorld::run(3, |mut ctx| ctx.allreduce_sum(ctx.rank() as f64));
        assert_eq!(a, b);
    }

    #[test]
    fn recv_timeout_deadline_holds_under_continuous_mismatched_traffic() {
        // Regression guard: the wait deadline is computed *once*. A
        // steady stream of non-matching messages (each of which wakes
        // the receive loop) must neither extend the timeout nor lose a
        // single stashed message.
        let out = RankWorld::run(2, |mut ctx| {
            if ctx.rank() == 0 {
                let start = Instant::now();
                let mut i = 0u64;
                while start.elapsed() < Duration::from_millis(400) {
                    ctx.send(1, 500 + (i % 7), vec![i as f64]);
                    i += 1;
                    std::thread::sleep(Duration::from_millis(5));
                }
                ctx.send(1, 999, vec![-1.0]);
                i as f64
            } else {
                let start = Instant::now();
                let err = ctx.recv_timeout(0, 999_999, Duration::from_millis(150));
                let waited = start.elapsed();
                assert!(
                    matches!(err, Err(CommError::Timeout { .. })),
                    "expected a timeout, got {err:?}"
                );
                assert!(
                    waited >= Duration::from_millis(140),
                    "early return: {waited:?}"
                );
                assert!(
                    waited < Duration::from_millis(390),
                    "mismatched traffic restarted the deadline: {waited:?}"
                );
                // Every flooded message is stashed, none lost.
                assert_eq!(ctx.recv(0, 999), vec![-1.0]);
                let mut got = 0u64;
                loop {
                    let mut any = false;
                    for t in 500..507 {
                        if let Ok(Some(_)) = ctx.try_recv(0, t) {
                            got += 1;
                            any = true;
                        }
                    }
                    if !any {
                        break;
                    }
                }
                got as f64
            }
        });
        assert_eq!(out[0], out[1], "stashed count must equal the flood count");
    }

    /// Satellite for the transport split: the *same* seeded fault plan
    /// drives the thread backend and the Unix-socket backend through
    /// the same wire fates, and the ARQ layer must deliver bit-identical
    /// payload sequences on both.
    #[cfg(unix)]
    #[test]
    fn thread_and_socket_transports_deliver_identically_under_same_faults() {
        const NRANKS: usize = 3;
        const MSGS: u64 = 6;
        let body = |mut ctx: RankCtx| {
            let (me, n) = (ctx.rank(), ctx.nranks());
            for to in (0..n).filter(|&to| to != me) {
                for t in 0..MSGS {
                    ctx.send(
                        to,
                        100 + t,
                        vec![(me * 1000) as f64 + t as f64, t as f64 * 0.5],
                    );
                }
            }
            // Receive in a per-rank seeded shuffle, identical across
            // backends, so "delivered order" is a meaningful sequence.
            let mut order: Vec<(usize, u64)> = (0..n)
                .filter(|&f| f != me)
                .flat_map(|f| (0..MSGS).map(move |t| (f, 100 + t)))
                .collect();
            let mut s = me as u64 ^ 0x9e37_79b9_7f4a_7c15;
            for i in (1..order.len()).rev() {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                order.swap(i, (s >> 33) as usize % (i + 1));
            }
            order
                .into_iter()
                .map(|(f, t)| (f, t, ctx.recv(f, t)))
                .collect::<Vec<_>>()
        };
        for seed in [1u64, 3, 7] {
            let cfg = FaultConfig {
                drop_rate: 0.08,
                duplicate_rate: 0.05,
                delay_rate: 0.05,
                max_delay_slots: 3,
                corrupt_rate: 0.03,
                ..Default::default()
            };
            let plan = FaultPlan::new(cfg, seed);
            let threads = RankWorld::run_with_faults(NRANKS, &plan, body).unwrap();
            let sockets = RankWorld::run_socket_with_faults(
                NRANKS,
                crate::socket::SocketKind::Uds,
                &plan,
                body,
            )
            .unwrap();
            assert_eq!(
                threads, sockets,
                "seed {seed}: both transports must deliver identical payload sequences"
            );
        }
    }
}
