//! Datagram socket transport: one OS process (or thread, in tests) per
//! rank, talking [`crate::frame`]-encoded messages.
//!
//! Two wire flavors, selected by `GMG_TRANSPORT` (`uds`, the default, or
//! `tcp`):
//!
//! * **Unix-domain datagram sockets** — each rank binds `d<rank>.sock`
//!   in the world directory; a send is one `sendto` per frame. The
//!   kernel preserves per-pair FIFO order but the medium is treated as
//!   unreliable: a vanished peer (`ECONNREFUSED`/`ENOENT`) absorbs the
//!   frame exactly like an injected drop, and the ARQ layer above
//!   retransmits.
//! * **TCP loopback** — length-prefixed frames over a full mesh
//!   (rank *i* accepts from every *j > i*, connects to every *j < i*).
//!   The fallback for platforms without datagram UDS; it does not
//!   support elastic rejoin (listener ports die with their process).
//!
//! All sockets run nonblocking for sends with per-peer backlogs, so a
//! world whose ranks all send before receiving (the 26-neighbor
//! exchange) cannot deadlock on full kernel buffers: un-sendable frames
//! queue locally and drain during every subsequent send/recv/pump call.
//!
//! Epoch fencing: every frame carries the sender's membership epoch.
//! Frames from an older epoch (in-flight across a park/rejoin) are
//! counted and dropped; frames from a newer epoch are held and replayed
//! once this rank's own epoch catches up.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::UnixDatagram;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::frame::{self, Frame, FrameKind, Reassembler, MAX_FRAME_LEN};
use crate::transport::{Transport, Wire};

/// Which wire the socket transport rides on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SocketKind {
    /// Unix-domain datagram sockets (the default).
    Uds,
    /// TCP over loopback (fallback; no elastic rejoin).
    Tcp,
}

impl SocketKind {
    /// Honor the `GMG_TRANSPORT` env hook: `tcp` selects the fallback,
    /// anything else (including unset) the Unix-datagram default.
    pub fn from_env() -> SocketKind {
        match std::env::var("GMG_TRANSPORT").as_deref() {
            Ok("tcp") => SocketKind::Tcp,
            _ => SocketKind::Uds,
        }
    }

    pub fn as_str(&self) -> &'static str {
        match self {
            SocketKind::Uds => "uds",
            SocketKind::Tcp => "tcp",
        }
    }
}

/// Path of rank `r`'s data socket inside a world directory.
pub fn data_sock_path(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("d{rank}.sock"))
}

/// One TCP peer link with its read/write staging.
struct TcpPeer {
    stream: TcpStream,
    rdbuf: Vec<u8>,
    wrbuf: VecDeque<u8>,
}

enum Imp {
    Uds {
        recv_sock: UnixDatagram,
        send_sock: UnixDatagram,
        peer_paths: Vec<PathBuf>,
    },
    Tcp {
        listener: TcpListener,
        peers: Vec<Option<TcpPeer>>,
        /// Inbound connections whose 4-byte rank handshake is still
        /// partial.
        pending: Vec<(TcpStream, Vec<u8>)>,
    },
}

/// The socket-backed [`Transport`].
pub struct SocketTransport {
    rank: usize,
    epoch: u64,
    imp: Imp,
    /// Un-sendable frames, per destination (nonblocking sends).
    backlog: Vec<VecDeque<Vec<u8>>>,
    reasm: Reassembler,
    /// Wires decoded ahead of delivery (epoch replay, TCP batching).
    ready: VecDeque<Wire>,
    /// Frames from a future epoch, replayed at `set_epoch`.
    future: Vec<Frame>,
    /// Malformed-frame count (dropped; the ARQ layer retransmits).
    frame_errors: u64,
}

impl SocketTransport {
    /// Bind rank `rank`'s Unix-datagram endpoint in `dir`. Peers may not
    /// exist yet; sends to them drop until they bind (worlds barrier via
    /// the controller's GO before first traffic).
    pub fn uds(rank: usize, nranks: usize, dir: &Path) -> std::io::Result<SocketTransport> {
        let path = data_sock_path(dir, rank);
        // A respawned rank rebinds its predecessor's address.
        let _ = std::fs::remove_file(&path);
        let recv_sock = UnixDatagram::bind(&path)?;
        let send_sock = UnixDatagram::unbound()?;
        send_sock.set_nonblocking(true)?;
        Ok(SocketTransport {
            rank,
            epoch: 0,
            imp: Imp::Uds {
                recv_sock,
                send_sock,
                peer_paths: (0..nranks).map(|r| data_sock_path(dir, r)).collect(),
            },
            backlog: (0..nranks).map(|_| VecDeque::new()).collect(),
            reasm: Reassembler::default(),
            ready: VecDeque::new(),
            future: Vec::new(),
            frame_errors: 0,
        })
    }

    /// Bind a loopback listener for the TCP flavor; the port goes to the
    /// controller's address map.
    pub fn tcp_listener() -> std::io::Result<(TcpListener, u16)> {
        let l = TcpListener::bind("127.0.0.1:0")?;
        let port = l.local_addr()?.port();
        l.set_nonblocking(true)?;
        Ok((l, port))
    }

    /// Assemble the TCP flavor from this rank's listener and everyone's
    /// ports: connect to every lower rank (they accept us), accept from
    /// every higher rank lazily during `pump`.
    pub fn tcp(
        rank: usize,
        listener: TcpListener,
        ports: &[u16],
    ) -> std::io::Result<SocketTransport> {
        let nranks = ports.len();
        let mut peers: Vec<Option<TcpPeer>> = (0..nranks).map(|_| None).collect();
        for (r, &port) in ports.iter().enumerate().take(rank) {
            let addr = SocketAddr::from(([127, 0, 0, 1], port));
            let mut stream = connect_with_retry(addr, Duration::from_secs(5))?;
            stream.write_all(&(rank as u32).to_le_bytes())?;
            stream.set_nonblocking(true)?;
            stream.set_nodelay(true)?;
            peers[r] = Some(TcpPeer {
                stream,
                rdbuf: Vec::new(),
                wrbuf: VecDeque::new(),
            });
        }
        Ok(SocketTransport {
            rank,
            epoch: 0,
            imp: Imp::Tcp {
                listener,
                peers,
                pending: Vec::new(),
            },
            backlog: (0..nranks).map(|_| VecDeque::new()).collect(),
            reasm: Reassembler::default(),
            ready: VecDeque::new(),
            future: Vec::new(),
            frame_errors: 0,
        })
    }

    /// Malformed frames seen (and dropped) so far.
    pub fn frame_errors(&self) -> u64 {
        self.frame_errors
    }

    /// Decode one raw frame buffer into the delivery pipeline.
    fn ingest(&mut self, buf: &[u8]) {
        let f = match Frame::decode(buf) {
            Ok(f) => f,
            Err(e) => {
                self.frame_errors += 1;
                gmg_flight::record_arq("frame:reject", None, None, None, 0);
                if gmg_metrics::enabled() {
                    gmg_metrics::counter("frame_decode_errors_total", self.rank, None, "frame")
                        .inc();
                }
                let _ = e;
                return;
            }
        };
        if f.kind == FrameKind::Control {
            // Control traffic rides dedicated membership sockets; a stray
            // control frame on the data plane is dropped.
            return;
        }
        if f.kind == FrameKind::Telemetry {
            // Telemetry rides the gmg-live sidecar socket; a stray
            // telemetry frame on the data plane is dropped (counted) so it
            // can never contaminate the ARQ tag/seq spaces.
            if gmg_metrics::enabled() {
                gmg_metrics::counter("telemetry_misrouted_total", self.rank, None, "frame").inc();
            }
            return;
        }
        if f.epoch < self.epoch {
            if gmg_metrics::enabled() {
                gmg_metrics::counter("epoch_fenced_frames_total", self.rank, None, "frame").inc();
            }
            return;
        }
        if f.epoch > self.epoch {
            self.future.push(f);
            return;
        }
        if let Some(w) = self.reasm.accept(f) {
            self.ready.push_back(w);
        }
    }

    /// Try to flush per-peer backlogs; non-fatal failures drop frames
    /// (indistinguishable from wire loss, which the ARQ layer owns).
    fn drain_backlog(&mut self) {
        for to in 0..self.backlog.len() {
            while let Some(front) = self.backlog[to].front() {
                match self.imp.try_send_raw(to, front) {
                    RawSend::Sent => {
                        self.backlog[to].pop_front();
                    }
                    RawSend::Full => break,
                    RawSend::Gone => {
                        // Peer endpoint missing/dead: this frame is lost.
                        self.backlog[to].pop_front();
                    }
                }
            }
        }
    }

    /// Ingest whatever is on the wire right now without blocking.
    fn poll_wire(&mut self) {
        // Collect first, then ingest: ingest needs `&mut self` wholly.
        let mut bufs: Vec<Vec<u8>> = Vec::new();
        match &mut self.imp {
            Imp::Uds { recv_sock, .. } => {
                let mut buf = vec![0u8; MAX_FRAME_LEN];
                recv_sock.set_nonblocking(true).ok();
                while let Ok(n) = recv_sock.recv(&mut buf) {
                    bufs.push(buf[..n].to_vec());
                }
                recv_sock.set_nonblocking(false).ok();
            }
            Imp::Tcp {
                listener,
                peers,
                pending,
            } => {
                // Accept inbound links and finish their rank handshakes.
                while let Ok((s, _)) = listener.accept() {
                    s.set_nonblocking(true).ok();
                    s.set_nodelay(true).ok();
                    pending.push((s, Vec::new()));
                }
                let mut i = 0;
                while i < pending.len() {
                    let (s, hs) = &mut pending[i];
                    let mut b = [0u8; 4];
                    match s.read(&mut b[..4 - hs.len()]) {
                        Ok(0) => {
                            pending.swap_remove(i);
                            continue;
                        }
                        Ok(n) => hs.extend_from_slice(&b[..n]),
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                        Err(_) => {
                            pending.swap_remove(i);
                            continue;
                        }
                    }
                    if hs.len() == 4 {
                        let (s, hs) = pending.swap_remove(i);
                        let r = u32::from_le_bytes(hs.try_into().unwrap()) as usize;
                        if r < peers.len() {
                            peers[r] = Some(TcpPeer {
                                stream: s,
                                rdbuf: Vec::new(),
                                wrbuf: VecDeque::new(),
                            });
                        }
                        continue;
                    }
                    i += 1;
                }
                // Read frames off every live link.
                for p in peers.iter_mut().flatten() {
                    let mut chunk = [0u8; 16 * 1024];
                    loop {
                        match p.stream.read(&mut chunk) {
                            Ok(0) => break,
                            Ok(n) => p.rdbuf.extend_from_slice(&chunk[..n]),
                            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                            Err(_) => break,
                        }
                    }
                    // Parse length-prefixed records.
                    let mut at = 0;
                    while p.rdbuf.len() >= at + 4 {
                        let len =
                            u32::from_le_bytes(p.rdbuf[at..at + 4].try_into().unwrap()) as usize;
                        if len > MAX_FRAME_LEN {
                            // Corrupt stream framing: resync by dropping
                            // the buffer; ARQ retransmits the contents.
                            at = p.rdbuf.len();
                            break;
                        }
                        if p.rdbuf.len() < at + 4 + len {
                            break;
                        }
                        bufs.push(p.rdbuf[at + 4..at + 4 + len].to_vec());
                        at += 4 + len;
                    }
                    p.rdbuf.drain(..at);
                }
            }
        }
        for b in bufs {
            self.ingest(&b);
        }
    }

    /// Block up to `slice` for at least one datagram, then ingest it.
    fn wait_wire(&mut self, slice: Duration) {
        let mut got: Option<Vec<u8>> = None;
        match &mut self.imp {
            Imp::Uds { recv_sock, .. } => {
                let mut buf = vec![0u8; MAX_FRAME_LEN];
                recv_sock
                    .set_read_timeout(Some(slice.max(Duration::from_micros(100))))
                    .ok();
                if let Ok(n) = recv_sock.recv(&mut buf) {
                    buf.truncate(n);
                    got = Some(buf);
                }
            }
            Imp::Tcp { .. } => {
                // Nonblocking streams: poll-and-nap.
                std::thread::sleep(slice.min(Duration::from_millis(1)));
            }
        }
        if let Some(b) = got {
            self.ingest(&b);
        }
    }
}

/// Outcome of one raw nonblocking send attempt.
enum RawSend {
    Sent,
    Full,
    Gone,
}

impl Imp {
    fn try_send_raw(&mut self, to: usize, frame_bytes: &[u8]) -> RawSend {
        match self {
            Imp::Uds {
                send_sock,
                peer_paths,
                ..
            } => match send_sock.send_to(frame_bytes, &peer_paths[to]) {
                Ok(_) => RawSend::Sent,
                Err(e) if e.kind() == ErrorKind::WouldBlock => RawSend::Full,
                Err(_) => RawSend::Gone,
            },
            Imp::Tcp { peers, .. } => {
                let Some(slot) = peers.get_mut(to) else {
                    return RawSend::Gone;
                };
                let Some(mut p) = slot.take() else {
                    // Not yet connected: keep queueing until the peer's
                    // handshake lands (or forever, if it died — the
                    // world's failure handling owns that).
                    return RawSend::Full;
                };
                // Stage length-prefixed, then flush as much as the kernel
                // takes.
                p.wrbuf
                    .extend((frame_bytes.len() as u32).to_le_bytes().iter().copied());
                p.wrbuf.extend(frame_bytes.iter().copied());
                loop {
                    let (head, _) = p.wrbuf.as_slices();
                    if head.is_empty() {
                        break;
                    }
                    match p.stream.write(head) {
                        Ok(0) => return RawSend::Gone, // link dead; p drops
                        Ok(n) => {
                            p.wrbuf.drain(..n);
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(_) => return RawSend::Gone,
                    }
                }
                *slot = Some(p);
                RawSend::Sent
            }
        }
    }
}

impl Transport for SocketTransport {
    fn send(&mut self, to: usize, wire: Wire) -> Result<(), ()> {
        for f in frame::encode_wire(&wire, to, self.epoch) {
            self.backlog[to].push_back(f);
        }
        self.drain_backlog();
        Ok(())
    }

    fn recv(&mut self, timeout: Option<Duration>) -> Result<Option<Wire>, ()> {
        let deadline = timeout.map(|d| Instant::now() + d);
        loop {
            self.drain_backlog();
            self.poll_wire();
            if let Some(w) = self.ready.pop_front() {
                return Ok(Some(w));
            }
            let remaining = match deadline {
                Some(d) => {
                    let r = d.saturating_duration_since(Instant::now());
                    if r == Duration::ZERO {
                        return Ok(None);
                    }
                    r
                }
                // "Block forever" still slices internally so backlogged
                // sends keep draining (no cross-rank send deadlock).
                None => Duration::from_millis(20),
            };
            self.wait_wire(remaining.min(Duration::from_millis(20)));
        }
    }

    fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.reasm = Reassembler::default();
        self.ready.clear();
        for b in &mut self.backlog {
            b.clear();
        }
        let future = std::mem::take(&mut self.future);
        for f in future {
            // Re-run the epoch filter: matching frames deliver now,
            // still-future ones wait again.
            if f.epoch == self.epoch {
                if let Some(w) = self.reasm.accept(f) {
                    self.ready.push_back(w);
                }
            } else if f.epoch > self.epoch {
                self.future.push(f);
            }
        }
    }

    fn pump(&mut self) {
        self.drain_backlog();
        self.poll_wire();
    }

    fn kind(&self) -> &'static str {
        match self.imp {
            Imp::Uds { .. } => "uds",
            Imp::Tcp { .. } => "tcp",
        }
    }
}

fn connect_with_retry(addr: SocketAddr, budget: Duration) -> std::io::Result<TcpStream> {
    let deadline = Instant::now() + budget;
    loop {
        match TcpStream::connect_timeout(&addr, Duration::from_millis(250)) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Bind a full in-process world of socket transports (tests and the
/// equivalence proptests): all endpoints exist before any body runs, so
/// no GO barrier is needed.
pub(crate) fn uds_world(dir: &Path, nranks: usize) -> std::io::Result<Vec<SocketTransport>> {
    (0..nranks)
        .map(|r| SocketTransport::uds(r, nranks, dir))
        .collect()
}

pub(crate) fn tcp_world(nranks: usize) -> std::io::Result<Vec<SocketTransport>> {
    let mut listeners = Vec::with_capacity(nranks);
    let mut ports = Vec::with_capacity(nranks);
    for _ in 0..nranks {
        let (l, p) = SocketTransport::tcp_listener()?;
        listeners.push(l);
        ports.push(p);
    }
    listeners
        .into_iter()
        .enumerate()
        .map(|(r, l)| SocketTransport::tcp(r, l, &ports))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gmgsock_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn roundtrip_pair(mut transports: Vec<SocketTransport>) {
        let mut b = transports.pop().unwrap();
        let mut a = transports.pop().unwrap();
        let payload: Vec<f64> = (0..20_000).map(|i| i as f64 * 0.25).collect();
        a.send(
            1,
            Wire::Data {
                src: 0,
                tag: 9,
                seq: 0,
                checksum: 42,
                payload: payload.clone(),
            },
        )
        .unwrap();
        // A real world pumps each rank continuously from its own recv
        // loop; the single-threaded test interleaves by hand (the TCP
        // link to a higher rank is only accepted during `a`'s pump).
        let deadline = Instant::now() + Duration::from_secs(5);
        let w = loop {
            a.pump();
            if let Ok(Some(w)) = b.recv(Some(Duration::from_millis(5))) {
                break w;
            }
            assert!(Instant::now() < deadline, "no wire within budget");
        };
        match w {
            Wire::Data {
                src,
                tag,
                seq,
                checksum,
                payload: p,
            } => {
                assert_eq!((src, tag, seq, checksum), (0, 9, 0, 42));
                assert_eq!(p, payload);
            }
            other => panic!("unexpected {other:?}"),
        }
        // And the reverse direction (exercises TCP accept-side links).
        b.send(0, Wire::Ack { src: 1, seq: 7 }).unwrap();
        match a.recv(Some(Duration::from_secs(5))).unwrap().unwrap() {
            Wire::Ack { src, seq } => assert_eq!((src, seq), (1, 7)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn uds_fragmented_roundtrip_both_directions() {
        let dir = scratch_dir("uds_rt");
        roundtrip_pair(uds_world(&dir, 2).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tcp_fragmented_roundtrip_both_directions() {
        roundtrip_pair(tcp_world(2).unwrap());
    }

    #[test]
    fn recv_timeout_expires_and_garbage_is_dropped_not_fatal() {
        let dir = scratch_dir("uds_to");
        let mut w = uds_world(&dir, 2).unwrap();
        let probe = UnixDatagram::unbound().unwrap();
        probe
            .send_to(b"not a frame at all", data_sock_path(&dir, 1))
            .unwrap();
        let start = Instant::now();
        let got = w[1].recv(Some(Duration::from_millis(60))).unwrap();
        assert!(got.is_none());
        assert!(start.elapsed() >= Duration::from_millis(55));
        assert_eq!(w[1].frame_errors(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn old_epoch_frames_are_fenced_future_ones_replay() {
        let dir = scratch_dir("uds_ep");
        let mut w = uds_world(&dir, 2).unwrap();
        let wire = |seq| Wire::Data {
            src: 0,
            tag: 1,
            seq,
            checksum: 0,
            payload: vec![seq as f64],
        };
        w[0].send(1, wire(0)).unwrap(); // epoch 0
        let (a, b) = w.split_at_mut(1);
        let (a, b) = (&mut a[0], &mut b[0]);
        a.set_epoch(1);
        a.send(1, wire(1)).unwrap(); // epoch 1: future for the receiver
                                     // Receiver still at epoch 0: sees only the epoch-0 wire.
        let got = b.recv(Some(Duration::from_millis(200))).unwrap().unwrap();
        assert!(matches!(got, Wire::Data { seq: 0, .. }));
        assert!(b.recv(Some(Duration::from_millis(50))).unwrap().is_none());
        // Epoch bump: the held future frame replays; nothing older leaks.
        b.set_epoch(1);
        let got = b.recv(Some(Duration::from_millis(200))).unwrap().unwrap();
        assert!(matches!(got, Wire::Data { seq: 1, .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
