//! Deterministic fault injection for the rank runtime.
//!
//! The paper's solver runs on 512-GPU Slingshot machines where message
//! delay, reordering, duplication, corruption, stragglers, and outright
//! rank failure are everyday events. This module is the *chaos side* of
//! making the stack survive them: a seedable, fully deterministic model of
//! what a lossy interconnect does to messages, plus the typed error and
//! failure-report vocabulary the resilient runtime speaks.
//!
//! Design rules:
//!
//! * **Deterministic.** Every decision is a pure function of
//!   `(seed, sender rank, message sequence number, attempt)` — never of
//!   wall-clock time or thread interleaving — so a failing chaos run can be
//!   replayed exactly from its seed.
//! * **std-only.** No dependency on the channel transport; the runtime asks
//!   [`FaultInjector::fate`] what to do with each message and applies it to
//!   whatever transport it owns. This also keeps the module testable in
//!   isolation.
//!
//! The recovery side lives in `runtime.rs` (sequence numbers, checksums,
//! ACKs, bounded retransmission with exponential backoff) and in
//! `gmg-core`'s solver health guards.

use std::fmt;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed communication failure. The runtime's `try_*` APIs return these
/// instead of panicking; the panicking convenience wrappers formats them
/// into the panic payload so `RankWorld::try_run` can report them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// The peer's inbox is gone (its rank thread exited or was killed).
    Disconnected { peer: usize },
    /// No matching message arrived before the deadline.
    Timeout {
        from: usize,
        tag: u64,
        waited_ms: u64,
    },
    /// A reliable send exhausted its retransmission budget without an ACK.
    RetriesExhausted {
        to: usize,
        tag: u64,
        seq: u64,
        attempts: u32,
    },
    /// This rank was killed by fault injection.
    Killed { rank: usize, at_op: u64 },
    /// A received frame failed to decode (socket transports only).
    Frame { err: crate::frame::FrameError },
    /// The membership controller parked this rank for an epoch change
    /// (a peer died and is being respawned). Recoverable: call
    /// [`crate::RankCtx::park_for_rejoin`] and resume from checkpoint.
    Parked { epoch: u64 },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Disconnected { peer } => {
                write!(f, "peer rank {peer} disconnected (inbox closed)")
            }
            CommError::Timeout {
                from,
                tag,
                waited_ms,
            } => write!(
                f,
                "timed out after {waited_ms} ms waiting for (from {from}, tag {tag})"
            ),
            CommError::RetriesExhausted {
                to,
                tag,
                seq,
                attempts,
            } => write!(
                f,
                "send to rank {to} (tag {tag}, seq {seq}) unacknowledged after {attempts} attempts"
            ),
            CommError::Killed { rank, at_op } => {
                write!(
                    f,
                    "rank {rank} killed by fault injection at comm op {at_op}"
                )
            }
            CommError::Frame { err } => write!(f, "frame decode failed: {err}"),
            CommError::Parked { epoch } => {
                write!(f, "parked for membership epoch {epoch}")
            }
        }
    }
}

impl std::error::Error for CommError {}

// ---------------------------------------------------------------------------
// Failure reports
// ---------------------------------------------------------------------------

/// One rank's failure: the rank id and the panic payload / comm error that
/// took it down.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankFailure {
    pub rank: usize,
    pub message: String,
}

/// Structured report of a failed world: *every* failed rank with its
/// payload, not just whichever `join` happened to be observed first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorldFailure {
    /// World size the run was launched with.
    pub nranks: usize,
    /// All failed ranks, in rank order.
    pub failures: Vec<RankFailure>,
    /// Flight-recorder black-box dump written at failure time (`None`
    /// when the recorder is disabled or the dump could not be written).
    pub flight_dump: Option<std::path::PathBuf>,
}

impl WorldFailure {
    /// Ids of the failed ranks, in rank order.
    pub fn ranks(&self) -> Vec<usize> {
        self.failures.iter().map(|f| f.rank).collect()
    }
}

impl fmt::Display for WorldFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} of {} ranks failed:",
            self.failures.len(),
            self.nranks
        )?;
        for r in &self.failures {
            write!(f, "\n  rank {}: {}", r.rank, r.message)?;
        }
        if let Some(d) = &self.flight_dump {
            write!(f, "\n  flight recorder dump: {}", d.display())?;
        }
        Ok(())
    }
}

impl std::error::Error for WorldFailure {}

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

/// SplitMix64: tiny, high-quality, dependency-free. Each message's fate is
/// drawn from a fresh stream keyed by `(seed, rank, seq, attempt)` so
/// decisions are independent of timing and thread interleaving.
#[derive(Clone, Debug)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    pub fn new(seed: u64) -> Self {
        FaultRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.next_f64() < p
    }

    /// Uniform in `[0, n)`; 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Mix several words into one RNG seed (splitmix of the running hash).
pub fn mix(words: &[u64]) -> u64 {
    let mut h = 0x8A5C_D789_635D_2DFFu64;
    for &w in words {
        h ^= w;
        let mut r = FaultRng::new(h);
        h = r.next_u64();
    }
    h
}

// ---------------------------------------------------------------------------
// Fault configuration and plans
// ---------------------------------------------------------------------------

/// When in a rank's comm-op stream a control fault (stall / kill) fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ControlSpec {
    /// Rank the fault targets.
    pub rank: usize,
    /// Fires when the rank enters its `at_op`-th send/recv (1-based).
    pub at_op: u64,
}

/// Fault rates and control faults. All rates are probabilities in `[0, 1]`
/// applied independently per transmitted message copy.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultConfig {
    /// Message silently dropped in flight.
    pub drop_rate: f64,
    /// Message delivered twice.
    pub duplicate_rate: f64,
    /// Message held back and released after up to `max_delay_slots`
    /// subsequent transmissions from the same sender (reordering).
    pub delay_rate: f64,
    /// Maximum hold-back, in subsequent transmissions (≥ 1 when
    /// `delay_rate > 0`; 0 means a default of 4).
    pub max_delay_slots: u32,
    /// One payload bit flipped in flight — *detectable*: the checksum no
    /// longer matches, so the receiver discards and the sender retransmits.
    pub corrupt_rate: f64,
    /// Silent data corruption: one payload bit flipped *and* the checksum
    /// recomputed, modeling memory/compute errors below the transport.
    /// Only solver-level health guards can catch these.
    pub sdc_rate: f64,
    /// Stall (sleep) this long when the stall control fault fires.
    pub stall: Option<(ControlSpec, Duration)>,
    /// Kill the rank (typed [`CommError::Killed`], surfaced as a rank
    /// failure) when this control fault fires.
    pub kill: Option<ControlSpec>,
}

impl FaultConfig {
    /// A lossy-interconnect profile: drop + reorder + duplicate + corrupt,
    /// all at `rate` (the acceptance runs use `rate = 0.02`).
    pub fn lossy(rate: f64) -> Self {
        FaultConfig {
            drop_rate: rate,
            duplicate_rate: rate,
            delay_rate: rate,
            max_delay_slots: 4,
            corrupt_rate: rate,
            ..Default::default()
        }
    }

    /// Kill `rank` at its `at_op`-th communication operation.
    pub fn kill_rank(rank: usize, at_op: u64) -> Self {
        FaultConfig {
            kill: Some(ControlSpec { rank, at_op }),
            ..Default::default()
        }
    }

    /// Whether any message-level fault can fire (control faults aside).
    pub fn perturbs_messages(&self) -> bool {
        self.drop_rate > 0.0
            || self.duplicate_rate > 0.0
            || self.delay_rate > 0.0
            || self.corrupt_rate > 0.0
            || self.sdc_rate > 0.0
    }

    /// Whether the config injects anything at all.
    pub fn is_active(&self) -> bool {
        self.perturbs_messages() || self.stall.is_some() || self.kill.is_some()
    }
}

/// Retransmission policy of the reliable layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total transmission attempts per message (first send included).
    pub max_attempts: u32,
    /// Backoff before the first retransmission; doubles per attempt.
    pub backoff_base: Duration,
    /// Deadline for a blocking receive under fault injection (a fault-free
    /// world blocks indefinitely, exactly like the pre-fault runtime).
    pub op_timeout: Duration,
    /// How long a finishing rank keeps servicing retransmissions and ACKs
    /// for its peers before its context is torn down.
    pub drain_timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 12,
            backoff_base: Duration::from_millis(1),
            op_timeout: Duration::from_secs(10),
            drain_timeout: Duration::from_secs(2),
        }
    }
}

/// A fault plan: config + seed (+ retry policy). Hand it to
/// `RankWorld::run_with_faults`; each rank derives its own deterministic
/// [`FaultInjector`] stream from it.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    pub config: FaultConfig,
    pub seed: u64,
    pub retry: RetryPolicy,
}

impl FaultPlan {
    pub fn new(config: FaultConfig, seed: u64) -> Self {
        FaultPlan {
            config,
            seed,
            retry: RetryPolicy::default(),
        }
    }

    /// The injector for `rank`'s outgoing traffic and control faults.
    pub fn injector(&self, rank: usize) -> FaultInjector {
        FaultInjector {
            seed: self.seed,
            rank,
            config: self.config,
            transmissions: 0,
            control_ops: 0,
            stalled: false,
        }
    }

    /// Serialize for handoff to spawned rank processes via an environment
    /// variable. Rates travel as `f64::to_bits` hex so the child's seeded
    /// fate draws are bit-identical to the parent's.
    pub fn to_env_string(&self) -> String {
        let c = &self.config;
        let r = &self.retry;
        let mut s = format!(
            "drop={:x};dup={:x};delay={:x};slots={};corrupt={:x};sdc={:x};seed={};\
             attempts={};backoff_ns={};op_ns={};drain_ns={}",
            c.drop_rate.to_bits(),
            c.duplicate_rate.to_bits(),
            c.delay_rate.to_bits(),
            c.max_delay_slots,
            c.corrupt_rate.to_bits(),
            c.sdc_rate.to_bits(),
            self.seed,
            r.max_attempts,
            r.backoff_base.as_nanos(),
            r.op_timeout.as_nanos(),
            r.drain_timeout.as_nanos(),
        );
        if let Some((spec, d)) = &c.stall {
            s.push_str(&format!(
                ";stall={},{},{}",
                spec.rank,
                spec.at_op,
                d.as_nanos()
            ));
        }
        if let Some(spec) = &c.kill {
            s.push_str(&format!(";kill={},{}", spec.rank, spec.at_op));
        }
        s
    }

    /// Inverse of [`FaultPlan::to_env_string`]. `None` on any malformed
    /// field — callers treat that as "no plan installed".
    pub fn from_env_string(s: &str) -> Option<FaultPlan> {
        let mut plan = FaultPlan::new(FaultConfig::default(), 0);
        for kv in s.split(';') {
            let (k, v) = kv.split_once('=')?;
            let c = &mut plan.config;
            let r = &mut plan.retry;
            match k {
                "drop" => c.drop_rate = f64::from_bits(u64::from_str_radix(v, 16).ok()?),
                "dup" => c.duplicate_rate = f64::from_bits(u64::from_str_radix(v, 16).ok()?),
                "delay" => c.delay_rate = f64::from_bits(u64::from_str_radix(v, 16).ok()?),
                "slots" => c.max_delay_slots = v.parse().ok()?,
                "corrupt" => c.corrupt_rate = f64::from_bits(u64::from_str_radix(v, 16).ok()?),
                "sdc" => c.sdc_rate = f64::from_bits(u64::from_str_radix(v, 16).ok()?),
                "seed" => plan.seed = v.parse().ok()?,
                "attempts" => r.max_attempts = v.parse().ok()?,
                "backoff_ns" => r.backoff_base = Duration::from_nanos(v.parse().ok()?),
                "op_ns" => r.op_timeout = Duration::from_nanos(v.parse().ok()?),
                "drain_ns" => r.drain_timeout = Duration::from_nanos(v.parse().ok()?),
                "stall" => {
                    let mut it = v.split(',');
                    let spec = ControlSpec {
                        rank: it.next()?.parse().ok()?,
                        at_op: it.next()?.parse().ok()?,
                    };
                    let ns: u64 = it.next()?.parse().ok()?;
                    c.stall = Some((spec, Duration::from_nanos(ns)));
                }
                "kill" => {
                    let mut it = v.split(',');
                    c.kill = Some(ControlSpec {
                        rank: it.next()?.parse().ok()?,
                        at_op: it.next()?.parse().ok()?,
                    });
                }
                _ => return None,
            }
        }
        Some(plan)
    }
}

// ---------------------------------------------------------------------------
// Per-message fates
// ---------------------------------------------------------------------------

/// What the injector decided for one transmission of one message.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MessageFate {
    /// Silently dropped.
    pub drop: bool,
    /// Extra delivered copies.
    pub duplicates: u32,
    /// Held back for this many subsequent transmissions (0 = immediate).
    pub delay_slots: u32,
    /// One payload bit flipped, checksum left stale (detectable).
    pub corrupt: bool,
    /// One payload bit flipped, checksum recomputed (silent).
    pub sdc: bool,
    /// Entropy for choosing which bit to flip.
    pub entropy: u64,
}

impl MessageFate {
    /// A clean delivery.
    pub fn clean() -> Self {
        MessageFate::default()
    }
}

/// Control fault decisions at a comm-op boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ControlFault {
    None,
    /// Sleep this long, once.
    Stall(Duration),
    /// Die with [`CommError::Killed`].
    Kill,
}

/// One rank's deterministic fault stream.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    seed: u64,
    rank: usize,
    config: FaultConfig,
    /// Transmissions attempted by this rank (drives delayed-release order).
    transmissions: u64,
    /// Comm ops (send/recv entries) — drives control faults.
    control_ops: u64,
    stalled: bool,
}

impl FaultInjector {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn config(&self) -> &FaultConfig {
        self.config_ref()
    }

    fn config_ref(&self) -> &FaultConfig {
        &self.config
    }

    /// Transmission counter (monotone; one per [`fate`] call).
    ///
    /// [`fate`]: FaultInjector::fate
    pub fn transmissions(&self) -> u64 {
        self.transmissions
    }

    /// Decide the fate of transmission `attempt` of message `seq`. Pure in
    /// `(seed, rank, seq, attempt)`; advancing the transmission counter is
    /// the only state change.
    pub fn fate(&mut self, seq: u64, attempt: u32) -> MessageFate {
        self.transmissions += 1;
        let c = self.config;
        if !c.perturbs_messages() {
            return MessageFate::clean();
        }
        let mut rng = FaultRng::new(mix(&[
            self.seed,
            self.rank as u64,
            seq,
            attempt as u64,
            0xDA7A,
        ]));
        let drop = rng.chance(c.drop_rate);
        let duplicates = u32::from(rng.chance(c.duplicate_rate));
        let delay_slots = if rng.chance(c.delay_rate) {
            let max = if c.max_delay_slots == 0 {
                4
            } else {
                c.max_delay_slots
            };
            1 + rng.below(max as u64) as u32
        } else {
            0
        };
        let corrupt = rng.chance(c.corrupt_rate);
        let sdc = rng.chance(c.sdc_rate);
        MessageFate {
            drop,
            duplicates,
            delay_slots,
            corrupt,
            sdc,
            entropy: rng.next_u64(),
        }
    }

    /// Whether this ACK transmission is dropped (ACKs share the channel, so
    /// they are as lossy as data — a lost ACK forces a retransmission and a
    /// deduplicated redelivery). Keyed by the *data* message identity
    /// `(src, seq)` plus the re-ACK attempt, so a once-dropped ACK is an
    /// independent draw on every re-ACK rather than dropped forever.
    pub fn ack_dropped(&mut self, src: usize, seq: u64, attempt: u32) -> bool {
        self.transmissions += 1;
        let c = self.config;
        if c.drop_rate <= 0.0 {
            return false;
        }
        let mut rng = FaultRng::new(mix(&[
            self.seed,
            self.rank as u64,
            src as u64,
            seq,
            attempt as u64,
            0xACC,
        ]));
        rng.chance(c.drop_rate)
    }

    /// Called at every send/recv entry; returns the control fault to apply.
    pub fn control(&mut self) -> ControlFault {
        self.control_ops += 1;
        if let Some(spec) = self.config.kill {
            if spec.rank == self.rank && self.control_ops >= spec.at_op {
                return ControlFault::Kill;
            }
        }
        if let Some((spec, dur)) = self.config.stall {
            if spec.rank == self.rank && self.control_ops >= spec.at_op && !self.stalled {
                self.stalled = true;
                return ControlFault::Stall(dur);
            }
        }
        ControlFault::None
    }

    /// Comm ops seen so far (for error attribution).
    pub fn control_ops(&self) -> u64 {
        self.control_ops
    }
}

// ---------------------------------------------------------------------------
// Checksums and bit flips
// ---------------------------------------------------------------------------

/// FNV-1a over the message identity and payload bits. Order-dependent, so
/// any single-bit payload flip (and most multi-bit ones) is detected.
pub fn checksum(src: usize, tag: u64, seq: u64, payload: &[f64]) -> u64 {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    let mut eat = |w: u64| {
        for b in w.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
    };
    eat(src as u64);
    eat(tag);
    eat(seq);
    eat(payload.len() as u64);
    for v in payload {
        eat(v.to_bits());
    }
    h
}

/// Flip one bit of one payload word, chosen by `entropy`. No-op on an
/// empty payload. Returns the flipped (word, bit) for attribution.
pub fn flip_bit(payload: &mut [f64], entropy: u64) -> Option<(usize, u32)> {
    if payload.is_empty() {
        return None;
    }
    let word = (entropy % payload.len() as u64) as usize;
    let bit = ((entropy >> 32) % 64) as u32;
    payload[word] = f64::from_bits(payload[word].to_bits() ^ (1u64 << bit));
    Some((word, bit))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_spreads() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // Different seeds diverge immediately.
        let mut c = FaultRng::new(43);
        assert_ne!(xs[0], c.next_u64());
        // f64 draws stay in [0, 1).
        let mut r = FaultRng::new(7);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_rates_are_roughly_honored() {
        let mut r = FaultRng::new(1234);
        let n = 20_000;
        let hits = (0..n).filter(|_| r.chance(0.1)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.02, "empirical rate {rate}");
        // Degenerate rates.
        let mut r = FaultRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn fates_are_pure_in_seed_rank_seq_attempt() {
        let plan = FaultPlan::new(FaultConfig::lossy(0.3), 99);
        let mut a = plan.injector(2);
        let mut b = plan.injector(2);
        // Same (seq, attempt) → same fate, regardless of call order.
        let f1 = a.fate(10, 0);
        let _ = a.fate(11, 0);
        let f2 = a.fate(10, 0);
        assert_eq!(f1, f2);
        let _ = b.fate(5, 1);
        assert_eq!(b.fate(10, 0), f1);
        // Different attempt of the same message redraws independently.
        let retries: Vec<MessageFate> = (0..8).map(|k| a.fate(10, k)).collect();
        assert!(retries.windows(2).any(|w| w[0] != w[1]));
        // Different ranks get different streams.
        let mut c = plan.injector(3);
        let fates_a: Vec<MessageFate> = (0..64).map(|s| a.fate(s, 0)).collect();
        let fates_c: Vec<MessageFate> = (0..64).map(|s| c.fate(s, 0)).collect();
        assert_ne!(fates_a, fates_c);
    }

    #[test]
    fn zero_config_is_always_clean() {
        let plan = FaultPlan::new(FaultConfig::default(), 7);
        let mut inj = plan.injector(0);
        for s in 0..100 {
            assert_eq!(inj.fate(s, 0), MessageFate::clean());
            assert!(!inj.ack_dropped(1, s, 0));
        }
        assert_eq!(inj.control(), ControlFault::None);
        assert!(!plan.config.is_active());
    }

    #[test]
    fn lossy_rates_fire_at_configured_frequency() {
        let plan = FaultPlan::new(FaultConfig::lossy(0.1), 2024);
        let mut inj = plan.injector(1);
        let n = 10_000u64;
        let mut drops = 0;
        let mut dups = 0;
        let mut delays = 0;
        let mut corrupts = 0;
        for s in 0..n {
            let f = inj.fate(s, 0);
            drops += f.drop as u64;
            dups += f.duplicates as u64;
            delays += (f.delay_slots > 0) as u64;
            corrupts += f.corrupt as u64;
            assert!(!f.sdc, "lossy() does not inject SDC");
            assert!(f.delay_slots <= 4);
        }
        for (name, hits) in [
            ("drop", drops),
            ("dup", dups),
            ("delay", delays),
            ("corrupt", corrupts),
        ] {
            let rate = hits as f64 / n as f64;
            assert!((rate - 0.1).abs() < 0.02, "{name} rate {rate}");
        }
    }

    #[test]
    fn ack_drops_redraw_per_attempt() {
        // A dropped ACK must not be dropped on *every* re-ACK of the same
        // message, or retransmission could never converge.
        let plan = FaultPlan::new(FaultConfig::lossy(0.4), 31337);
        let mut inj = plan.injector(0);
        for src in 0..4usize {
            for seq in 0..64u64 {
                if inj.ack_dropped(src, seq, 0) {
                    let survives = (1..32).any(|a| !inj.ack_dropped(src, seq, a));
                    assert!(survives, "ack (src {src}, seq {seq}) dropped forever");
                }
            }
        }
        // Still deterministic per (src, seq, attempt).
        let mut a = plan.injector(2);
        let mut b = plan.injector(2);
        let da: Vec<bool> = (0..128).map(|s| a.ack_dropped(1, s, 3)).collect();
        let db: Vec<bool> = (0..128).map(|s| b.ack_dropped(1, s, 3)).collect();
        assert_eq!(da, db);
    }

    #[test]
    fn control_faults_fire_at_the_configured_op() {
        let cfg = FaultConfig::kill_rank(3, 5);
        let plan = FaultPlan::new(cfg, 0);
        let mut victim = plan.injector(3);
        for _ in 0..4 {
            assert_eq!(victim.control(), ControlFault::None);
        }
        assert_eq!(victim.control(), ControlFault::Kill);
        // And keeps firing (a killed rank stays dead).
        assert_eq!(victim.control(), ControlFault::Kill);
        // Other ranks are unaffected.
        let mut bystander = plan.injector(2);
        for _ in 0..100 {
            assert_eq!(bystander.control(), ControlFault::None);
        }
        // Stalls fire once.
        let scfg = FaultConfig {
            stall: Some((ControlSpec { rank: 0, at_op: 2 }, Duration::from_millis(1))),
            ..Default::default()
        };
        let mut s = FaultPlan::new(scfg, 0).injector(0);
        assert_eq!(s.control(), ControlFault::None);
        assert_eq!(s.control(), ControlFault::Stall(Duration::from_millis(1)));
        assert_eq!(s.control(), ControlFault::None);
    }

    #[test]
    fn checksum_detects_any_single_bit_flip() {
        let payload: Vec<f64> = (0..32).map(|i| (i as f64).sin()).collect();
        let h = checksum(1, 7, 42, &payload);
        // Identity fields matter.
        assert_ne!(h, checksum(2, 7, 42, &payload));
        assert_ne!(h, checksum(1, 8, 42, &payload));
        assert_ne!(h, checksum(1, 7, 43, &payload));
        // Every flipped bit of every word changes the sum.
        for w in 0..payload.len() {
            for bit in [0u32, 1, 31, 52, 63] {
                let mut p = payload.clone();
                p[w] = f64::from_bits(p[w].to_bits() ^ (1u64 << bit));
                assert_ne!(h, checksum(1, 7, 42, &p), "word {w} bit {bit}");
            }
        }
    }

    #[test]
    fn flip_bit_changes_exactly_one_word() {
        let mut p: Vec<f64> = vec![1.0, 2.0, 3.0, 4.0];
        let orig = p.clone();
        let (w, _bit) = flip_bit(&mut p, 0xDEAD_BEEF_CAFE_F00D).unwrap();
        let changed: Vec<usize> = (0..p.len())
            .filter(|&i| p[i].to_bits() != orig[i].to_bits())
            .collect();
        assert_eq!(changed, vec![w]);
        // Empty payloads are a no-op.
        assert_eq!(flip_bit(&mut [], 123), None);
    }

    #[test]
    fn world_failure_reports_every_rank() {
        let wf = WorldFailure {
            nranks: 8,
            failures: vec![
                RankFailure {
                    rank: 2,
                    message: "killed by fault injection".into(),
                },
                RankFailure {
                    rank: 5,
                    message: "timed out".into(),
                },
            ],
            flight_dump: Some(std::path::PathBuf::from("results/flightdump_42")),
        };
        assert_eq!(wf.ranks(), vec![2, 5]);
        let text = wf.to_string();
        assert!(text.contains("2 of 8 ranks failed"));
        assert!(text.contains("rank 2: killed"));
        assert!(text.contains("rank 5: timed out"));
        assert!(text.contains("flight recorder dump: results/flightdump_42"));
    }

    #[test]
    fn comm_error_display_is_informative() {
        let e = CommError::RetriesExhausted {
            to: 3,
            tag: 77,
            seq: 9,
            attempts: 12,
        };
        let s = e.to_string();
        assert!(s.contains("rank 3") && s.contains("12 attempts"));
        assert!(CommError::Killed { rank: 1, at_op: 4 }
            .to_string()
            .contains("fault injection"));
    }
}
