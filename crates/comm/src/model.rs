//! Slingshot-11-class network performance model.
//!
//! The paper models exchange performance with the same latency-throughput
//! form as kernels: `f(x) = x / (α + x/β)` with x the *total* message bytes
//! of one exchange. This module supplies calibrated per-system (α, β) and
//! decomposes α into interpretable pieces — protocol handshakes, per-message
//! software overhead, host staging — so the optimization knobs the paper
//! studies (Table I environment variables, GPU-aware MPI, CPU–GPU–NIC
//! binding) can be toggled and their effect on the model observed.

use serde::{Deserialize, Serialize};

/// Message transfer protocol, selected per message by size against the
/// rendezvous threshold (the `FI_CXI_RDZV_*` knobs force it to 0, i.e.
/// rendezvous for everything).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Protocol {
    /// Eager: data is copied through bounce buffers; cheap handshake, extra
    /// copy bandwidth cost, per-message matching overhead on the receiver.
    Eager,
    /// Rendezvous: handshake first, then zero-copy transfer; with hardware
    /// matching (Cassini `RX_MATCH_MODE=hardware`) the handshake is cheap.
    Rendezvous,
}

/// A calibrated network model for one system's per-rank NIC path.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    pub name: String,
    /// Slingshot 11 line rate per NIC (GB/s); the theoretical ceiling in
    /// Figure 6.
    pub nic_peak_gbs: f64,
    /// Sustained single-NIC bandwidth β (GB/s) for large rendezvous
    /// transfers on the GPU-resident path.
    pub sustained_gbs: f64,
    /// Base software latency α per exchange, seconds (stack traversal,
    /// progress engine).
    pub base_latency_s: f64,
    /// Additional per-message overhead, seconds (posting, matching).
    pub per_message_s: f64,
    /// Rendezvous handshake cost per message, seconds (reduced by
    /// `hardware_matching`).
    pub rdzv_handshake_s: f64,
    /// Eager-path bounce-buffer/unexpected-message overhead per message,
    /// seconds.
    pub eager_overhead_s: f64,
    /// Extra eager-path copy penalty: effective bandwidth multiplier < 1.
    pub eager_bw_derate: f64,
    /// Messages at least this large use rendezvous (0 = always rendezvous,
    /// the paper's forced setting).
    pub rendezvous_threshold: usize,
    /// Cassini hardware message matching enabled (halves handshake cost).
    pub hardware_matching: bool,
    /// GPU-Aware MPI: transfers go NIC↔HBM directly. When false, data is
    /// staged through host memory over PCIe first.
    pub gpu_aware: bool,
    /// Host staging bandwidth (PCIe 4.0 x16 ≈ 32 GB/s) used when
    /// `gpu_aware == false`.
    pub staging_gbs: f64,
    /// Extra host-path latency when staging, seconds.
    pub staging_latency_s: f64,
    /// Contention growth: fractional α/β degradation per doubling of node
    /// count beyond one node (shared-fabric effects).
    pub contention_per_doubling: f64,
}

impl NetworkModel {
    /// Perlmutter: NICs on the CPU, GPU-aware MPI, forced rendezvous.
    pub fn perlmutter() -> Self {
        Self {
            name: "Perlmutter".into(),
            nic_peak_gbs: 25.0,
            sustained_gbs: 14.0,
            base_latency_s: 30e-6,
            per_message_s: 0.8e-6,
            rdzv_handshake_s: 1.0e-6,
            eager_overhead_s: 1.5e-6,
            eager_bw_derate: 0.6,
            rendezvous_threshold: 0,
            hardware_matching: false,
            gpu_aware: true,
            staging_gbs: 32.0,
            staging_latency_s: 10e-6,
            contention_per_doubling: 0.08,
        }
    }

    /// Frontier: NICs attached directly to the GCDs — lowest latency and
    /// highest sustained bandwidth; hardware matching enabled.
    pub fn frontier() -> Self {
        Self {
            name: "Frontier".into(),
            nic_peak_gbs: 25.0,
            sustained_gbs: 16.0,
            base_latency_s: 18e-6,
            per_message_s: 0.5e-6,
            rdzv_handshake_s: 1.0e-6,
            eager_overhead_s: 1.5e-6,
            eager_bw_derate: 0.6,
            rendezvous_threshold: 0,
            hardware_matching: true,
            gpu_aware: true,
            staging_gbs: 36.0,
            staging_latency_s: 10e-6,
            contention_per_doubling: 0.08,
        }
    }

    /// Sunspot: early software stack; GPU-aware MPI slower than staging
    /// through the host, so the host path is used (paper Section V).
    pub fn sunspot() -> Self {
        Self {
            name: "Sunspot".into(),
            nic_peak_gbs: 25.0,
            sustained_gbs: 10.0,
            base_latency_s: 100e-6,
            per_message_s: 1.2e-6,
            rdzv_handshake_s: 4.0e-6,
            eager_overhead_s: 1.8e-6,
            eager_bw_derate: 0.5,
            rendezvous_threshold: 16384,
            hardware_matching: false,
            gpu_aware: false,
            staging_gbs: 48.0,
            staging_latency_s: 30e-6,
            contention_per_doubling: 0.10,
        }
    }

    /// Protocol chosen for a message of `bytes`.
    pub fn protocol_for(&self, bytes: usize) -> Protocol {
        if bytes >= self.rendezvous_threshold {
            Protocol::Rendezvous
        } else {
            Protocol::Eager
        }
    }

    /// Handshake+matching overhead for one message of `bytes`.
    fn message_overhead_s(&self, bytes: usize) -> f64 {
        match self.protocol_for(bytes) {
            Protocol::Eager => self.per_message_s + self.eager_overhead_s,
            Protocol::Rendezvous => {
                let h = if self.hardware_matching {
                    self.rdzv_handshake_s * 0.5
                } else {
                    self.rdzv_handshake_s
                };
                self.per_message_s + h
            }
        }
    }

    /// Effective wire bandwidth for one message of `bytes` (bytes/s).
    fn message_bw(&self, bytes: usize) -> f64 {
        let gbs = match self.protocol_for(bytes) {
            Protocol::Eager => self.sustained_gbs * self.eager_bw_derate,
            Protocol::Rendezvous => self.sustained_gbs,
        };
        gbs * 1e9
    }

    /// Time for one complete ghost exchange of `messages` (byte sizes),
    /// seconds. Serialization model: one NIC, messages pipelined — a base
    /// latency once, per-message overheads, wire time at protocol bandwidth,
    /// and (without GPU-aware MPI) a staging pass over PCIe.
    pub fn exchange_time_s(&self, messages: &[usize]) -> f64 {
        if messages.is_empty() {
            return 0.0;
        }
        let total: usize = messages.iter().sum();
        let mut t = self.base_latency_s;
        for &m in messages {
            t += self.message_overhead_s(m);
            t += m as f64 / self.message_bw(m);
        }
        if !self.gpu_aware {
            // Device→host before sending plus host→device after receiving:
            // the exchanged surface crosses PCIe twice.
            t += self.staging_latency_s + 2.0 * total as f64 / (self.staging_gbs * 1e9);
        }
        t
    }

    /// Achieved exchange bandwidth (GB/s of payload) at the given message
    /// mix — the y-axis of the paper's Figure 6.
    pub fn exchange_gbs(&self, messages: &[usize]) -> f64 {
        let total: usize = messages.iter().sum();
        if total == 0 {
            return 0.0;
        }
        total as f64 / self.exchange_time_s(messages) / 1e9
    }

    /// Fit-equivalent (α, β) of this model seen as the paper's simple
    /// `t = α + x/β` over a 26-message exchange: α is the zero-size
    /// intercept, β the asymptotic payload bandwidth.
    pub fn effective_alpha_beta(&self, n_messages: usize) -> (f64, f64) {
        let alpha = self.exchange_time_s(&vec![0usize; n_messages]);
        let big = 1usize << 30;
        let t_big = self.exchange_time_s(&vec![big / n_messages.max(1); n_messages]);
        let beta = (big as f64) / (t_big - alpha) / 1e9;
        (alpha, beta)
    }

    /// The model under job-wide contention at `nodes` nodes: latency and
    /// bandwidth degrade by `contention_per_doubling` per doubling beyond
    /// one node. This is what keeps weak scaling below 100% and is
    /// calibrated so 128-node efficiency stays ≥ the paper's 87%.
    #[must_use]
    pub fn at_scale(&self, nodes: usize) -> NetworkModel {
        let doublings = (nodes.max(1) as f64).log2();
        let degrade = 1.0 + self.contention_per_doubling * doublings;
        let mut m = self.clone();
        m.base_latency_s *= degrade;
        m.per_message_s *= degrade;
        m.sustained_gbs /= degrade;
        m
    }

    /// Toggle GPU-aware MPI (for the ablation benches).
    #[must_use]
    pub fn with_gpu_aware(mut self, on: bool) -> Self {
        self.gpu_aware = on;
        self
    }

    /// Set the rendezvous threshold (0 = the paper's forced-rendezvous
    /// setting).
    #[must_use]
    pub fn with_rendezvous_threshold(mut self, bytes: usize) -> Self {
        self.rendezvous_threshold = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_ordering_frontier_best() {
        // Large-exchange bandwidth: Frontier > Perlmutter > Sunspot.
        let msgs = vec![4 << 20; 26];
        let f = NetworkModel::frontier().exchange_gbs(&msgs);
        let p = NetworkModel::perlmutter().exchange_gbs(&msgs);
        let s = NetworkModel::sunspot().exchange_gbs(&msgs);
        assert!(f > p && p > s, "f={f:.1} p={p:.1} s={s:.1}");
        // Frontier approaches its sustained 16 GB/s; all below NIC peak.
        assert!(f > 14.0 && f < 16.0);
        assert!(s < 9.0);
    }

    #[test]
    fn latency_dominates_small_exchanges() {
        // Paper: latency dominates for total message size < 1 MB.
        let m = NetworkModel::perlmutter();
        let small = vec![1024usize; 26]; // 26 KB total
        let t = m.exchange_time_s(&small);
        let (alpha, _) = m.effective_alpha_beta(26);
        assert!(t < 1.5 * alpha, "t={t:.2e} alpha={alpha:.2e}");
        let gbs = m.exchange_gbs(&small);
        assert!(gbs < 1.0, "small exchange far from peak: {gbs}");
    }

    #[test]
    fn empirical_alpha_beta_in_paper_ranges() {
        // Paper: α between 25 and 200 µs, β between 7 and 16 GB/s.
        for m in [
            NetworkModel::perlmutter(),
            NetworkModel::frontier(),
            NetworkModel::sunspot(),
        ] {
            let (a, b) = m.effective_alpha_beta(26);
            assert!((20e-6..=220e-6).contains(&a), "{}: α={a:.2e}", m.name);
            assert!((6.0..=16.5).contains(&b), "{}: β={b:.2}", m.name);
        }
        let (af, _) = NetworkModel::frontier().effective_alpha_beta(26);
        let (ap, _) = NetworkModel::perlmutter().effective_alpha_beta(26);
        let (as_, _) = NetworkModel::sunspot().effective_alpha_beta(26);
        assert!(af < ap && ap < as_, "Frontier lowest latency");
    }

    #[test]
    fn host_staging_costs_bandwidth_and_latency() {
        let aware = NetworkModel::sunspot().with_gpu_aware(true);
        let staged = NetworkModel::sunspot();
        let msgs = vec![1 << 20; 26];
        assert!(staged.exchange_time_s(&msgs) > aware.exchange_time_s(&msgs));
    }

    #[test]
    fn forced_rendezvous_helps_small_messages() {
        // With hardware matching, forcing rendezvous (threshold 0) beats
        // the eager path for small messages — the Frontier observation.
        let forced = NetworkModel::frontier();
        let default = NetworkModel::frontier().with_rendezvous_threshold(64 << 10);
        let small = vec![8192usize; 26];
        assert!(forced.exchange_time_s(&small) < default.exchange_time_s(&small));
    }

    #[test]
    fn protocol_selection() {
        let m = NetworkModel::sunspot();
        assert_eq!(m.protocol_for(1024), Protocol::Eager);
        assert_eq!(m.protocol_for(1 << 20), Protocol::Rendezvous);
        let forced = m.with_rendezvous_threshold(0);
        assert_eq!(forced.protocol_for(1), Protocol::Rendezvous);
    }

    #[test]
    fn contention_degrades_gracefully() {
        let m = NetworkModel::frontier();
        let msgs = vec![2 << 20; 26];
        let t1 = m.exchange_time_s(&msgs);
        let t128 = m.at_scale(128).exchange_time_s(&msgs);
        assert!(t128 > t1);
        // Must stay mild enough for ≥87% weak-scaling efficiency: the
        // 128-node exchange is ≤ ~15% slower than single-node.
        assert!(t128 / t1 < 1.75, "ratio {}", t128 / t1);
    }

    #[test]
    fn empty_exchange_is_free() {
        assert_eq!(NetworkModel::frontier().exchange_time_s(&[]), 0.0);
        assert_eq!(NetworkModel::frontier().exchange_gbs(&[]), 0.0);
    }
}
