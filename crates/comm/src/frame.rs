//! Length-prefixed wire frames for the socket transports.
//!
//! A [`crate::runtime::RankCtx`] message (`Wire::Data` / `Wire::Ack`) is
//! encoded into one or more datagram-sized frames carrying
//! `{src, dst, tag, seq, epoch, fragment, checksum}`. The ARQ layer's own
//! FNV checksum rides along unchanged (`arq_checksum`) so an injected
//! payload corruption is detected by exactly the same code path on both
//! transports; a *second* frame-level checksum covers the header + bytes
//! on the wire, so garbage read off a socket is rejected with a typed
//! [`FrameError`] and never panics or reaches the ARQ layer.
//!
//! Fragmentation keeps each frame under typical `SO_SNDBUF` datagram
//! limits. Fragments of one message are sent back-to-back on one socket,
//! so per-peer FIFO ordering (Unix datagram and TCP both provide it)
//! means a [`Reassembler`] only tracks one partial message per sender; a
//! torn sequence is dropped and the ARQ retransmit supplies a clean copy.

use std::fmt;

use crate::transport::Wire;

/// `"GM"` little-endian.
pub const MAGIC: u16 = 0x4d47;
pub const VERSION: u8 = 1;
/// Fixed header size in bytes (checksum trailer included).
pub const HEADER_LEN: usize = 60;
/// Payload doubles per fragment: 48 KiB of payload per frame.
pub const MAX_FRAGMENT_DOUBLES: usize = 6144;
/// Hard ceiling on a frame's declared payload, enforced *before* any
/// allocation so a hostile length field cannot OOM the receiver.
pub const MAX_FRAME_LEN: usize = HEADER_LEN + MAX_FRAGMENT_DOUBLES * 8;

/// What a frame carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// An ARQ payload message (possibly one fragment of one).
    Data = 0,
    /// An ARQ acknowledgement.
    Ack = 1,
    /// A membership/control-plane message (never enters the ARQ layer).
    Control = 2,
    /// A loss-tolerant telemetry message (gmg-live sidecar; best-effort,
    /// no ARQ, epoch-fenced by the collector).
    Telemetry = 3,
}

/// A decoded frame.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    pub kind: FrameKind,
    pub src: u32,
    pub dst: u32,
    pub tag: u64,
    pub seq: u64,
    pub epoch: u64,
    pub frag_index: u16,
    pub frag_count: u16,
    /// The ARQ layer's checksum over the *whole* message (all fragments).
    pub arq_checksum: u64,
    pub payload: Vec<f64>,
}

/// Typed frame-decode failures. These surface as
/// [`crate::CommError::Frame`] from the decode API and are counted (then
/// dropped) by the socket receive path — a bad frame is
/// indistinguishable from a lost one, which the ARQ layer already
/// handles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than the fixed header.
    Truncated {
        len: usize,
    },
    BadMagic {
        magic: u16,
    },
    BadVersion {
        version: u8,
    },
    BadKind {
        kind: u8,
    },
    /// Declared payload exceeds [`MAX_FRAGMENT_DOUBLES`].
    Oversized {
        declared: usize,
        max: usize,
    },
    /// Buffer length disagrees with the declared payload length.
    LengthMismatch {
        declared: usize,
        actual: usize,
    },
    /// `frag_index >= frag_count` or `frag_count == 0`.
    BadFragment {
        index: u16,
        count: u16,
    },
    ChecksumMismatch {
        expected: u64,
        actual: u64,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { len } => {
                write!(f, "frame truncated ({len} bytes < {HEADER_LEN} header)")
            }
            FrameError::BadMagic { magic } => write!(f, "bad frame magic {magic:#06x}"),
            FrameError::BadVersion { version } => write!(f, "unknown frame version {version}"),
            FrameError::BadKind { kind } => write!(f, "unknown frame kind {kind}"),
            FrameError::Oversized { declared, max } => {
                write!(f, "declared payload {declared} doubles exceeds max {max}")
            }
            FrameError::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "frame length {actual} disagrees with declared {declared}"
                )
            }
            FrameError::BadFragment { index, count } => {
                write!(f, "fragment index {index} out of range for count {count}")
            }
            FrameError::ChecksumMismatch { expected, actual } => write!(
                f,
                "frame checksum mismatch (expected {expected:#018x}, got {actual:#018x})"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// FNV-1a over raw bytes (the frame-level checksum; independent of the
/// ARQ message checksum in [`crate::fault`]).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Frame {
    /// Encode into a self-contained datagram / stream record.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HEADER_LEN + self.payload.len() * 8);
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.push(VERSION);
        buf.push(self.kind as u8);
        buf.extend_from_slice(&self.src.to_le_bytes());
        buf.extend_from_slice(&self.dst.to_le_bytes());
        buf.extend_from_slice(&self.tag.to_le_bytes());
        buf.extend_from_slice(&self.seq.to_le_bytes());
        buf.extend_from_slice(&self.epoch.to_le_bytes());
        buf.extend_from_slice(&self.frag_index.to_le_bytes());
        buf.extend_from_slice(&self.frag_count.to_le_bytes());
        buf.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&self.arq_checksum.to_le_bytes());
        // Checksum placeholder, then payload; the checksum covers
        // everything except its own 8 bytes.
        let cs_at = buf.len();
        buf.extend_from_slice(&[0u8; 8]);
        for v in &self.payload {
            buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let cs = fnv1a(&buf[..cs_at]) ^ fnv1a(&buf[cs_at + 8..]);
        buf[cs_at..cs_at + 8].copy_from_slice(&cs.to_le_bytes());
        buf
    }

    /// Decode one frame from `buf`, which must hold exactly one frame.
    /// Never panics: every malformed input maps to a typed [`FrameError`].
    pub fn decode(buf: &[u8]) -> Result<Frame, FrameError> {
        if buf.len() < HEADER_LEN {
            return Err(FrameError::Truncated { len: buf.len() });
        }
        let rd_u16 = |at: usize| u16::from_le_bytes(buf[at..at + 2].try_into().unwrap());
        let rd_u32 = |at: usize| u32::from_le_bytes(buf[at..at + 4].try_into().unwrap());
        let rd_u64 = |at: usize| u64::from_le_bytes(buf[at..at + 8].try_into().unwrap());
        let magic = rd_u16(0);
        if magic != MAGIC {
            return Err(FrameError::BadMagic { magic });
        }
        if buf[2] != VERSION {
            return Err(FrameError::BadVersion { version: buf[2] });
        }
        let kind = match buf[3] {
            0 => FrameKind::Data,
            1 => FrameKind::Ack,
            2 => FrameKind::Control,
            3 => FrameKind::Telemetry,
            k => return Err(FrameError::BadKind { kind: k }),
        };
        let declared = rd_u32(40) as usize;
        if declared > MAX_FRAGMENT_DOUBLES {
            return Err(FrameError::Oversized {
                declared,
                max: MAX_FRAGMENT_DOUBLES,
            });
        }
        if buf.len() != HEADER_LEN + declared * 8 {
            return Err(FrameError::LengthMismatch {
                declared,
                actual: buf.len(),
            });
        }
        let frag_index = rd_u16(36);
        let frag_count = rd_u16(38);
        if frag_count == 0 || frag_index >= frag_count {
            return Err(FrameError::BadFragment {
                index: frag_index,
                count: frag_count,
            });
        }
        let expected = rd_u64(52);
        let actual = fnv1a(&buf[..52]) ^ fnv1a(&buf[HEADER_LEN..]);
        if expected != actual {
            return Err(FrameError::ChecksumMismatch { expected, actual });
        }
        let payload = buf[HEADER_LEN..]
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
            .collect();
        Ok(Frame {
            kind,
            src: rd_u32(4),
            dst: rd_u32(8),
            tag: rd_u64(12),
            seq: rd_u64(20),
            epoch: rd_u64(28),
            frag_index,
            frag_count,
            arq_checksum: rd_u64(44),
            payload,
        })
    }
}

/// Encode a [`Wire`] into its (possibly fragmented) frame sequence.
pub(crate) fn encode_wire(wire: &Wire, dst: usize, epoch: u64) -> Vec<Vec<u8>> {
    match wire {
        Wire::Ack { src, seq } => vec![Frame {
            kind: FrameKind::Ack,
            src: *src as u32,
            dst: dst as u32,
            tag: 0,
            seq: *seq,
            epoch,
            frag_index: 0,
            frag_count: 1,
            arq_checksum: 0,
            payload: Vec::new(),
        }
        .encode()],
        Wire::Data {
            src,
            tag,
            seq,
            checksum,
            payload,
        } => {
            let frag_count = payload.len().div_ceil(MAX_FRAGMENT_DOUBLES).max(1) as u16;
            (0..frag_count)
                .map(|i| {
                    let lo = i as usize * MAX_FRAGMENT_DOUBLES;
                    let hi = (lo + MAX_FRAGMENT_DOUBLES).min(payload.len());
                    Frame {
                        kind: FrameKind::Data,
                        src: *src as u32,
                        dst: dst as u32,
                        tag: *tag,
                        seq: *seq,
                        epoch,
                        frag_index: i,
                        frag_count,
                        arq_checksum: *checksum,
                        payload: payload[lo..hi].to_vec(),
                    }
                    .encode()
                })
                .collect()
        }
    }
}

/// One in-progress multi-fragment message from one sender.
struct Partial {
    seq: u64,
    tag: u64,
    arq_checksum: u64,
    frag_count: u16,
    next_index: u16,
    payload: Vec<f64>,
}

/// Reassembles per-sender fragment sequences back into [`Wire`]s.
/// Senders emit a message's fragments back-to-back on a FIFO link, so one
/// partial per sender suffices; any discontinuity discards the partial
/// (the ARQ layer retransmits the whole message).
#[derive(Default)]
pub(crate) struct Reassembler {
    partial: std::collections::HashMap<u32, Partial>,
}

impl Reassembler {
    /// Feed one decoded frame; returns a completed message if this frame
    /// finished one. Control frames are the caller's business and must
    /// not be fed here.
    pub(crate) fn accept(&mut self, f: Frame) -> Option<Wire> {
        match f.kind {
            FrameKind::Ack => Some(Wire::Ack {
                src: f.src as usize,
                seq: f.seq,
            }),
            FrameKind::Control | FrameKind::Telemetry => None,
            FrameKind::Data => {
                if f.frag_count == 1 {
                    self.partial.remove(&f.src);
                    return Some(Wire::Data {
                        src: f.src as usize,
                        tag: f.tag,
                        seq: f.seq,
                        checksum: f.arq_checksum,
                        payload: f.payload,
                    });
                }
                if f.frag_index == 0 {
                    self.partial.insert(
                        f.src,
                        Partial {
                            seq: f.seq,
                            tag: f.tag,
                            arq_checksum: f.arq_checksum,
                            frag_count: f.frag_count,
                            next_index: 1,
                            payload: f.payload,
                        },
                    );
                    return None;
                }
                let p = self.partial.get_mut(&f.src)?;
                if p.seq != f.seq || p.frag_count != f.frag_count || p.next_index != f.frag_index {
                    // Torn sequence: drop it and wait for a retransmit.
                    self.partial.remove(&f.src);
                    return None;
                }
                p.payload.extend_from_slice(&f.payload);
                p.next_index += 1;
                if p.next_index == p.frag_count {
                    let p = self.partial.remove(&f.src).unwrap();
                    return Some(Wire::Data {
                        src: f.src as usize,
                        tag: p.tag,
                        seq: p.seq,
                        checksum: p.arq_checksum,
                        payload: p.payload,
                    });
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame {
            kind: FrameKind::Data,
            src: 3,
            dst: 1,
            tag: 42,
            seq: 7,
            epoch: 2,
            frag_index: 0,
            frag_count: 1,
            arq_checksum: 0xdead_beef,
            payload: vec![1.5, -2.25, f64::MAX, 0.0],
        }
    }

    #[test]
    fn round_trip() {
        let f = sample();
        assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn telemetry_kind_round_trips_and_never_reassembles() {
        let f = Frame {
            kind: FrameKind::Telemetry,
            ..sample()
        };
        let back = Frame::decode(&f.encode()).unwrap();
        assert_eq!(back, f);
        // A telemetry frame must never surface as ARQ traffic.
        assert!(Reassembler::default().accept(back).is_none());
    }

    #[test]
    fn truncated_and_corrupted_frames_reject_with_typed_errors() {
        let bytes = sample().encode();
        assert_eq!(
            Frame::decode(&bytes[..10]),
            Err(FrameError::Truncated { len: 10 })
        );
        // Flip any single bit: must reject, never panic, never accept.
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut b = bytes.clone();
                b[byte] ^= 1 << bit;
                assert!(Frame::decode(&b).is_err(), "byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn oversized_declared_length_rejected_before_allocation() {
        let mut bytes = sample().encode();
        bytes[40..44].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn fragmentation_reassembles_large_messages() {
        let payload: Vec<f64> = (0..3 * MAX_FRAGMENT_DOUBLES + 17)
            .map(|i| i as f64)
            .collect();
        let wire = Wire::Data {
            src: 2,
            tag: 9,
            seq: 4,
            checksum: 11,
            payload: payload.clone(),
        };
        let frames = encode_wire(&wire, 0, 0);
        assert_eq!(frames.len(), 4);
        let mut r = Reassembler::default();
        let mut out = None;
        for f in &frames {
            assert!(out.is_none());
            out = r.accept(Frame::decode(f).unwrap());
        }
        match out.unwrap() {
            Wire::Data { payload: p, .. } => assert_eq!(p, payload),
            w => panic!("unexpected {w:?}"),
        }
    }

    #[test]
    fn torn_fragment_sequence_is_dropped_then_clean_retransmit_wins() {
        let payload: Vec<f64> = (0..2 * MAX_FRAGMENT_DOUBLES)
            .map(|i| i as f64 * 0.5)
            .collect();
        let wire = Wire::Data {
            src: 1,
            tag: 3,
            seq: 8,
            checksum: 5,
            payload: payload.clone(),
        };
        let frames: Vec<Frame> = encode_wire(&wire, 0, 0)
            .iter()
            .map(|b| Frame::decode(b).unwrap())
            .collect();
        let mut r = Reassembler::default();
        // First fragment arrives, second is lost, then a full retransmit.
        assert!(r.accept(frames[0].clone()).is_none());
        assert!(r.accept(frames[0].clone()).is_none()); // restart, not error
        assert!(matches!(
            r.accept(frames[1].clone()),
            Some(Wire::Data { .. })
        ));
    }
}
