//! Message planning: subdomain geometry → per-neighbor message sizes.
//!
//! The network model consumes byte counts; this module derives them from
//! level geometry, ghost depth, and layout. Brick plans also expose the
//! contiguous-run structure that quantifies the pack-free property of the
//! surface-major ordering.

use gmg_brick::{BrickLayout, BrickOrdering};
use gmg_mesh::ghost::DIRECTIONS_26;
use gmg_mesh::{Box3, Point3};
use serde::{Deserialize, Serialize};

/// Message plan for a conventional-array ghost exchange at depth `d`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ArrayExchangePlan {
    /// Subdomain extent.
    pub sub_extent: Point3,
    /// Ghost depth in cells.
    pub depth: i64,
    /// Bytes per message, one per direction ([`DIRECTIONS_26`] order).
    pub message_bytes: Vec<usize>,
}

impl ArrayExchangePlan {
    /// Plan a 26-neighbor exchange for a subdomain of `sub_extent` cells
    /// with ghost depth `depth` (doubles).
    pub fn new(sub_extent: Point3, depth: i64) -> Self {
        let b = Box3::from_extent(sub_extent);
        let message_bytes = DIRECTIONS_26
            .iter()
            .map(|&dir| b.face_region(dir, depth).volume() * 8)
            .collect();
        Self {
            sub_extent,
            depth,
            message_bytes,
        }
    }

    /// Total payload bytes of one exchange.
    pub fn total_bytes(&self) -> usize {
        self.message_bytes.iter().sum()
    }

    /// Cells that must be packed/unpacked per exchange (all of them — the
    /// conventional layout has no contiguous ghost regions beyond single
    /// faces).
    pub fn packed_cells(&self) -> usize {
        self.total_bytes() / 8
    }
}

/// Message plan for a bricked ghost exchange (ghost shell = whole bricks).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BrickExchangePlan {
    pub sub_extent: Point3,
    pub brick_dim: i64,
    pub ghost_bricks: i64,
    /// Bytes per message, per direction.
    pub message_bytes: Vec<usize>,
    /// Contiguous slot runs needed to *send* each direction's bricks.
    pub send_runs: Vec<usize>,
    /// Contiguous slot runs needed to *receive* each direction's bricks.
    pub recv_runs: Vec<usize>,
}

impl BrickExchangePlan {
    /// Plan the exchange for a brick-aligned subdomain.
    pub fn new(
        sub_extent: Point3,
        brick_dim: i64,
        ghost_bricks: i64,
        ordering: BrickOrdering,
    ) -> Self {
        let layout = BrickLayout::new(
            Box3::from_extent(sub_extent),
            brick_dim,
            ghost_bricks,
            ordering,
        );
        let bvol_bytes = layout.brick_volume() * 8;
        let mut message_bytes = Vec::with_capacity(26);
        let mut send_runs = Vec::with_capacity(26);
        let mut recv_runs = Vec::with_capacity(26);
        for dir in DIRECTIONS_26 {
            let send = layout.send_slots(dir);
            let recv = layout.ghost_slots(dir);
            message_bytes.push(send.len() * bvol_bytes);
            send_runs.push(BrickLayout::contiguous_runs(&send).len());
            recv_runs.push(BrickLayout::contiguous_runs(&recv).len());
        }
        Self {
            sub_extent,
            brick_dim,
            ghost_bricks,
            message_bytes,
            send_runs,
            recv_runs,
        }
    }

    /// Total payload bytes of one exchange.
    pub fn total_bytes(&self) -> usize {
        self.message_bytes.iter().sum()
    }

    /// Total memcpy operations one exchange needs on the send + receive
    /// sides (the pack-free figure of merit; 26 receives = 26 runs with
    /// surface-major ordering).
    pub fn total_runs(&self) -> usize {
        self.send_runs.iter().sum::<usize>() + self.recv_runs.iter().sum::<usize>()
    }

    /// Ghost depth in cells — the number of smooth steps one exchange
    /// supports in communication-avoiding mode.
    pub fn ghost_cells(&self) -> i64 {
        self.brick_dim * self.ghost_bricks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_plan_volumes() {
        let p = ArrayExchangePlan::new(Point3::splat(8), 1);
        // 6 faces of 64, 12 edges of 8, 8 corners of 1.
        assert_eq!(p.total_bytes() / 8, 6 * 64 + 12 * 8 + 8);
        assert_eq!(p.message_bytes.len(), 26);
        assert_eq!(p.packed_cells(), p.total_bytes() / 8);
    }

    #[test]
    fn array_plan_scales_with_depth() {
        let p1 = ArrayExchangePlan::new(Point3::splat(64), 1);
        let p2 = ArrayExchangePlan::new(Point3::splat(64), 2);
        assert!(p2.total_bytes() > 2 * p1.total_bytes() - 8 * 64);
    }

    #[test]
    fn brick_plan_bytes_match_shell() {
        let p = BrickExchangePlan::new(Point3::splat(64), 8, 1, BrickOrdering::SurfaceMajor);
        // Shell of bricks: (8+2)³ − 8³ bricks of 512 cells.
        let shell_bricks = 10 * 10 * 10 - 8 * 8 * 8;
        assert_eq!(p.total_bytes(), shell_bricks * 512 * 8);
        assert_eq!(p.ghost_cells(), 8);
    }

    #[test]
    fn surface_major_is_pack_free_on_receive() {
        let p = BrickExchangePlan::new(Point3::splat(64), 8, 1, BrickOrdering::SurfaceMajor);
        assert!(p.recv_runs.iter().all(|&r| r == 1), "{:?}", p.recv_runs);
        // Sends need at most 9 runs (face gathers).
        assert!(p.send_runs.iter().all(|&r| r <= 9));
        let lex = BrickExchangePlan::new(Point3::splat(64), 8, 1, BrickOrdering::Lexicographic);
        assert!(
            lex.total_runs() > 3 * p.total_runs(),
            "lex {} vs surface {}",
            lex.total_runs(),
            p.total_runs()
        );
    }

    #[test]
    fn brick_exchange_moves_more_bytes_but_less_often() {
        // The CA trade-off: a depth-8 brick exchange moves more data than a
        // depth-1 array exchange, but supports 8 smooth steps.
        let brick = BrickExchangePlan::new(Point3::splat(64), 8, 1, BrickOrdering::SurfaceMajor);
        let array = ArrayExchangePlan::new(Point3::splat(64), 1);
        assert!(brick.total_bytes() > array.total_bytes());
        let per_smooth_brick = brick.total_bytes() as f64 / brick.ghost_cells() as f64;
        // Per smooth step the brick exchange is within ~2.5× of the array
        // bytes while eliminating 7 of 8 latency hits.
        assert!(per_smooth_brick < 2.5 * array.total_bytes() as f64);
    }
}
