//! Conventional lexicographic *ijk* array storage with ghost cells.
//!
//! This is the layout the paper's baseline (and HPGMG) uses: a single
//! contiguous allocation covering the valid region plus a symmetric ghost
//! shell, indexed with `x` fastest. A radius-1 stencil sweeping an `Array3`
//! touches `2·ny·nz + ...` distinct address streams — the data-movement
//! behaviour fine-grain data blocking (`gmg-brick`) is designed to avoid.

use crate::box3::Box3;
use crate::point::Point3;
use rayon::prelude::*;

/// Target slab count for the parallel helpers below. A fixed constant —
/// deliberately *not* derived from `rayon::current_num_threads()` — so the
/// work decomposition (and the combine order of reductions) is identical
/// at any thread count. 64 slabs keep 1–32 workers busy with headroom for
/// load balancing; `split_slabs` caps the count at the region's z extent.
pub const PAR_SLABS: usize = 64;

/// A dense 3D array over a half-open box, with an optional ghost shell.
///
/// The *valid* region is the caller's logical domain; storage covers
/// `valid.grow(ghost)`. Indexing is by global (absolute) [`Point3`]
/// coordinates, so subdomain arrays in a decomposition use their global
/// index ranges directly.
#[derive(Clone, Debug)]
pub struct Array3<T> {
    valid: Box3,
    storage: Box3,
    ghost: i64,
    /// Extents of the storage box, cached for indexing.
    ext: [i64; 3],
    data: Vec<T>,
}

impl<T: Copy + Default + Send + Sync> Array3<T> {
    /// Allocate an array over `valid` with a ghost shell of depth `ghost`,
    /// filled with `T::default()`.
    pub fn new(valid: Box3, ghost: i64) -> Self {
        assert!(ghost >= 0, "ghost depth must be non-negative");
        assert!(!valid.is_empty(), "valid region must be non-empty");
        let storage = valid.grow(ghost);
        let e = storage.extent();
        let n = storage.volume();
        Self {
            valid,
            storage,
            ghost,
            ext: [e.x, e.y, e.z],
            data: vec![T::default(); n],
        }
    }

    /// Allocate and initialize every storage cell (including ghosts) from a
    /// function of the global index.
    pub fn from_fn(valid: Box3, ghost: i64, mut f: impl FnMut(Point3) -> T) -> Self {
        let mut a = Self::new(valid, ghost);
        let sb = a.storage;
        sb.for_each(|p| {
            let i = a.offset(p);
            a.data[i] = f(p);
        });
        a
    }

    /// The valid (non-ghost) region.
    #[inline]
    pub fn valid(&self) -> Box3 {
        self.valid
    }

    /// The full storage region (valid + ghost shell).
    #[inline]
    pub fn storage_box(&self) -> Box3 {
        self.storage
    }

    /// Ghost depth.
    #[inline]
    pub fn ghost(&self) -> i64 {
        self.ghost
    }

    /// Total allocated cells (valid + ghosts).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no cells are allocated (never, for a constructed array).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Linear offset of global point `p` in storage. Debug-asserted in
    /// bounds; use [`Array3::get`] for checked access.
    #[inline]
    pub fn offset(&self, p: Point3) -> usize {
        debug_assert!(self.storage.contains(p), "{p:?} outside {:?}", self.storage);
        let r = p - self.storage.lo;
        ((r.z * self.ext[1] + r.y) * self.ext[0] + r.x) as usize
    }

    /// Checked element access; `None` outside the storage box.
    #[inline]
    pub fn get(&self, p: Point3) -> Option<&T> {
        if self.storage.contains(p) {
            Some(&self.data[self.offset(p)])
        } else {
            None
        }
    }

    /// Raw storage slice (x fastest, then y, then z over the storage box).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw storage slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Strides (in elements) per axis for manual pointer arithmetic in
    /// kernels: `[1, sx, sx*sy]`.
    #[inline]
    pub fn strides(&self) -> [usize; 3] {
        [
            1,
            self.ext[0] as usize,
            (self.ext[0] * self.ext[1]) as usize,
        ]
    }

    /// Fill every cell of `region ∩ storage` with `v`.
    pub fn fill_region(&mut self, region: Box3, v: T) {
        let r = region.intersect(&self.storage);
        r.for_each(|p| {
            let i = self.offset(p);
            self.data[i] = v;
        });
    }

    /// Fill the whole storage (including ghosts) with `v`.
    pub fn fill(&mut self, v: T) {
        self.data.fill(v);
    }

    /// Copy `region` from `src` into `self`; both arrays must cover the
    /// region. Used for intra-process halo satisfaction and layout
    /// conversions.
    pub fn copy_region_from(&mut self, src: &Array3<T>, region: Box3) {
        assert!(
            self.storage.contains_box(&region),
            "dst does not cover region"
        );
        assert!(
            src.storage.contains_box(&region),
            "src does not cover region"
        );
        region.for_each(|p| {
            let i = self.offset(p);
            self.data[i] = src.data[src.offset(p)];
        });
    }

    /// Copy `region` from `src` interpreted at a shifted position:
    /// `self[p] = src[p + shift]` for `p` in `region`. This is the periodic
    /// wrap-around copy used for self-neighbor halo exchange.
    pub fn copy_region_shifted_from(&mut self, src: &Array3<T>, region: Box3, shift: Point3) {
        assert!(self.storage.contains_box(&region));
        assert!(src.storage.contains_box(&region.shift(shift)));
        region.for_each(|p| {
            let i = self.offset(p);
            self.data[i] = src.data[src.offset(p + shift)];
        });
    }

    /// Serialize `region` into a flat buffer in lexicographic order
    /// (the *pack* step of a conventional ghost exchange).
    pub fn pack(&self, region: Box3, buf: &mut Vec<T>) {
        assert!(
            self.storage.contains_box(&region),
            "pack region not covered"
        );
        buf.clear();
        buf.reserve(region.volume());
        region.for_each(|p| buf.push(self.data[self.offset(p)]));
    }

    /// Deserialize a flat buffer into `region` (the *unpack* step).
    pub fn unpack(&mut self, region: Box3, buf: &[T]) {
        assert!(
            self.storage.contains_box(&region),
            "unpack region not covered"
        );
        assert_eq!(buf.len(), region.volume(), "buffer/region size mismatch");
        let mut it = buf.iter();
        region.for_each(|p| {
            let i = self.offset(p);
            self.data[i] = *it.next().expect("buffer length checked");
        });
    }

    /// Apply `f(point, &mut value)` over `region ∩ storage`, sequentially.
    pub fn for_each_mut(&mut self, region: Box3, mut f: impl FnMut(Point3, &mut T)) {
        let r = region.intersect(&self.storage);
        r.for_each(|p| {
            let i = self.offset(p);
            f(p, &mut self.data[i]);
        });
    }

    /// Parallel z-slab traversal: run `f(slab_box, &mut self_view)` where the
    /// closure receives disjoint mutable z-slabs of the storage. The region
    /// must be the valid box or a sub-box of storage; slabs are split on z.
    ///
    /// Because our storage order is z-major, each z-slab of the *storage box*
    /// maps to a contiguous element range, letting us hand out disjoint
    /// `&mut` windows safely.
    ///
    /// The slab partition is a fixed constant ([`PAR_SLABS`]) rather than a
    /// function of the live thread count, so the work decomposition — and
    /// with it any float arithmetic downstream of slab boundaries — is
    /// identical at any `RAYON_NUM_THREADS`.
    pub fn par_for_each_slab(&mut self, region: Box3, f: impl Fn(Box3, SlabMut<'_, T>) + Sync)
    where
        T: Send,
    {
        let r = region.intersect(&self.storage);
        if r.is_empty() {
            return;
        }
        let plane = (self.ext[0] * self.ext[1]) as usize;
        let storage_lo = self.storage.lo;
        let ext = self.ext;
        let slabs = r.split_slabs(2, PAR_SLABS);

        // Hand out one disjoint mutable window per z-slab. Windows are
        // carved off the storage slice front-to-back in slab order.
        let mut rest: &mut [T] = &mut self.data;
        let mut consumed = 0usize;
        let mut jobs: Vec<(Box3, &mut [T], usize)> = Vec::with_capacity(slabs.len());
        for s in &slabs {
            let z0 = ((s.lo.z - storage_lo.z) as usize) * plane;
            let z1 = ((s.hi.z - storage_lo.z) as usize) * plane;
            let (_, tail) = rest.split_at_mut(z0 - consumed);
            let (window, tail2) = tail.split_at_mut(z1 - z0);
            rest = tail2;
            consumed = z1;
            jobs.push((*s, window, z0));
        }
        jobs.into_par_iter().for_each(|(slab, window, base)| {
            f(
                slab,
                SlabMut {
                    data: window,
                    base_offset: base,
                    storage_lo,
                    ext,
                },
            );
        });
    }

    /// Reduce over `region ∩ valid` with `f` mapping each value, combining
    /// with `combine`, in parallel over z-slabs.
    ///
    /// Deterministic at any thread count: the slab partition is the fixed
    /// [`PAR_SLABS`] constant and per-slab partials are folded serially in
    /// slab order, so float reductions are bit-identical run to run
    /// regardless of rayon's schedule.
    pub fn par_reduce<R: Send + Sync + Copy>(
        &self,
        region: Box3,
        identity: R,
        f: impl Fn(Point3, T) -> R + Sync,
        combine: impl Fn(R, R) -> R + Sync + Send,
    ) -> R {
        let r = region.intersect(&self.storage);
        if r.is_empty() {
            return identity;
        }
        let slabs = r.split_slabs(2, PAR_SLABS);
        let partials: Vec<R> = slabs
            .par_iter()
            .map(|s| {
                let mut acc = identity;
                s.for_each(|p| acc = combine(acc, f(p, self.data[self.offset(p)])));
                acc
            })
            .collect();
        partials.into_iter().fold(identity, &combine)
    }
}

impl<T: Copy + Default + Send + Sync> std::ops::Index<Point3> for Array3<T> {
    type Output = T;
    #[inline]
    fn index(&self, p: Point3) -> &T {
        &self.data[self.offset(p)]
    }
}

impl<T: Copy + Default + Send + Sync> std::ops::IndexMut<Point3> for Array3<T> {
    #[inline]
    fn index_mut(&mut self, p: Point3) -> &mut T {
        let i = self.offset(p);
        &mut self.data[i]
    }
}

/// A mutable window over a contiguous run of z-planes of an [`Array3`],
/// handed to parallel slab workers. Indexing uses the same global
/// coordinates as the parent array.
pub struct SlabMut<'a, T> {
    data: &'a mut [T],
    base_offset: usize,
    storage_lo: Point3,
    ext: [i64; 3],
}

impl<T: Copy> SlabMut<'_, T> {
    /// Linear offset of `p` within this window.
    #[inline]
    pub fn offset(&self, p: Point3) -> usize {
        let r = p - self.storage_lo;
        let abs = ((r.z * self.ext[1] + r.y) * self.ext[0] + r.x) as usize;
        debug_assert!(
            abs >= self.base_offset && abs - self.base_offset < self.data.len(),
            "point outside slab window"
        );
        abs - self.base_offset
    }

    /// Write `v` at global point `p` (must be inside the slab).
    #[inline]
    pub fn set(&mut self, p: Point3, v: T) {
        let i = self.offset(p);
        self.data[i] = v;
    }

    /// Read the value at global point `p` (must be inside the slab).
    #[inline]
    pub fn get(&self, p: Point3) -> T {
        self.data[self.offset(p)]
    }

    /// The raw window slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: i64, y: i64, z: i64) -> Point3 {
        Point3::new(x, y, z)
    }

    #[test]
    fn allocation_and_indexing() {
        let v = Box3::cube(4);
        let a: Array3<f64> = Array3::new(v, 1);
        assert_eq!(a.valid(), v);
        assert_eq!(a.storage_box(), v.grow(1));
        assert_eq!(a.len(), 6 * 6 * 6);
        assert_eq!(a.ghost(), 1);
        assert_eq!(a[pt(0, 0, 0)], 0.0);
        assert_eq!(a[pt(-1, -1, -1)], 0.0); // ghost corner reachable
    }

    #[test]
    fn offset_is_x_fastest() {
        let a: Array3<f64> = Array3::new(Box3::cube(4), 0);
        assert_eq!(a.offset(pt(0, 0, 0)), 0);
        assert_eq!(a.offset(pt(1, 0, 0)), 1);
        assert_eq!(a.offset(pt(0, 1, 0)), 4);
        assert_eq!(a.offset(pt(0, 0, 1)), 16);
        assert_eq!(a.strides(), [1, 4, 16]);
    }

    #[test]
    fn from_fn_covers_ghosts() {
        let a = Array3::from_fn(Box3::cube(2), 1, |p| (p.x + 10 * p.y + 100 * p.z) as f64);
        assert_eq!(a[pt(-1, -1, -1)], -111.0);
        assert_eq!(a[pt(1, 1, 1)], 111.0);
        assert_eq!(a[pt(2, 0, 0)], 2.0);
    }

    #[test]
    fn get_checked() {
        let a: Array3<f64> = Array3::new(Box3::cube(2), 0);
        assert!(a.get(pt(0, 0, 0)).is_some());
        assert!(a.get(pt(2, 0, 0)).is_none());
        assert!(a.get(pt(-1, 0, 0)).is_none());
    }

    #[test]
    fn fill_region_respects_bounds() {
        let mut a: Array3<f64> = Array3::new(Box3::cube(4), 1);
        a.fill_region(Box3::new(pt(2, 2, 2), pt(10, 10, 10)), 7.0);
        assert_eq!(a[pt(3, 3, 3)], 7.0);
        assert_eq!(a[pt(4, 4, 4)], 7.0); // ghost included
        assert_eq!(a[pt(1, 1, 1)], 0.0);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let a = Array3::from_fn(Box3::cube(4), 1, |p| (p.x + 8 * p.y + 64 * p.z) as f64);
        let region = Box3::cube(4).face_region(pt(1, 0, 0), 2);
        let mut buf = Vec::new();
        a.pack(region, &mut buf);
        assert_eq!(buf.len(), region.volume());
        let mut b: Array3<f64> = Array3::new(Box3::cube(4), 1);
        b.unpack(region, &buf);
        region.for_each(|p| assert_eq!(b[p], a[p]));
        // Pack reuses the buffer allocation.
        let cap = buf.capacity();
        a.pack(region, &mut buf);
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn copy_region_shifted_wraps() {
        let n = 4;
        let src = Array3::from_fn(Box3::cube(n), 0, |p| (p.x) as f64);
        let mut dst: Array3<f64> = Array3::new(Box3::cube(n), 1);
        // Fill my -x ghost layer from the +x side of src (periodic wrap).
        let ghost = Box3::cube(n).halo_region(pt(-1, 0, 0), 1);
        dst.copy_region_shifted_from(&src, ghost, pt(n, 0, 0));
        assert_eq!(dst[pt(-1, 0, 0)], (n - 1) as f64);
    }

    #[test]
    fn par_slab_traversal_touches_every_cell_once() {
        let v = Box3::cube(16);
        let mut a: Array3<f64> = Array3::new(v, 2);
        a.par_for_each_slab(v, |slab, mut w| {
            slab.for_each(|p| {
                let old = w.get(p);
                w.set(p, old + 1.0);
            });
        });
        let total = a.par_reduce(v, 0.0, |_, x| x, |a, b| a + b);
        assert_eq!(total, v.volume() as f64);
        // Ghosts untouched.
        assert_eq!(a[pt(-1, 0, 0)], 0.0);
    }

    #[test]
    fn par_reduce_max() {
        let v = Box3::cube(8);
        let a = Array3::from_fn(v, 0, |p| (p.x + p.y + p.z) as f64);
        let m = a.par_reduce(v, f64::NEG_INFINITY, |_, x| x, f64::max);
        assert_eq!(m, 21.0);
    }

    #[test]
    #[should_panic]
    fn pack_outside_storage_panics() {
        let a: Array3<f64> = Array3::new(Box3::cube(2), 0);
        let mut buf = Vec::new();
        a.pack(Box3::cube(3), &mut buf);
    }
}
