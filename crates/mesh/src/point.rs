//! Integer 3D index points.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A point (or offset) in 3D integer index space.
///
/// `x` is the fastest-varying (unit-stride) dimension in every storage layout
/// of this workspace, matching the *ijk* convention of the paper: `i → x`,
/// `j → y`, `k → z`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize, PartialOrd, Ord)]
pub struct Point3 {
    pub x: i64,
    pub y: i64,
    pub z: i64,
}

impl Point3 {
    /// Construct a point from its three components.
    #[inline]
    pub const fn new(x: i64, y: i64, z: i64) -> Self {
        Self { x, y, z }
    }

    /// The origin, `(0, 0, 0)`.
    #[inline]
    pub const fn zero() -> Self {
        Self::new(0, 0, 0)
    }

    /// The point with all components equal to `v`.
    #[inline]
    pub const fn splat(v: i64) -> Self {
        Self::new(v, v, v)
    }

    /// Component along `axis` (0 = x, 1 = y, 2 = z).
    #[inline]
    pub fn get(&self, axis: usize) -> i64 {
        match axis {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            _ => panic!("axis out of range: {axis}"),
        }
    }

    /// Set the component along `axis`, returning the updated point.
    #[inline]
    #[must_use]
    pub fn with(mut self, axis: usize, v: i64) -> Self {
        self[axis] = v;
        self
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Self) -> Self {
        Self::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Self) -> Self {
        Self::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Component-wise product (Hadamard product).
    #[inline]
    pub fn hadamard(self, o: Self) -> Self {
        Self::new(self.x * o.x, self.y * o.y, self.z * o.z)
    }

    /// Component-wise Euclidean (floor) division.
    #[inline]
    pub fn div_floor(self, d: Self) -> Self {
        Self::new(
            self.x.div_euclid(d.x),
            self.y.div_euclid(d.y),
            self.z.div_euclid(d.z),
        )
    }

    /// Component-wise Euclidean remainder; always non-negative for positive
    /// divisors, which makes it suitable for periodic wrapping.
    #[inline]
    pub fn rem_euclid(self, d: Self) -> Self {
        Self::new(
            self.x.rem_euclid(d.x),
            self.y.rem_euclid(d.y),
            self.z.rem_euclid(d.z),
        )
    }

    /// Product of all components. Panics in debug builds on overflow.
    #[inline]
    pub fn product(self) -> i64 {
        self.x * self.y * self.z
    }

    /// Sum of all components.
    #[inline]
    pub fn sum(self) -> i64 {
        self.x + self.y + self.z
    }

    /// Number of non-zero components; the "codimension" of a halo direction
    /// (1 = face, 2 = edge, 3 = corner).
    #[inline]
    pub fn codim(self) -> usize {
        (self.x != 0) as usize + (self.y != 0) as usize + (self.z != 0) as usize
    }

    /// True if every component of `self` is strictly less than that of `o`.
    #[inline]
    pub fn all_lt(self, o: Self) -> bool {
        self.x < o.x && self.y < o.y && self.z < o.z
    }

    /// True if every component of `self` is less than or equal to that of `o`.
    #[inline]
    pub fn all_le(self, o: Self) -> bool {
        self.x <= o.x && self.y <= o.y && self.z <= o.z
    }

    /// Interpret as an extent and convert to `usize` components.
    /// Panics if any component is negative.
    #[inline]
    pub fn to_usize(self) -> [usize; 3] {
        assert!(
            self.x >= 0 && self.y >= 0 && self.z >= 0,
            "negative extent {self:?}"
        );
        [self.x as usize, self.y as usize, self.z as usize]
    }

    /// Iterate over each axis component in `(axis, value)` pairs.
    pub fn components(self) -> impl Iterator<Item = (usize, i64)> {
        [(0usize, self.x), (1, self.y), (2, self.z)].into_iter()
    }
}

impl fmt::Debug for Point3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl fmt::Display for Point3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl From<[i64; 3]> for Point3 {
    #[inline]
    fn from(a: [i64; 3]) -> Self {
        Self::new(a[0], a[1], a[2])
    }
}

impl From<Point3> for [i64; 3] {
    #[inline]
    fn from(p: Point3) -> Self {
        [p.x, p.y, p.z]
    }
}

impl Index<usize> for Point3 {
    type Output = i64;
    #[inline]
    fn index(&self, axis: usize) -> &i64 {
        match axis {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("axis out of range: {axis}"),
        }
    }
}

impl IndexMut<usize> for Point3 {
    #[inline]
    fn index_mut(&mut self, axis: usize) -> &mut i64 {
        match axis {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("axis out of range: {axis}"),
        }
    }
}

impl Add for Point3 {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        Self::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Point3 {
    #[inline]
    fn add_assign(&mut self, o: Self) {
        *self = *self + o;
    }
}

impl Sub for Point3 {
    type Output = Self;
    #[inline]
    fn sub(self, o: Self) -> Self {
        Self::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Point3 {
    #[inline]
    fn sub_assign(&mut self, o: Self) {
        *self = *self - o;
    }
}

impl Neg for Point3 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.x, -self.y, -self.z)
    }
}

impl Mul<i64> for Point3 {
    type Output = Self;
    #[inline]
    fn mul(self, s: i64) -> Self {
        Self::new(self.x * s, self.y * s, self.z * s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Point3::zero(), Point3::new(0, 0, 0));
        assert_eq!(Point3::splat(3), Point3::new(3, 3, 3));
        let p: Point3 = [1, 2, 3].into();
        assert_eq!(p, Point3::new(1, 2, 3));
        let a: [i64; 3] = p.into();
        assert_eq!(a, [1, 2, 3]);
    }

    #[test]
    fn arithmetic() {
        let a = Point3::new(1, 2, 3);
        let b = Point3::new(4, 5, 6);
        assert_eq!(a + b, Point3::new(5, 7, 9));
        assert_eq!(b - a, Point3::new(3, 3, 3));
        assert_eq!(-a, Point3::new(-1, -2, -3));
        assert_eq!(a * 2, Point3::new(2, 4, 6));
        assert_eq!(a.hadamard(b), Point3::new(4, 10, 18));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn axis_access() {
        let mut p = Point3::new(7, 8, 9);
        assert_eq!(p[0], 7);
        assert_eq!(p[1], 8);
        assert_eq!(p[2], 9);
        assert_eq!(p.get(2), 9);
        p[1] = 42;
        assert_eq!(p.y, 42);
        assert_eq!(p.with(0, 5).x, 5);
    }

    #[test]
    #[should_panic]
    fn axis_out_of_range_panics() {
        let _ = Point3::zero()[3];
    }

    #[test]
    fn min_max_product() {
        let a = Point3::new(1, 5, 3);
        let b = Point3::new(4, 2, 6);
        assert_eq!(a.min(b), Point3::new(1, 2, 3));
        assert_eq!(a.max(b), Point3::new(4, 5, 6));
        assert_eq!(a.product(), 15);
        assert_eq!(a.sum(), 9);
    }

    #[test]
    fn euclid_division_wraps_negatives() {
        let p = Point3::new(-1, 8, -9);
        let d = Point3::splat(8);
        assert_eq!(p.div_floor(d), Point3::new(-1, 1, -2));
        assert_eq!(p.rem_euclid(d), Point3::new(7, 0, 7));
    }

    #[test]
    fn codim_counts_nonzero() {
        assert_eq!(Point3::zero().codim(), 0);
        assert_eq!(Point3::new(1, 0, 0).codim(), 1);
        assert_eq!(Point3::new(1, -1, 0).codim(), 2);
        assert_eq!(Point3::new(1, 1, 1).codim(), 3);
    }

    #[test]
    fn comparisons() {
        assert!(Point3::zero().all_lt(Point3::splat(1)));
        assert!(!Point3::zero().all_lt(Point3::new(1, 0, 1)));
        assert!(Point3::zero().all_le(Point3::new(1, 0, 1)));
    }

    #[test]
    fn to_usize_roundtrip() {
        assert_eq!(Point3::new(1, 2, 3).to_usize(), [1, 2, 3]);
    }

    #[test]
    #[should_panic]
    fn to_usize_negative_panics() {
        Point3::new(-1, 0, 0).to_usize();
    }
}
