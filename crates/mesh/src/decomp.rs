//! Periodic Cartesian domain decomposition over MPI-like ranks.

use crate::box3::Box3;
use crate::ghost::DIRECTIONS_26;
use crate::point::Point3;
use serde::{Deserialize, Serialize};

/// A rank's coordinates in the 3D process grid.
pub type RankCoords = Point3;

/// A neighbor relationship: the direction of the exchange and the rank on
/// the other end (which may be this rank itself for periodic wrap on a
/// 1-wide process grid axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Neighbor {
    /// Halo direction from this rank toward the neighbor.
    pub dir: Point3,
    /// Rank id of the neighbor.
    pub rank: usize,
    /// Global-coordinate shift that maps the neighbor's cells into this
    /// rank's (possibly out-of-domain) halo coordinates. Zero except when the
    /// exchange wraps around the periodic boundary, where it is ±domain
    /// extent along the wrapped axes.
    pub wrap_shift: Point3,
}

/// A periodic Cartesian decomposition of a global cell domain `[0, n)³`
/// (more generally any box anchored at the origin) over a `px × py × pz`
/// process grid. Cells are block-distributed; all axes must divide evenly so
/// subdomains are congruent (the paper's experiments are all uniform cubes).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Decomposition {
    domain: Box3,
    process_grid: Point3,
    sub_extent: Point3,
}

impl Decomposition {
    /// Create a decomposition of `domain` over `process_grid` ranks. Panics
    /// unless every axis of the domain divides evenly by the process grid.
    pub fn new(domain: Box3, process_grid: Point3) -> Self {
        assert!(
            process_grid.x > 0 && process_grid.y > 0 && process_grid.z > 0,
            "process grid must be positive"
        );
        assert_eq!(domain.lo, Point3::zero(), "domain must be origin-anchored");
        let e = domain.extent();
        for a in 0..3 {
            assert_eq!(
                e[a] % process_grid[a],
                0,
                "domain extent {e:?} not divisible by process grid {process_grid:?} on axis {a}"
            );
        }
        let sub_extent = Point3::new(
            e.x / process_grid.x,
            e.y / process_grid.y,
            e.z / process_grid.z,
        );
        Self {
            domain,
            process_grid,
            sub_extent,
        }
    }

    /// Single-rank decomposition (the whole domain on rank 0).
    pub fn single(domain: Box3) -> Self {
        Self::new(domain, Point3::splat(1))
    }

    /// Choose a near-cubic process grid for `nranks` ranks: the
    /// factorization `px·py·pz = nranks` minimizing surface area of the
    /// subdomains (ties broken toward balanced axes). This mirrors
    /// `MPI_Dims_create` behaviour used by the paper's job scripts.
    pub fn balanced_grid(nranks: usize) -> Point3 {
        assert!(nranks > 0);
        let mut best = Point3::new(nranks as i64, 1, 1);
        let mut best_score = i64::MAX;
        let n = nranks as i64;
        let mut px = 1;
        while px * px * px <= n * n * n {
            if px > n {
                break;
            }
            if n % px == 0 {
                let rem = n / px;
                let mut py = 1;
                while py <= rem {
                    if rem % py == 0 {
                        let pz = rem / py;
                        // Surface proxy: maximize min dimension, then balance.
                        let dims = [px, py, pz];
                        let score = dims
                            .iter()
                            .map(|d| (d - *dims.iter().max().unwrap()).abs())
                            .sum::<i64>()
                            + (dims.iter().max().unwrap() - dims.iter().min().unwrap()) * 1000;
                        if score < best_score {
                            best_score = score;
                            best = Point3::new(px, py, pz);
                        }
                    }
                    py += 1;
                }
            }
            px += 1;
        }
        best
    }

    /// The global domain.
    #[inline]
    pub fn domain(&self) -> Box3 {
        self.domain
    }

    /// The process grid extents.
    #[inline]
    pub fn process_grid(&self) -> Point3 {
        self.process_grid
    }

    /// Number of ranks.
    #[inline]
    pub fn num_ranks(&self) -> usize {
        self.process_grid.product() as usize
    }

    /// Per-rank subdomain extent (identical for all ranks).
    #[inline]
    pub fn sub_extent(&self) -> Point3 {
        self.sub_extent
    }

    /// Rank id for process-grid coordinates (x fastest, like cell storage).
    #[inline]
    pub fn rank_of(&self, c: RankCoords) -> usize {
        debug_assert!(Box3::from_extent(self.process_grid).contains(c));
        ((c.z * self.process_grid.y + c.y) * self.process_grid.x + c.x) as usize
    }

    /// Process-grid coordinates of a rank id.
    #[inline]
    pub fn coords_of(&self, rank: usize) -> RankCoords {
        let r = rank as i64;
        let px = self.process_grid.x;
        let py = self.process_grid.y;
        debug_assert!(r < self.process_grid.product());
        Point3::new(r % px, (r / px) % py, r / (px * py))
    }

    /// The global cell region owned by `rank`.
    pub fn subdomain(&self, rank: usize) -> Box3 {
        let c = self.coords_of(rank);
        let lo = c.hadamard(self.sub_extent);
        Box3::new(lo, lo + self.sub_extent)
    }

    /// The neighbor of `rank` in halo direction `dir`, with periodic wrap.
    pub fn neighbor(&self, rank: usize, dir: Point3) -> Neighbor {
        let c = self.coords_of(rank);
        let raw = c + dir;
        let wrapped = raw.rem_euclid(self.process_grid);
        let mut wrap_shift = Point3::zero();
        let e = self.domain.extent();
        for a in 0..3 {
            if raw[a] < 0 {
                wrap_shift[a] = -e[a];
            } else if raw[a] >= self.process_grid[a] {
                wrap_shift[a] = e[a];
            }
        }
        Neighbor {
            dir,
            rank: self.rank_of(wrapped),
            wrap_shift,
        }
    }

    /// All 26 neighbors of `rank` in [`DIRECTIONS_26`] order.
    pub fn neighbors(&self, rank: usize) -> Vec<Neighbor> {
        DIRECTIONS_26
            .iter()
            .map(|&d| self.neighbor(rank, d))
            .collect()
    }

    /// Coarsen the decomposition by `r`: same process grid, each subdomain
    /// `r×` smaller per axis. Panics if the subdomain extent does not divide.
    #[must_use]
    pub fn coarsen(&self, r: i64) -> Decomposition {
        let e = self.sub_extent;
        for a in 0..3 {
            assert_eq!(e[a] % r, 0, "subdomain {e:?} not divisible by {r}");
        }
        Decomposition::new(self.domain.coarsen(r), self.process_grid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank() {
        let d = Decomposition::single(Box3::cube(16));
        assert_eq!(d.num_ranks(), 1);
        assert_eq!(d.subdomain(0), Box3::cube(16));
        // All neighbors are self with wrap shifts.
        for n in d.neighbors(0) {
            assert_eq!(n.rank, 0);
            assert_eq!(n.wrap_shift, n.dir * 16);
        }
    }

    #[test]
    fn rank_coords_roundtrip() {
        let d = Decomposition::new(Box3::cube(24), Point3::new(2, 3, 4));
        assert_eq!(d.num_ranks(), 24);
        for r in 0..24 {
            assert_eq!(d.rank_of(d.coords_of(r)), r);
        }
    }

    #[test]
    fn subdomains_tile_domain() {
        let d = Decomposition::new(Box3::cube(16), Point3::new(2, 2, 2));
        let total: usize = (0..8).map(|r| d.subdomain(r).volume()).sum();
        assert_eq!(total, Box3::cube(16).volume());
        for i in 0..8 {
            for j in (i + 1)..8 {
                assert!(d.subdomain(i).intersect(&d.subdomain(j)).is_empty());
            }
        }
        assert_eq!(d.sub_extent(), Point3::splat(8));
    }

    #[test]
    fn neighbor_interior_no_wrap() {
        let d = Decomposition::new(Box3::cube(32), Point3::new(4, 4, 4));
        // Rank at coords (1,1,1): +x neighbor is (2,1,1), no wrap.
        let r = d.rank_of(Point3::new(1, 1, 1));
        let n = d.neighbor(r, Point3::new(1, 0, 0));
        assert_eq!(d.coords_of(n.rank), Point3::new(2, 1, 1));
        assert_eq!(n.wrap_shift, Point3::zero());
    }

    #[test]
    fn neighbor_periodic_wrap() {
        let d = Decomposition::new(Box3::cube(32), Point3::new(4, 1, 1));
        // Rank 0 in -x direction wraps to rank 3, shift -32 in x.
        let n = d.neighbor(0, Point3::new(-1, 0, 0));
        assert_eq!(n.rank, 3);
        assert_eq!(n.wrap_shift, Point3::new(-32, 0, 0));
        // And +x from rank 3 wraps to rank 0 with +32.
        let m = d.neighbor(3, Point3::new(1, 0, 0));
        assert_eq!(m.rank, 0);
        assert_eq!(m.wrap_shift, Point3::new(32, 0, 0));
        // y/z axes are width-1: every dir with y or z wraps to self on that axis.
        let k = d.neighbor(2, Point3::new(0, 1, 1));
        assert_eq!(d.coords_of(k.rank), Point3::new(2, 0, 0));
        assert_eq!(k.wrap_shift, Point3::new(0, 32, 32));
    }

    #[test]
    fn neighbor_symmetry() {
        // If B is my neighbor in dir d, then I am B's neighbor in -d, and
        // the wrap shifts are opposite.
        let d = Decomposition::new(Box3::cube(24), Point3::new(2, 3, 1));
        for r in 0..d.num_ranks() {
            for dir in DIRECTIONS_26 {
                let n = d.neighbor(r, dir);
                let back = d.neighbor(n.rank, -dir);
                assert_eq!(back.rank, r);
                assert_eq!(back.wrap_shift, -n.wrap_shift);
            }
        }
    }

    #[test]
    fn balanced_grid_prefers_cubes() {
        assert_eq!(Decomposition::balanced_grid(8), Point3::splat(2));
        assert_eq!(Decomposition::balanced_grid(64), Point3::splat(4));
        assert_eq!(Decomposition::balanced_grid(512), Point3::splat(8));
        let g = Decomposition::balanced_grid(12);
        assert_eq!(g.product(), 12);
        // Should not be the degenerate 12x1x1.
        assert!(g[0].max(g[1]).max(g[2]) <= 4);
    }

    #[test]
    fn coarsen_keeps_grid() {
        let d = Decomposition::new(Box3::cube(64), Point3::splat(2));
        let c = d.coarsen(2);
        assert_eq!(c.domain(), Box3::cube(32));
        assert_eq!(c.process_grid(), Point3::splat(2));
        assert_eq!(c.sub_extent(), Point3::splat(16));
    }

    #[test]
    #[should_panic]
    fn indivisible_domain_panics() {
        Decomposition::new(Box3::cube(10), Point3::new(3, 1, 1));
    }
}
