//! # gmg-mesh — structured-grid substrate
//!
//! This crate provides the index algebra and conventional (non-bricked)
//! storage that the rest of the geometric-multigrid reproduction builds on:
//!
//! * [`Point3`] / [`Box3`] — integer index algebra over 3D cell index space.
//! * [`Array3`] — a conventional lexicographic *ijk* array with ghost cells,
//!   the layout the paper's baseline (and HPGMG) uses and against which
//!   fine-grain data blocking is compared.
//! * [`Decomposition`] — a periodic Cartesian decomposition of a global
//!   domain over MPI-like ranks with 26-neighbor topology.
//! * [`ghost`] — send/receive region geometry for halo exchange at arbitrary
//!   ghost depth (the communication-avoiding optimization needs depth > 1).
//! * [`Hierarchy`] — the multigrid level geometry (each coarser level has
//!   half the cells per dimension, 1/8 the volume).
//!
//! Everything is deliberately free of any performance *model*; this crate is
//! pure geometry and storage. Timing and machine models live in
//! `gmg-machine` / `gmg-comm`.

pub mod array3;
pub mod box3;
pub mod decomp;
pub mod ghost;
pub mod hierarchy;
pub mod point;

pub use array3::Array3;
pub use box3::Box3;
pub use decomp::{Decomposition, Neighbor, RankCoords};
pub use ghost::{recv_region, send_region, GhostRegion, DIRECTIONS_26};
pub use hierarchy::{Hierarchy, LevelGeometry};
pub use point::Point3;

/// Number of distinct halo-exchange directions in 3D (faces + edges +
/// corners): `3^3 - 1`.
pub const NUM_NEIGHBORS_3D: usize = 26;
