//! Axis-aligned boxes (rectangular index regions).

use crate::point::Point3;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open axis-aligned box in index space: `lo` inclusive, `hi`
/// exclusive. Empty boxes (any `hi[a] <= lo[a]`) are representable and have
/// zero volume.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Box3 {
    pub lo: Point3,
    pub hi: Point3,
}

impl Box3 {
    /// Construct the box `[lo, hi)`.
    #[inline]
    pub const fn new(lo: Point3, hi: Point3) -> Self {
        Self { lo, hi }
    }

    /// The cube `[0, n)^3`.
    #[inline]
    pub fn cube(n: i64) -> Self {
        Self::new(Point3::zero(), Point3::splat(n))
    }

    /// A box at the origin with the given extent per axis.
    #[inline]
    pub fn from_extent(extent: Point3) -> Self {
        Self::new(Point3::zero(), extent)
    }

    /// Extent (size) per axis; clamped at zero for empty boxes.
    #[inline]
    pub fn extent(&self) -> Point3 {
        (self.hi - self.lo).max(Point3::zero())
    }

    /// Number of cells contained.
    #[inline]
    pub fn volume(&self) -> usize {
        let e = self.extent();
        (e.x as usize) * (e.y as usize) * (e.z as usize)
    }

    /// True if the box contains no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        let e = self.hi - self.lo;
        e.x <= 0 || e.y <= 0 || e.z <= 0
    }

    /// True if `p` lies inside the box.
    #[inline]
    pub fn contains(&self, p: Point3) -> bool {
        self.lo.all_le(p) && p.all_lt(self.hi)
    }

    /// True if `other` is entirely inside `self`. Empty boxes are contained
    /// in everything.
    #[inline]
    pub fn contains_box(&self, other: &Box3) -> bool {
        other.is_empty() || (self.lo.all_le(other.lo) && other.hi.all_le(self.hi))
    }

    /// Intersection of two boxes (possibly empty).
    #[inline]
    #[must_use]
    pub fn intersect(&self, other: &Box3) -> Box3 {
        Box3::new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// Translate the box by `d`.
    #[inline]
    #[must_use]
    pub fn shift(&self, d: Point3) -> Box3 {
        Box3::new(self.lo + d, self.hi + d)
    }

    /// Grow symmetrically by `g` cells in every direction (a ghost shell).
    #[inline]
    #[must_use]
    pub fn grow(&self, g: i64) -> Box3 {
        Box3::new(self.lo - Point3::splat(g), self.hi + Point3::splat(g))
    }

    /// Shrink symmetrically by `g` cells in every direction.
    #[inline]
    #[must_use]
    pub fn shrink(&self, g: i64) -> Box3 {
        self.grow(-g)
    }

    /// Coarsen by a factor of `r` per axis (finite-volume convention: a
    /// coarse cell covers `r^3` fine cells). `lo` is floor-divided and `hi`
    /// is ceil-divided so the coarse box covers the fine box.
    #[must_use]
    pub fn coarsen(&self, r: i64) -> Box3 {
        assert!(r > 0);
        let d = Point3::splat(r);
        let hi_round_up = Point3::new(
            (self.hi.x + r - 1).div_euclid(r),
            (self.hi.y + r - 1).div_euclid(r),
            (self.hi.z + r - 1).div_euclid(r),
        );
        Box3::new(self.lo.div_floor(d), hi_round_up)
    }

    /// Refine by a factor of `r` per axis (inverse of [`Box3::coarsen`] for
    /// aligned boxes).
    #[inline]
    #[must_use]
    pub fn refine(&self, r: i64) -> Box3 {
        assert!(r > 0);
        Box3::new(self.lo * r, self.hi * r)
    }

    /// Iterate every point in the box in lexicographic order with `x`
    /// fastest (matching the storage order of [`crate::Array3`]).
    pub fn iter(&self) -> impl Iterator<Item = Point3> + '_ {
        let b = *self;
        (b.lo.z..b.hi.z).flat_map(move |z| {
            (b.lo.y..b.hi.y).flat_map(move |y| (b.lo.x..b.hi.x).map(move |x| Point3::new(x, y, z)))
        })
    }

    /// Call `f` for every point in the box, `x` fastest. This compiles to a
    /// tight triple loop and is the preferred sequential traversal.
    #[inline]
    pub fn for_each(&self, mut f: impl FnMut(Point3)) {
        for z in self.lo.z..self.hi.z {
            for y in self.lo.y..self.hi.y {
                for x in self.lo.x..self.hi.x {
                    f(Point3::new(x, y, z));
                }
            }
        }
    }

    /// Split the box into `n` roughly equal slabs along `axis` (for
    /// data-parallel traversal). Slabs are non-overlapping, cover the box,
    /// and empty slabs are omitted.
    pub fn split_slabs(&self, axis: usize, n: usize) -> Vec<Box3> {
        assert!(n > 0);
        let len = self.extent()[axis];
        let mut out = Vec::with_capacity(n.min(len.max(0) as usize));
        let n_i = n as i64;
        for s in 0..n_i {
            let a0 = self.lo[axis] + len * s / n_i;
            let a1 = self.lo[axis] + len * (s + 1) / n_i;
            if a1 > a0 {
                let mut b = *self;
                b.lo[axis] = a0;
                b.hi[axis] = a1;
                out.push(b);
            }
        }
        out
    }

    /// The subregion of `self` selected by a halo direction `dir ∈ {-1,0,1}³`
    /// with thickness `d`: the `d`-thick layer of cells *inside* `self`
    /// adjacent to the face/edge/corner indicated by `dir`. Axes with
    /// `dir[a] == 0` span the full box.
    #[must_use]
    pub fn face_region(&self, dir: Point3, d: i64) -> Box3 {
        assert!(d >= 0);
        let mut b = *self;
        for axis in 0..3 {
            match dir[axis] {
                -1 => b.hi[axis] = b.lo[axis] + d,
                0 => {}
                1 => b.lo[axis] = b.hi[axis] - d,
                _ => panic!("direction components must be -1, 0, or 1"),
            }
        }
        b
    }

    /// The `d`-thick layer of cells *outside* `self` in halo direction `dir`
    /// (the matching receive/ghost region for [`Box3::face_region`]).
    #[must_use]
    pub fn halo_region(&self, dir: Point3, d: i64) -> Box3 {
        assert!(d >= 0);
        let mut b = *self;
        for axis in 0..3 {
            match dir[axis] {
                -1 => {
                    b.hi[axis] = b.lo[axis];
                    b.lo[axis] -= d;
                }
                0 => {}
                1 => {
                    b.lo[axis] = b.hi[axis];
                    b.hi[axis] += d;
                }
                _ => panic!("direction components must be -1, 0, or 1"),
            }
        }
        b
    }
}

impl fmt::Debug for Box3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?} .. {:?})", self.lo, self.hi)
    }
}

impl fmt::Display for Box3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extent_volume() {
        let b = Box3::new(Point3::new(1, 2, 3), Point3::new(4, 6, 8));
        assert_eq!(b.extent(), Point3::new(3, 4, 5));
        assert_eq!(b.volume(), 60);
        assert!(!b.is_empty());
        assert_eq!(Box3::cube(8).volume(), 512);
    }

    #[test]
    fn empty_boxes() {
        let b = Box3::new(Point3::new(2, 0, 0), Point3::new(1, 5, 5));
        assert!(b.is_empty());
        assert_eq!(b.volume(), 0);
        assert_eq!(b.extent(), Point3::new(0, 5, 5));
        assert_eq!(b.iter().count(), 0);
    }

    #[test]
    fn contains() {
        let b = Box3::cube(4);
        assert!(b.contains(Point3::zero()));
        assert!(b.contains(Point3::splat(3)));
        assert!(!b.contains(Point3::splat(4)));
        assert!(!b.contains(Point3::new(-1, 0, 0)));
        assert!(b.contains_box(&Box3::cube(4)));
        assert!(b.contains_box(&Box3::new(Point3::splat(1), Point3::splat(3))));
        assert!(!b.contains_box(&Box3::cube(5)));
    }

    #[test]
    fn intersect() {
        let a = Box3::cube(4);
        let b = Box3::new(Point3::splat(2), Point3::splat(6));
        let c = a.intersect(&b);
        assert_eq!(c, Box3::new(Point3::splat(2), Point3::splat(4)));
        let d = a.intersect(&Box3::new(Point3::splat(10), Point3::splat(12)));
        assert!(d.is_empty());
    }

    #[test]
    fn shift_grow_shrink() {
        let b = Box3::cube(4);
        assert_eq!(
            b.shift(Point3::new(1, 0, -1)),
            Box3::new(Point3::new(1, 0, -1), Point3::new(5, 4, 3))
        );
        assert_eq!(b.grow(2), Box3::new(Point3::splat(-2), Point3::splat(6)));
        assert_eq!(b.grow(2).shrink(2), b);
    }

    #[test]
    fn coarsen_refine() {
        let b = Box3::cube(16);
        assert_eq!(b.coarsen(2), Box3::cube(8));
        assert_eq!(b.coarsen(2).refine(2), b);
        // Unaligned boxes coarsen to a covering box.
        let u = Box3::new(Point3::new(1, 1, 1), Point3::new(3, 3, 3));
        assert_eq!(u.coarsen(2), Box3::new(Point3::zero(), Point3::splat(2)));
        // Negative coordinates floor correctly.
        let n = Box3::new(Point3::splat(-4), Point3::splat(4));
        assert_eq!(n.coarsen(4), Box3::new(Point3::splat(-1), Point3::splat(1)));
    }

    #[test]
    fn iter_order_is_x_fastest() {
        let b = Box3::new(Point3::zero(), Point3::new(2, 2, 1));
        let pts: Vec<_> = b.iter().collect();
        assert_eq!(
            pts,
            vec![
                Point3::new(0, 0, 0),
                Point3::new(1, 0, 0),
                Point3::new(0, 1, 0),
                Point3::new(1, 1, 0),
            ]
        );
        let mut via_for_each = Vec::new();
        b.for_each(|p| via_for_each.push(p));
        assert_eq!(pts, via_for_each);
    }

    #[test]
    fn split_slabs_covers_without_overlap() {
        let b = Box3::cube(10);
        let slabs = b.split_slabs(2, 3);
        assert_eq!(slabs.len(), 3);
        let total: usize = slabs.iter().map(Box3::volume).sum();
        assert_eq!(total, b.volume());
        for w in slabs.windows(2) {
            assert!(w[0].intersect(&w[1]).is_empty());
            assert_eq!(w[0].hi.z, w[1].lo.z);
        }
        // More slabs than cells: empties dropped.
        let tiny = Box3::cube(2);
        assert_eq!(tiny.split_slabs(0, 5).len(), 2);
    }

    #[test]
    fn face_and_halo_regions() {
        let b = Box3::cube(8);
        // -x face, depth 2: the 2-thick interior layer at x ∈ [0,2).
        let send = b.face_region(Point3::new(-1, 0, 0), 2);
        assert_eq!(send, Box3::new(Point3::zero(), Point3::new(2, 8, 8)));
        // Matching ghost region outside.
        let recv = b.halo_region(Point3::new(-1, 0, 0), 2);
        assert_eq!(recv, Box3::new(Point3::new(-2, 0, 0), Point3::new(0, 8, 8)));
        // Corner direction, depth 1: single cell regions.
        let c = b.face_region(Point3::splat(1), 1);
        assert_eq!(c.volume(), 1);
        assert_eq!(c.lo, Point3::splat(7));
        let ch = b.halo_region(Point3::splat(1), 1);
        assert_eq!(ch.volume(), 1);
        assert_eq!(ch.lo, Point3::splat(8));
    }

    #[test]
    fn halo_and_face_shift_correspondence() {
        // The halo region of my neighbor in direction d, shifted by the
        // neighbor's offset, is my face region: this is the identity the
        // exchange relies on.
        let b = Box3::cube(8);
        for dir in crate::ghost::DIRECTIONS_26 {
            let d = 3;
            let my_send = b.face_region(dir, d);
            let nbr_box = b.shift(dir.hadamard(b.extent()));
            let nbr_recv_from_me = nbr_box.halo_region(-dir, d);
            assert_eq!(my_send, nbr_recv_from_me, "dir {dir:?}");
        }
    }
}
