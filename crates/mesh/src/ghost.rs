//! Halo (ghost-zone) exchange geometry.
//!
//! A subdomain in a 3D periodic decomposition exchanges with all 26
//! neighbors — 6 faces, 12 edges, 8 corners — because the 7-point stencil
//! composed over multiple communication-avoiding smooth steps (and any
//! stencil with corner reach) needs the full shell. This module enumerates
//! directions and builds the send/receive region pairs at arbitrary depth.

use crate::box3::Box3;
use crate::point::Point3;

/// All 26 halo directions in a fixed, deterministic order: lexicographic in
/// `(z, y, x)` skipping the zero direction. The order matters because both
/// sides of an exchange must agree on message matching.
pub const DIRECTIONS_26: [Point3; 26] = build_directions();

const fn build_directions() -> [Point3; 26] {
    let mut out = [Point3::zero(); 26];
    let mut n = 0;
    let mut z = -1;
    while z <= 1 {
        let mut y = -1;
        while y <= 1 {
            let mut x = -1;
            while x <= 1 {
                if !(x == 0 && y == 0 && z == 0) {
                    out[n] = Point3::new(x, y, z);
                    n += 1;
                }
                x += 1;
            }
            y += 1;
        }
        z += 1;
    }
    out
}

/// Index of `dir` in [`DIRECTIONS_26`]; panics for the zero direction or
/// components outside `{-1, 0, 1}`.
pub fn direction_index(dir: Point3) -> usize {
    let code = (dir.z + 1) * 9 + (dir.y + 1) * 3 + (dir.x + 1);
    assert!((0..27).contains(&code), "invalid direction {dir:?}");
    assert!(code != 13, "zero direction has no index");
    (code - (code > 13) as i64) as usize
}

/// One side of a halo exchange: the region of cells involved and the
/// neighbor direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GhostRegion {
    /// Direction to the neighbor this region is exchanged with.
    pub dir: Point3,
    /// The cell region (inside the subdomain for sends, outside for
    /// receives).
    pub region: Box3,
}

/// The 26 regions of *interior* cells that must be sent to each neighbor for
/// a ghost depth of `d`.
pub fn send_region(subdomain: Box3, dir: Point3, d: i64) -> GhostRegion {
    GhostRegion {
        dir,
        region: subdomain.face_region(dir, d),
    }
}

/// The 26 regions of *ghost* cells filled from each neighbor at depth `d`.
pub fn recv_region(subdomain: Box3, dir: Point3, d: i64) -> GhostRegion {
    GhostRegion {
        dir,
        region: subdomain.halo_region(dir, d),
    }
}

/// All send regions for a subdomain at ghost depth `d`, in
/// [`DIRECTIONS_26`] order.
pub fn all_send_regions(subdomain: Box3, d: i64) -> Vec<GhostRegion> {
    DIRECTIONS_26
        .iter()
        .map(|&dir| send_region(subdomain, dir, d))
        .collect()
}

/// All receive regions for a subdomain at ghost depth `d`, in
/// [`DIRECTIONS_26`] order.
pub fn all_recv_regions(subdomain: Box3, d: i64) -> Vec<GhostRegion> {
    DIRECTIONS_26
        .iter()
        .map(|&dir| recv_region(subdomain, dir, d))
        .collect()
}

/// Total number of cells communicated (sent) by one subdomain per exchange
/// at depth `d`: the full `d`-shell around the box. For a cube of side `n`,
/// this is `(n+2d)³ − n³`.
pub fn shell_volume(subdomain: Box3, d: i64) -> usize {
    subdomain.grow(d).volume() - subdomain.volume()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directions_are_26_unique_nonzero() {
        assert_eq!(DIRECTIONS_26.len(), 26);
        let mut set = std::collections::HashSet::new();
        for d in DIRECTIONS_26 {
            assert_ne!(d, Point3::zero());
            assert!(d.x.abs() <= 1 && d.y.abs() <= 1 && d.z.abs() <= 1);
            assert!(set.insert(d));
        }
    }

    #[test]
    fn direction_index_roundtrip() {
        for (i, d) in DIRECTIONS_26.iter().enumerate() {
            assert_eq!(direction_index(*d), i);
        }
    }

    #[test]
    #[should_panic]
    fn zero_direction_has_no_index() {
        direction_index(Point3::zero());
    }

    #[test]
    fn codim_census() {
        let faces = DIRECTIONS_26.iter().filter(|d| d.codim() == 1).count();
        let edges = DIRECTIONS_26.iter().filter(|d| d.codim() == 2).count();
        let corners = DIRECTIONS_26.iter().filter(|d| d.codim() == 3).count();
        assert_eq!((faces, edges, corners), (6, 12, 8));
    }

    #[test]
    fn send_recv_volumes_by_codim() {
        let b = Box3::cube(8);
        let d = 2;
        for dir in DIRECTIONS_26 {
            let s = send_region(b, dir, d);
            let r = recv_region(b, dir, d);
            let expect = match dir.codim() {
                1 => 2 * 8 * 8,
                2 => 2 * 2 * 8,
                3 => 2 * 2 * 2,
                _ => unreachable!(),
            };
            assert_eq!(s.region.volume(), expect, "send {dir:?}");
            assert_eq!(r.region.volume(), expect, "recv {dir:?}");
            // Send regions are interior; recv regions are exterior.
            assert!(b.contains_box(&s.region));
            assert!(b.intersect(&r.region).is_empty());
        }
    }

    #[test]
    fn recv_regions_tile_the_shell() {
        let b = Box3::cube(8);
        let d = 3;
        let regions = all_recv_regions(b, d);
        let total: usize = regions.iter().map(|g| g.region.volume()).sum();
        assert_eq!(total, shell_volume(b, d));
        // Pairwise disjoint.
        for i in 0..regions.len() {
            for j in (i + 1)..regions.len() {
                assert!(
                    regions[i].region.intersect(&regions[j].region).is_empty(),
                    "{:?} overlaps {:?}",
                    regions[i],
                    regions[j]
                );
            }
        }
    }

    #[test]
    fn shell_volume_formula() {
        let b = Box3::cube(8);
        assert_eq!(shell_volume(b, 1), 10 * 10 * 10 - 8 * 8 * 8);
        assert_eq!(shell_volume(b, 8), 24usize.pow(3) - 8usize.pow(3));
    }
}
