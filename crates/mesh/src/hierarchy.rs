//! Multigrid level geometry.
//!
//! A V-cycle works on a nested hierarchy of grids: level 0 is the finest; each
//! coarser level halves the cell count per dimension (×8 fewer cells, grid
//! spacing ×2). This module captures the per-level geometry the solver and
//! the performance models both consume.

use crate::box3::Box3;
use crate::decomp::Decomposition;
use crate::point::Point3;
use serde::{Deserialize, Serialize};

/// Geometry of one multigrid level.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LevelGeometry {
    /// Level index; 0 is the finest.
    pub level: usize,
    /// Grid spacing `h` on this level (finest level spacing × 2^level).
    pub h: f64,
    /// Global cell domain on this level.
    pub domain: Box3,
    /// Per-rank subdomain extent on this level.
    pub sub_extent: Point3,
}

impl LevelGeometry {
    /// Cells per rank on this level.
    pub fn cells_per_rank(&self) -> usize {
        self.sub_extent.product() as usize
    }

    /// Total cells across the level.
    pub fn total_cells(&self) -> usize {
        self.domain.volume()
    }

    /// Surface cells of one subdomain at ghost depth `d` (communication
    /// volume per rank per exchange, in cells).
    pub fn shell_cells(&self, d: i64) -> usize {
        crate::ghost::shell_volume(Box3::from_extent(self.sub_extent), d)
    }
}

/// The full level hierarchy for a decomposed domain. All ranks share the
/// same hierarchy (congruent subdomains).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Hierarchy {
    levels: Vec<LevelGeometry>,
    decomps: Vec<Decomposition>,
}

impl Hierarchy {
    /// Build a hierarchy of `num_levels` levels over `decomp` with finest
    /// grid spacing `h0 = 1 / n_finest` (unit cube convention: `h·n = 1`
    /// along x). Panics if any level's subdomain extent fails to halve
    /// evenly — the caller must pick `num_levels` compatible with the
    /// subdomain size (e.g. 512³ per rank supports ≥ 6 levels, reaching
    /// 16³ per rank at level 5).
    pub fn new(decomp: Decomposition, num_levels: usize) -> Self {
        assert!(num_levels >= 1);
        let n0 = decomp.domain().extent().x;
        let h0 = 1.0 / n0 as f64;
        let mut levels = Vec::with_capacity(num_levels);
        let mut decomps = Vec::with_capacity(num_levels);
        let mut d = decomp;
        for l in 0..num_levels {
            levels.push(LevelGeometry {
                level: l,
                h: h0 * (1 << l) as f64,
                domain: d.domain(),
                sub_extent: d.sub_extent(),
            });
            if l + 1 < num_levels {
                let e = d.sub_extent();
                assert!(
                    e.x % 2 == 0 && e.y % 2 == 0 && e.z % 2 == 0 && e.x >= 2,
                    "cannot coarsen subdomain {e:?} at level {l}; reduce num_levels"
                );
                let next = d.coarsen(2);
                decomps.push(d);
                d = next;
            } else {
                decomps.push(d.clone());
            }
        }
        Self { levels, decomps }
    }

    /// Maximum number of levels a subdomain extent supports (halving until
    /// any axis goes odd or reaches 1).
    pub fn max_levels(sub_extent: Point3) -> usize {
        let mut e = sub_extent;
        let mut n = 1;
        while e.x % 2 == 0 && e.y % 2 == 0 && e.z % 2 == 0 && e.x >= 2 && e.y >= 2 && e.z >= 2 {
            e = Point3::new(e.x / 2, e.y / 2, e.z / 2);
            n += 1;
        }
        n
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Geometry of level `l`.
    pub fn level(&self, l: usize) -> &LevelGeometry {
        &self.levels[l]
    }

    /// Decomposition at level `l` (same process grid at every level).
    pub fn decomp(&self, l: usize) -> &Decomposition {
        &self.decomps[l]
    }

    /// Iterate over all levels, finest first.
    pub fn iter(&self) -> impl Iterator<Item = &LevelGeometry> {
        self.levels.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_levels_of_512_cubed() {
        // The paper's per-rank configuration: 512³ per rank, 6 levels.
        let d = Decomposition::new(Box3::cube(512), Point3::splat(1));
        let h = Hierarchy::new(d, 6);
        assert_eq!(h.num_levels(), 6);
        assert_eq!(h.level(0).sub_extent, Point3::splat(512));
        assert_eq!(h.level(5).sub_extent, Point3::splat(16));
        // Factor-of-8 volume ratio between adjacent levels.
        for l in 0..5 {
            assert_eq!(h.level(l).total_cells(), 8 * h.level(l + 1).total_cells());
        }
    }

    #[test]
    fn grid_spacing_doubles() {
        let d = Decomposition::new(Box3::cube(64), Point3::splat(1));
        let h = Hierarchy::new(d, 4);
        assert!((h.level(0).h - 1.0 / 64.0).abs() < 1e-15);
        for l in 0..3 {
            assert!((h.level(l + 1).h - 2.0 * h.level(l).h).abs() < 1e-15);
        }
    }

    #[test]
    fn surface_ratio_between_levels_is_4x() {
        // The paper's observation: communication volume scales ~4× between
        // levels (2D surface of a 3D region) for large subdomains.
        let d = Decomposition::new(Box3::cube(512), Point3::splat(1));
        let h = Hierarchy::new(d, 6);
        for l in 0..5 {
            let fine = h.level(l).shell_cells(1) as f64;
            let coarse = h.level(l + 1).shell_cells(1) as f64;
            let ratio = fine / coarse;
            assert!(
                (3.0..5.0).contains(&ratio),
                "level {l} surface ratio {ratio}"
            );
        }
    }

    #[test]
    fn max_levels() {
        assert_eq!(Hierarchy::max_levels(Point3::splat(512)), 10);
        assert_eq!(Hierarchy::max_levels(Point3::splat(16)), 5);
        assert_eq!(Hierarchy::max_levels(Point3::new(8, 8, 6)), 2);
        assert_eq!(Hierarchy::max_levels(Point3::splat(7)), 1);
    }

    #[test]
    fn decomp_per_level_tracks_domain() {
        let d = Decomposition::new(Box3::cube(64), Point3::splat(2));
        let h = Hierarchy::new(d, 3);
        assert_eq!(h.decomp(0).domain(), Box3::cube(64));
        assert_eq!(h.decomp(1).domain(), Box3::cube(32));
        assert_eq!(h.decomp(2).domain(), Box3::cube(16));
        for l in 0..3 {
            assert_eq!(h.decomp(l).num_ranks(), 8);
            assert_eq!(h.decomp(l).sub_extent(), h.level(l).sub_extent);
        }
    }

    #[test]
    #[should_panic]
    fn too_many_levels_panics() {
        let d = Decomposition::new(Box3::cube(8), Point3::splat(1));
        let _ = Hierarchy::new(d, 5);
    }
}
