//! The live collector: merges per-rank telemetry into one global view.
//!
//! The collector owns a per-rank state machine (seq tracking with gap
//! accounting, epoch fencing, latest beacon, folded metric deltas) and
//! the [`AlertEngine`]. It is transport-agnostic: a process world feeds
//! it raw sidecar datagrams through `ProcessWorld::telemetry_sink`, a
//! thread world feeds it the same encoded bytes directly from local
//! shippers — either way every frame passes through the real wire codec.
//!
//! Deltas fold per rank in seq order: counters add, histograms merge,
//! gauges take the newest value. The cross-rank [`Collector::merged`]
//! view then folds rank snapshots with [`Snapshot::merge`], whose
//! order-independence is what makes "merge order must not match" a
//! property rather than a hope (see `tests/proptests.rs`).
//!
//! Time is the collector's own monotonic clock (ns since construction);
//! nothing here trusts sender clocks.

use crate::alert::{Alert, AlertConfig, AlertEngine, RankObservation};
use crate::ship::Beacon;
use crate::wire::{parse_telemetry, TAG_BEACON, TAG_DELTA, TAG_DIGEST};
use gmg_comm::frame::{Frame, FrameKind};
use gmg_metrics::{Key, Snapshot, SnapshotEntry, Value};
use gmg_trace::Json;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Shared collector handle: the controller sink, the HTTP listener, and
/// the driver all hold one of these.
pub type CollectorHandle = Arc<Mutex<Collector>>;

/// Per-rank live state.
#[derive(Default)]
struct RankLive {
    last_seq: Option<u64>,
    epoch: u64,
    lost: u64,
    frames: u64,
    last_heard_ns: u64,
    beacon: Option<Beacon>,
    snapshot: Snapshot,
    digest: Option<Json>,
}

struct StatusFile {
    base: PathBuf,
    every: Duration,
    last: Option<Instant>,
}

/// The global live registry + alert engine.
pub struct Collector {
    t0: Instant,
    /// Highest membership epoch seen (controller-fed); frames below it
    /// are fenced.
    epoch: u64,
    ranks: BTreeMap<usize, RankLive>,
    engine: AlertEngine,
    fenced: u64,
    malformed: u64,
    merged_at_ns: u64,
    status: Option<StatusFile>,
}

impl Collector {
    pub fn new(cfg: AlertConfig) -> Collector {
        Collector {
            t0: Instant::now(),
            epoch: 0,
            ranks: BTreeMap::new(),
            engine: AlertEngine::new(cfg),
            fenced: 0,
            malformed: 0,
            merged_at_ns: 0,
            status: None,
        }
    }

    /// Wrap into the shared handle everything downstream wants.
    pub fn into_handle(self) -> CollectorHandle {
        Arc::new(Mutex::new(self))
    }

    /// Also write a status file pair (`<base>.json`, `<base>.md`) at
    /// most once per `every` on the tick path.
    pub fn with_status_file(mut self, base: PathBuf, every: Duration) -> Collector {
        self.status = Some(StatusFile {
            base,
            every,
            last: None,
        });
        self
    }

    fn now_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    /// Ingest one raw sidecar datagram. `controller_epoch` is the
    /// feeder's current membership epoch (0 where there is none); it
    /// advances the fence, and any frame from an older epoch is dropped.
    pub fn ingest(&mut self, bytes: &[u8], controller_epoch: u64) {
        self.epoch = self.epoch.max(controller_epoch);
        let f = match Frame::decode(bytes) {
            Ok(f) => f,
            Err(_) => {
                self.malformed += 1;
                return;
            }
        };
        if f.kind != FrameKind::Telemetry {
            // ARQ/control traffic can never contaminate the live view.
            self.malformed += 1;
            return;
        }
        if f.epoch < self.epoch {
            self.fenced += 1;
            return;
        }
        self.epoch = f.epoch;
        let Some((tag, text)) = parse_telemetry(&f) else {
            self.malformed += 1;
            return;
        };
        let now = self.now_ns();
        let rank = self.ranks.entry(f.src as usize).or_default();
        if f.epoch > rank.epoch {
            // New membership epoch: the rank's seq space restarts (a
            // respawned replacement counts from zero again).
            rank.epoch = f.epoch;
            rank.last_seq = None;
        }
        match rank.last_seq {
            Some(last) if f.seq <= last => return, // duplicate / reordered
            Some(last) => rank.lost += f.seq - last - 1,
            None => {}
        }
        rank.last_seq = Some(f.seq);
        rank.frames += 1;
        rank.last_heard_ns = now;
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(_) => {
                self.malformed += 1;
                return;
            }
        };
        match tag {
            TAG_BEACON => {
                if let Some(b) = Beacon::from_json(&doc) {
                    rank.beacon = Some(b);
                } else {
                    self.malformed += 1;
                }
            }
            TAG_DELTA => match doc.get("snapshot").map(Snapshot::from_json) {
                Some(Ok(delta)) => {
                    apply_delta(&mut rank.snapshot, &delta);
                    self.merged_at_ns = now;
                }
                _ => self.malformed += 1,
            },
            TAG_DIGEST => rank.digest = Some(doc),
            _ => self.malformed += 1,
        }
        self.tick();
    }

    /// Run the alert detectors (and the periodic status writer). Driven
    /// from every ingest, and independently on a timer by the HTTP
    /// listener — a silent rank produces no frames, so something other
    /// than ingest has to keep evaluating.
    pub fn tick(&mut self) {
        let now = self.now_ns();
        let merged = self.merged_raw();
        let obs: Vec<RankObservation> = self
            .ranks
            .iter()
            .map(|(&rank, r)| {
                let b = r.beacon.as_ref();
                RankObservation {
                    rank,
                    cycle: b.map_or(0, |b| b.cycle),
                    residual: b.map_or(f64::NAN, |b| b.residual),
                    level_seconds: b.map_or_else(Vec::new, |b| b.level_seconds.clone()),
                    quiet_ns: now.saturating_sub(r.last_heard_ns),
                    done: b.is_some_and(|b| b.done),
                    arq_retransmits: merged
                        .entries
                        .iter()
                        .filter(|e| e.name == "arq_retransmits_total" && e.key.rank == rank)
                        .filter_map(|e| match &e.value {
                            Value::Counter(c) => Some(*c),
                            _ => None,
                        })
                        .sum(),
                }
            })
            .collect();
        self.engine.evaluate(&obs, now);
        self.write_status_if_due();
    }

    /// Every alert fired so far.
    pub fn alerts(&self) -> Vec<Alert> {
        self.engine.alerts().to_vec()
    }

    /// Sum of known-lost telemetry frames (per-rank seq gaps).
    pub fn frames_lost(&self) -> u64 {
        self.ranks.values().map(|r| r.lost).sum()
    }

    /// Frames dropped by the membership-epoch fence.
    pub fn frames_fenced(&self) -> u64 {
        self.fenced
    }

    /// ns since the merged metric view last changed (0 before any delta).
    pub fn snapshot_age_ns(&self) -> u64 {
        if self.merged_at_ns == 0 {
            0
        } else {
            self.now_ns().saturating_sub(self.merged_at_ns)
        }
    }

    /// The collector's current membership-epoch fence.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Ranks heard from so far.
    pub fn ranks_seen(&self) -> Vec<usize> {
        self.ranks.keys().copied().collect()
    }

    fn merged_raw(&self) -> Snapshot {
        self.ranks
            .values()
            .fold(Snapshot::default(), |acc, r| acc.merge(&r.snapshot))
    }

    /// The merged live registry: every rank's folded deltas, plus
    /// progress gauges from the latest beacons and the alert counters —
    /// this is what the Prometheus endpoint serves.
    pub fn merged(&self) -> Snapshot {
        let mut snap = self.merged_raw();
        for (&rank, r) in &self.ranks {
            if let Some(b) = &r.beacon {
                snap.entries.push(SnapshotEntry {
                    name: "gmg_live_progress_cycles".to_string(),
                    key: Key::new(rank, None, "live"),
                    value: Value::Gauge(b.cycle as f64),
                });
                snap.entries.push(SnapshotEntry {
                    name: "gmg_live_rank_epoch".to_string(),
                    key: Key::new(rank, None, "live"),
                    value: Value::Gauge(b.epoch as f64),
                });
            }
        }
        let mut alert_counts: BTreeMap<(usize, Option<usize>, &'static str), u64> = BTreeMap::new();
        for a in self.engine.alerts() {
            *alert_counts
                .entry((a.rank, a.level, a.kind.name()))
                .or_default() += 1;
        }
        for ((rank, level, kind), n) in alert_counts {
            snap.entries.push(SnapshotEntry {
                name: "gmg_live_alerts_total".to_string(),
                key: Key::new(rank, level, kind),
                value: Value::Counter(n),
            });
        }
        snap.entries
            .sort_by(|a, b| (&a.name, &a.key).cmp(&(&b.name, &b.key)));
        snap
    }

    /// Structured live status (the JSON half of the status file).
    pub fn status_json(&self) -> Json {
        let ranks = self
            .ranks
            .iter()
            .map(|(&rank, r)| {
                let mut fields = vec![
                    ("rank".to_string(), Json::Num(rank as f64)),
                    ("epoch".to_string(), Json::Num(r.epoch as f64)),
                    ("frames".to_string(), Json::Num(r.frames as f64)),
                    ("lost".to_string(), Json::Num(r.lost as f64)),
                    (
                        "quiet_ms".to_string(),
                        Json::Num(self.now_ns().saturating_sub(r.last_heard_ns) as f64 / 1e6),
                    ),
                ];
                if let Some(b) = &r.beacon {
                    fields.push(("cycle".to_string(), Json::Num(b.cycle as f64)));
                    fields.push(("residual".to_string(), Json::Str(format!("{}", b.residual))));
                    fields.push(("done".to_string(), Json::Bool(b.done)));
                }
                if let Some(d) = &r.digest {
                    fields.push(("digest".to_string(), d.clone()));
                }
                Json::Obj(fields)
            })
            .collect();
        let alerts = self
            .engine
            .alerts()
            .iter()
            .map(|a| {
                Json::Obj(vec![
                    ("kind".to_string(), Json::Str(a.kind.name().to_string())),
                    ("rank".to_string(), Json::Num(a.rank as f64)),
                    (
                        "level".to_string(),
                        a.level.map_or(Json::Null, |l| Json::Num(l as f64)),
                    ),
                    ("detail".to_string(), Json::Str(a.detail.clone())),
                    ("at_ns".to_string(), Json::Num(a.at_ns as f64)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".to_string(), Json::Num(1.0)),
            ("epoch".to_string(), Json::Num(self.epoch as f64)),
            ("now_ns".to_string(), Json::Num(self.now_ns() as f64)),
            ("fenced".to_string(), Json::Num(self.fenced as f64)),
            ("malformed".to_string(), Json::Num(self.malformed as f64)),
            (
                "frames_lost".to_string(),
                Json::Num(self.frames_lost() as f64),
            ),
            ("ranks".to_string(), Json::Arr(ranks)),
            ("alerts".to_string(), Json::Arr(alerts)),
        ])
    }

    /// Human-readable status (the markdown half of the status file).
    pub fn status_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("# gmg-live status\n\n");
        let _ = writeln!(
            out,
            "epoch {} · {} rank(s) · {} frame(s) lost · {} fenced\n",
            self.epoch,
            self.ranks.len(),
            self.frames_lost(),
            self.fenced
        );
        out.push_str("| rank | epoch | cycle | residual | done | quiet (ms) | frames | lost |\n");
        out.push_str("|---:|---:|---:|---|---|---:|---:|---:|\n");
        for (&rank, r) in &self.ranks {
            let (cycle, residual, done) = match &r.beacon {
                Some(b) => (b.cycle.to_string(), format!("{:e}", b.residual), b.done),
                None => ("-".to_string(), "-".to_string(), false),
            };
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {:.0} | {} | {} |",
                rank,
                r.epoch,
                cycle,
                residual,
                done,
                self.now_ns().saturating_sub(r.last_heard_ns) as f64 / 1e6,
                r.frames,
                r.lost
            );
        }
        let alerts = self.engine.alerts();
        if alerts.is_empty() {
            out.push_str("\nNo alerts.\n");
        } else {
            out.push_str("\n## Alerts\n\n");
            for a in alerts {
                let _ = writeln!(
                    out,
                    "- **{}** rank {} — {}",
                    a.kind.name(),
                    a.rank,
                    a.detail
                );
            }
        }
        out
    }

    fn write_status_if_due(&mut self) {
        let due = match &self.status {
            Some(s) => s.last.map_or(true, |t| t.elapsed() >= s.every),
            None => return,
        };
        if !due {
            return;
        }
        let json = self.status_json().to_string();
        let md = self.status_markdown();
        if let Some(s) = &mut self.status {
            s.last = Some(Instant::now());
            let _ = std::fs::write(s.base.with_extension("json"), json);
            let _ = std::fs::write(s.base.with_extension("md"), md);
        }
    }
}

/// Fold one same-rank delta into the running snapshot: counters add,
/// histograms merge, gauges take the delta's (newer) value. Seq ordering
/// is enforced by the caller, so "newer" is well-defined.
fn apply_delta(base: &mut Snapshot, delta: &Snapshot) {
    for e in &delta.entries {
        match base
            .entries
            .iter_mut()
            .find(|b| b.name == e.name && b.key == e.key)
        {
            Some(b) => {
                b.value = match (&b.value, &e.value) {
                    (Value::Counter(a), Value::Counter(d)) => Value::Counter(a.saturating_add(*d)),
                    (Value::Histogram(a), Value::Histogram(d)) => {
                        let mut h = a.clone();
                        h.merge(d);
                        Value::Histogram(h)
                    }
                    (_, newer) => newer.clone(),
                };
            }
            None => base.entries.push(e.clone()),
        }
    }
    base.entries
        .sort_by(|a, b| (&a.name, &a.key).cmp(&(&b.name, &b.key)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::telemetry_frame;

    fn beacon_bytes(rank: usize, seq: u64, epoch: u64, cycle: u64, residual: f64) -> Vec<u8> {
        let b = Beacon {
            rank,
            cycle,
            residual,
            epoch,
            level_seconds: vec![0.01 * cycle as f64],
            done: false,
        };
        telemetry_frame(rank, TAG_BEACON, seq, epoch, &beacon_text(&b))
    }

    fn beacon_text(b: &Beacon) -> String {
        Json::Obj(vec![
            ("kind".to_string(), Json::Str("beacon".to_string())),
            ("rank".to_string(), Json::Num(b.rank as f64)),
            ("cycle".to_string(), Json::Num(b.cycle as f64)),
            ("residual".to_string(), Json::Str(format!("{}", b.residual))),
            ("epoch".to_string(), Json::Num(b.epoch as f64)),
            (
                "level_seconds".to_string(),
                Json::Arr(b.level_seconds.iter().map(|&s| Json::Num(s)).collect()),
            ),
            ("done".to_string(), Json::Bool(b.done)),
        ])
        .to_string()
    }

    fn delta_bytes(rank: usize, seq: u64, epoch: u64, snap: &Snapshot) -> Vec<u8> {
        let doc = Json::Obj(vec![
            ("kind".to_string(), Json::Str("delta".to_string())),
            ("rank".to_string(), Json::Num(rank as f64)),
            ("snapshot".to_string(), snap.to_json()),
        ]);
        telemetry_frame(rank, TAG_DELTA, seq, epoch, &doc.to_string())
    }

    fn counter_snap(rank: usize, name: &str, n: u64) -> Snapshot {
        Snapshot {
            entries: vec![SnapshotEntry {
                name: name.to_string(),
                key: Key::new(rank, None, "arq"),
                value: Value::Counter(n),
            }],
        }
    }

    #[test]
    fn deltas_fold_and_seq_gaps_count_as_lost() {
        let mut c = Collector::new(AlertConfig::default());
        c.ingest(&delta_bytes(1, 0, 0, &counter_snap(1, "x_total", 2)), 0);
        // seq 1 lost on the wire.
        c.ingest(&delta_bytes(1, 2, 0, &counter_snap(1, "x_total", 3)), 0);
        // A duplicate of seq 2 must not double-count.
        c.ingest(&delta_bytes(1, 2, 0, &counter_snap(1, "x_total", 3)), 0);
        assert_eq!(c.frames_lost(), 1);
        assert_eq!(c.merged().counter_total("x_total"), 5);
    }

    #[test]
    fn stale_epoch_frames_are_fenced() {
        let mut c = Collector::new(AlertConfig::default());
        c.ingest(&delta_bytes(0, 0, 0, &counter_snap(0, "x_total", 1)), 0);
        // Controller advances to epoch 1; an epoch-0 straggler frame is
        // dropped, an epoch-1 frame (fresh seq space) lands.
        c.ingest(&delta_bytes(0, 1, 0, &counter_snap(0, "x_total", 10)), 1);
        c.ingest(&delta_bytes(0, 0, 1, &counter_snap(0, "x_total", 4)), 1);
        assert_eq!(c.frames_fenced(), 1);
        assert_eq!(c.merged().counter_total("x_total"), 5);
        assert_eq!(c.epoch(), 1);
    }

    #[test]
    fn non_telemetry_bytes_never_contaminate() {
        let mut c = Collector::new(AlertConfig::default());
        c.ingest(b"garbage", 0);
        let data = gmg_comm::Frame {
            kind: FrameKind::Data,
            src: 0,
            dst: 1,
            tag: 9,
            seq: 9,
            epoch: 0,
            frag_index: 0,
            frag_count: 1,
            arq_checksum: 0,
            payload: vec![1.0],
        }
        .encode();
        c.ingest(&data, 0);
        assert!(c.ranks_seen().is_empty());
        assert_eq!(c.merged().entries.len(), 0);
        assert_eq!(c.frames_lost(), 0);
    }

    #[test]
    fn beacons_feed_progress_gauges_and_status() {
        let mut c = Collector::new(AlertConfig::default());
        for rank in 0..3 {
            c.ingest(&beacon_bytes(rank, 0, 0, 4, 1e-7), 0);
        }
        let m = c.merged();
        assert_eq!(
            m.get("gmg_live_progress_cycles", &Key::new(2, None, "live")),
            Some(&Value::Gauge(4.0))
        );
        let status = c.status_json().to_string();
        let parsed = Json::parse(&status).unwrap();
        assert_eq!(parsed.get("ranks").unwrap().as_arr().unwrap().len(), 3);
        assert!(c.status_markdown().contains("| rank |"));
    }
}
