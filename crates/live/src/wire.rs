//! Telemetry message wire format over the gmg-comm frame codec.
//!
//! Every telemetry message is one self-contained
//! [`FrameKind::Telemetry`] frame: a JSON document packed into the
//! frame's `f64` payload (length-prefixed, 8 bytes per double). One
//! message per frame — never fragmented — so losing any frame loses
//! exactly one message and nothing has to be reassembled; a shipper
//! with more to say than fits in one frame splits at the *message*
//! level into independently meaningful chunks.
//!
//! The telemetry plane has its own `tag` vocabulary ([`TAG_BEACON`] /
//! [`TAG_DELTA`] / [`TAG_DIGEST`]) and its own per-rank `seq` counter,
//! both completely disjoint from the ARQ data plane's spaces: the frame
//! `kind` byte keeps the two apart at decode time (a telemetry frame
//! that strays onto a data socket is dropped and counted, and vice
//! versa nothing on the sidecar ever reaches a reassembler).

use gmg_comm::frame::{Frame, FrameKind, MAX_FRAGMENT_DOUBLES};

/// Heartbeat/progress beacon (cycle, residual, per-level op seconds).
pub const TAG_BEACON: u64 = 1;
/// A `gmg_metrics::Snapshot` delta (JSON, schema 1).
pub const TAG_DELTA: u64 = 2;
/// Compact flight/trace digest.
pub const TAG_DIGEST: u64 = 3;

/// Longest JSON text one telemetry frame can carry.
pub const MAX_TEXT_BYTES: usize = (MAX_FRAGMENT_DOUBLES - 1) * 8;

/// Pack UTF-8 text into a length-prefixed `f64` payload: the first
/// double bit-casts the byte length, the rest carry the bytes in
/// zero-padded little-endian 8-byte chunks.
pub fn pack_text(text: &str) -> Vec<f64> {
    let bytes = text.as_bytes();
    assert!(bytes.len() <= MAX_TEXT_BYTES, "telemetry message too large");
    let mut payload = Vec::with_capacity(1 + bytes.len().div_ceil(8));
    payload.push(f64::from_bits(bytes.len() as u64));
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        payload.push(f64::from_bits(u64::from_le_bytes(word)));
    }
    payload
}

/// Inverse of [`pack_text`]; `None` on any inconsistency (telemetry is
/// loss-tolerant, so a malformed payload is simply a lost message).
pub fn unpack_text(payload: &[f64]) -> Option<String> {
    let len = payload.first()?.to_bits() as usize;
    if len > MAX_TEXT_BYTES || payload.len() != 1 + len.div_ceil(8) {
        return None;
    }
    let mut bytes = Vec::with_capacity(len);
    for v in &payload[1..] {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    bytes.truncate(len);
    String::from_utf8(bytes).ok()
}

/// Encode one telemetry message as a single wire frame.
pub fn telemetry_frame(rank: usize, tag: u64, seq: u64, epoch: u64, text: &str) -> Vec<u8> {
    Frame {
        kind: FrameKind::Telemetry,
        src: rank as u32,
        dst: 0,
        tag,
        seq,
        epoch,
        frag_index: 0,
        frag_count: 1,
        arq_checksum: 0,
        payload: pack_text(text),
    }
    .encode()
}

/// Decode a frame's text if (and only if) it is a telemetry frame.
pub fn parse_telemetry(frame: &Frame) -> Option<(u64, String)> {
    if frame.kind != FrameKind::Telemetry {
        return None;
    }
    Some((frame.tag, unpack_text(&frame.payload)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trips_through_a_wire_frame() {
        for text in [
            "",
            "x",
            "{\"kind\":\"beacon\",\"cycle\":3}",
            &"π≠".repeat(999),
        ] {
            let bytes = telemetry_frame(2, TAG_BEACON, 7, 1, text);
            let f = Frame::decode(&bytes).unwrap();
            assert_eq!(f.kind, FrameKind::Telemetry);
            assert_eq!((f.src, f.tag, f.seq, f.epoch), (2, TAG_BEACON, 7, 1));
            assert_eq!(parse_telemetry(&f).unwrap().1, text);
        }
    }

    #[test]
    fn non_telemetry_frames_parse_to_none() {
        let mut f = Frame::decode(&telemetry_frame(0, TAG_DELTA, 0, 0, "{}")).unwrap();
        f.kind = FrameKind::Data;
        assert!(parse_telemetry(&f).is_none());
    }

    #[test]
    fn malformed_payload_is_a_lost_message_not_a_panic() {
        assert_eq!(unpack_text(&[]), None);
        // Declared length longer than the payload carries.
        assert_eq!(unpack_text(&[f64::from_bits(64), 0.0]), None);
        // Declared length beyond the frame ceiling.
        assert_eq!(unpack_text(&[f64::from_bits(u64::MAX)]), None);
    }
}
