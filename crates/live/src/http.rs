//! Hand-rolled std-only HTTP/1.0 listener for the live plane.
//!
//! Serves two read-only paths from the shared collector:
//! * `GET /metrics` — Prometheus text exposition of the merged live
//!   registry, with the plane's self-metrics
//!   (`gmg_live_scrape_duration_ns`, `gmg_live_snapshot_age_ns`,
//!   `gmg_live_frames_lost_total`) appended;
//! * `GET /status` — the collector's JSON status document.
//!
//! The bind address comes from `GMG_PROM_ADDR` (default
//! `127.0.0.1:0`, i.e. an ephemeral port reported by [`PromServer::addr`]).
//! One request per connection, `Connection: close`, no keep-alive, no
//! TLS, no routing beyond the two paths — it exists so `curl` and a
//! Prometheus scraper work mid-solve, nothing more. The accept loop
//! doubles as the collector's clock: it ticks the alert engine every
//! poll interval, which is what lets a *silent* rank (producing no
//! frames to ingest) still trip its alert.

use crate::collect::CollectorHandle;
use gmg_metrics::prom::{render_prometheus_with_self, SelfMetrics};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Environment variable naming the bind address (`host:port`).
pub const PROM_ADDR_ENV: &str = "GMG_PROM_ADDR";

/// A running Prometheus/status endpoint. Dropping it stops the listener.
pub struct PromServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl PromServer {
    /// Bind (per `GMG_PROM_ADDR`, default ephemeral loopback) and start
    /// serving `collector`. Also drives `Collector::tick` on a 10 ms
    /// cadence so time-based alerts fire without traffic.
    pub fn start(collector: CollectorHandle) -> std::io::Result<PromServer> {
        let addr = std::env::var(PROM_ADDR_ENV).unwrap_or_else(|_| "127.0.0.1:0".to_string());
        let listener = TcpListener::bind(&addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("gmg-live-http".to_string())
            .spawn(move || serve(listener, collector, stop2))?;
        Ok(PromServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for PromServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn serve(listener: TcpListener, collector: CollectorHandle, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => handle(stream, &collector),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Idle: advance the alert engine's clock, then nap.
                if let Ok(mut c) = collector.lock() {
                    c.tick();
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn handle(mut stream: TcpStream, collector: &CollectorHandle) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut buf = [0u8; 2048];
    let n = match stream.read(&mut buf) {
        Ok(n) => n,
        Err(_) => return,
    };
    let request = String::from_utf8_lossy(&buf[..n]);
    let path = request
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, ctype, body) = match path {
        "/metrics" | "/metrics/" => {
            let t0 = Instant::now();
            let c = match collector.lock() {
                Ok(c) => c,
                Err(_) => return,
            };
            let snap = c.merged();
            let this = SelfMetrics {
                scrape_duration_ns: t0.elapsed().as_nanos() as u64,
                snapshot_age_ns: c.snapshot_age_ns(),
                frames_lost_total: c.frames_lost(),
            };
            drop(c);
            (
                "200 OK",
                "text/plain; version=0.0.4",
                render_prometheus_with_self(&snap, &this),
            )
        }
        "/status" | "/status/" => {
            let c = match collector.lock() {
                Ok(c) => c,
                Err(_) => return,
            };
            ("200 OK", "application/json", c.status_json().to_string())
        }
        _ => (
            "404 Not Found",
            "text/plain",
            "try /metrics or /status\n".to_string(),
        ),
    };
    let _ = write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// Minimal HTTP/1.0 GET for tests and the bench driver (std-only —
/// nothing in the workspace may pull an HTTP client crate).
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(stream, "GET {path} HTTP/1.0\r\nHost: gmg\r\n\r\n")?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((head, body)) if head.starts_with("HTTP/1.0 200") => Ok(body.to_string()),
        Some((head, _)) => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            head.lines().next().unwrap_or("bad response").to_string(),
        )),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "no header/body split",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::AlertConfig;
    use crate::collect::Collector;
    use crate::ship::Shipper;

    #[test]
    fn serves_metrics_and_status_over_http() {
        let collector = Collector::new(AlertConfig::default()).into_handle();
        // Push something through the real shipper path so the scrape has
        // content. Metrics gate may be off in this test process; beacons
        // flow regardless.
        let mut shipper = Shipper::local(1, Arc::clone(&collector)).expect("live enabled");
        shipper.beacon(&crate::ship::Beacon {
            rank: 1,
            cycle: 3,
            residual: 1e-6,
            epoch: 0,
            level_seconds: vec![0.5],
            done: false,
        });
        let server = PromServer::start(collector).expect("bind ephemeral");
        let addr = server.addr();

        let metrics = http_get(addr, "/metrics").expect("scrape");
        assert!(metrics.contains("gmg_live_scrape_duration_ns"));
        assert!(metrics.contains("gmg_live_frames_lost_total"));
        assert!(metrics.contains("gmg_live_progress_cycles"));
        let parsed = gmg_metrics::prom::parse_prometheus(&metrics).expect("parseable");
        assert!(!parsed.entries.is_empty());

        let status = http_get(addr, "/status").expect("status");
        let doc = gmg_trace::Json::parse(&status).expect("json");
        assert_eq!(doc.get("schema").and_then(|v| v.as_u64()), Some(1));

        let err = http_get(addr, "/nope").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
