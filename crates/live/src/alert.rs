//! Alert engine over the merged telemetry stream.
//!
//! Four detectors, each firing once per episode and re-arming when the
//! condition clears (or never, for one-way conditions like divergence):
//!
//! * **divergence** — a beacon residual goes non-finite or grows by more
//!   than `divergence_factor` over the best residual that rank reported;
//! * **silent-rank** — a rank that has beaconed before goes quiet for
//!   longer than `silent_after` (a large multiple of the 20 ms membership
//!   heartbeat cadence) without having reported completion;
//! * **straggler** — one rank's per-cycle seconds at some level sit
//!   outside the robust MAD envelope of its peers
//!   ([`gmg_metrics::analysis::mad_outliers`], the same machinery behind
//!   the offline trace outlier report);
//! * **ARQ storm** — a rank's cumulative `arq_retransmits_total` crosses
//!   `arq_storm_retransmits` (retransmits are routine under seeded loss;
//!   a storm is an order of magnitude above the expected rate).
//!
//! Every fired alert is a structured [`Alert`] that lands in three
//! places: the global metrics registry (`gmg_live_alerts_total`), the
//! flight recorder (a control event, so postmortems see it on the
//! timeline), and the collector's live status output / Prometheus
//! exposition.

use gmg_metrics::analysis::mad_outliers;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// What went wrong.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertKind {
    Divergence,
    SilentRank,
    Straggler,
    ArqStorm,
}

impl AlertKind {
    pub fn name(self) -> &'static str {
        match self {
            AlertKind::Divergence => "divergence",
            AlertKind::SilentRank => "silent_rank",
            AlertKind::Straggler => "straggler",
            AlertKind::ArqStorm => "arq_storm",
        }
    }

    /// Static flight-recorder op label (the recorder interns `&'static str`).
    fn flight_op(self) -> &'static str {
        match self {
            AlertKind::Divergence => "live:alert:divergence",
            AlertKind::SilentRank => "live:alert:silent_rank",
            AlertKind::Straggler => "live:alert:straggler",
            AlertKind::ArqStorm => "live:alert:arq_storm",
        }
    }
}

/// One fired alert.
#[derive(Clone, Debug, PartialEq)]
pub struct Alert {
    pub kind: AlertKind,
    /// The culprit rank.
    pub rank: usize,
    /// Level the condition localized to, when it did (stragglers).
    pub level: Option<usize>,
    /// Human-readable evidence.
    pub detail: String,
    /// Collector-clock timestamp (ns since the collector started).
    pub at_ns: u64,
}

/// Detector thresholds. Defaults are sized for the bench worlds (4–8
/// ranks, paced cycles in the tens of milliseconds).
#[derive(Clone, Debug)]
pub struct AlertConfig {
    /// Fire divergence when `residual > factor * best_residual_seen`.
    pub divergence_factor: f64,
    /// Beacon gap before a rank counts as silent (heartbeat cadence is
    /// 20 ms; beacons arrive at least once per V-cycle). The default is
    /// overridable via `GMG_LIVE_SILENT_MS` (positive integer,
    /// milliseconds) for slow CI machines and simulated time bases.
    pub silent_after: Duration,
    /// Cycles every rank must complete before straggler statistics run
    /// (early cycles carry startup noise).
    pub straggler_min_cycles: u64,
    /// Absolute per-cycle-seconds floor under which level timings are
    /// never flagged (suppresses jitter on trivially fast levels).
    pub straggler_abs_floor_s: f64,
    /// Cumulative per-rank retransmit count that counts as a storm.
    pub arq_storm_retransmits: u64,
}

impl Default for AlertConfig {
    fn default() -> Self {
        AlertConfig {
            divergence_factor: 1e4,
            silent_after: Duration::from_millis(silent_ms_from(
                std::env::var("GMG_LIVE_SILENT_MS").ok().as_deref(),
            )),
            straggler_min_cycles: 3,
            straggler_abs_floor_s: 2e-3,
            arq_storm_retransmits: 200,
        }
    }
}

/// Default silent-rank beacon-gap threshold, milliseconds.
pub const DEFAULT_SILENT_MS: u64 = 750;

/// Silent threshold from a `GMG_LIVE_SILENT_MS` value: a positive
/// integer in milliseconds, anything else (unset, empty, garbage, 0)
/// falls back to [`DEFAULT_SILENT_MS`]. Slow CI machines and simulated
/// time bases raise it to avoid false silent-rank positives; soak rigs
/// lower it to tighten detection.
pub fn silent_ms_from(var: Option<&str>) -> u64 {
    match var.and_then(|s| s.trim().parse::<u64>().ok()) {
        Some(ms) if ms > 0 => ms,
        _ => DEFAULT_SILENT_MS,
    }
}

/// Per-rank view the detectors read (assembled by the collector).
#[derive(Clone, Debug)]
pub struct RankObservation {
    pub rank: usize,
    /// Completed V-cycles from the latest beacon.
    pub cycle: u64,
    /// Latest residual.
    pub residual: f64,
    /// Cumulative per-level op seconds from the latest beacon.
    pub level_seconds: Vec<f64>,
    /// ns (collector clock) since this rank was last heard from.
    pub quiet_ns: u64,
    /// The rank reported a final beacon (solve finished).
    pub done: bool,
    /// Cumulative ARQ retransmits from this rank's metric deltas.
    pub arq_retransmits: u64,
}

/// Stateful detector set; owned by the collector.
pub struct AlertEngine {
    cfg: AlertConfig,
    fired: Vec<Alert>,
    best_residual: BTreeMap<usize, f64>,
    diverged: BTreeSet<usize>,
    silent: BTreeSet<usize>,
    stragglers: BTreeSet<(usize, usize)>,
    storms: BTreeSet<usize>,
}

impl AlertEngine {
    pub fn new(cfg: AlertConfig) -> AlertEngine {
        AlertEngine {
            cfg,
            fired: Vec::new(),
            best_residual: BTreeMap::new(),
            diverged: BTreeSet::new(),
            silent: BTreeSet::new(),
            stragglers: BTreeSet::new(),
            storms: BTreeSet::new(),
        }
    }

    /// Every alert fired so far, in firing order.
    pub fn alerts(&self) -> &[Alert] {
        &self.fired
    }

    fn fire(
        &mut self,
        kind: AlertKind,
        rank: usize,
        level: Option<usize>,
        detail: String,
        at_ns: u64,
    ) {
        if gmg_metrics::enabled() {
            gmg_metrics::counter("gmg_live_alerts_total", rank, level, kind.name()).inc();
        }
        gmg_flight::record_control(kind.flight_op(), 0);
        self.fired.push(Alert {
            kind,
            rank,
            level,
            detail,
            at_ns,
        });
    }

    /// Run every detector over the current per-rank observations.
    /// `now_ns` is the collector clock.
    pub fn evaluate(&mut self, obs: &[RankObservation], now_ns: u64) {
        self.check_divergence(obs, now_ns);
        self.check_silent(obs, now_ns);
        self.check_stragglers(obs, now_ns);
        self.check_arq_storm(obs, now_ns);
    }

    fn check_divergence(&mut self, obs: &[RankObservation], now_ns: u64) {
        for o in obs.iter().filter(|o| o.cycle > 0) {
            if self.diverged.contains(&o.rank) {
                continue;
            }
            let best = {
                let slot = self.best_residual.entry(o.rank).or_insert(f64::INFINITY);
                if o.residual.is_finite() {
                    *slot = slot.min(o.residual);
                }
                *slot
            };
            let blown = !o.residual.is_finite()
                || (best.is_finite() && o.residual > self.cfg.divergence_factor * best);
            if blown {
                let detail = format!(
                    "rank {} residual {:e} at cycle {} (best seen {:e}, factor {:e})",
                    o.rank, o.residual, o.cycle, best, self.cfg.divergence_factor
                );
                self.diverged.insert(o.rank);
                self.fire(AlertKind::Divergence, o.rank, None, detail, now_ns);
            }
        }
    }

    fn check_silent(&mut self, obs: &[RankObservation], now_ns: u64) {
        let after = self.cfg.silent_after.as_nanos() as u64;
        for o in obs {
            if o.done || o.cycle == 0 {
                // Never flag a rank that finished, or one that has not
                // produced its first beacon yet (startup ramp).
                self.silent.remove(&o.rank);
                continue;
            }
            if o.quiet_ns <= after {
                // Heard from again: re-arm for the next episode.
                self.silent.remove(&o.rank);
                continue;
            }
            if self.silent.insert(o.rank) {
                let detail = format!(
                    "rank {} silent for {:.0} ms at cycle {} (threshold {:.0} ms)",
                    o.rank,
                    o.quiet_ns as f64 / 1e6,
                    o.cycle,
                    after as f64 / 1e6
                );
                self.fire(AlertKind::SilentRank, o.rank, None, detail, now_ns);
            }
        }
    }

    fn check_stragglers(&mut self, obs: &[RankObservation], now_ns: u64) {
        // Wait until the whole surviving fleet has enough cycles for the
        // per-cycle normalization to mean something.
        let live: Vec<&RankObservation> = obs.iter().filter(|o| o.cycle > 0).collect();
        if live.len() < 3 || live.iter().any(|o| o.cycle < self.cfg.straggler_min_cycles) {
            return;
        }
        let levels = live
            .iter()
            .map(|o| o.level_seconds.len())
            .max()
            .unwrap_or(0);
        for level in 0..levels {
            // mad_outliers' robust-σ floor is 1 in the sample's unit, a
            // value sized for nanoseconds — so feed it ns, not seconds.
            let per_cycle: Vec<f64> = live
                .iter()
                .map(|o| {
                    o.level_seconds.get(level).copied().unwrap_or(0.0) / o.cycle.max(1) as f64 * 1e9
                })
                .collect();
            let floor_ns = self.cfg.straggler_abs_floor_s * 1e9;
            if per_cycle.iter().all(|&s| s < floor_ns) {
                continue;
            }
            let verdicts = mad_outliers(&per_cycle, 3, floor_ns);
            for (i, (o, v)) in live.iter().zip(&verdicts).enumerate() {
                if v.flagged && self.stragglers.insert((o.rank, level)) {
                    let detail = format!(
                        "rank {} level {}: {:.1} ms/cycle vs median {:.1} ms/cycle \
                         (robust z {:.1})",
                        o.rank,
                        level,
                        per_cycle[i] / 1e6,
                        v.median / 1e6,
                        v.score
                    );
                    self.fire(AlertKind::Straggler, o.rank, Some(level), detail, now_ns);
                }
            }
        }
    }

    fn check_arq_storm(&mut self, obs: &[RankObservation], now_ns: u64) {
        for o in obs {
            if o.arq_retransmits > self.cfg.arq_storm_retransmits && self.storms.insert(o.rank) {
                let detail = format!(
                    "rank {}: {} cumulative ARQ retransmits (threshold {})",
                    o.rank, o.arq_retransmits, self.cfg.arq_storm_retransmits
                );
                self.fire(AlertKind::ArqStorm, o.rank, None, detail, now_ns);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ob(rank: usize, cycle: u64, residual: f64, level_seconds: Vec<f64>) -> RankObservation {
        RankObservation {
            rank,
            cycle,
            residual,
            level_seconds,
            quiet_ns: 0,
            done: false,
            arq_retransmits: 0,
        }
    }

    /// Pure-parse coverage of the `GMG_LIVE_SILENT_MS` override (the
    /// env var itself is not set here — parallel tests share the
    /// process environment, so the seam under test is the parser).
    #[test]
    fn silent_threshold_env_override_parses_and_falls_back() {
        assert_eq!(silent_ms_from(None), DEFAULT_SILENT_MS);
        assert_eq!(silent_ms_from(Some("")), DEFAULT_SILENT_MS);
        assert_eq!(silent_ms_from(Some("banana")), DEFAULT_SILENT_MS);
        assert_eq!(silent_ms_from(Some("0")), DEFAULT_SILENT_MS);
        assert_eq!(silent_ms_from(Some("-5")), DEFAULT_SILENT_MS);
        assert_eq!(silent_ms_from(Some("3000")), 3000);
        assert_eq!(silent_ms_from(Some(" 1500 ")), 1500);
        // The default config routes through the same parser.
        assert!(AlertConfig::default().silent_after >= Duration::from_millis(1));
    }

    #[test]
    fn clean_world_raises_nothing() {
        let mut e = AlertEngine::new(AlertConfig::default());
        for cycle in 1..=6 {
            let obs: Vec<_> = (0..4)
                .map(|r| {
                    ob(
                        r,
                        cycle,
                        1e-3 / cycle as f64,
                        vec![0.02 * cycle as f64, 0.01 * cycle as f64],
                    )
                })
                .collect();
            e.evaluate(&obs, cycle * 1_000_000);
        }
        assert!(e.alerts().is_empty(), "{:?}", e.alerts());
    }

    #[test]
    fn divergence_fires_once_on_blowup_or_nan() {
        let mut e = AlertEngine::new(AlertConfig::default());
        e.evaluate(&[ob(0, 1, 1e-6, vec![]), ob(1, 1, 1e-6, vec![])], 0);
        e.evaluate(&[ob(0, 2, 1e3, vec![]), ob(1, 2, f64::NAN, vec![])], 1);
        e.evaluate(&[ob(0, 3, 1e5, vec![]), ob(1, 3, f64::NAN, vec![])], 2);
        let kinds: Vec<_> = e.alerts().iter().map(|a| (a.kind, a.rank)).collect();
        assert_eq!(
            kinds,
            [(AlertKind::Divergence, 0), (AlertKind::Divergence, 1)]
        );
    }

    #[test]
    fn silent_rank_fires_per_episode_and_skips_done_ranks() {
        let cfg = AlertConfig::default();
        let quiet = cfg.silent_after.as_nanos() as u64 + 1;
        let mut e = AlertEngine::new(cfg);
        let mut o = ob(2, 4, 1e-6, vec![]);
        o.quiet_ns = quiet;
        e.evaluate(std::slice::from_ref(&o), 0);
        e.evaluate(std::slice::from_ref(&o), 1); // still silent: no re-fire
        assert_eq!(e.alerts().len(), 1);
        assert_eq!(e.alerts()[0].kind, AlertKind::SilentRank);
        // Beacon arrives (re-arm), then silence again: second episode.
        o.quiet_ns = 0;
        e.evaluate(std::slice::from_ref(&o), 2);
        o.quiet_ns = quiet;
        e.evaluate(std::slice::from_ref(&o), 3);
        assert_eq!(e.alerts().len(), 2);
        // A done rank is never silent.
        o.done = true;
        o.quiet_ns = quiet * 10;
        let mut e2 = AlertEngine::new(AlertConfig::default());
        e2.evaluate(std::slice::from_ref(&o), 0);
        assert!(e2.alerts().is_empty());
    }

    #[test]
    fn straggler_names_the_slow_rank_and_level() {
        let mut e = AlertEngine::new(AlertConfig::default());
        let obs: Vec<_> = (0..4)
            .map(|r| {
                let slow = if r == 2 { 0.50 } else { 0.05 };
                ob(r, 5, 1e-6, vec![5.0 * slow, 5.0 * 0.01])
            })
            .collect();
        e.evaluate(&obs, 0);
        let hits: Vec<_> = e
            .alerts()
            .iter()
            .filter(|a| a.kind == AlertKind::Straggler)
            .collect();
        assert_eq!(hits.len(), 1, "{:?}", e.alerts());
        assert_eq!((hits[0].rank, hits[0].level), (2, Some(0)));
        // Same world again: one episode, one alert.
        e.evaluate(&obs, 1);
        assert_eq!(e.alerts().len(), 1);
    }

    #[test]
    fn arq_storm_crosses_threshold_once() {
        let mut e = AlertEngine::new(AlertConfig::default());
        let mut o = ob(1, 2, 1e-6, vec![]);
        o.arq_retransmits = 10;
        e.evaluate(std::slice::from_ref(&o), 0);
        assert!(e.alerts().is_empty());
        o.arq_retransmits = 500;
        e.evaluate(std::slice::from_ref(&o), 1);
        e.evaluate(std::slice::from_ref(&o), 2);
        assert_eq!(e.alerts().len(), 1);
        assert_eq!(e.alerts()[0].kind, AlertKind::ArqStorm);
    }
}
