//! gmg-live: the cross-process live telemetry plane.
//!
//! The solver's existing observability (gmg-metrics registries,
//! gmg-flight rings, gmg-trace spans) is *post-hoc*: each rank owns its
//! state and nothing aggregates until the run ends. This crate adds the
//! live, cross-process view:
//!
//! * [`Shipper`] — per-rank, hangs off the solver's `progress_hook`;
//!   ships heartbeat/progress beacons every V-cycle, periodic
//!   `Snapshot::delta_since` metric deltas, and a final flight/trace
//!   digest as best-effort [`gmg_comm::FrameKind::Telemetry`] datagrams
//!   on the controller's sidecar socket (`t.sock`), or straight into a
//!   local collector for thread transports. No ARQ, no blocking: a lost
//!   frame is counted, never retried, and the solve's residual history
//!   is bit-identical with the shipper on or off (`GMG_LIVE=0` is the
//!   kill switch).
//! * [`Collector`] — merges per-rank deltas (seq-deduped, seq-gap
//!   accounted, membership-epoch fenced) into one global live registry
//!   and runs the [`AlertEngine`]: divergence, silent-rank, straggler
//!   (MAD outliers over per-rank per-level op times), ARQ-storm.
//! * [`PromServer`] — std-only HTTP/1.0 endpoint (`GMG_PROM_ADDR`)
//!   serving the merged registry as Prometheus text plus a JSON status
//!   document; the collector can also mirror status to files.
//!
//! Dependency-free beyond the workspace, like everything else here.

pub mod alert;
pub mod collect;
pub mod http;
pub mod ship;
pub mod wire;

pub use alert::{
    silent_ms_from, Alert, AlertConfig, AlertEngine, AlertKind, RankObservation, DEFAULT_SILENT_MS,
};
pub use collect::{Collector, CollectorHandle};
pub use http::{http_get, PromServer, PROM_ADDR_ENV};
pub use ship::{live_enabled, Beacon, Shipper};
