//! Per-rank telemetry shipper.
//!
//! Hangs off the solver's `progress_hook`: every V-cycle produces a
//! beacon (cycle, residual, per-level op seconds, membership epoch),
//! metric deltas go out on a period (and always with the final beacon),
//! and a compact flight/trace digest rides along at the end. Everything
//! is best-effort fire-and-forget over a datagram sidecar — a send that
//! fails is a lost frame, which the collector's seq-gap accounting
//! *counts* and the plane tolerates by design. No ARQ, no blocking, no
//! impact on the solve: residual histories with the shipper attached are
//! bit-identical to `GMG_LIVE=0` runs (test-enforced in gmg-bench).
//!
//! Two targets:
//! * **process worlds** ([`Shipper::from_proc_env`]) — datagrams to the
//!   controller's sidecar socket (`t.sock` in `GMG_PROC_DIR`);
//! * **thread worlds** ([`Shipper::local`]) — the same encoded bytes
//!   handed straight to an in-process collector, so single-process runs
//!   exercise the identical codec and get the identical live view.

use crate::collect::CollectorHandle;
use crate::wire::{telemetry_frame, MAX_TEXT_BYTES, TAG_BEACON, TAG_DELTA, TAG_DIGEST};
use gmg_metrics::{Registry, Snapshot};
use gmg_trace::Json;
#[cfg(unix)]
use std::os::unix::net::UnixDatagram;
#[cfg(unix)]
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Is the live telemetry plane enabled? `GMG_LIVE=0` is the kill
/// switch; anything else (including unset) leaves it on for components
/// that were explicitly wired up.
pub fn live_enabled() -> bool {
    live_enabled_given(std::env::var("GMG_LIVE").ok().as_deref())
}

/// [`live_enabled`] over an explicit setting — the kill-switch decision
/// itself, testable without mutating the process environment.
pub fn live_enabled_given(setting: Option<&str>) -> bool {
    setting != Some("0")
}

/// One solve-progress observation, in shipper vocabulary. (Mirrors
/// `gmg_core::SolveProgress`; redeclared here so gmg-live stays below
/// the solver in the dependency order.)
#[derive(Clone, Debug, PartialEq)]
pub struct Beacon {
    pub rank: usize,
    /// Completed V-cycles.
    pub cycle: u64,
    pub residual: f64,
    /// Membership epoch at observation time.
    pub epoch: u64,
    /// Cumulative per-level op seconds.
    pub level_seconds: Vec<f64>,
    /// Final beacon of the solve.
    pub done: bool,
}

impl Beacon {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("kind".to_string(), Json::Str("beacon".to_string())),
            ("rank".to_string(), Json::Num(self.rank as f64)),
            ("cycle".to_string(), Json::Num(self.cycle as f64)),
            // Shortest-roundtrip decimal keeps finite residuals
            // bit-exact; a string survives NaN/Inf too (Json::Num cannot).
            (
                "residual".to_string(),
                Json::Str(format!("{}", self.residual)),
            ),
            ("epoch".to_string(), Json::Num(self.epoch as f64)),
            (
                "level_seconds".to_string(),
                Json::Arr(self.level_seconds.iter().map(|&s| Json::Num(s)).collect()),
            ),
            ("done".to_string(), Json::Bool(self.done)),
        ])
    }

    /// Parse a beacon document (collector side).
    pub fn from_json(v: &Json) -> Option<Beacon> {
        Some(Beacon {
            rank: v.get("rank")?.as_u64()? as usize,
            cycle: v.get("cycle")?.as_u64()?,
            residual: v.get("residual")?.as_str()?.parse().ok()?,
            epoch: v.get("epoch")?.as_u64()?,
            level_seconds: v
                .get("level_seconds")?
                .as_arr()?
                .iter()
                .map(|s| s.as_f64())
                .collect::<Option<Vec<f64>>>()?,
            done: matches!(v.get("done"), Some(Json::Bool(true))),
        })
    }
}

enum Target {
    /// Datagrams to the process-world controller's sidecar socket.
    #[cfg(unix)]
    Uds { sock: UnixDatagram, path: PathBuf },
    /// Direct hand-off to an in-process collector (thread worlds).
    Local(CollectorHandle),
}

/// Per-rank telemetry shipper. Construct once per solve.
pub struct Shipper {
    rank: usize,
    seq: u64,
    epoch: u64,
    target: Target,
    /// What the last delta already shipped (global-registry baseline).
    last_snapshot: Snapshot,
    last_delta: Instant,
    delta_every: Duration,
    /// Thread worlds share one global registry across rank shippers, so
    /// exactly one of them (rank 0) ships deltas for everybody.
    ship_deltas: bool,
}

impl Shipper {
    /// Shipper for a process-world rank, addressed from the child's
    /// environment (`GMG_PROC_DIR`, `GMG_PROC_RANK`). `None` when live
    /// telemetry is disabled or this process is not a spawned rank.
    #[cfg(unix)]
    pub fn from_proc_env() -> Option<Shipper> {
        if !live_enabled() {
            return None;
        }
        let dir = std::env::var("GMG_PROC_DIR").ok()?;
        let rank: usize = std::env::var("GMG_PROC_RANK").ok()?.parse().ok()?;
        let path = gmg_comm::telemetry_sock_path(std::path::Path::new(&dir));
        let sock = UnixDatagram::unbound().ok()?;
        sock.set_nonblocking(true).ok();
        Some(Shipper {
            rank,
            seq: 0,
            epoch: 0,
            target: Target::Uds { sock, path },
            last_snapshot: Snapshot::default(),
            last_delta: Instant::now(),
            delta_every: Duration::from_millis(100),
            ship_deltas: true,
        })
    }

    /// Thread-transport shim: ships the same encoded frames straight
    /// into `collector`. Deltas come from the (shared) global registry,
    /// so only the rank-0 shipper sends them.
    pub fn local(rank: usize, collector: CollectorHandle) -> Option<Shipper> {
        if !live_enabled() {
            return None;
        }
        Some(Shipper {
            rank,
            seq: 0,
            epoch: 0,
            target: Target::Local(collector),
            last_snapshot: Snapshot::default(),
            last_delta: Instant::now(),
            delta_every: Duration::from_millis(100),
            ship_deltas: rank == 0,
        })
    }

    /// How often metric deltas ship (beacons go every cycle regardless).
    pub fn delta_every(mut self, d: Duration) -> Shipper {
        self.delta_every = d;
        self
    }

    /// Ship one progress beacon; also ships a metrics delta when the
    /// delta period has elapsed (always, on the final beacon, plus the
    /// digest).
    pub fn beacon(&mut self, b: &Beacon) {
        self.epoch = b.epoch;
        self.send(TAG_BEACON, &b.to_json().to_string());
        if b.done {
            self.ship_delta();
            self.ship_digest();
        } else if self.last_delta.elapsed() >= self.delta_every {
            self.ship_delta();
        }
    }

    /// Ship the global registry's growth since the previous delta.
    pub fn ship_delta(&mut self) {
        self.last_delta = Instant::now();
        if !self.ship_deltas || !gmg_metrics::enabled() {
            return;
        }
        let now = Registry::global().snapshot();
        let delta = now.delta_since(&self.last_snapshot);
        self.last_snapshot = now;
        if delta.entries.is_empty() {
            return;
        }
        // One frame per chunk: each chunk is an independent, complete
        // snapshot document, so any one frame lost loses only its rows.
        for chunk in chunk_snapshot(&delta) {
            let doc = Json::Obj(vec![
                ("kind".to_string(), Json::Str("delta".to_string())),
                ("rank".to_string(), Json::Num(self.rank as f64)),
                ("snapshot".to_string(), chunk.to_json()),
            ]);
            self.send(TAG_DELTA, &doc.to_string());
        }
    }

    /// Ship a compact flight-recorder/trace digest.
    pub fn ship_digest(&mut self) {
        let flight = match gmg_flight::installed() {
            Some((world, rank)) => {
                let logs = world.snapshot();
                match logs.iter().find(|l| l.rank == rank) {
                    Some(log) => Json::Obj(vec![
                        ("capacity".to_string(), Json::Num(log.capacity as f64)),
                        ("written".to_string(), Json::Num(log.written as f64)),
                        ("lost".to_string(), Json::Num(log.lost as f64)),
                    ]),
                    None => Json::Null,
                }
            }
            None => Json::Null,
        };
        let doc = Json::Obj(vec![
            ("kind".to_string(), Json::Str("digest".to_string())),
            ("rank".to_string(), Json::Num(self.rank as f64)),
            ("flight".to_string(), flight),
            ("trace_active".to_string(), Json::Bool(gmg_trace::enabled())),
        ]);
        self.send(TAG_DIGEST, &doc.to_string());
    }

    fn send(&mut self, tag: u64, text: &str) {
        let bytes = telemetry_frame(self.rank, tag, self.seq, self.epoch, text);
        self.seq += 1;
        match &self.target {
            #[cfg(unix)]
            Target::Uds { sock, path } => {
                // Fire-and-forget: ENOBUFS/ENOENT/EAGAIN are all just
                // lost frames to the loss-tolerant plane.
                let _ = sock.send_to(&bytes, path);
            }
            Target::Local(collector) => {
                let epoch = self.epoch;
                collector.lock().unwrap().ingest(&bytes, epoch);
            }
        }
    }
}

/// Split a snapshot into chunks whose JSON each fits one telemetry
/// frame. Greedy row packing against a conservative per-row bound.
fn chunk_snapshot(snap: &Snapshot) -> Vec<Snapshot> {
    let budget = MAX_TEXT_BYTES.saturating_sub(256);
    let mut chunks = Vec::new();
    let mut cur = Snapshot::default();
    let mut cur_bytes = 0usize;
    for e in &snap.entries {
        // Histogram rows dominate; measure the row as rendered.
        let row_bytes = Snapshot {
            entries: vec![e.clone()],
        }
        .to_json()
        .to_string()
        .len();
        if !cur.entries.is_empty() && cur_bytes + row_bytes > budget {
            chunks.push(std::mem::take(&mut cur));
            cur_bytes = 0;
        }
        cur.entries.push(e.clone());
        cur_bytes += row_bytes;
    }
    if !cur.entries.is_empty() {
        chunks.push(cur);
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_switch_semantics() {
        assert!(!live_enabled_given(Some("0")));
        assert!(live_enabled_given(Some("1")));
        assert!(live_enabled_given(Some("")));
        assert!(live_enabled_given(None));
    }

    #[test]
    fn beacon_json_round_trips_including_non_finite_residuals() {
        for residual in [3.25e-11, 0.0, f64::NAN, f64::INFINITY, -1.5] {
            let b = Beacon {
                rank: 3,
                cycle: 7,
                residual,
                epoch: 2,
                level_seconds: vec![0.25, 0.125],
                done: true,
            };
            let text = b.to_json().to_string();
            let back = Beacon::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back.rank, 3);
            assert_eq!(back.cycle, 7);
            assert_eq!(back.epoch, 2);
            assert_eq!(back.level_seconds, vec![0.25, 0.125]);
            assert!(back.done);
            if residual.is_nan() {
                assert!(back.residual.is_nan());
            } else {
                assert_eq!(back.residual.to_bits(), residual.to_bits());
            }
        }
    }

    #[test]
    fn chunking_preserves_every_row() {
        let mut snap = Snapshot::default();
        for i in 0..5000 {
            snap.entries.push(gmg_metrics::SnapshotEntry {
                name: format!("metric_{i:04}_total"),
                key: gmg_metrics::Key::new(i % 8, Some(i % 4), "op"),
                value: gmg_metrics::Value::Counter(i as u64),
            });
        }
        let chunks = chunk_snapshot(&snap);
        assert!(chunks.len() >= 2, "expected multiple chunks");
        let total: usize = chunks.iter().map(|c| c.entries.len()).sum();
        assert_eq!(total, 5000);
        for c in &chunks {
            assert!(c.to_json().to_string().len() <= MAX_TEXT_BYTES);
        }
    }
}
