//! Property tests for the live telemetry plane.
//!
//! Two families:
//! * algebra of [`Snapshot::merge`] — associative, commutative,
//!   identity on the empty snapshot — which is what makes the
//!   collector's cross-rank fold order-independent;
//! * frame interleaving — telemetry frames mixed into ARQ-style data
//!   traffic (including adversarial src/tag/seq collisions) never
//!   contaminate the collector, and the collector's merged view is
//!   invariant under any interleaving that preserves per-rank order.

use gmg_comm::{Frame, FrameKind};
use gmg_live::{AlertConfig, Collector};
use gmg_metrics::{Histogram, Key, Snapshot, SnapshotEntry, Value};
use gmg_trace::Json;
use proptest::prelude::*;

const OPS: [&str; 3] = ["smooth", "residual", "exchange"];

/// One generated metric row. Kind is a function of the name (as in a
/// real registry, where a metric name has exactly one kind).
fn entry(name_idx: usize, rank: usize, level: usize, seed: u64) -> SnapshotEntry {
    let level = if level == 0 { None } else { Some(level - 1) };
    let key = Key::new(rank, level, OPS[name_idx % OPS.len()]);
    let (name, value) = match name_idx % 3 {
        0 => (format!("prop_{name_idx}_total"), Value::Counter(seed)),
        1 => (
            format!("prop_{name_idx}_gauge"),
            Value::Gauge(seed as f64 * 0.5),
        ),
        _ => {
            let mut h = Histogram::new();
            for i in 0..(seed % 5 + 1) {
                h.record(seed.wrapping_mul(31).wrapping_add(i) % 10_000 + 1);
            }
            (format!("prop_{name_idx}_ns"), Value::Histogram(h))
        }
    };
    SnapshotEntry { name, key, value }
}

/// Build a snapshot from raw seeds (the stub proptest has no tuple
/// strategies or `prop_map`, so rows decode from seed bits).
fn snapshot_from(seeds: &[u64]) -> Snapshot {
    let mut entries: Vec<SnapshotEntry> = Vec::new();
    for &s in seeds {
        let e = entry(
            (s % 6) as usize,
            ((s >> 3) % 4) as usize,
            ((s >> 5) % 4) as usize,
            (s >> 7) % 1000,
        );
        // One row per (name, key), like a real registry snapshot.
        if !entries.iter().any(|x| x.name == e.name && x.key == e.key) {
            entries.push(e);
        }
    }
    entries.sort_by(|a, b| (&a.name, &a.key).cmp(&(&b.name, &b.key)));
    Snapshot { entries }
}

/// Encode a delta document the way the shipper does.
fn delta_bytes(rank: usize, seq: u64, snap: &Snapshot) -> Vec<u8> {
    let doc = Json::Obj(vec![
        ("kind".to_string(), Json::Str("delta".to_string())),
        ("rank".to_string(), Json::Num(rank as f64)),
        ("snapshot".to_string(), snap.to_json()),
    ]);
    gmg_live::wire::telemetry_frame(rank, gmg_live::wire::TAG_DELTA, seq, 0, &doc.to_string())
}

/// An ARQ-plane data frame deliberately colliding with telemetry
/// src/tag/seq numbering.
fn data_bytes(src: usize, tag: u64, seq: u64) -> Vec<u8> {
    Frame {
        kind: FrameKind::Data,
        src: src as u32,
        dst: 0,
        tag,
        seq,
        epoch: 0,
        frag_index: 0,
        frag_count: 1,
        arq_checksum: 0,
        payload: vec![tag as f64, seq as f64],
    }
    .encode()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// merge is commutative and associative, with the empty snapshot as
    /// identity — the collector may fold ranks in any order.
    #[test]
    fn merge_is_commutative_associative_with_identity(
        a_seeds in prop::collection::vec(any::<u64>(), 0..12),
        b_seeds in prop::collection::vec(any::<u64>(), 0..12),
        c_seeds in prop::collection::vec(any::<u64>(), 0..12),
    ) {
        let (a, b, c) = (
            snapshot_from(&a_seeds),
            snapshot_from(&b_seeds),
            snapshot_from(&c_seeds),
        );
        prop_assert_eq!(a.merge(&b), b.merge(&a));
        prop_assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        let empty = Snapshot::default();
        prop_assert_eq!(a.merge(&empty), normalized(&a));
        prop_assert_eq!(empty.merge(&a), normalized(&a));
    }

    /// Telemetry deltas interleaved with colliding ARQ data traffic:
    /// the collector's counters come out exactly equal to the telemetry
    /// sum, the data frames create no rank state, and the result is
    /// invariant under the interleaving order (per-rank telemetry order
    /// preserved).
    #[test]
    fn arq_interleaving_never_contaminates_the_collector(
        counts in prop::collection::vec(1u64..50, 1..5),
        n_noise in 0usize..12,
        pick_noise_first in prop::collection::vec(any::<bool>(), 0..32),
    ) {
        // Per-rank telemetry streams: rank r ships `counts[r]` split
        // over two deltas (so per-rank ordering matters).
        let mut streams: Vec<Vec<Vec<u8>>> = Vec::new();
        for (r, &total) in counts.iter().enumerate() {
            let first = total / 2;
            let snap = |n: u64| Snapshot {
                entries: vec![SnapshotEntry {
                    name: "prop_interleave_total".to_string(),
                    key: Key::new(r, None, "smooth"),
                    value: Value::Counter(n),
                }],
            };
            streams.push(vec![
                delta_bytes(r, 0, &snap(first)),
                delta_bytes(r, 1, &snap(total - first)),
            ]);
        }
        // Colliding noise: data frames reusing telemetry src/tag/seq.
        let noise: Vec<Vec<u8>> = (0..n_noise)
            .map(|i| data_bytes(i % counts.len(), (i as u64 % 3) + 1, i as u64 % 2))
            .collect();

        let run = |order_noise_first: bool, rotate: bool| {
            let mut c = Collector::new(AlertConfig::default());
            let mut streams = streams.clone();
            let mut noise = noise.clone();
            let mut flip = pick_noise_first.iter().cycle().copied();
            let mut turn = 0usize;
            loop {
                let noise_turn = order_noise_first == flip.next().unwrap_or(false);
                let frame = if noise_turn && !noise.is_empty() {
                    Some(noise.remove(0))
                } else {
                    // Rotate across rank streams (or drain in rank
                    // order); per-rank ordering holds either way.
                    let len = streams.len();
                    let start = if rotate { turn % len } else { 0 };
                    turn += 1;
                    (0..len)
                        .map(|i| (start + i) % len)
                        .find(|&i| !streams[i].is_empty())
                        .map(|i| streams[i].remove(0))
                };
                match frame.or_else(|| noise.pop()) {
                    Some(f) => c.ingest(&f, 0),
                    None => break,
                }
            }
            c
        };

        let c1 = run(false, false);
        let c2 = run(true, true);
        let expected: u64 = counts.iter().sum();
        prop_assert_eq!(c1.merged().counter_total("prop_interleave_total"), expected);
        // Invariant under interleaving order.
        prop_assert_eq!(c1.merged(), c2.merged());
        // Data frames never created rank state or seq-gap losses.
        prop_assert_eq!(c1.ranks_seen().len(), counts.len());
        prop_assert_eq!(c1.frames_lost(), 0);
    }

    /// A telemetry frame round-trips with its own tag/seq spaces intact
    /// even when a data frame uses the identical numbers — the kind byte
    /// alone keeps the planes apart.
    #[test]
    fn kind_byte_separates_planes(tag in 1u64..4, seq in 0u64..100, rank in 0usize..8) {
        let t = Frame::decode(&gmg_live::wire::telemetry_frame(rank, tag, seq, 0, "{}")).unwrap();
        let d = Frame::decode(&data_bytes(rank, tag, seq)).unwrap();
        prop_assert_eq!((t.src, t.tag, t.seq), (d.src, d.tag, d.seq));
        prop_assert!(t.kind != d.kind);
        prop_assert!(gmg_live::wire::parse_telemetry(&t).is_some());
        prop_assert!(gmg_live::wire::parse_telemetry(&d).is_none());
    }
}

/// merge normalizes row order; compare against the same normalization.
fn normalized(s: &Snapshot) -> Snapshot {
    let mut s = s.clone();
    s.entries
        .sort_by(|a, b| (&a.name, &a.key).cmp(&(&b.name, &b.key)));
    s
}
