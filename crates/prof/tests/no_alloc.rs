//! The phase push/pop hot path must never allocate: a counting global
//! allocator wraps the system one, and after warm-up a burst of nested
//! phase scopes must leave the allocation count untouched.
//!
//! Enablement uses [`gmg_prof::ManualEnable`] — an active session count
//! with *no* sampler thread — because the sampler thread legitimately
//! allocates (folded-stack keys) and would fog the process-wide counter.
//!
//! This file holds exactly one test so no sibling test can allocate
//! concurrently.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, new: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(p, l, new)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

#[test]
fn phase_push_pop_does_not_allocate() {
    let _en = gmg_prof::ManualEnable::new();
    let phases = gmg_prof::brick_phases(8);
    // Warm up: the first push registers this thread's stack (one-time
    // Arc + registry growth) and resolves the trace epoch.
    let warm = || {
        let _root = gmg_prof::phase(phases.apply_root);
        let _a = gmg_prof::phase(phases.apply_index);
        drop(_a);
        let _b = gmg_prof::phase(phases.apply_interior);
        drop(_b);
        let _c = gmg_prof::phase(phases.apply_boundary);
    };
    warm();

    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..5_000 {
        warm();
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "phase hot path allocated {} times over 20k push/pop pairs",
        after - before
    );
}
