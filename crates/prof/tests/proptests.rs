//! Property tests for the folded-stack codec: encode → parse is the
//! identity for any valid stack map, encoding is deterministic, and
//! duplicate-line accumulation matches map merging.

use proptest::prelude::*;
use std::collections::BTreeMap;

/// Frame names as the profiler produces them: static identifiers plus
/// the `@bN` brick-shape suffix — never spaces, newlines, or `;`.
const NAMES: &[&str] = &[
    "applyop_bricked@b8",
    "applyop_array",
    "interior@b8",
    "brick_boundary@b8",
    "index@b4",
    "fused_multismooth@b8",
    "stage@b8",
    "tile_smooth@b2",
    "writeback@b16",
    "exchange",
    "smooth+residual",
    "restriction",
];

fn frames() -> impl Strategy<Value = Vec<&'static str>> {
    prop::collection::vec(prop::sample::select(NAMES.to_vec()), 1..5)
}

fn folded_raw() -> impl Strategy<Value = Vec<Vec<&'static str>>> {
    prop::collection::vec(frames(), 0..20)
}

fn build_map(stacks: Vec<Vec<&'static str>>, counts: &[u64]) -> BTreeMap<String, u64> {
    let mut m = BTreeMap::new();
    for (i, s) in stacks.into_iter().enumerate() {
        let n = counts[i % counts.len().max(1)].max(1);
        *m.entry(s.join(";")).or_insert(0) += n;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse(encode(m)) == m for any valid folded map.
    #[test]
    fn encode_parse_roundtrip(
        stacks in folded_raw(),
        counts in prop::collection::vec(1u64..1_000_000, 8usize),
    ) {
        let m = build_map(stacks, &counts);
        let text = gmg_prof::folded::encode(&m);
        let back = gmg_prof::folded::parse(&text).unwrap();
        prop_assert_eq!(back, m);
    }

    /// Encoding the parse of an encoding is a fixed point (deterministic,
    /// sorted output).
    #[test]
    fn encode_is_canonical(
        stacks in folded_raw(),
        counts in prop::collection::vec(1u64..1_000_000, 8usize),
    ) {
        let m = build_map(stacks, &counts);
        let text = gmg_prof::folded::encode(&m);
        let again = gmg_prof::folded::encode(&gmg_prof::folded::parse(&text).unwrap());
        prop_assert_eq!(text, again);
    }

    /// Concatenating two encodings parses to the merged (count-summed) map.
    #[test]
    fn concatenation_accumulates(
        s1 in folded_raw(),
        s2 in folded_raw(),
        counts in prop::collection::vec(1u64..1_000_000, 8usize),
    ) {
        let a = build_map(s1, &counts);
        let b = build_map(s2, &counts);
        let mut text = gmg_prof::folded::encode(&a);
        text.push_str(&gmg_prof::folded::encode(&b));
        let merged = gmg_prof::folded::parse(&text).unwrap();
        let mut want = a.clone();
        for (k, v) in &b {
            *want.entry(k.clone()).or_insert(0) += v;
        }
        prop_assert_eq!(merged, want);
    }
}
