//! Per-thread phase stacks: the writer side of the sampling profiler.
//!
//! Each worker thread owns one [`PhaseStack`] — a fixed-depth array of
//! `&'static str` frames guarded by a single seqlock word, following the
//! same single-writer / many-reader discipline as `gmg_flight`'s ring
//! slots. [`phase`] pushes a frame and returns an RAII guard that pops it;
//! when no sampling session is active the entire push/pop pair is one
//! relaxed atomic load each, so instrumented kernels cost nothing in
//! ordinary runs. The hot path never allocates (test-enforced with a
//! counting allocator): frames are stored as raw `(ptr, len)` pairs of
//! `'static` names, and the only allocation is the one-time per-thread
//! registration of the stack itself.
//!
//! The sampler thread reads stacks through [`PhaseStack::sample`], a
//! validated seqlock copy: an odd or changed sequence stamp means the
//! owner was mid-update and the sample is discarded (counted as dropped)
//! rather than ever materializing a torn `&str`.

use std::cell::{RefCell, UnsafeCell};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Maximum phase nesting depth captured per thread. Pushes beyond this
/// are counted (`truncated`) but not recorded; pops stay balanced.
pub const MAX_DEPTH: usize = 16;

/// Raw parts of a `&'static str` frame. Stored decomposed so a torn
/// seqlock read only ever copies plain integers; a real `&str` is
/// reconstructed *after* the stamp re-check validates the copy.
type RawFrame = (*const u8, usize);

/// One thread's phase stack. Single writer (the owning thread, via the
/// thread-local handle), many readers (sampler threads).
pub struct PhaseStack {
    /// Seqlock stamp: even = stable, odd = owner mid-update.
    seq: AtomicU64,
    depth: UnsafeCell<usize>,
    frames: [UnsafeCell<RawFrame>; MAX_DEPTH],
    /// Pushes that exceeded `MAX_DEPTH` (owner-written, monotonic).
    truncated: AtomicU64,
    /// Set by the owning thread's TLS destructor; the sampler skips and
    /// eventually unregisters dead stacks.
    dead: AtomicBool,
}

// SAFETY: `depth` and `frames` are only written by the owning thread
// under an odd seqlock stamp, and only read by samplers through the
// validated copy in `sample`, which discards anything observed while the
// stamp was odd or changed. The raw pointers are borrowed from
// `&'static str` names, so they are valid for the program's lifetime.
unsafe impl Send for PhaseStack {}
unsafe impl Sync for PhaseStack {}

impl PhaseStack {
    fn new() -> Self {
        PhaseStack {
            seq: AtomicU64::new(0),
            depth: UnsafeCell::new(0),
            frames: [(); MAX_DEPTH].map(|()| UnsafeCell::new((std::ptr::null(), 0))),
            truncated: AtomicU64::new(0),
            dead: AtomicBool::new(false),
        }
    }

    /// Owner-only: push `name`. Callers must hold the thread-local handle
    /// for this stack (enforced by module privacy — only [`phase`] calls
    /// this).
    fn push(&self, name: &'static str) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        // SAFETY: single writer; readers validate against the stamp.
        unsafe {
            let d = *self.depth.get();
            if d < MAX_DEPTH {
                *self.frames[d].get() = (name.as_ptr(), name.len());
            }
            *self.depth.get() = d + 1;
        }
        self.seq.store(s.wrapping_add(2), Ordering::Release);
        // `depth` may logically exceed MAX_DEPTH (so pops stay balanced);
        // only the first MAX_DEPTH frames are recorded.
        if unsafe { *self.depth.get() } > MAX_DEPTH {
            self.truncated.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Owner-only: pop the top frame.
    fn pop(&self) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        // SAFETY: single writer; readers validate against the stamp.
        unsafe {
            let d = *self.depth.get();
            debug_assert!(d > 0, "phase pop without matching push");
            *self.depth.get() = d.saturating_sub(1);
        }
        self.seq.store(s.wrapping_add(2), Ordering::Release);
    }

    /// Total pushes that overflowed [`MAX_DEPTH`].
    pub fn truncated(&self) -> u64 {
        self.truncated.load(Ordering::Relaxed)
    }

    /// Whether the owning thread has exited.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }

    /// Seqlock-validated snapshot of the stack into `out`, returning the
    /// captured depth (clamped to [`MAX_DEPTH`]), or `None` if the owner
    /// kept racing us for all retries — the caller counts that as a
    /// dropped sample.
    pub fn sample(&self, out: &mut [&'static str; MAX_DEPTH]) -> Option<usize> {
        let mut raw = [(std::ptr::null::<u8>(), 0usize); MAX_DEPTH];
        for _ in 0..16 {
            let s0 = self.seq.load(Ordering::Acquire);
            if s0 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            // SAFETY: volatile copies of plain integers; validated below
            // before any `&str` is reconstructed.
            let d = unsafe { std::ptr::read_volatile(self.depth.get()) }.min(MAX_DEPTH);
            for (slot, frame) in raw.iter_mut().zip(&self.frames).take(d) {
                *slot = unsafe { std::ptr::read_volatile(frame.get()) };
            }
            fence(Ordering::Acquire);
            if self.seq.load(Ordering::Relaxed) != s0 {
                std::hint::spin_loop();
                continue;
            }
            for (o, &(ptr, len)) in out.iter_mut().zip(&raw).take(d) {
                // SAFETY: the stamp re-check proved this (ptr, len) pair
                // was written atomically w.r.t. us, and it came from a
                // `&'static str` in `push`.
                *o = unsafe { std::str::from_utf8_unchecked(std::slice::from_raw_parts(ptr, len)) };
            }
            return Some(d);
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Registry + enablement
// ---------------------------------------------------------------------------

/// Number of active sampling sessions. Sessions are *not* exclusive: the
/// `GMG_PROF` env hook may wrap a binary that starts its own inner
/// session, and parallel tests each run their own — every session samples
/// the shared thread registry independently.
static SESSIONS: AtomicUsize = AtomicUsize::new(0);

static REGISTRY: Mutex<Vec<Arc<PhaseStack>>> = Mutex::new(Vec::new());

/// Whether any sampling session is active — the one relaxed load gating
/// the entire push/pop hot path, mirroring `gmg_trace::enabled`.
#[inline]
pub fn profiling() -> bool {
    SESSIONS.load(Ordering::Relaxed) > 0
}

pub(crate) fn session_begin() {
    SESSIONS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn session_end() {
    SESSIONS.fetch_sub(1, Ordering::Relaxed);
}

/// Snapshot of currently registered, live stacks; prunes dead ones.
pub(crate) fn registered_stacks() -> Vec<Arc<PhaseStack>> {
    let mut reg = REGISTRY.lock().unwrap();
    reg.retain(|s| !s.is_dead());
    reg.clone()
}

/// RAII enable for tests: counts as an active session *without* spawning
/// a sampler thread, so no-allocation tests can exercise the push/pop
/// hot path with no concurrent sampler allocating in the background.
pub struct ManualEnable(());

impl ManualEnable {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        session_begin();
        ManualEnable(())
    }
}

impl Drop for ManualEnable {
    fn drop(&mut self) {
        session_end();
    }
}

struct ThreadHandle {
    stack: Arc<PhaseStack>,
}

impl Drop for ThreadHandle {
    fn drop(&mut self) {
        self.stack.dead.store(true, Ordering::Relaxed);
    }
}

thread_local! {
    static HANDLE: RefCell<Option<ThreadHandle>> = const { RefCell::new(None) };
}

fn with_thread_stack(f: impl FnOnce(&PhaseStack)) {
    let _ = HANDLE.try_with(|h| {
        let mut h = h.borrow_mut();
        if h.is_none() {
            let stack = Arc::new(PhaseStack::new());
            REGISTRY.lock().unwrap().push(Arc::clone(&stack));
            *h = Some(ThreadHandle { stack });
        }
        f(&h.as_ref().unwrap().stack);
    });
}

// ---------------------------------------------------------------------------
// Phase guards
// ---------------------------------------------------------------------------

/// RAII scope for one phase: pops on drop. Inert (one relaxed load) when
/// no session is active at entry.
pub struct PhaseGuard {
    name: &'static str,
    /// True iff we actually pushed — a session may stop mid-scope, and
    /// the pop must mirror the push, not the current enable state.
    active: bool,
    /// Entry timestamp, only taken while a slowdown injection is armed.
    t0_ns: u64,
}

/// Enter a named phase on the current thread. The returned guard pops the
/// phase when dropped. Phase names must be `'static` (no formatting on
/// the hot path); key parameterized kernels through a static name table
/// like [`brick_phases`].
#[inline]
pub fn phase(name: &'static str) -> PhaseGuard {
    if !profiling() {
        return PhaseGuard {
            name,
            active: false,
            t0_ns: 0,
        };
    }
    with_thread_stack(|s| s.push(name));
    let t0_ns = if slowdown_armed() {
        gmg_trace::now_ns()
    } else {
        0
    };
    PhaseGuard {
        name,
        active: true,
        t0_ns,
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        if slowdown_armed() {
            maybe_slow(self.name, self.t0_ns);
        }
        with_thread_stack(|s| s.pop());
    }
}

// ---------------------------------------------------------------------------
// Slowdown injection (attribution self-test)
// ---------------------------------------------------------------------------

static SLOWDOWN_ARMED: AtomicBool = AtomicBool::new(false);
static SLOWDOWN: Mutex<Option<(String, f64)>> = Mutex::new(None);

#[inline]
fn slowdown_armed() -> bool {
    SLOWDOWN_ARMED.load(Ordering::Relaxed)
}

/// Arm (or disarm, with `None`) a phase slowdown: every phase whose name
/// contains `pattern` busy-waits an extra `pct`% of its own elapsed time
/// on exit. This is the `--inject-slowdown` attribution self-test hook —
/// a profiler that cannot see a deliberately slowed phase dominate the
/// report cannot be trusted on real regressions.
pub fn set_slowdown(spec: Option<(&str, f64)>) {
    match spec {
        Some((pattern, pct)) => {
            *SLOWDOWN.lock().unwrap() = Some((pattern.to_string(), pct));
            SLOWDOWN_ARMED.store(true, Ordering::Relaxed);
        }
        None => {
            SLOWDOWN_ARMED.store(false, Ordering::Relaxed);
            *SLOWDOWN.lock().unwrap() = None;
        }
    }
}

fn maybe_slow(name: &str, t0_ns: u64) {
    let pct = {
        let g = SLOWDOWN.lock().unwrap();
        match g.as_ref() {
            Some((pat, pct)) if name.contains(pat.as_str()) => *pct,
            _ => return,
        }
    };
    let elapsed = gmg_trace::now_ns().saturating_sub(t0_ns);
    let extra = (elapsed as f64 * pct / 100.0) as u64;
    let until = gmg_trace::now_ns() + extra;
    while gmg_trace::now_ns() < until {
        std::hint::spin_loop();
    }
}

// ---------------------------------------------------------------------------
// Static phase names for brick-parameterized kernels
// ---------------------------------------------------------------------------

/// Phase names for the bricked executors, keyed by brick shape (`bN` =
/// N³-cell bricks). All `'static` so kernels never format names on the
/// hot path.
pub struct BrickPhases {
    /// Root phase of the bricked 7-point applyOp per-brick closure.
    pub apply_root: &'static str,
    /// Contiguous unit-stride interior span work.
    pub apply_interior: &'static str,
    /// Face/edge cells routed through the brick-adjacency indirection.
    pub apply_boundary: &'static str,
    /// Neighborhood construction + index arithmetic per brick.
    pub apply_index: &'static str,
    /// Root phase of the fused multi-smooth tile closure.
    pub fused_root: &'static str,
    /// Tile staging: gathering bricked data into the dense scratch tile.
    pub fused_stage: &'static str,
    /// In-tile smooth iterations.
    pub fused_smooth: &'static str,
    /// Scatter of smoothed tile cores back into bricked storage.
    pub fused_writeback: &'static str,
}

macro_rules! brick_phase_set {
    ($tag:literal) => {
        BrickPhases {
            apply_root: concat!("applyop_bricked@", $tag),
            apply_interior: concat!("interior@", $tag),
            apply_boundary: concat!("brick_boundary@", $tag),
            apply_index: concat!("index@", $tag),
            fused_root: concat!("fused_multismooth@", $tag),
            fused_stage: concat!("stage@", $tag),
            fused_smooth: concat!("tile_smooth@", $tag),
            fused_writeback: concat!("writeback@", $tag),
        }
    };
}

static B2: BrickPhases = brick_phase_set!("b2");
static B4: BrickPhases = brick_phase_set!("b4");
static B8: BrickPhases = brick_phase_set!("b8");
static B16: BrickPhases = brick_phase_set!("b16");
static B32: BrickPhases = brick_phase_set!("b32");
static BOTHER: BrickPhases = brick_phase_set!("b?");

/// Static phase-name table for a given brick dimension. Covers the
/// power-of-two dims the layouts actually use; anything else shares the
/// `b?` bucket rather than allocating a name.
pub fn brick_phases(brick_dim: i64) -> &'static BrickPhases {
    match brick_dim {
        2 => &B2,
        4 => &B4,
        8 => &B8,
        16 => &B16,
        32 => &B32,
        _ => &BOTHER,
    }
}

/// Root phase of the plain-array 7-point applyOp slab closure.
pub const APPLYOP_ARRAY: &str = "applyop_array";
/// The array kernel is one unit-stride stream; its whole body is interior.
pub const ARRAY_INTERIOR: &str = "interior@array";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_sample_roundtrip() {
        let _en = ManualEnable::new();
        let g1 = phase("t_outer");
        let g2 = phase("t_inner");
        let mut buf = [""; MAX_DEPTH];
        let mut seen = None;
        // Sample our own thread's stack via the registry.
        for s in registered_stacks() {
            if let Some(d) = s.sample(&mut buf) {
                if d >= 2 && buf[d - 2] == "t_outer" && buf[d - 1] == "t_inner" {
                    seen = Some(d);
                }
            }
        }
        assert!(seen.is_some(), "own stack not observed via registry");
        drop(g2);
        drop(g1);
    }

    #[test]
    fn disabled_phase_is_inert() {
        // Sessions are process-global and other tests may be running, so
        // only assert the invariant: a guard created while no session is
        // active must not have pushed.
        let g = phase("t_disabled");
        if !g.active {
            assert_eq!(g.t0_ns, 0);
        }
        drop(g);
    }

    #[test]
    fn overflow_is_counted_and_balanced() {
        let _en = ManualEnable::new();
        let guards: Vec<_> = (0..MAX_DEPTH + 4).map(|_| phase("t_deep")).collect();
        let mut buf = [""; MAX_DEPTH];
        let mut max_d = 0;
        for s in registered_stacks() {
            if let Some(d) = s.sample(&mut buf) {
                if d > 0 && buf[0] == "t_deep" {
                    max_d = max_d.max(d);
                    assert!(s.truncated() >= 4);
                }
            }
        }
        assert_eq!(max_d, MAX_DEPTH);
        drop(guards);
        // After dropping every guard the stack must be fully popped.
        for s in registered_stacks() {
            if let Some(d) = s.sample(&mut buf) {
                if d > 0 {
                    assert_ne!(buf[0], "t_deep", "unbalanced pop left frames behind");
                }
            }
        }
    }

    #[test]
    fn slowdown_stretches_matching_phase() {
        let _en = ManualEnable::new();
        set_slowdown(Some(("t_slowed", 400.0)));
        let t0 = std::time::Instant::now();
        {
            let _g = phase("t_slowed_leaf");
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let slowed = t0.elapsed();
        set_slowdown(None);
        let t1 = std::time::Instant::now();
        {
            let _g = phase("t_slowed_leaf");
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let clean = t1.elapsed();
        assert!(
            slowed >= clean * 2,
            "400% slowdown did not stretch the phase: {slowed:?} vs {clean:?}"
        );
    }

    #[test]
    fn brick_phase_table_is_static_and_keyed() {
        assert_eq!(brick_phases(8).apply_root, "applyop_bricked@b8");
        assert_eq!(brick_phases(8).apply_interior, "interior@b8");
        assert_eq!(brick_phases(4).apply_boundary, "brick_boundary@b4");
        assert_eq!(brick_phases(7).apply_index, "index@b?");
        // Same dim must return the same static (pointer-equal) names.
        assert!(std::ptr::eq(brick_phases(8), brick_phases(8)));
    }
}
