//! Folded-stack text codec — the `a;b;c N` line format consumed by
//! Brendan Gregg's `flamegraph.pl` and every compatible viewer
//! (speedscope, inferno, Firefox Profiler). One line per unique stack,
//! frames joined by `;`, a space, then the sample count. The parser is
//! the encoder's inverse so `results/flame.folded` round-trips in tests.

use std::collections::BTreeMap;

/// Render folded stacks as flamegraph text. Lines are emitted in key
/// order (the map is ordered), so output is deterministic.
pub fn encode(folded: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (stack, n) in folded {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&n.to_string());
        out.push('\n');
    }
    out
}

/// Parse flamegraph folded text back into a stack → count map. Counts on
/// duplicate stacks accumulate. Blank lines are ignored; a line without
/// a trailing integer count, or with an empty stack or empty frame, is
/// an error.
pub fn parse(text: &str) -> Result<BTreeMap<String, u64>, String> {
    let mut out = BTreeMap::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let (stack, count) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no sample count: {line:?}", ln + 1))?;
        let n: u64 = count
            .parse()
            .map_err(|e| format!("line {}: bad count {count:?}: {e}", ln + 1))?;
        if stack.is_empty() || stack.split(';').any(|f| f.is_empty()) {
            return Err(format!("line {}: empty frame in {stack:?}", ln + 1));
        }
        *out.entry(stack.to_string()).or_insert(0) += n;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(pairs: &[(&str, u64)]) -> BTreeMap<String, u64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn encode_parse_roundtrip() {
        let m = map(&[
            ("applyop_bricked@b8;interior@b8", 840),
            ("applyop_bricked@b8;brick_boundary@b8", 120),
            ("applyop_bricked@b8", 11),
            ("exchange", 40),
        ]);
        let text = encode(&m);
        assert_eq!(parse(&text).unwrap(), m);
        // Encoding is deterministic (sorted).
        assert_eq!(encode(&parse(&text).unwrap()), text);
    }

    #[test]
    fn parse_accumulates_duplicates() {
        let m = parse("a;b 3\na;b 4\n").unwrap();
        assert_eq!(m, map(&[("a;b", 7)]));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("no-count-here\n").is_err());
        assert!(parse("a;b notanumber\n").is_err());
        assert!(parse("a;;b 3\n").is_err());
        assert!(parse(" 3\n").is_err());
        assert!(parse("").unwrap().is_empty());
    }
}
