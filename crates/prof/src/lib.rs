//! # gmg-prof — in-process sampling profiler for the GMG kernels
//!
//! The committed perfgate trajectory shows the paper's headline mechanism
//! losing on this host: bricked applyOp at ~0.10× the plain-array kernel.
//! Whole-kernel spans (gmg-trace) can say *that*; they cannot say *where
//! inside the kernel* the time goes — interior stencil math, per-point
//! brick-adjacency lookups, index arithmetic, or boundary handling. This
//! crate is the layer below the span: a sampling profiler whose units are
//! **sub-kernel phases**.
//!
//! * [`stack`] — per-thread, fixed-depth phase stacks with seqlock
//!   readers, following `gmg-flight`'s single-writer/no-alloc discipline.
//!   [`phase`] is the only instrumentation primitive: push a `'static`
//!   name, get an RAII pop. One relaxed atomic load when disabled.
//! * [`sampler`] — a background thread snapshots every registered stack
//!   at a configurable interval ([`Session`] / [`Profile`]), accumulating
//!   flamegraph-compatible folded stacks plus per-phase self/total counts
//!   and per-root wall occupancy. Health (samples taken/dropped, threads,
//!   truncation) exports as gmg-metrics gauges.
//! * [`folded`] — the `a;b;c N` text codec (encode + inverse parse).
//! * [`report`] — the kernel efficiency report: per-phase shares, derived
//!   GB/s and GStencil/s against the [`gmg_metrics::MachineEnvelope`]
//!   roofline, a sampled-vs-traced consistency gate, and the named
//!   bricked-vs-array gap decomposition.
//!
//! The attribution loop closes in `gmg-bench --bin flame`: it runs the
//! perfgate hot kernels under a session, writes `results/flame.folded`
//! and `results/efficiency.md`, and can deliberately slow one phase
//! ([`set_slowdown`], `--inject-slowdown`) to prove the profiler sees
//! exactly the phase that got slower.
//!
//! ```
//! use std::time::Duration;
//! let session = gmg_prof::start(Duration::from_micros(100));
//! {
//!     let _k = gmg_prof::phase("kernel");
//!     let _p = gmg_prof::phase("inner");
//!     std::thread::sleep(Duration::from_millis(5));
//! }
//! let profile = session.stop();
//! assert!(profile.to_folded().contains("kernel"));
//! ```

pub mod folded;
pub mod report;
pub mod sampler;
pub mod stack;

pub use report::{consistency_tolerance, render, KernelReport, ReportVerdict};
pub use sampler::{
    default_interval, start, start_default, PhaseCounts, Profile, RootBreakdown, Session,
};
pub use stack::{
    brick_phases, phase, profiling, set_slowdown, BrickPhases, ManualEnable, PhaseGuard,
    PhaseStack, APPLYOP_ARRAY, ARRAY_INTERIOR, MAX_DEPTH,
};
