//! The background sampler: snapshots every registered phase stack at a
//! fixed interval and accumulates folded stacks plus per-phase counts.
//!
//! A [`Session`] owns one sampler thread. Sessions are not exclusive —
//! the `GMG_PROF` env hook wraps whole binaries that may start their own
//! inner session, and parallel tests each run one — so all bookkeeping
//! lives in the session, and only the thread registry is shared. All
//! allocation happens on the sampler thread; the sampled threads' hot
//! path stays allocation-free.

use crate::stack::{self, MAX_DEPTH};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sampling interval from `GMG_PROF_INTERVAL_US`, default 200µs (5 kHz —
/// coarse enough to stay invisible next to the kernels, fine enough to
/// resolve sub-millisecond phases over a ~1 s window).
pub fn default_interval() -> Duration {
    let us = std::env::var("GMG_PROF_INTERVAL_US")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(200);
    Duration::from_micros(us)
}

#[derive(Default)]
struct Accum {
    ticks: u64,
    samples: u64,
    empty_samples: u64,
    dropped: u64,
    threads_seen: usize,
    truncated: u64,
    folded: BTreeMap<String, u64>,
    root_ticks: BTreeMap<String, u64>,
}

/// An active sampling session. Stop it to retrieve the [`Profile`].
pub struct Session {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<Accum>>,
    t0: Instant,
    interval: Duration,
}

/// Start a sampling session with the given interval. Phase push/pop
/// becomes live process-wide for the session's lifetime.
pub fn start(interval: Duration) -> Session {
    stack::session_begin();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("gmg-prof-sampler".into())
        .spawn(move || sample_loop(&stop2, interval))
        .expect("spawn sampler thread");
    Session {
        stop,
        handle: Some(handle),
        t0: Instant::now(),
        interval,
    }
}

/// Start with the [`default_interval`].
pub fn start_default() -> Session {
    start(default_interval())
}

fn sample_loop(stop: &AtomicBool, interval: Duration) -> Accum {
    let mut acc = Accum::default();
    let mut buf: [&'static str; MAX_DEPTH] = [""; MAX_DEPTH];
    let mut key = String::with_capacity(128);
    while !stop.load(Ordering::Relaxed) {
        let stacks = stack::registered_stacks();
        acc.ticks += 1;
        acc.threads_seen = acc.threads_seen.max(stacks.len());
        let mut roots: BTreeSet<&'static str> = BTreeSet::new();
        let mut truncated = 0;
        for s in &stacks {
            truncated += s.truncated();
            match s.sample(&mut buf) {
                None => acc.dropped += 1,
                Some(0) => acc.empty_samples += 1,
                Some(d) => {
                    acc.samples += 1;
                    key.clear();
                    for (i, name) in buf.iter().take(d).enumerate() {
                        if i > 0 {
                            key.push(';');
                        }
                        key.push_str(name);
                    }
                    if let Some(n) = acc.folded.get_mut(key.as_str()) {
                        *n += 1;
                    } else {
                        acc.folded.insert(key.clone(), 1);
                    }
                    roots.insert(buf[0]);
                }
            }
        }
        acc.truncated = acc.truncated.max(truncated);
        for r in roots {
            *acc.root_ticks.entry(r.to_string()).or_insert(0) += 1;
        }
        std::thread::sleep(interval);
    }
    acc
}

impl Session {
    /// Stop sampling and fold the accumulated data into a [`Profile`].
    /// Sampler health is exported as gmg-metrics gauges when the metrics
    /// registry is enabled.
    pub fn stop(mut self) -> Profile {
        self.stop.store(true, Ordering::Relaxed);
        let acc = self
            .handle
            .take()
            .expect("session already stopped")
            .join()
            .expect("sampler thread panicked");
        stack::session_end();
        let wall_s = self.t0.elapsed().as_secs_f64();
        let p = Profile {
            interval_s: self.interval.as_secs_f64(),
            wall_s,
            ticks: acc.ticks,
            samples: acc.samples,
            empty_samples: acc.empty_samples,
            dropped: acc.dropped,
            threads_seen: acc.threads_seen,
            truncated: acc.truncated,
            folded: acc.folded,
            root_ticks: acc.root_ticks,
        };
        p.export_metrics();
        p
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // `stop()` takes the handle; only an abandoned session cleans up
        // here so the enable count stays balanced.
        if let Some(h) = self.handle.take() {
            self.stop.store(true, Ordering::Relaxed);
            let _ = h.join();
            stack::session_end();
        }
    }
}

/// The folded result of one sampling session.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Configured sampling interval, seconds.
    pub interval_s: f64,
    /// Session wall time, seconds.
    pub wall_s: f64,
    /// Sampler ticks taken (each tick samples every registered thread).
    pub ticks: u64,
    /// Thread-samples with a non-empty phase stack.
    pub samples: u64,
    /// Thread-samples that found an empty stack (thread idle / outside
    /// any instrumented phase).
    pub empty_samples: u64,
    /// Thread-samples discarded because the seqlock stayed contended.
    pub dropped: u64,
    /// Peak number of registered live threads observed.
    pub threads_seen: usize,
    /// Peak per-stack overflow count (pushes beyond [`MAX_DEPTH`]).
    pub truncated: u64,
    /// Folded stacks: `"root;child;leaf" -> samples`.
    pub folded: BTreeMap<String, u64>,
    /// Per-root wall occupancy: ticks during which at least one thread
    /// had this root phase on its stack. `root_ticks / ticks` estimates
    /// the root's share of session wall time independent of thread count.
    pub root_ticks: BTreeMap<String, u64>,
}

impl Profile {
    /// Flamegraph-compatible folded text (`a;b;c N` lines).
    pub fn to_folded(&self) -> String {
        crate::folded::encode(&self.folded)
    }

    /// Estimated share of session wall time with `root` active on some
    /// thread (0 when nothing was sampled).
    pub fn root_share(&self, root: &str) -> f64 {
        if self.ticks == 0 {
            return 0.0;
        }
        *self.root_ticks.get(root).unwrap_or(&0) as f64 / self.ticks as f64
    }

    /// Samples in which `name` appears anywhere on the stack ("total"
    /// time) and in which it is the leaf ("self" time).
    pub fn phase_counts(&self, name: &str) -> (u64, u64) {
        let mut total = 0;
        let mut self_ = 0;
        for (key, n) in &self.folded {
            let mut frames = key.split(';');
            let last = key.rsplit(';').next().unwrap_or("");
            if frames.any(|f| f == name) {
                total += n;
            }
            if last == name {
                self_ += n;
            }
        }
        (total, self_)
    }

    /// Per-phase self/total sample counts over every phase name seen.
    pub fn phase_table(&self) -> BTreeMap<String, PhaseCounts> {
        let mut out: BTreeMap<String, PhaseCounts> = BTreeMap::new();
        for (key, n) in &self.folded {
            let frames: Vec<&str> = key.split(';').collect();
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            for (i, f) in frames.iter().enumerate() {
                // Count a recursive frame once per stack for total time.
                if seen.insert(f) {
                    out.entry(f.to_string()).or_default().total += n;
                }
                if i == frames.len() - 1 {
                    out.entry(f.to_string()).or_default().self_ += n;
                }
            }
        }
        out
    }

    /// Decompose the samples rooted at `root`: total samples under the
    /// root, samples per direct child phase, and samples where the root
    /// itself was the leaf (un-attributed to any named sub-phase).
    pub fn under_root(&self, root: &str) -> RootBreakdown {
        let mut b = RootBreakdown::default();
        for (key, n) in &self.folded {
            let mut frames = key.split(';');
            if frames.next() != Some(root) {
                continue;
            }
            b.total += n;
            match frames.next() {
                Some(child) => *b.children.entry(child.to_string()).or_insert(0) += n,
                None => b.root_only += n,
            }
        }
        b
    }

    /// Export sampler health as gmg-metrics gauges (no-op while the
    /// metrics registry is disabled).
    pub fn export_metrics(&self) {
        if !gmg_metrics::enabled() {
            return;
        }
        gmg_metrics::gauge("prof_ticks", 0, None, "prof").set(self.ticks as f64);
        gmg_metrics::gauge("prof_samples_taken", 0, None, "prof").set(self.samples as f64);
        gmg_metrics::gauge("prof_samples_dropped", 0, None, "prof").set(self.dropped as f64);
        gmg_metrics::gauge("prof_threads_registered", 0, None, "prof")
            .set(self.threads_seen as f64);
        gmg_metrics::gauge("prof_frames_truncated", 0, None, "prof").set(self.truncated as f64);
    }
}

/// Self/total sample counts for one phase name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCounts {
    /// Samples with the phase anywhere on the stack.
    pub total: u64,
    /// Samples with the phase as the leaf.
    pub self_: u64,
}

/// Samples under one root phase, split by direct child.
#[derive(Debug, Clone, Default)]
pub struct RootBreakdown {
    /// All samples whose stack is rooted at this phase.
    pub total: u64,
    /// Samples per direct child phase (attributed to a named sub-phase).
    pub children: BTreeMap<String, u64>,
    /// Samples where the root was the leaf — time inside the kernel but
    /// outside any named sub-phase.
    pub root_only: u64,
}

impl RootBreakdown {
    /// Fraction of the root's samples attributed to a named sub-phase.
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        1.0 - self.root_only as f64 / self.total as f64
    }

    /// Share of the root's samples in the given child.
    pub fn child_share(&self, child: &str) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.children.get(child).unwrap_or(&0) as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::phase;

    fn busy_ms(ms: u64) {
        let t0 = Instant::now();
        while t0.elapsed() < Duration::from_millis(ms) {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn session_captures_nested_phases() {
        let s = start(Duration::from_micros(100));
        for _ in 0..20 {
            let _root = phase("smp_kernel");
            {
                let _p = phase("smp_hot");
                busy_ms(4);
            }
            {
                let _p = phase("smp_cold");
                busy_ms(1);
            }
        }
        let p = s.stop();
        assert!(p.ticks > 0 && p.samples > 0, "sampler saw nothing: {p:?}");
        let b = p.under_root("smp_kernel");
        assert!(b.total > 0, "kernel root never sampled");
        assert!(
            b.child_share("smp_hot") > b.child_share("smp_cold"),
            "hot phase not dominant: {:?}",
            b.children
        );
        assert!(b.coverage() > 0.5, "coverage too low: {}", b.coverage());
        assert!(p.root_share("smp_kernel") > 0.2);
        let folded = p.to_folded();
        assert!(folded.contains("smp_kernel;smp_hot"), "folded: {folded}");
    }

    #[test]
    fn concurrent_sessions_are_independent() {
        let s1 = start(Duration::from_micros(200));
        let s2 = start(Duration::from_micros(200));
        {
            let _g = phase("smp_shared");
            busy_ms(20);
        }
        let p1 = s1.stop();
        let p2 = s2.stop();
        let (t1, _) = p1.phase_counts("smp_shared");
        let (t2, _) = p2.phase_counts("smp_shared");
        assert!(t1 > 0, "first session missed the phase");
        assert!(t2 > 0, "second session missed the phase");
    }

    #[test]
    fn phase_table_self_vs_total() {
        let mut p = Profile::default();
        p.folded.insert("a;b".into(), 6);
        p.folded.insert("a".into(), 2);
        p.folded.insert("a;b;c".into(), 2);
        let t = p.phase_table();
        assert_eq!(
            t["a"],
            PhaseCounts {
                total: 10,
                self_: 2
            }
        );
        assert_eq!(t["b"], PhaseCounts { total: 8, self_: 6 });
        assert_eq!(t["c"], PhaseCounts { total: 2, self_: 2 });
        let b = p.under_root("a");
        assert_eq!(b.total, 10);
        assert_eq!(b.root_only, 2);
        assert_eq!(b.children["b"], 8);
        assert!((b.coverage() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn export_metrics_publishes_gauges() {
        gmg_metrics::enable();
        let mut p = Profile::default();
        p.ticks = 7;
        p.samples = 5;
        p.export_metrics();
        let text =
            gmg_metrics::prom::render_prometheus(&gmg_metrics::Registry::global().snapshot());
        assert!(text.contains("prof_samples_taken"), "missing gauge: {text}");
        assert!(text.contains("prof_ticks"), "missing gauge: {text}");
    }
}
