//! Alpha–beta+contention model fitting over a scaling sweep.
//!
//! The simulator produces per-V-cycle times at a list of rank counts;
//! this module fits the three-term analytic form the contention model
//! predicts for a weak-scaling sweep:
//!
//! `t(ranks) = α + σ · stages(nodes) + τ · ⌈log₂ ranks⌉`
//!
//! where α absorbs the scale-invariant work (kernels, per-rank posting,
//! uncontended wire time), σ the per-switch-stage penalty (hop latency
//! plus bandwidth taper), and τ the allreduce tree depth cost. The
//! report gates on the relative RMS misfit: if the simulated times
//! cannot be explained by the model that generated them to ≤10%, the
//! observatory is broken and CI should say so.

use gmg_machine::contention::ContentionModel;
use serde::{Deserialize, Serialize};

/// One sweep sample.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SweepPoint {
    pub ranks: usize,
    pub nodes: usize,
    /// Simulated seconds per V-cycle.
    pub seconds: f64,
}

/// Fitted coefficients and fit quality.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScalingFit {
    /// Scale-invariant seconds per V-cycle.
    pub alpha_s: f64,
    /// Seconds per switch stage.
    pub per_stage_s: f64,
    /// Seconds per allreduce tree level.
    pub per_tree_level_s: f64,
    /// Model prediction at each input point, input order.
    pub predicted: Vec<f64>,
    /// Relative RMS misfit over the sweep.
    pub rel_rms_err: f64,
}

impl ScalingFit {
    /// Predicted seconds per V-cycle at an arbitrary scale.
    pub fn predict(&self, ranks: usize, nodes: usize, contention: &ContentionModel) -> f64 {
        self.alpha_s
            + self.per_stage_s * contention.fabric_stages(nodes) as f64
            + self.per_tree_level_s * contention.allreduce_depth(ranks) as f64
    }

    /// Predicted weak-scaling efficiency of `point` against `base`
    /// (per-rank work constant ⇒ efficiency is the time ratio).
    pub fn predicted_weak_efficiency(
        &self,
        base: &SweepPoint,
        point: &SweepPoint,
        contention: &ContentionModel,
    ) -> f64 {
        self.predict(base.ranks, base.nodes, contention)
            / self.predict(point.ranks, point.nodes, contention)
    }
}

/// Least-squares fit of the three-term model over `points`. Needs at
/// least three samples; returns `None` on a degenerate system (e.g.
/// every sample at the same scale).
pub fn fit_scaling_model(
    points: &[SweepPoint],
    contention: &ContentionModel,
) -> Option<ScalingFit> {
    if points.len() < 3 {
        return None;
    }
    let rows: Vec<[f64; 3]> = points
        .iter()
        .map(|p| {
            [
                1.0,
                contention.fabric_stages(p.nodes) as f64,
                contention.allreduce_depth(p.ranks) as f64,
            ]
        })
        .collect();
    // Normal equations AᵀA c = Aᵀy.
    let mut ata = [[0.0f64; 3]; 3];
    let mut aty = [0.0f64; 3];
    for (row, p) in rows.iter().zip(points) {
        for i in 0..3 {
            for j in 0..3 {
                ata[i][j] += row[i] * row[j];
            }
            aty[i] += row[i] * p.seconds;
        }
    }
    let coef = solve3(ata, aty)?;
    let predicted: Vec<f64> = rows
        .iter()
        .map(|r| coef[0] * r[0] + coef[1] * r[1] + coef[2] * r[2])
        .collect();
    let mut sq = 0.0;
    for (pred, p) in predicted.iter().zip(points) {
        if p.seconds > 0.0 {
            let rel = (pred - p.seconds) / p.seconds;
            sq += rel * rel;
        }
    }
    Some(ScalingFit {
        alpha_s: coef[0],
        per_stage_s: coef[1],
        per_tree_level_s: coef[2],
        predicted,
        rel_rms_err: (sq / points.len() as f64).sqrt(),
    })
}

/// 3×3 Gaussian elimination with partial pivoting.
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        let pivot =
            (col..3).max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..3 {
            let f = a[row][col] / a[col][col];
            for k in col..3 {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0f64; 3];
    for row in (0..3).rev() {
        let mut s = b[row];
        for k in row + 1..3 {
            s -= a[row][k] * x[k];
        }
        x[row] = s / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(c: &ContentionModel) -> Vec<SweepPoint> {
        [8usize, 64, 512, 1000, 4096, 10648]
            .iter()
            .map(|&ranks| {
                let nodes = ranks.div_ceil(4);
                let seconds = 0.010
                    + 0.002 * c.fabric_stages(nodes) as f64
                    + 0.0005 * c.allreduce_depth(ranks) as f64;
                SweepPoint {
                    ranks,
                    nodes,
                    seconds,
                }
            })
            .collect()
    }

    #[test]
    fn recovers_exact_coefficients() {
        let c = ContentionModel::slingshot();
        let pts = sweep(&c);
        let fit = fit_scaling_model(&pts, &c).unwrap();
        assert!((fit.alpha_s - 0.010).abs() < 1e-9, "{fit:?}");
        assert!((fit.per_stage_s - 0.002).abs() < 1e-9);
        assert!((fit.per_tree_level_s - 0.0005).abs() < 1e-9);
        assert!(fit.rel_rms_err < 1e-9);
    }

    #[test]
    fn noisy_data_fits_within_tolerance() {
        let c = ContentionModel::slingshot();
        let mut pts = sweep(&c);
        for (i, p) in pts.iter_mut().enumerate() {
            // ±2% deterministic perturbation.
            p.seconds *= 1.0 + 0.02 * if i % 2 == 0 { 1.0 } else { -1.0 };
        }
        let fit = fit_scaling_model(&pts, &c).unwrap();
        assert!(fit.rel_rms_err < 0.05, "err {}", fit.rel_rms_err);
        // Prediction at an unseen scale is sane.
        let t = fit.predict(100_000, 25_000, &c);
        assert!(t > 0.0 && t < 1.0);
    }

    #[test]
    fn degenerate_sweep_is_rejected() {
        let c = ContentionModel::slingshot();
        let pts = vec![
            SweepPoint {
                ranks: 64,
                nodes: 16,
                seconds: 0.01
            };
            5
        ];
        assert!(fit_scaling_model(&pts, &c).is_none());
        assert!(fit_scaling_model(&pts[..2], &c).is_none());
    }

    #[test]
    fn efficiency_prediction_declines_with_scale() {
        let c = ContentionModel::slingshot();
        let pts = sweep(&c);
        let fit = fit_scaling_model(&pts, &c).unwrap();
        let base = pts[0];
        let eff_1k = fit.predicted_weak_efficiency(&base, &pts[3], &c);
        let eff_10k = fit.predicted_weak_efficiency(&base, &pts[5], &c);
        assert!(eff_10k < eff_1k && eff_1k < 1.0);
        assert!(eff_10k > 0.5, "model efficiency collapse: {eff_10k}");
    }
}
