//! The discrete-event schedule simulator.
//!
//! Executes the same V-cycle operation schedule as `gmg-core`'s
//! in-process simulator (descent smooths with communication-avoiding
//! margin tracking, restriction, coarse init, bottom solve, ascent
//! interpolation + smooths, and a per-cycle residual allreduce) — but
//! with a **per-rank virtual clock** for 10k–100k ranks. The schedule
//! is SPMD, so no event queue is needed: each collective phase advances
//! every rank's clock in lockstep, and the only cross-rank coupling —
//! ghost-exchange messages and the allreduce tree — is resolved with a
//! two-pass send/receive sweep per phase. Kernel costs come from
//! `gmg-machine`'s latency-throughput engine; wire costs from
//! `gmg-comm`'s calibrated `NetworkModel` composed with the
//! [`ContentionModel`] (switch stages, link sharing, message-rate
//! limits, allreduce tree depth).
//!
//! Observability is the point: in [`RecordMode::Events`] the simulator
//! emits per-rank [`gmg_flight`] logs — sends, deliveries, and receive
//! waits carrying exact `(rank, msg_seq)` wire sequence numbers, plus
//! ARQ retransmit events for modelled losses — so the *existing* wait
//! classifier, causal-edge extraction, critical path, and Perfetto
//! export run on a simulated 10k-rank world unchanged.
//!
//! Determinism: per-rank compute jitter and message loss are pure
//! functions of `(seed, phase, rank)` via splitmix64 — same config,
//! same timeline, bit for bit.

use std::collections::BTreeMap;

use gmg_brick::BrickOrdering;
use gmg_comm::model::NetworkModel;
use gmg_comm::plan::BrickExchangePlan;
use gmg_flight::waitstate::RankLog;
use gmg_flight::{SynthLog, NO_LEVEL};
use gmg_machine::contention::ContentionModel;
use gmg_machine::gpu::System;
use gmg_machine::timing::KernelTiming;
use gmg_machine::GpuModel;
use gmg_mesh::Point3;
use gmg_stencil::OpKind;
use serde::{Deserialize, Serialize};

use crate::topology::{nodes_for, RankGrid, FACE_DIRS};

/// Message tag carried by allreduce tree hops (exchange messages carry
/// their level as the tag).
pub const ALLREDUCE_TAG: u64 = 0xA11;

/// What the simulator records while it runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecordMode {
    /// Advance clocks only — for timing sweeps and throughput benches.
    ClockOnly,
    /// Additionally build per-rank flight logs: comm events (sends,
    /// arrivals, waits, ARQ) on every rank; compute spans too for ranks
    /// inside the configured window.
    Events,
}

/// Configuration of one simulated run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScaleConfig {
    pub system: System,
    /// Simulated MPI ranks (one GPU each).
    pub ranks: usize,
    pub ranks_per_node: usize,
    /// Per-rank subdomain extent at the finest level.
    pub sub_extent: Point3,
    pub num_levels: usize,
    pub smooths_per_level: usize,
    pub bottom_smooths: usize,
    pub vcycles: usize,
    pub contention: ContentionModel,
    pub communication_avoiding: bool,
    /// Offload levels with at most this many cells per rank to the host
    /// CPU (the coarse-level ablation); `None` = all-GPU.
    pub cpu_offload_below_cells: Option<usize>,
    pub seed: u64,
    /// Per-kernel multiplicative compute jitter amplitude, percent
    /// (uniform in `±jitter_pct`); models OS noise / clock variance.
    pub jitter_pct: f64,
    /// Fraction of exchange messages lost once and recovered by ARQ
    /// retransmit (deterministically seeded).
    pub loss_rate: f64,
    /// Planted per-level compute slowdown `(level, percent)` — the
    /// attribution self-test's positive polarity.
    pub inject_slowdown: Option<(usize, f64)>,
    pub record: RecordMode,
    /// Rank window `[lo, hi)` whose logs also carry compute spans (the
    /// Perfetto export window).
    pub window: (usize, usize),
}

impl ScaleConfig {
    /// Observatory defaults at `ranks` ranks: 128³ per rank, 6 levels,
    /// communication-avoiding, Slingshot-class contention, 2% jitter,
    /// 0.2% message loss. Sized so the 10k-rank event run fits
    /// laptop-class memory.
    pub fn observatory(system: System, ranks: usize) -> ScaleConfig {
        ScaleConfig {
            system,
            ranks,
            ranks_per_node: 4,
            sub_extent: Point3::splat(128),
            num_levels: 6,
            smooths_per_level: 6,
            bottom_smooths: 24,
            vcycles: 2,
            contention: ContentionModel::slingshot(),
            communication_avoiding: true,
            cpu_offload_below_cells: None,
            seed: 7,
            jitter_pct: 2.0,
            loss_rate: 0.002,
            inject_slowdown: None,
            record: RecordMode::ClockOnly,
            window: (0, 8),
        }
    }

    pub fn nodes(&self) -> usize {
        nodes_for(self.ranks, self.ranks_per_node)
    }

    /// Per-rank extent at level `li`.
    pub fn extent_at(&self, li: usize) -> Point3 {
        let s = 1i64 << li;
        Point3::new(
            self.sub_extent.x / s,
            self.sub_extent.y / s,
            self.sub_extent.z / s,
        )
    }

    /// Brick dimension at level `li` (clamped to the shrinking extent).
    pub fn brick_dim_at(&self, li: usize) -> i64 {
        let e = self.extent_at(li);
        let min_axis = e.x.min(e.y).min(e.z);
        self.system.gpu().optimal_brick_dim.min(min_axis)
    }

    /// Whether level `li` runs on the host CPU under this config.
    pub fn level_on_cpu(&self, li: usize) -> bool {
        match self.cpu_offload_below_cells {
            Some(t) => (self.extent_at(li).product() as usize) <= t,
            None => false,
        }
    }
}

/// Host-CPU constants for offloaded coarse levels — mirrors
/// `gmg-core`'s schedule `CpuModel` (EPYC-class socket).
const CPU_KERNEL_OVERHEAD_S: f64 = 0.5e-6;
const CPU_DRAM_GBS: f64 = 180.0;

/// Per-level decomposition of one simulated run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LevelDecomp {
    pub level: usize,
    pub cells_per_rank: usize,
    /// Mean simulated compute seconds per rank (jitter + any injection).
    pub compute_mean_s: f64,
    /// Analytic compute seconds per rank from the same cost model with
    /// zero jitter and no injection — the attribution baseline.
    pub compute_predicted_s: f64,
    /// Mean exchange seconds per rank (posting + receive waits).
    pub exchange_mean_s: f64,
    /// Exchange invocations per rank over the run.
    pub exchanges: usize,
}

/// Result of one simulated run. (Not serde: it carries rank logs and
/// interned-key tables; the bench driver serializes the summary fields
/// it needs explicitly.)
#[derive(Clone, Debug)]
pub struct ScaleResult {
    pub ranks: usize,
    pub nodes: usize,
    pub grid: [usize; 3],
    pub vcycles: usize,
    /// Slowest rank's final clock — the job's wall time.
    pub total_seconds: f64,
    pub per_vcycle_seconds: f64,
    /// Mean final clock across ranks.
    pub mean_seconds: f64,
    pub levels: Vec<LevelDecomp>,
    /// Mean per-rank allreduce seconds over the run.
    pub allreduce_mean_s: f64,
    /// Mean per-rank receive-wait seconds over the run.
    pub wait_mean_s: f64,
    /// Modelled timeline entries processed (kernel executions, message
    /// legs, waits) — the simulator-throughput denominator.
    pub sim_events: u64,
    /// Aggregate throughput: global finest cells × vcycles / wall.
    pub gstencil_per_s: f64,
    /// Per-rank flight logs ([`RecordMode::Events`] only).
    pub logs: Option<Vec<RankLog>>,
    /// Per-`(level, op)` per-rank simulated seconds, for the aggregate
    /// imbalance table (`gmg_metrics::imbalance_from_seconds`).
    pub op_rank_seconds: BTreeMap<(usize, &'static str), Vec<f64>>,
}

impl ScaleResult {
    /// Weak-scaling parallel efficiency against a smaller run of the
    /// same per-rank problem.
    pub fn weak_efficiency(&self, baseline: &ScaleResult) -> f64 {
        let a = self.gstencil_per_s / self.ranks as f64;
        let b = baseline.gstencil_per_s / baseline.ranks as f64;
        a / b
    }

    /// Strong-scaling efficiency: speedup over baseline divided by the
    /// rank ratio.
    pub fn strong_efficiency(&self, baseline: &ScaleResult) -> f64 {
        (baseline.total_seconds / self.total_seconds) / (self.ranks as f64 / baseline.ranks as f64)
    }

    /// Levels whose simulated mean compute exceeds the analytic
    /// prediction by more than `threshold` (fractional, e.g. 0.08).
    /// Jitter is symmetric, so a clean run's excess is ~0 and the set
    /// is empty; a planted slowdown shows up as exactly its level.
    pub fn flagged_levels(&self, threshold: f64) -> Vec<usize> {
        self.levels
            .iter()
            .filter(|l| {
                l.compute_predicted_s > 0.0
                    && (l.compute_mean_s - l.compute_predicted_s) / l.compute_predicted_s
                        > threshold
            })
            .map(|l| l.level)
            .collect()
    }

    /// Rows for [`gmg_metrics::analysis::imbalance_from_seconds`].
    pub fn imbalance_rows(&self) -> impl Iterator<Item = (usize, String, usize, f64)> + '_ {
        self.op_rank_seconds
            .iter()
            .flat_map(|(&(level, op), per_rank)| {
                per_rank
                    .iter()
                    .enumerate()
                    .filter(|(_, &s)| s > 0.0)
                    .map(move |(rank, &s)| (level, op.to_string(), rank, s))
            })
    }
}

/// splitmix64 — the deterministic noise source.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Uniform in [0, 1) from a hash of `(seed, phase, rank)`.
fn unit_noise(seed: u64, phase: u64, rank: u64) -> f64 {
    let h = splitmix64(
        seed ^ phase.wrapping_mul(0xD6E8FEB86659FD93) ^ rank.wrapping_mul(0xCA5A826395121157),
    );
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Precomputed per-level message-path costs.
struct LevelCost {
    /// Bytes per modelled face message: the 26-direction plan's total
    /// bytes folded onto the six face-class messages the event stream
    /// carries (edge/corner payloads ride with the faces).
    face_bytes: f64,
    /// Sender-side cost to post one message (software overhead +
    /// NIC message-rate queueing).
    post_s: f64,
    /// Wire time for one face message: switch-stage traversal + payload
    /// at the contended bandwidth (+ host staging when not GPU-aware).
    transit_s: f64,
    /// Receiver-side matching/delivery share per message.
    deliver_s: f64,
    /// Retransmit timeout added to a lost message's delivery.
    rto_s: f64,
}

struct Sim<'a> {
    cfg: &'a ScaleConfig,
    gpu: GpuModel,
    grid: RankGrid,
    neighbors: Vec<[usize; FACE_DIRS]>,
    costs: Vec<LevelCost>,
    /// One allreduce tree hop (contention hop + per-message software).
    allreduce_hop: f64,
    clock: Vec<f64>,
    /// Per-level communication-avoiding ghost margin (SPMD: congruent
    /// across ranks).
    margins: Vec<i64>,
    /// Per-rank wire sequence counter (unique per sender).
    seq: Vec<u64>,
    logs: Option<Vec<SynthLog>>,
    phase: u64,
    compute_s: Vec<Vec<f64>>,
    predicted_s: Vec<f64>,
    exchange_s: Vec<Vec<f64>>,
    exchanges: Vec<usize>,
    wait_s: Vec<f64>,
    allreduce_s: Vec<f64>,
    op_rank_s: BTreeMap<(usize, &'static str), Vec<f64>>,
    events: u64,
    // Reused per-exchange scratch: inbound messages grouped by receiver.
    inbound: Vec<Vec<InMsg>>,
}

#[derive(Clone, Copy)]
struct InMsg {
    /// Receiver-side face direction (fixed receive order).
    dir: usize,
    src: usize,
    msg_seq: u64,
    arrive_ts: f64,
}

impl<'a> Sim<'a> {
    fn new(cfg: &'a ScaleConfig) -> Self {
        let gpu = cfg.system.gpu();
        let grid = RankGrid::near_cubic(cfg.ranks);
        let neighbors = (0..cfg.ranks).map(|r| grid.face_neighbors(r)).collect();
        let net = cfg.system_network();
        let nodes = cfg.nodes();
        let costs = (0..cfg.num_levels)
            .map(|li| cfg.level_cost(li, &net, nodes))
            .collect();
        let logs = match cfg.record {
            RecordMode::ClockOnly => None,
            RecordMode::Events => Some((0..cfg.ranks).map(SynthLog::new).collect()),
        };
        let allreduce_hop = cfg.contention.allreduce_hop_s + net.per_message_s;
        Sim {
            cfg,
            gpu,
            grid,
            neighbors,
            costs,
            allreduce_hop,
            clock: vec![0.0; cfg.ranks],
            margins: vec![0; cfg.num_levels],
            seq: vec![0; cfg.ranks],
            logs,
            phase: 0,
            compute_s: vec![vec![0.0; cfg.ranks]; cfg.num_levels],
            predicted_s: vec![0.0; cfg.num_levels],
            exchange_s: vec![vec![0.0; cfg.ranks]; cfg.num_levels],
            exchanges: vec![0; cfg.num_levels],
            wait_s: vec![0.0; cfg.ranks],
            allreduce_s: vec![0.0; cfg.ranks],
            op_rank_s: BTreeMap::new(),
            events: 0,
            inbound: vec![Vec::new(); cfg.ranks],
        }
    }

    fn ns(t: f64) -> u64 {
        (t * 1e9).round() as u64
    }

    /// Modelled base time of one kernel at level `li` (no jitter).
    fn kernel_time(&self, li: usize, op: OpKind, points: usize) -> f64 {
        if self.cfg.level_on_cpu(li) {
            let bytes = op.traffic().per_fine_point().bytes_per_point();
            CPU_KERNEL_OVERHEAD_S + points as f64 * bytes / (CPU_DRAM_GBS * 1e9)
        } else {
            KernelTiming::model(&self.gpu, op, points).time_s
        }
    }

    /// One SPMD compute phase: every rank runs the same kernel, with
    /// per-rank jitter and (if planted) the per-level injection.
    fn compute_phase(&mut self, li: usize, op: &'static str, base_t: f64, points: usize) {
        self.phase += 1;
        self.predicted_s[li] += base_t;
        let inject = match self.cfg.inject_slowdown {
            Some((l, pct)) if l == li => 1.0 + pct / 100.0,
            _ => 1.0,
        };
        let n = self.cfg.ranks;
        let per_op = self
            .op_rank_s
            .entry((li, op))
            .or_insert_with(|| vec![0.0; n]);
        let (wlo, whi) = self.cfg.window;
        for r in 0..n {
            let t = base_t * inject * {
                if self.cfg.jitter_pct == 0.0 {
                    1.0
                } else {
                    let u = unit_noise(self.cfg.seed, self.phase, r as u64);
                    1.0 + self.cfg.jitter_pct / 100.0 * (2.0 * u - 1.0)
                }
            };
            let ts = self.clock[r];
            self.clock[r] = ts + t;
            self.compute_s[li][r] += t;
            per_op[r] += t;
            if let Some(logs) = &mut self.logs {
                if (wlo..whi).contains(&r) {
                    logs[r].compute(op, li as u32, Self::ns(ts), Self::ns(t), points as u64);
                }
            }
        }
        self.events += n as u64;
    }

    /// Region cell count for a smooth at the current CA margin.
    fn region_points(&self, li: usize) -> usize {
        let e = self.cfg.extent_at(li);
        if self.cfg.communication_avoiding {
            let m = self.margins[li];
            let g = 2 * (m - 1);
            ((e.x + g) * (e.y + g) * (e.z + g)) as usize
        } else {
            (e.x * e.y * e.z) as usize
        }
    }

    /// One ghost exchange at level `li`: each rank posts its six face
    /// messages, then receives its six inbound messages in fixed
    /// direction order, waiting on each.
    fn exchange_phase(&mut self, li: usize) {
        self.phase += 1;
        let cost = &self.costs[li];
        let n = self.cfg.ranks;
        let tag = li as u64;
        // Pass 1: posts. All sends of the phase resolve before any
        // receive is examined (receivers need senders' timestamps).
        for r in 0..n {
            for (i, &dst) in self.neighbors[r].iter().enumerate() {
                self.clock[r] += cost.post_s;
                self.exchange_s[li][r] += cost.post_s;
                self.seq[r] += 1;
                let msg_seq = self.seq[r];
                let send_ts = self.clock[r];
                // Loss fate is pure in (seed, phase-independent stream):
                // keyed by sender and wire seq so retries of the same
                // config replay identically.
                let lost = self.cfg.loss_rate > 0.0
                    && unit_noise(self.cfg.seed ^ 0x10_55, msg_seq, r as u64) < self.cfg.loss_rate;
                let arrive_ts = send_ts + cost.transit_s + if lost { cost.rto_s } else { 0.0 };
                if let Some(logs) = &mut self.logs {
                    logs[r].send(
                        li as u32,
                        Self::ns(send_ts),
                        dst as u32,
                        tag,
                        msg_seq,
                        cost.face_bytes as u64,
                    );
                    if lost {
                        logs[r].arq(
                            "arq:retransmit",
                            Self::ns(send_ts + cost.rto_s),
                            dst as u32,
                            msg_seq,
                        );
                    }
                }
                self.inbound[dst].push(InMsg {
                    dir: i ^ 1,
                    src: r,
                    msg_seq,
                    arrive_ts,
                });
            }
        }
        // Pass 2: receives, in fixed face order per rank.
        for r in 0..n {
            let mut msgs = std::mem::take(&mut self.inbound[r]);
            msgs.sort_by_key(|m| (m.dir, m.src));
            let mut cursor = self.clock[r];
            for m in &msgs {
                let ready = m.arrive_ts + cost.deliver_s;
                let wait_start = cursor;
                cursor = cursor.max(ready);
                let waited = cursor - wait_start;
                self.wait_s[r] += waited;
                self.exchange_s[li][r] += waited;
                if let Some(logs) = &mut self.logs {
                    logs[r].arrive(
                        li as u32,
                        Self::ns(m.arrive_ts),
                        m.src as u32,
                        tag,
                        m.msg_seq,
                        cost.face_bytes as u64,
                    );
                    logs[r].recv_wait(
                        li as u32,
                        Self::ns(wait_start),
                        Self::ns(cursor) - Self::ns(wait_start),
                        m.src as u32,
                        tag,
                        m.msg_seq,
                    );
                }
            }
            self.clock[r] = cursor;
            msgs.clear();
            self.inbound[r] = msgs; // keep the allocation for the next phase
        }
        self.exchanges[li] += 1;
        self.events += n as u64 * (FACE_DIRS as u64) * 3;
    }

    /// Coarse-level initialization (zero fill of owned cells + ghost
    /// shell) — same for every rank; resets the CA margin.
    fn init_zero(&mut self, li: usize) {
        let cells = self.cfg.extent_at(li).product() as f64;
        let t = if self.cfg.level_on_cpu(li) {
            CPU_KERNEL_OVERHEAD_S + cells * 8.0 / (CPU_DRAM_GBS * 1e9)
        } else {
            self.gpu.kernel_overhead_us * 1e-6 + cells * 8.0 / (self.gpu.hbm_gbs * 1e9)
        };
        self.compute_phase(li, "initZero", t, cells as usize);
        self.margins[li] = self.cfg.brick_dim_at(li);
    }

    fn smooth_pass(&mut self, li: usize, n: usize, fused: bool) {
        let ca = self.cfg.communication_avoiding;
        let ghost = self.cfg.brick_dim_at(li);
        for _ in 0..n {
            if !ca || self.margins[li] < 1 {
                self.exchange_phase(li);
                self.margins[li] = ghost;
            }
            let points = self.region_points(li);
            let apply_t = self.kernel_time(li, OpKind::ApplyOp, points);
            self.compute_phase(li, OpKind::ApplyOp.name(), apply_t, points);
            let smooth_op = if fused {
                OpKind::SmoothResidual
            } else {
                OpKind::Smooth
            };
            let smooth_t = self.kernel_time(li, smooth_op, points);
            self.compute_phase(li, smooth_op.name(), smooth_t, points);
            self.margins[li] -= 1;
        }
    }

    /// Per-cycle residual allreduce over a binomial tree (reduce to
    /// rank 0, broadcast back). Tree hops are 8-byte latency-bound
    /// messages; the waits this phase records are where late-sender
    /// time concentrates at scale.
    fn allreduce_phase(&mut self) {
        self.phase += 1;
        let n = self.cfg.ranks;
        if n <= 1 {
            return;
        }
        let hop = self.allreduce_hop;
        let before: Vec<f64> = self.clock.clone();
        // Reduce: children (higher ids) feed parents. Descending order
        // guarantees every child's send is resolved before its parent
        // (parent id = child id with the lowest set bit cleared).
        let mut ready = self.clock.clone();
        let mut sent_at = vec![f64::NAN; n];
        for r in (1..n).rev() {
            let p = r & (r - 1);
            self.seq[r] += 1;
            let msg_seq = self.seq[r];
            let send_ts = ready[r];
            sent_at[r] = send_ts;
            let arrive = send_ts + hop;
            let wait_start = ready[p];
            let wait_end = wait_start.max(arrive);
            if let Some(logs) = &mut self.logs {
                logs[r].send(
                    NO_LEVEL,
                    Self::ns(send_ts),
                    p as u32,
                    ALLREDUCE_TAG,
                    msg_seq,
                    8,
                );
                logs[p].arrive(
                    NO_LEVEL,
                    Self::ns(arrive),
                    r as u32,
                    ALLREDUCE_TAG,
                    msg_seq,
                    8,
                );
                logs[p].recv_wait(
                    NO_LEVEL,
                    Self::ns(wait_start),
                    Self::ns(wait_end) - Self::ns(wait_start),
                    r as u32,
                    ALLREDUCE_TAG,
                    msg_seq,
                );
            }
            ready[p] = wait_end;
            self.events += 3;
        }
        // Broadcast: parents (lower ids) feed children, ascending.
        let mut bcast = vec![0.0f64; n];
        bcast[0] = ready[0];
        for r in 1..n {
            let p = r & (r - 1);
            self.seq[p] += 1;
            let msg_seq = self.seq[p];
            let send_ts = bcast[p];
            let arrive = send_ts + hop;
            // A non-root rank has been idle since it fed its parent.
            let wait_start = sent_at[r];
            let wait_end = wait_start.max(arrive);
            if let Some(logs) = &mut self.logs {
                logs[p].send(
                    NO_LEVEL,
                    Self::ns(send_ts),
                    r as u32,
                    ALLREDUCE_TAG,
                    msg_seq,
                    8,
                );
                logs[r].arrive(
                    NO_LEVEL,
                    Self::ns(arrive),
                    p as u32,
                    ALLREDUCE_TAG,
                    msg_seq,
                    8,
                );
                logs[r].recv_wait(
                    NO_LEVEL,
                    Self::ns(wait_start),
                    Self::ns(wait_end) - Self::ns(wait_start),
                    p as u32,
                    ALLREDUCE_TAG,
                    msg_seq,
                );
            }
            bcast[r] = wait_end;
            self.events += 3;
        }
        for r in 0..n {
            let end = if r == 0 { ready[0] } else { bcast[r] };
            self.allreduce_s[r] += end - before[r];
            self.clock[r] = end;
        }
    }

    fn vcycle(&mut self) {
        let top = self.cfg.num_levels - 1;
        let smooths = self.cfg.smooths_per_level;
        for l in 0..top {
            self.smooth_pass(l, smooths, true);
            let fine_points = self.cfg.extent_at(l).product() as usize;
            let t = self.kernel_time(l, OpKind::Restriction, fine_points);
            self.compute_phase(l, OpKind::Restriction.name(), t, fine_points);
            self.init_zero(l + 1);
            if self.cfg.communication_avoiding {
                self.exchange_phase(l + 1); // b ghost after restriction
            }
        }
        self.smooth_pass(top, self.cfg.bottom_smooths, false);
        for l in (0..top).rev() {
            let fine_points = self.cfg.extent_at(l).product() as usize;
            let t = self.kernel_time(l, OpKind::InterpolationIncrement, fine_points);
            self.compute_phase(l, OpKind::InterpolationIncrement.name(), t, fine_points);
            self.margins[l] = 0; // interpolation invalidates the ghost shell
            self.smooth_pass(l, smooths, true);
        }
        self.allreduce_phase();
    }
}

impl ScaleConfig {
    /// The calibrated per-rank network model for this system (no
    /// `at_scale` derate: fabric-scale effects come from the explicit
    /// [`ContentionModel`] instead of the legacy per-doubling heuristic).
    pub fn system_network(&self) -> NetworkModel {
        match self.system {
            System::Perlmutter => NetworkModel::perlmutter(),
            System::Frontier => NetworkModel::frontier(),
            System::Sunspot => NetworkModel::sunspot(),
        }
    }

    fn level_cost(&self, li: usize, net: &NetworkModel, nodes: usize) -> LevelCost {
        let plan = BrickExchangePlan::new(
            self.extent_at(li),
            self.brick_dim_at(li),
            1,
            BrickOrdering::SurfaceMajor,
        );
        let total_bytes: usize = plan.message_bytes.iter().sum();
        // The timing-relevant payload is the full 26-direction plan;
        // the event stream models the six face-class messages, so the
        // edge/corner bytes ride with the faces.
        let face_bytes = total_bytes as f64 / FACE_DIRS as f64;
        let handshake = if net.hardware_matching {
            net.rdzv_handshake_s * 0.5
        } else {
            net.rdzv_handshake_s
        };
        let on_cpu = self.level_on_cpu(li);
        let c = &self.contention;
        let (alpha_c, beta_gbs) = c.contended_alpha_beta(0.0, net.sustained_gbs, nodes);
        let mut transit_s = alpha_c + face_bytes / (beta_gbs * 1e9);
        let mut post_s = net.per_message_s + handshake + c.message_rate_delay_s(1);
        let mut deliver_s = net.base_latency_s / FACE_DIRS as f64;
        if on_cpu {
            // Host-resident level: no device staging and a shorter
            // software path — mirror the core schedule's 0.5× host
            // discount.
            post_s *= 0.5;
            deliver_s *= 0.5;
        } else if !net.gpu_aware {
            // Surface crosses PCIe on both sides.
            transit_s += net.staging_latency_s / FACE_DIRS as f64
                + 2.0 * face_bytes / (net.staging_gbs * 1e9);
        }
        // Retransmit timeout: a few round trips of the contended path.
        let rto_s = 4.0 * (net.base_latency_s + transit_s);
        LevelCost {
            face_bytes,
            post_s,
            transit_s,
            deliver_s,
            rto_s,
        }
    }
}

/// Run the simulation.
pub fn simulate(cfg: &ScaleConfig) -> ScaleResult {
    assert!(cfg.num_levels >= 1 && cfg.ranks >= 1 && cfg.vcycles >= 1);
    for li in 0..cfg.num_levels {
        let e = cfg.extent_at(li);
        assert!(
            e.x >= 1 && e.y >= 1 && e.z >= 1,
            "level {li} extent {e:?} vanished; reduce num_levels"
        );
    }
    if cfg.record == RecordMode::Events {
        let (lo, hi) = cfg.window;
        assert!(
            lo <= hi && hi <= cfg.ranks,
            "window {lo}..{hi} out of range"
        );
    }
    let mut sim = Sim::new(cfg);
    for _ in 0..cfg.vcycles {
        sim.vcycle();
    }
    let n = cfg.ranks as f64;
    let mean = |v: &[f64]| v.iter().sum::<f64>() / n;
    let levels = (0..cfg.num_levels)
        .map(|li| LevelDecomp {
            level: li,
            cells_per_rank: cfg.extent_at(li).product() as usize,
            compute_mean_s: mean(&sim.compute_s[li]),
            compute_predicted_s: sim.predicted_s[li],
            exchange_mean_s: mean(&sim.exchange_s[li]),
            exchanges: sim.exchanges[li],
        })
        .collect();
    let total_seconds = sim.clock.iter().cloned().fold(0.0f64, f64::max);
    let finest_cells_global = cfg.sub_extent.product() as f64 * n;
    ScaleResult {
        ranks: cfg.ranks,
        nodes: cfg.nodes(),
        grid: sim.grid.dims,
        vcycles: cfg.vcycles,
        total_seconds,
        per_vcycle_seconds: total_seconds / cfg.vcycles as f64,
        mean_seconds: mean(&sim.clock),
        levels,
        allreduce_mean_s: mean(&sim.allreduce_s),
        wait_mean_s: mean(&sim.wait_s),
        sim_events: sim.events,
        gstencil_per_s: finest_cells_global * cfg.vcycles as f64 / total_seconds / 1e9,
        logs: sim.logs.map(gmg_flight::into_logs),
        op_rank_seconds: sim.op_rank_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmg_flight::waitstate::{analyze, WaitClass};

    fn tiny(ranks: usize) -> ScaleConfig {
        let mut c = ScaleConfig::observatory(System::Perlmutter, ranks);
        c.sub_extent = Point3::splat(32);
        c.num_levels = 3;
        c.smooths_per_level = 4;
        c.bottom_smooths = 8;
        c.vcycles = 1;
        c
    }

    #[test]
    fn determinism_bit_for_bit() {
        let cfg = tiny(27);
        let a = simulate(&cfg);
        let b = simulate(&cfg);
        assert_eq!(a.total_seconds.to_bits(), b.total_seconds.to_bits());
        assert_eq!(a.sim_events, b.sim_events);
    }

    #[test]
    fn event_logs_classify_fully() {
        let mut cfg = tiny(27);
        cfg.record = RecordMode::Events;
        cfg.window = (0, 4);
        let r = simulate(&cfg);
        let logs = r.logs.as_ref().unwrap();
        assert_eq!(logs.len(), 27);
        let wa = analyze(logs);
        assert!(wa.total.count > 0);
        assert_eq!(
            wa.total.unattributed_ns, 0,
            "synthetic logs are complete: every wait must attribute"
        );
        assert!(wa.total.classified_fraction() >= 0.999);
        // Jitter + wire time must surface real wait classes.
        assert!(
            wa.total.class_ns(WaitClass::LateSender) + wa.total.class_ns(WaitClass::Starvation) > 0
        );
        // Window ranks carry compute spans; outside ranks comm only.
        use gmg_flight::EventKind;
        assert!(logs[0].events.iter().any(|e| e.kind == EventKind::Compute));
        assert!(logs[10].events.iter().all(|e| e.kind != EventKind::Compute));
    }

    #[test]
    fn loss_shows_up_as_arq_stall() {
        let mut cfg = tiny(27);
        cfg.record = RecordMode::Events;
        cfg.loss_rate = 0.05;
        let r = simulate(&cfg);
        let wa = analyze(r.logs.as_ref().unwrap());
        assert!(
            wa.total.class_ns(WaitClass::ArqStall) > 0,
            "5% modelled loss must produce arq-stall wait time"
        );
        // And zero loss produces none.
        cfg.loss_rate = 0.0;
        let wa0 = analyze(simulate(&cfg).logs.as_ref().unwrap());
        assert_eq!(wa0.total.class_ns(WaitClass::ArqStall), 0);
    }

    #[test]
    fn injection_flags_exactly_its_level() {
        let mut clean = tiny(64);
        clean.vcycles = 2;
        let r_clean = simulate(&clean);
        assert!(
            r_clean.flagged_levels(0.08).is_empty(),
            "clean run must not flag: {:?}",
            r_clean.flagged_levels(0.08)
        );
        let mut hot = clean.clone();
        hot.inject_slowdown = Some((1, 30.0));
        let r_hot = simulate(&hot);
        assert_eq!(r_hot.flagged_levels(0.08), vec![1]);
    }

    #[test]
    fn weak_scaling_time_grows_gently() {
        let t = |ranks: usize| simulate(&tiny(ranks)).per_vcycle_seconds;
        let t8 = t(8);
        let t512 = t(512);
        assert!(t512 > t8, "scale must cost something");
        // Tiny 32³ boxes are comm-bound, so the growth is real but must
        // stay bounded: deeper allreduce tree + one extra fabric stage,
        // not a collapse.
        assert!(
            t512 < 2.0 * t8,
            "weak scaling should not collapse: {t8} -> {t512}"
        );
    }

    #[test]
    fn allreduce_grows_with_tree_depth() {
        let a = simulate(&tiny(8)).allreduce_mean_s;
        let b = simulate(&tiny(512)).allreduce_mean_s;
        assert!(b > a, "deeper tree must cost more: {a} vs {b}");
    }

    #[test]
    fn clock_only_matches_event_mode_timing() {
        let mut cfg = tiny(27);
        cfg.record = RecordMode::ClockOnly;
        let a = simulate(&cfg);
        cfg.record = RecordMode::Events;
        let b = simulate(&cfg);
        assert_eq!(a.total_seconds.to_bits(), b.total_seconds.to_bits());
    }

    #[test]
    fn cpu_offload_cuts_coarse_level_time() {
        let mut gpu_only = tiny(64);
        gpu_only.system = System::Sunspot;
        // Zero noise: with jitter, coarse-level speed differences shift
        // inter-rank skew and couple into level-0 ascent waits.
        gpu_only.jitter_pct = 0.0;
        gpu_only.loss_rate = 0.0;
        let mut off = gpu_only.clone();
        off.cpu_offload_below_cells = Some(8 * 8 * 8);
        assert!(off.level_on_cpu(2));
        let g = simulate(&gpu_only);
        let o = simulate(&off);
        let last = gpu_only.num_levels - 1;
        let total =
            |r: &ScaleResult, l: usize| r.levels[l].compute_mean_s + r.levels[l].exchange_mean_s;
        assert!(total(&o, last) < total(&g, last));
        assert!((total(&o, 0) - total(&g, 0)).abs() < 1e-12);
    }

    #[test]
    fn imbalance_rows_feed_metrics() {
        let mut cfg = tiny(8);
        cfg.jitter_pct = 5.0;
        let r = simulate(&cfg);
        let rows = gmg_metrics::analysis::imbalance_from_seconds(r.imbalance_rows(), r.ranks);
        assert!(!rows.is_empty());
        let smooth = rows
            .iter()
            .find(|x| x.level == 0 && x.op == "smooth+residual")
            .expect("smooth row");
        assert!(smooth.factor >= 1.0 && smooth.factor < 1.2);
    }
}
