//! # gmg-scale — the 10k-rank scaling observatory
//!
//! A discrete-event simulator that executes the *real* V-cycle schedule
//! (per-level smooths, halo exchanges, restriction/prolongation, the
//! bottom-solve allreduce) for tens of thousands of simulated ranks
//! against the [`gmg_machine`] cost model extended with a fabric
//! [`ContentionModel`](gmg_machine::ContentionModel) — link sharing,
//! switch radix, allreduce tree depth, per-NIC message-rate limits.
//!
//! The point is not a new analysis stack: the simulator emits its
//! results through the **existing pipes**. Ranks inside a configurable
//! window record synthetic flight-recorder logs
//! ([`gmg_flight::SynthLog`]) with exact `(rank, msg_seq)` send↔recv
//! identity, so the output feeds the production wait-state classifier,
//! `gmg_metrics::analysis::critical_path_with_edges`, per-level
//! imbalance, and Perfetto export with flow arrows — the same tooling
//! that debugs 8-rank real runs debugs 10k-rank simulated ones.
//!
//! Module map:
//!
//! - [`topology`] — near-cubic periodic rank grids and rank↔node maps
//!   at arbitrary rank counts.
//! - [`sim`] — the per-phase virtual-clock simulator: deterministic
//!   jitter and loss, communication-avoiding ghost margins, CPU
//!   offload of coarse levels, planted per-level slowdown injection,
//!   and analytic per-level predictions for attribution.
//! - [`fit`] — least-squares fit of the alpha–beta+contention model
//!   over a scaling sweep, with relative-RMS misfit for gating.
//!
//! The `gmg-bench` `scaling` binary drives weak/strong sweeps over
//! this crate and renders the gated scaling report.

pub mod fit;
pub mod sim;
pub mod topology;

pub use fit::{fit_scaling_model, ScalingFit, SweepPoint};
pub use sim::{simulate, LevelDecomp, RecordMode, ScaleConfig, ScaleResult, ALLREDUCE_TAG};
pub use topology::{node_of, nodes_for, RankGrid, FACE_DIRS};
