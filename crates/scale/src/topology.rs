//! Rank topology for simulated worlds: a near-cubic periodic 3D process
//! grid at arbitrary rank counts, plus the rank↔node mapping.
//!
//! The real rank runtime builds its process grid from
//! `gmg_mesh::decomp`; at 10k–100k simulated ranks we only need the
//! *shape* — who neighbors whom across the six faces — so this module
//! factors any rank count into the most cubic `dx × dy × dz` box and
//! serves periodic face neighbors in a fixed direction order.

use serde::{Deserialize, Serialize};

/// Receiver-side face-direction order used everywhere in the simulator:
/// `-x, +x, -y, +y, -z, +z`. Opposite of direction `i` is `i ^ 1`.
pub const FACE_DIRS: usize = 6;

/// A periodic 3D process grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankGrid {
    pub dims: [usize; 3],
}

impl RankGrid {
    /// Factor `n` ranks into the most cubic `dx ≤ dy ≤ dz` box (the
    /// triple minimizing `dz/dx`). Exact: every rank is used, so `n`
    /// must equal `dx·dy·dz` — any `n ≥ 1` works because `1×1×n` is
    /// always available.
    pub fn near_cubic(n: usize) -> RankGrid {
        assert!(n >= 1, "rank grid needs at least one rank");
        let mut best = [1, 1, n];
        let mut best_ratio = n as f64;
        let mut dx = 1;
        while dx * dx * dx <= n {
            if n % dx == 0 {
                let rest = n / dx;
                let mut dy = dx;
                while dy * dy <= rest {
                    if rest % dy == 0 {
                        let dz = rest / dy;
                        let ratio = dz as f64 / dx as f64;
                        if ratio < best_ratio {
                            best_ratio = ratio;
                            best = [dx, dy, dz];
                        }
                    }
                    dy += 1;
                }
            }
            dx += 1;
        }
        RankGrid { dims: best }
    }

    pub fn len(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rank → grid coordinates (x fastest).
    pub fn coords(&self, rank: usize) -> [usize; 3] {
        let [dx, dy, _] = self.dims;
        [rank % dx, (rank / dx) % dy, rank / (dx * dy)]
    }

    /// Grid coordinates → rank.
    pub fn rank(&self, c: [usize; 3]) -> usize {
        let [dx, dy, _] = self.dims;
        c[0] + dx * (c[1] + dy * c[2])
    }

    /// Periodic face neighbors of `rank` in [`FACE_DIRS`] order
    /// (`-x, +x, -y, +y, -z, +z`). Degenerate axes (extent 1) map a
    /// rank to itself, mirroring periodic wrap on a one-cell axis.
    pub fn face_neighbors(&self, rank: usize) -> [usize; FACE_DIRS] {
        let c = self.coords(rank);
        let mut out = [0usize; FACE_DIRS];
        for axis in 0..3 {
            let d = self.dims[axis];
            let mut lo = c;
            lo[axis] = (c[axis] + d - 1) % d;
            let mut hi = c;
            hi[axis] = (c[axis] + 1) % d;
            out[2 * axis] = self.rank(lo);
            out[2 * axis + 1] = self.rank(hi);
        }
        out
    }
}

/// Node hosting `rank` when nodes hold `ranks_per_node` ranks each.
pub fn node_of(rank: usize, ranks_per_node: usize) -> usize {
    rank / ranks_per_node.max(1)
}

/// Nodes needed for `ranks` ranks at `ranks_per_node` per node.
pub fn nodes_for(ranks: usize, ranks_per_node: usize) -> usize {
    ranks.div_ceil(ranks_per_node.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_cubic_factors_exactly() {
        for n in [1usize, 2, 7, 8, 64, 100, 1000, 10648, 12288, 99991] {
            let g = RankGrid::near_cubic(n);
            assert_eq!(g.len(), n, "grid {:?} for n={n}", g.dims);
            assert!(g.dims[0] <= g.dims[1] && g.dims[1] <= g.dims[2]);
        }
        // Perfect cubes come out cubic.
        assert_eq!(RankGrid::near_cubic(10648).dims, [22, 22, 22]);
        assert_eq!(RankGrid::near_cubic(64).dims, [4, 4, 4]);
        // Primes degrade to a pencil — the only exact option.
        assert_eq!(RankGrid::near_cubic(99991).dims, [1, 1, 99991]);
    }

    #[test]
    fn coords_roundtrip() {
        let g = RankGrid::near_cubic(1000);
        for r in [0usize, 1, 999, 500, 123] {
            assert_eq!(g.rank(g.coords(r)), r);
        }
    }

    #[test]
    fn neighbors_are_symmetric_and_periodic() {
        let g = RankGrid::near_cubic(64);
        for r in 0..g.len() {
            let nb = g.face_neighbors(r);
            for (d, &p) in nb.iter().enumerate() {
                // The neighbor's opposite-direction neighbor is me.
                assert_eq!(g.face_neighbors(p)[d ^ 1], r, "rank {r} dir {d} peer {p}");
            }
        }
        // Periodic wrap on the boundary plane.
        let edge = g.rank([0, 2, 2]);
        assert_eq!(g.face_neighbors(edge)[0], g.rank([3, 2, 2]));
    }

    #[test]
    fn node_mapping() {
        assert_eq!(node_of(0, 4), 0);
        assert_eq!(node_of(7, 4), 1);
        assert_eq!(nodes_for(10648, 4), 2662);
        assert_eq!(nodes_for(3, 4), 1);
        assert_eq!(nodes_for(1, 0), 1);
    }
}
