//! The conventional-layout GMG solver (numerically identical to
//! `gmg-core`'s bricked solver).

use gmg_comm::runtime::{exchange_array, RankCtx};
use gmg_core::timers::OpTimer;
use gmg_mesh::{Array3, Box3, Decomposition, Point3};
use gmg_stencil::exec_array::apply_star7_array;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;
use std::time::Instant;

/// One level of the conventional hierarchy.
struct ArrayLevel {
    decomp: Decomposition,
    owned: Box3,
    x: Array3<f64>,
    b: Array3<f64>,
    ax: Array3<f64>,
    r: Array3<f64>,
    alpha: f64,
    beta: f64,
    gamma: f64,
}

impl ArrayLevel {
    fn new(decomp: Decomposition, rank: usize, h: f64) -> Self {
        let owned = decomp.subdomain(rank);
        Self {
            decomp,
            owned,
            x: Array3::new(owned, 1),
            b: Array3::new(owned, 1),
            ax: Array3::new(owned, 1),
            r: Array3::new(owned, 1),
            alpha: -6.0 / (h * h),
            beta: 1.0 / (h * h),
            gamma: h * h / 12.0,
        }
    }

    fn apply_op(&mut self) {
        apply_star7_array(&mut self.ax, &self.x, self.alpha, self.beta, self.owned);
    }

    /// Parallel pointwise triad over the owned region:
    /// `f(&mut out, a, b)` per cell. Out must share the storage box with
    /// `a` and `b` (all level fields do).
    fn pointwise(
        out: &mut Array3<f64>,
        a: &Array3<f64>,
        b: &Array3<f64>,
        region: Box3,
        f: impl Fn(&mut f64, f64, f64) + Sync,
    ) {
        let sa = a.as_slice();
        let sb = b.as_slice();
        let ext = a.storage_box().extent();
        let lo = a.storage_box().lo;
        out.par_for_each_slab(region, |slab, mut w| {
            for z in slab.lo.z..slab.hi.z {
                for y in slab.lo.y..slab.hi.y {
                    let row = Point3::new(slab.lo.x, y, z);
                    let g = (((row.z - lo.z) * ext.y + (row.y - lo.y)) * ext.x + (row.x - lo.x))
                        as usize;
                    let n = (slab.hi.x - slab.lo.x) as usize;
                    let base = w.offset(row);
                    let ws = &mut w.as_mut_slice()[base..base + n];
                    for i in 0..n {
                        f(&mut ws[i], sa[g + i], sb[g + i]);
                    }
                }
            }
        });
    }

    fn smooth(&mut self) {
        let gamma = self.gamma;
        Self::pointwise(
            &mut self.x,
            &self.ax,
            &self.b,
            self.owned,
            move |x, ax, b| {
                *x += gamma * (ax - b);
            },
        );
    }

    fn smooth_residual(&mut self) {
        let gamma = self.gamma;
        // Two passes (residual then smooth) — the conventional code path;
        // numerics identical to the fused kernel because r uses the same ax.
        Self::pointwise(&mut self.r, &self.ax, &self.b, self.owned, |r, ax, b| {
            *r = b - ax;
        });
        Self::pointwise(
            &mut self.x,
            &self.ax,
            &self.b,
            self.owned,
            move |x, ax, b| {
                *x += gamma * (ax - b);
            },
        );
    }

    fn residual(&mut self) {
        Self::pointwise(&mut self.r, &self.ax, &self.b, self.owned, |r, ax, b| {
            *r = b - ax;
        });
    }

    fn max_norm_r(&self) -> f64 {
        self.r.par_reduce(self.owned, 0.0, |_, v| v.abs(), f64::max)
    }
}

/// Solver statistics (same shape as the bricked solver's).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HpgmgStats {
    pub vcycles: usize,
    pub residual_history: Vec<f64>,
    pub converged: bool,
    pub total_seconds: f64,
    /// Wall-clock spent in exchange + pack/unpack on this rank.
    pub exchange_seconds: f64,
}

/// Conventional-layout GMG solver for one rank.
pub struct HpgmgSolver {
    levels: Vec<ArrayLevel>,
    pub num_levels: usize,
    pub max_smooths: usize,
    pub bottom_smooths: usize,
    pub tolerance: f64,
    pub max_vcycles: usize,
    /// Per-`(level, op)` timings — the same instrument as the bricked
    /// solver's, so brick-vs-baseline comparisons report per-op
    /// breakdowns, not just wall time.
    pub timers: OpTimer,
    rank: usize,
    tag_counter: u64,
    exchange_seconds: f64,
}

impl HpgmgSolver {
    /// Build the hierarchy and initialize the Poisson right-hand side
    /// (identical model problem to `gmg-core`).
    pub fn new(
        decomp: Decomposition,
        rank: usize,
        num_levels: usize,
        max_smooths: usize,
        bottom_smooths: usize,
        tolerance: f64,
        max_vcycles: usize,
    ) -> Self {
        let n = decomp.domain().extent().x;
        let h0 = 1.0 / n as f64;
        let mut levels = Vec::with_capacity(num_levels);
        let mut d = decomp;
        for li in 0..num_levels {
            levels.push(ArrayLevel::new(d.clone(), rank, h0 * (1 << li) as f64));
            if li + 1 < num_levels {
                d = d.coarsen(2);
            }
        }
        let dom = levels[0].decomp.domain().extent();
        let h = h0;
        let rhs = move |p: Point3| {
            let q = p.rem_euclid(dom);
            let c = |i: i64| (i as f64 + 0.5) * h;
            (2.0 * PI * c(q.x)).sin() * (2.0 * PI * c(q.y)).sin() * (2.0 * PI * c(q.z)).sin()
        };
        let owned = levels[0].owned;
        levels[0].b = Array3::from_fn(owned, 1, rhs);
        Self {
            levels,
            num_levels,
            max_smooths,
            bottom_smooths,
            tolerance,
            max_vcycles,
            timers: OpTimer::new(),
            rank,
            tag_counter: 0,
            exchange_seconds: 0.0,
        }
    }

    fn next_tag(&mut self) -> u64 {
        self.tag_counter += 1;
        self.tag_counter
    }

    /// Record a timed op into the scalar timer and (when a capture is
    /// active) the trace sink, from one shared measurement — the same
    /// dual-recording scheme as the bricked solver.
    fn record_op(&mut self, level: usize, op: &'static str, t0: Instant, t1: Instant, points: u64) {
        let secs = (t1 - t0).as_secs_f64();
        self.timers.record(level, op, secs);
        if gmg_trace::enabled() {
            gmg_trace::record_span_at(
                self.rank,
                level,
                op,
                gmg_trace::Track::Compute,
                t0,
                secs,
                gmg_core::trace::op_counters(op, points),
            );
        }
    }

    fn exchange_x(&mut self, ctx: &mut RankCtx, li: usize) {
        let tag = self.next_tag();
        let t0 = Instant::now();
        let level = &mut self.levels[li];
        let d = level.decomp.clone();
        exchange_array(ctx, &d, &mut level.x, 1, tag);
        let t1 = Instant::now();
        self.exchange_seconds += (t1 - t0).as_secs_f64();
        self.record_op(li, "exchange", t0, t1, 0);
    }

    fn smooth_pass(&mut self, ctx: &mut RankCtx, li: usize, n: usize, fused: bool) {
        for _ in 0..n {
            self.exchange_x(ctx, li); // every iteration: no CA in HPGMG mode
            let level = &mut self.levels[li];
            let points = level.owned.volume() as u64;
            let t0 = Instant::now();
            level.apply_op();
            let t1 = Instant::now();
            if fused {
                level.smooth_residual();
            } else {
                level.smooth();
            }
            let t2 = Instant::now();
            self.record_op(li, "applyOp", t0, t1, points);
            self.record_op(
                li,
                if fused { "smooth+residual" } else { "smooth" },
                t1,
                t2,
                points,
            );
        }
    }

    fn vcycle(&mut self, ctx: &mut RankCtx) {
        let top = self.num_levels - 1;
        for l in 0..top {
            self.smooth_pass(ctx, l, self.max_smooths, true);
            let (fine, coarse) = self.levels.split_at_mut(l + 1);
            let coarse_points = coarse[0].owned.volume() as u64;
            let t0 = Instant::now();
            restrict_array(&fine[l], &mut coarse[0]);
            let t1 = Instant::now();
            coarse[0].x.fill(0.0);
            let t2 = Instant::now();
            self.record_op(l, "restriction", t0, t1, coarse_points);
            self.record_op(l + 1, "initZero", t1, t2, coarse_points);
        }
        self.smooth_pass(ctx, top, self.bottom_smooths, false);
        for l in (0..top).rev() {
            let (fine, coarse) = self.levels.split_at_mut(l + 1);
            let coarse_points = coarse[0].owned.volume() as u64;
            let t0 = Instant::now();
            interpolate_increment_array(&coarse[0], &mut fine[l]);
            self.record_op(
                l,
                "interpolation+increment",
                t0,
                Instant::now(),
                coarse_points,
            );
            self.smooth_pass(ctx, l, self.max_smooths, true);
        }
    }

    fn max_norm_residual(&mut self, ctx: &mut RankCtx) -> f64 {
        self.exchange_x(ctx, 0);
        let level = &mut self.levels[0];
        level.apply_op();
        level.residual();
        let local = level.max_norm_r();
        ctx.allreduce_max(local)
    }

    /// Algorithm 1: V-cycle to convergence.
    pub fn solve(&mut self, ctx: &mut RankCtx) -> HpgmgStats {
        let t0 = Instant::now();
        let r0 = self.max_norm_residual(ctx);
        let mut history = vec![r0];
        let mut converged = r0 < self.tolerance;
        let mut vcycles = 0;
        while !converged && vcycles < self.max_vcycles {
            self.vcycle(ctx);
            vcycles += 1;
            let r = self.max_norm_residual(ctx);
            history.push(r);
            converged = r < self.tolerance;
        }
        HpgmgStats {
            vcycles,
            residual_history: history,
            converged,
            total_seconds: t0.elapsed().as_secs_f64(),
            exchange_seconds: self.exchange_seconds,
        }
    }
}

fn restrict_array(fine: &ArrayLevel, coarse: &mut ArrayLevel) {
    let owned = coarse.owned;
    let fr = &fine.r;
    coarse.b.par_for_each_slab(owned, |slab, mut w| {
        slab.for_each(|c| {
            let mut sum = 0.0;
            for dz in 0..2 {
                for dy in 0..2 {
                    for dx in 0..2 {
                        sum += fr[Point3::new(2 * c.x + dx, 2 * c.y + dy, 2 * c.z + dz)];
                    }
                }
            }
            w.set(c, 0.125 * sum);
        });
    });
}

fn interpolate_increment_array(coarse: &ArrayLevel, fine: &mut ArrayLevel) {
    let owned = fine.owned;
    let cx = &coarse.x;
    fine.x.par_for_each_slab(owned, |slab, mut w| {
        slab.for_each(|p| {
            let c = p.div_floor(Point3::splat(2));
            let old = w.get(p);
            w.set(p, old + cx[c]);
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmg_comm::runtime::RankWorld;

    fn run(n: i64, grid: Point3, levels: usize, vcycles: usize) -> Vec<HpgmgStats> {
        let decomp = Decomposition::new(Box3::cube(n), grid);
        let ranks = decomp.num_ranks();
        let d = &decomp;
        RankWorld::run(ranks, move |mut ctx| {
            let mut s = HpgmgSolver::new(d.clone(), ctx.rank(), levels, 8, 50, 0.0, vcycles);
            s.solve(&mut ctx)
        })
    }

    #[test]
    fn baseline_converges() {
        let decomp = Decomposition::single(Box3::cube(32));
        let d = &decomp;
        let out = RankWorld::run(1, move |mut ctx| {
            let mut s = HpgmgSolver::new(d.clone(), ctx.rank(), 3, 8, 50, 1e-9, 30);
            s.solve(&mut ctx)
        });
        assert!(out[0].converged, "history {:?}", out[0].residual_history);
    }

    #[test]
    fn residual_monotone_multi_rank() {
        let out = run(16, Point3::splat(2), 2, 5);
        for s in out {
            for w in s.residual_history.windows(2) {
                assert!(w[1] < w[0], "{:?}", s.residual_history);
            }
        }
    }

    #[test]
    fn exchange_time_is_tracked() {
        let out = run(16, Point3::new(2, 1, 1), 2, 2);
        assert!(out[0].exchange_seconds > 0.0);
        assert!(out[0].exchange_seconds < out[0].total_seconds);
    }

    #[test]
    fn baseline_reports_per_op_timer_breakdown() {
        let decomp = Decomposition::new(Box3::cube(16), Point3::splat(1));
        let d = &decomp;
        let smooths = 8;
        RankWorld::run(1, move |mut ctx| {
            let mut s = HpgmgSolver::new(d.clone(), ctx.rank(), 2, smooths, 50, 0.0, 1);
            s.solve(&mut ctx);
            // One V-cycle: pre+post smooth at level 0, bottom at level 1.
            assert_eq!(s.timers.count(0, "applyOp"), 2 * smooths);
            assert_eq!(s.timers.count(0, "smooth+residual"), 2 * smooths);
            assert_eq!(s.timers.count(1, "smooth"), 50);
            assert_eq!(s.timers.count(0, "restriction"), 1);
            assert_eq!(s.timers.count(0, "interpolation+increment"), 1);
            assert_eq!(s.timers.count(1, "initZero"), 1);
            // Exchange every smooth (no CA), plus the residual checks.
            assert!(s.timers.count(0, "exchange") >= 2 * smooths + 2);
            // The per-op rows account for most of the exchange wall time.
            assert!(s.timers.level_total(0) > 0.0);
        });
    }

    #[test]
    fn baseline_trace_shows_pack_unpack_attribution() {
        // The Figure 4 attribution gap: the baseline's exchange cost is
        // dominated by pack/unpack staging. A trace of the distributed
        // baseline must carry comm-track pack and unpack spans alongside
        // the compute rows.
        let decomp = Decomposition::new(Box3::cube(16), Point3::new(2, 1, 1));
        let d = &decomp;
        let (_, trace) = gmg_trace::capture(|| {
            RankWorld::run(2, move |mut ctx| {
                let mut s = HpgmgSolver::new(d.clone(), ctx.rank(), 2, 4, 10, 0.0, 1);
                s.solve(&mut ctx)
            });
        });
        assert_eq!(trace.ranks().len(), 2);
        for rank in trace.ranks() {
            let comm_ops: Vec<_> = trace
                .track_events(rank, gmg_trace::Track::Comm)
                .iter()
                .map(|e| e.op.name())
                .collect();
            for needed in ["pack", "send", "recv", "unpack"] {
                assert!(comm_ops.contains(&needed), "rank {rank} missing {needed}");
            }
            let compute_ops: Vec<_> = trace
                .track_events(rank, gmg_trace::Track::Compute)
                .iter()
                .map(|e| e.op.name())
                .collect();
            for needed in ["applyOp", "smooth+residual", "restriction", "exchange"] {
                assert!(
                    compute_ops.contains(&needed),
                    "rank {rank} missing {needed}"
                );
            }
        }
        // Aggregation sees both solvers' worth of message traffic.
        let summary = gmg_trace::TraceSummary::from_trace(&trace);
        assert!(summary.comm.messages > 0);
        assert!(summary.comm.message_bytes > 0);
    }
}
