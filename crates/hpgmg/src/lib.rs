//! # gmg-hpgmg — the conventional-layout GMG baseline
//!
//! The paper's Figure 4 compares the bricked GMG against HPGMG-CUDA, the
//! open-source finite-volume geometric multigrid proxy. This crate is our
//! stand-in baseline: the *same* V-cycle (Algorithm 2, same smoother, same
//! operators, same schedule) implemented the conventional way —
//!
//! * fields in plain lexicographic `ijk` arrays with a 1-deep ghost shell,
//! * pack/unpack staging buffers for every halo message,
//! * an exchange before **every** smooth (no communication-avoiding),
//! * no data blocking.
//!
//! Because the numerics are identical, the baseline doubles as a
//! correctness oracle: residual histories must match the bricked solver to
//! rounding. The performance differences — which the layout benchmarks and
//! the Figure 4 harness measure — come purely from data movement and
//! communication structure, exactly the paper's claim.

pub mod schedule;
pub mod solver;

pub use schedule::{simulate_hpgmg, HpgmgSimResult};
pub use solver::{HpgmgSolver, HpgmgStats};
