//! Modeled HPGMG baseline for the Figure 4 comparison.
//!
//! Prices the same V-cycle schedule as `gmg-core::schedule`, but the
//! conventional way: a depth-1 array exchange with pack/unpack staging
//! before *every* smooth, no communication-avoiding, and stencil kernels
//! derated by a per-system factor reflecting the conventional layout's
//! extra address streams and data movement (calibrated so the bricked/
//! baseline per-V-cycle ratio lands on the paper's measured 1.58× on
//! Perlmutter and 1.46× on Frontier; HPGMG-CUDA itself is a tuned code, so
//! the derate is against the *bricked* kernels, not against naive code).

use gmg_comm::model::NetworkModel;
use gmg_comm::plan::ArrayExchangePlan;
use gmg_machine::gpu::{GpuModel, System};
use gmg_machine::timing::KernelTiming;
use gmg_mesh::Point3;
use gmg_stencil::OpKind;
use serde::{Deserialize, Serialize};

/// Fraction of the bricked kernels' sustained rate the conventional-layout
/// kernels achieve (calibrated to Figure 4).
pub fn kernel_derate(system: System) -> f64 {
    match system {
        System::Perlmutter => 0.578,
        System::Frontier => 0.633,
        System::Sunspot => 0.58,
    }
}

/// Result of a modeled HPGMG run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HpgmgSimResult {
    pub system: System,
    pub total_seconds: f64,
    pub per_vcycle_seconds: f64,
    /// Seconds spent in exchange (incl. pack/unpack) over the run.
    pub exchange_seconds: f64,
    /// Seconds spent in kernels over the run.
    pub kernel_seconds: f64,
}

fn kernel_time(gpu: &GpuModel, system: System, op: OpKind, points: usize) -> f64 {
    let lt = KernelTiming::latency_model(gpu, op);
    lt.alpha_s + points as f64 / (lt.beta * kernel_derate(system))
}

/// Simulate the HPGMG-style baseline: `sub_extent` per rank, `num_levels`
/// levels, the paper's smooth counts, over `vcycles` V-cycles on `nodes`
/// nodes.
pub fn simulate_hpgmg(
    system: System,
    sub_extent: Point3,
    num_levels: usize,
    smooths_per_level: usize,
    bottom_smooths: usize,
    vcycles: usize,
    nodes: usize,
) -> HpgmgSimResult {
    let gpu = system.gpu();
    let net: NetworkModel = match system {
        System::Perlmutter => NetworkModel::perlmutter(),
        System::Frontier => NetworkModel::frontier(),
        System::Sunspot => NetworkModel::sunspot(),
    }
    .at_scale(nodes);
    let mut kernel_s = 0.0;
    let mut exch_s = 0.0;
    let extent_at = |li: usize| {
        let s = 1i64 << li;
        Point3::new(sub_extent.x / s, sub_extent.y / s, sub_extent.z / s)
    };
    let mut exchange = |li: usize| {
        let plan = ArrayExchangePlan::new(extent_at(li), 1);
        let wire = net.exchange_time_s(&plan.message_bytes);
        // Pack + unpack kernels: each reads and writes the surface cells.
        let pack_bytes = 2.0 * plan.total_bytes() as f64;
        let pack = 2.0 * (gpu.kernel_overhead_us * 1e-6 + pack_bytes / (gpu.hbm_gbs * 1e9));
        exch_s += wire + pack;
    };
    let smooth_pass =
        |li: usize, n: usize, fused: bool, kernel_s: &mut f64, exchange: &mut dyn FnMut(usize)| {
            let points = extent_at(li).product() as usize;
            for _ in 0..n {
                exchange(li);
                *kernel_s += kernel_time(&gpu, system, OpKind::ApplyOp, points);
                *kernel_s += kernel_time(
                    &gpu,
                    system,
                    if fused {
                        OpKind::SmoothResidual
                    } else {
                        OpKind::Smooth
                    },
                    points,
                );
            }
        };
    for _ in 0..vcycles {
        let top = num_levels - 1;
        for l in 0..top {
            smooth_pass(l, smooths_per_level, true, &mut kernel_s, &mut exchange);
            let fine_points = extent_at(l).product() as usize;
            kernel_s += kernel_time(&gpu, system, OpKind::Restriction, fine_points);
            // initZero on the coarse level.
            let coarse_cells = extent_at(l + 1).product() as f64;
            kernel_s += gpu.kernel_overhead_us * 1e-6 + coarse_cells * 8.0 / (gpu.hbm_gbs * 1e9);
        }
        smooth_pass(top, bottom_smooths, false, &mut kernel_s, &mut exchange);
        for l in (0..top).rev() {
            let fine_points = extent_at(l).product() as usize;
            kernel_s += kernel_time(&gpu, system, OpKind::InterpolationIncrement, fine_points);
            smooth_pass(l, smooths_per_level, true, &mut kernel_s, &mut exchange);
        }
    }
    let total = kernel_s + exch_s;
    HpgmgSimResult {
        system,
        total_seconds: total,
        per_vcycle_seconds: total / vcycles as f64,
        exchange_seconds: exch_s,
        kernel_seconds: kernel_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmg_core::schedule::{simulate, ScheduleConfig};

    fn figure4_ratio(system: System) -> f64 {
        let brick = simulate(&ScheduleConfig::paper_section6(system));
        let base = simulate_hpgmg(system, Point3::splat(512), 6, 12, 100, 12, 8);
        base.per_vcycle_seconds / brick.per_vcycle_seconds
    }

    #[test]
    fn figure4_perlmutter_ratio() {
        let r = figure4_ratio(System::Perlmutter);
        assert!(
            (1.4..1.8).contains(&r),
            "Perlmutter brick speedup {r:.2} vs paper 1.58"
        );
    }

    #[test]
    fn figure4_frontier_ratio() {
        let r = figure4_ratio(System::Frontier);
        assert!(
            (1.25..1.7).contains(&r),
            "Frontier brick speedup {r:.2} vs paper 1.46"
        );
    }

    #[test]
    fn figure4_sunspot_vs_hpgmg_cuda_is_similar() {
        // The paper compares its Sunspot result against HPGMG-CUDA (there
        // is no SYCL HPGMG); the outcome is "similar performance".
        let brick_sunspot = simulate(&ScheduleConfig::paper_section6(System::Sunspot));
        let hpgmg_cuda = simulate_hpgmg(System::Perlmutter, Point3::splat(512), 6, 12, 100, 12, 8);
        let r = hpgmg_cuda.per_vcycle_seconds / brick_sunspot.per_vcycle_seconds;
        assert!((0.7..1.35).contains(&r), "Sunspot ratio {r:.2} vs paper ≈1");
    }

    #[test]
    fn exchange_share_is_larger_than_bricked() {
        // Without CA the baseline exchanges 24× per level per V-cycle.
        let base = simulate_hpgmg(System::Perlmutter, Point3::splat(256), 5, 12, 100, 2, 8);
        let mut cfg = ScheduleConfig::paper_section6(System::Perlmutter);
        cfg.sub_extent = Point3::splat(256);
        cfg.num_levels = 5;
        cfg.vcycles = 2;
        let brick = simulate(&cfg);
        let brick_exchange: f64 = brick.levels.iter().map(|l| l.op("exchange")).sum();
        let base_share = base.exchange_seconds / base.total_seconds;
        let brick_share = brick_exchange / brick.total_seconds;
        assert!(
            base_share > brick_share,
            "baseline {base_share:.3} vs brick {brick_share:.3}"
        );
    }
}
