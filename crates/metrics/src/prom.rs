//! Prometheus text exposition for [`Snapshot`]s, plus a parser for the
//! same subset so exposition round-trips in tests.
//!
//! Counters and gauges map directly. Histograms use the standard
//! `_bucket{le=...}` cumulative encoding with an `+Inf` bucket, `_sum`
//! and `_count`; the `le` value of each bucket is its inclusive upper
//! bound from [`crate::hist::bucket_high`], which the parser maps back
//! to a bucket index, so the cycle is exact. Two non-standard gauge
//! lines, `_min` and `_max`, carry the histogram's exact extrema (the
//! standard encoding has no place for them).
//!
//! Numeric values go through f64 on the way back in, so integers are
//! exact up to 2^53 — the same contract as `gmg_trace::Json`, and far
//! beyond any realistic counter or nanosecond value (2^53 ns ≈ 104
//! days).

use crate::hist::{bucket_high, bucket_index, Histogram};
use crate::registry::Key;
use crate::snapshot::{Snapshot, SnapshotEntry, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn unescape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn labels(key: &Key, extra: Option<(&str, &str)>) -> String {
    let level = match key.level {
        Some(l) => l.to_string(),
        None => "none".to_string(),
    };
    let mut s = format!(
        "rank=\"{}\",level=\"{}\",op=\"{}\"",
        key.rank,
        level,
        escape_label(&key.op)
    );
    if let Some((k, v)) = extra {
        let _ = write!(s, ",{k}=\"{v}\"");
    }
    s
}

/// Render a snapshot in the Prometheus text exposition format.
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_name = "";
    for e in &snap.entries {
        if e.name != last_name {
            let kind = match &e.value {
                Value::Counter(_) => "counter",
                Value::Gauge(_) => "gauge",
                Value::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# TYPE {} {}", e.name, kind);
            last_name = &e.name;
        }
        match &e.value {
            Value::Counter(c) => {
                let _ = writeln!(out, "{}{{{}}} {}", e.name, labels(&e.key, None), c);
            }
            Value::Gauge(g) => {
                let _ = writeln!(out, "{}{{{}}} {}", e.name, labels(&e.key, None), g);
            }
            Value::Histogram(h) => {
                let mut cum = 0u64;
                for (i, c) in h.nonzero_buckets() {
                    cum += c;
                    let le = bucket_high(i).to_string();
                    let _ = writeln!(
                        out,
                        "{}_bucket{{{}}} {}",
                        e.name,
                        labels(&e.key, Some(("le", &le))),
                        cum
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_bucket{{{}}} {}",
                    e.name,
                    labels(&e.key, Some(("le", "+Inf"))),
                    h.count()
                );
                let _ = writeln!(
                    out,
                    "{}_sum{{{}}} {}",
                    e.name,
                    labels(&e.key, None),
                    h.sum()
                );
                let _ = writeln!(
                    out,
                    "{}_count{{{}}} {}",
                    e.name,
                    labels(&e.key, None),
                    h.count()
                );
                // Non-standard extrema lines so exposition is lossless.
                let _ = writeln!(
                    out,
                    "{}_min{{{}}} {}",
                    e.name,
                    labels(&e.key, None),
                    h.min().unwrap_or(0)
                );
                let _ = writeln!(
                    out,
                    "{}_max{{{}}} {}",
                    e.name,
                    labels(&e.key, None),
                    h.max().unwrap_or(0)
                );
            }
        }
    }
    out
}

/// The gmg-live exposition self-metrics, appended to every scrape so the
/// telemetry plane reports on itself: how long this render took, how
/// stale the merged snapshot is, and how many telemetry frames the
/// collector knows it lost (seq gaps — the channel is loss-tolerant by
/// design, so losses are expected and *counted*, never hidden).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SelfMetrics {
    pub scrape_duration_ns: u64,
    pub snapshot_age_ns: u64,
    pub frames_lost_total: u64,
}

impl SelfMetrics {
    /// The three series as snapshot entries (keyed `rank=0`, op `live`),
    /// ready to merge into a snapshot before rendering.
    pub fn entries(&self) -> Vec<SnapshotEntry> {
        let key = Key::new(0, None, "live");
        vec![
            SnapshotEntry {
                name: "gmg_live_frames_lost_total".to_string(),
                key: key.clone(),
                value: Value::Counter(self.frames_lost_total),
            },
            SnapshotEntry {
                name: "gmg_live_scrape_duration_ns".to_string(),
                key: key.clone(),
                value: Value::Gauge(self.scrape_duration_ns as f64),
            },
            SnapshotEntry {
                name: "gmg_live_snapshot_age_ns".to_string(),
                key,
                value: Value::Gauge(self.snapshot_age_ns as f64),
            },
        ]
    }
}

/// Render a snapshot plus the gmg-live self-metrics in one exposition.
pub fn render_prometheus_with_self(snap: &Snapshot, self_metrics: &SelfMetrics) -> String {
    let mut with = snap.clone();
    with.entries.extend(self_metrics.entries());
    with.entries
        .sort_by(|a, b| (&a.name, &a.key).cmp(&(&b.name, &b.key)));
    render_prometheus(&with)
}

#[derive(Default)]
struct HistParts {
    buckets: Vec<(usize, u64)>, // (bucket index, cumulative count)
    sum: u64,
    count: u64,
    min: u64,
    max: u64,
}

/// Parse one `name{k="v",...} value` sample line.
fn parse_sample(line: &str) -> Result<(String, Vec<(String, String)>, f64), String> {
    let open = line.find('{').ok_or_else(|| format!("no labels: {line}"))?;
    let close = line.rfind('}').ok_or_else(|| format!("no '}}': {line}"))?;
    let name = line[..open].to_string();
    let mut labels = Vec::new();
    let body = &line[open + 1..close];
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find("=\"")
            .ok_or_else(|| format!("bad label in {line}"))?;
        let key = rest[..eq].trim_start_matches(',').to_string();
        let mut val = String::new();
        let mut chars = rest[eq + 2..].char_indices();
        let close = loop {
            let (i, c) = chars
                .next()
                .ok_or_else(|| format!("unterminated label: {line}"))?;
            match c {
                '\\' => {
                    let (_, e) = chars
                        .next()
                        .ok_or_else(|| format!("dangling escape: {line}"))?;
                    val.push('\\');
                    val.push(e);
                }
                '"' => break i,
                c => val.push(c),
            }
        };
        labels.push((key, unescape_label(&val)));
        rest = &rest[eq + 2 + close + 1..];
    }
    let value: f64 = line[close + 1..]
        .trim()
        .parse()
        .map_err(|_| format!("bad value in {line}"))?;
    Ok((name, labels, value))
}

fn key_from_labels(labels: &[(String, String)]) -> Result<Key, String> {
    let find = |k: &str| labels.iter().find(|(n, _)| n == k).map(|(_, v)| v.as_str());
    let rank = find("rank")
        .and_then(|v| v.parse().ok())
        .ok_or("missing rank label")?;
    let level = match find("level").ok_or("missing level label")? {
        "none" => None,
        l => Some(l.parse().map_err(|_| "bad level label")?),
    };
    let op = find("op").ok_or("missing op label")?.to_string();
    Ok(Key { rank, level, op })
}

/// Parse the subset of the Prometheus text format that
/// [`render_prometheus`] produces, back into a [`Snapshot`].
pub fn parse_prometheus(text: &str) -> Result<Snapshot, String> {
    let mut kinds: BTreeMap<String, String> = BTreeMap::new();
    let mut scalars: BTreeMap<(String, Key), Value> = BTreeMap::new();
    let mut hists: BTreeMap<(String, Key), HistParts> = BTreeMap::new();

    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().ok_or("bad TYPE line")?.to_string();
            let kind = it.next().ok_or("bad TYPE line")?.to_string();
            kinds.insert(name, kind);
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (name, labels, value) = parse_sample(line)?;
        // Histogram component lines have a suffixed name whose base has
        // TYPE histogram.
        let hist_base = ["_bucket", "_sum", "_count", "_min", "_max"]
            .iter()
            .find_map(|suf| {
                let base = name.strip_suffix(suf)?;
                (kinds.get(base).map(String::as_str) == Some("histogram"))
                    .then(|| (base.to_string(), *suf))
            });
        if let Some((base, suffix)) = hist_base {
            let key = key_from_labels(&labels)?;
            let parts = hists.entry((base, key)).or_default();
            match suffix {
                "_bucket" => {
                    let le = labels
                        .iter()
                        .find(|(n, _)| n == "le")
                        .map(|(_, v)| v.as_str())
                        .ok_or("bucket line without le")?;
                    if le != "+Inf" {
                        let bound: u64 = le.parse().map_err(|_| "bad le bound")?;
                        parts.buckets.push((bucket_index(bound), value as u64));
                    }
                }
                "_sum" => parts.sum = value as u64,
                "_count" => parts.count = value as u64,
                "_min" => parts.min = value as u64,
                "_max" => parts.max = value as u64,
                _ => unreachable!(),
            }
        } else {
            let key = key_from_labels(&labels)?;
            let v = match kinds.get(&name).map(String::as_str) {
                Some("counter") => Value::Counter(value as u64),
                _ => Value::Gauge(value),
            };
            scalars.insert((name, key), v);
        }
    }

    let mut entries: Vec<SnapshotEntry> = Vec::new();
    for ((name, key), value) in scalars {
        entries.push(SnapshotEntry { name, key, value });
    }
    for ((name, key), parts) in hists {
        // De-cumulate the bucket counts.
        let mut prev = 0u64;
        let buckets: Vec<(usize, u64)> = parts
            .buckets
            .iter()
            .map(|&(i, cum)| {
                let c = cum.saturating_sub(prev);
                prev = cum;
                (i, c)
            })
            .collect();
        let min = if parts.count > 0 { parts.min } else { u64::MAX };
        let h = Histogram::from_parts(&buckets, parts.count, parts.sum, min, parts.max);
        entries.push(SnapshotEntry {
            name,
            key,
            value: Value::Histogram(h),
        });
    }
    entries.sort_by(|a, b| (&a.name, &a.key).cmp(&(&b.name, &b.key)));
    Ok(Snapshot { entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn exposition_roundtrip_is_exact() {
        let r = Registry::new();
        r.counter("arq_retransmits_total", Key::new(0, None, "arq"))
            .add(7);
        r.gauge("residual_norm", Key::new(1, Some(0), "solve"))
            .set(3.25e-11);
        let h = r.histogram("solver_op_ns", Key::new(0, Some(2), "smooth+residual"));
        // 1<<52 stays within the codec's exact-integer domain (2^53).
        for v in [9u64, 17, 17, 4096, 1_000_000, 1 << 52] {
            h.record(v);
        }
        let snap = r.snapshot();
        let text = render_prometheus(&snap);
        let back = parse_prometheus(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn exposition_shape() {
        let r = Registry::new();
        let h = r.histogram("lat_ns", Key::new(0, None, "send"));
        h.record(10);
        h.record(100);
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE lat_ns histogram"));
        assert!(text.contains("lat_ns_bucket{rank=\"0\",level=\"none\",op=\"send\",le=\"+Inf\"} 2"));
        assert!(text.contains("lat_ns_sum{rank=\"0\",level=\"none\",op=\"send\"} 110"));
        assert!(text.contains("lat_ns_count{rank=\"0\",level=\"none\",op=\"send\"} 2"));
        // Cumulative counts are nondecreasing in bucket order.
        let cums: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("lat_ns_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(cums.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn self_metrics_render_and_roundtrip() {
        let r = Registry::new();
        r.counter("solver_events_total", Key::new(2, Some(1), "smooth"))
            .add(4);
        let snap = r.snapshot();
        let sm = SelfMetrics {
            scrape_duration_ns: 12_345,
            snapshot_age_ns: 200_000,
            frames_lost_total: 3,
        };
        let text = render_prometheus_with_self(&snap, &sm);
        assert!(text.contains("# TYPE gmg_live_scrape_duration_ns gauge"));
        assert!(text.contains("# TYPE gmg_live_snapshot_age_ns gauge"));
        assert!(text.contains("# TYPE gmg_live_frames_lost_total counter"));
        assert!(
            text.contains("gmg_live_frames_lost_total{rank=\"0\",level=\"none\",op=\"live\"} 3")
        );
        // The augmented exposition still parses exactly: solver series
        // plus the three self-metric series.
        let back = parse_prometheus(&text).unwrap();
        assert_eq!(back.entries.len(), snap.entries.len() + 3);
        assert_eq!(
            back.get("gmg_live_scrape_duration_ns", &Key::new(0, None, "live")),
            Some(&Value::Gauge(12_345.0))
        );
        assert_eq!(back.counter_total("gmg_live_frames_lost_total"), 3);
        assert_eq!(
            back.get("solver_events_total", &Key::new(2, Some(1), "smooth")),
            Some(&Value::Counter(4))
        );
    }

    #[test]
    fn label_escaping_roundtrips() {
        let r = Registry::new();
        r.counter("c", Key::new(0, None, "odd\"op\\name")).inc();
        let snap = r.snapshot();
        let back = parse_prometheus(&render_prometheus(&snap)).unwrap();
        assert_eq!(back, snap);
    }
}
