//! Trace-analysis engine: critical path, load imbalance, roofline
//! attribution, outlier detection, and run diffing over a captured
//! [`gmg_trace::Trace`].
//!
//! The paper argues from derived metrics (Table II fractions, achieved
//! vs modeled GStencil/s and GB/s); this module extracts the *why*
//! behind those numbers:
//!
//! - **Critical path**: a backward walk over the per-rank timelines that
//!   follows cross-rank message dependencies (a recv's matched send)
//!   through each V-cycle, so every nanosecond of wall time is
//!   attributed to the op on the rank that gated it (or to idle).
//! - **Load imbalance**: per-`(level, op)` max/mean seconds across
//!   ranks, plus per-rank compute/comm/idle utilization.
//! - **Roofline attribution**: achieved GB/s and GStencil/s per kernel
//!   against a [`MachineEnvelope`] (numbers from `gmg-machine`,
//!   passed as plain floats so this crate stays leaf-level), with each
//!   gap classified bandwidth-, latency-, or launch-bound.
//! - **Outliers**: MAD-based straggler detection over span durations,
//!   which is what surfaces fault-injected stalls.
//!
//! Everything here is deterministic: same trace in, byte-identical
//! report out (the analyze binary's determinism test pins this).

use gmg_trace::sink::{Trace, TraceEvent, Track, LEVEL_NONE};
use gmg_trace::TraceSummary;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Machine-model numbers the roofline attribution compares against.
/// Constructed by the caller from `gmg-machine` measurements/fits;
/// plain floats so `gmg-metrics` has no dependency on that crate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineEnvelope {
    /// Host STREAM-triad bandwidth ceiling, GB/s.
    pub triad_gbs: f64,
    /// Per-invocation launch/dispatch overhead, seconds.
    pub launch_alpha_s: f64,
    /// Per-message latency (α of the latency-throughput comm model),
    /// seconds.
    pub comm_alpha_s: f64,
    /// Link bandwidth (β of the comm model), GB/s.
    pub comm_beta_gbs: f64,
}

/// Why a kernel or the exchange falls short of its ceiling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bound {
    /// At or near the bandwidth roof — the kernel is doing as well as
    /// the memory system allows.
    Bandwidth,
    /// Message/access sizes below n_1/2 — time dominated by per-message
    /// or per-access latency.
    Latency,
    /// Invocations so short that per-invocation launch overhead
    /// dominates.
    Launch,
}

impl Bound {
    pub fn name(self) -> &'static str {
        match self {
            Bound::Bandwidth => "bandwidth-bound",
            Bound::Latency => "latency-bound",
            Bound::Launch => "launch-bound",
        }
    }
}

/// Pseudo-op name for time the critical path cannot attribute to any
/// span (gaps in every rank's timeline).
pub const IDLE_OP: &str = "(idle)";

/// An exact cross-rank message dependency supplied by an external
/// source (the flight recorder's joined send/recv pairs): the receive
/// completing at `(dst, recv_end_ns)` waited on the send that ended at
/// `(src, send_end_ns)`. When present these edges override the
/// trace-side matching heuristic, which can only guess by `(peer, tag)`
/// and timing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MessageEdge {
    pub src: usize,
    pub send_end_ns: u64,
    pub dst: usize,
    pub recv_end_ns: u64,
}

/// One attributed interval of the critical path.
#[derive(Clone, Debug, PartialEq)]
pub struct PathSegment {
    pub rank: usize,
    /// Multigrid level (None for level-less spans like comm and idle).
    pub level: Option<usize>,
    pub op: String,
    pub start_ns: u64,
    pub end_ns: u64,
}

impl PathSegment {
    pub fn seconds(&self) -> f64 {
        (self.end_ns - self.start_ns) as f64 / 1e9
    }
}

/// The critical path through one V-cycle (or the whole run when cycles
/// cannot be segmented).
#[derive(Clone, Debug, PartialEq)]
pub struct CyclePath {
    /// 1-based cycle number. Cycle 1 includes setup; the last includes
    /// the tail (norm checks etc.).
    pub cycle: usize,
    pub start_ns: u64,
    pub end_ns: u64,
    /// Path segments in time order, tiling `[start_ns, end_ns]`.
    pub segments: Vec<PathSegment>,
    /// Fraction of the cycle's wall time attributed to real ops (the
    /// rest is idle).
    pub coverage: f64,
}

/// Critical path over the whole trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CriticalPath {
    pub cycles: Vec<CyclePath>,
    /// Non-idle path seconds over total wall seconds.
    pub coverage: f64,
    /// Seconds on the path per op (including [`IDLE_OP`]), descending.
    pub op_totals: Vec<(String, f64)>,
}

/// Per-`(level, op)` cross-rank imbalance.
#[derive(Clone, Debug, PartialEq)]
pub struct ImbalanceRow {
    pub level: usize,
    pub op: String,
    /// Mean per-rank seconds in this op.
    pub mean_s: f64,
    /// Seconds on the slowest rank.
    pub max_s: f64,
    /// `max_s / mean_s` (1.0 = perfectly balanced).
    pub factor: f64,
    /// The slowest rank.
    pub max_rank: usize,
}

/// Per-rank busy/idle split over the trace extent.
#[derive(Clone, Debug, PartialEq)]
pub struct RankUtil {
    pub rank: usize,
    pub compute_s: f64,
    /// Comm spans not nested inside a compute span on the same rank
    /// (nested exchange traffic is already inside compute time).
    pub comm_s: f64,
    /// Trace extent minus the union of this rank's busy intervals.
    pub idle_s: f64,
}

/// One flagged straggler span.
#[derive(Clone, Debug, PartialEq)]
pub struct Outlier {
    pub rank: usize,
    pub level: Option<usize>,
    pub op: String,
    pub ts_ns: u64,
    pub dur_ns: u64,
    /// Median duration of this `(level, op)` population.
    pub median_ns: u64,
    /// Robust z-score: `(dur − median) / (1.4826 · MAD)`.
    pub score: f64,
}

/// Roofline comparison for one `(level, op)` kernel row.
#[derive(Clone, Debug, PartialEq)]
pub struct RooflineRow {
    pub level: usize,
    pub op: String,
    pub achieved_gbs: f64,
    pub ceiling_gbs: f64,
    /// `achieved / ceiling`.
    pub fraction: f64,
    pub gstencil: Option<f64>,
    pub bound: Bound,
}

/// Exchange-bandwidth attribution against the comm α-β model.
#[derive(Clone, Debug, PartialEq)]
pub struct CommAttribution {
    pub avg_msg_bytes: f64,
    /// Half-performance message size `n_1/2 = α · β` of the model.
    pub n_half_bytes: f64,
    pub achieved_gbs: f64,
    /// Model-predicted GB/s at the observed average message size.
    pub model_gbs: f64,
    pub bound: Bound,
}

/// Everything the analyze report is rendered from.
#[derive(Clone, Debug, PartialEq)]
pub struct Analysis {
    pub summary: TraceSummary,
    pub path: CriticalPath,
    pub imbalance: Vec<ImbalanceRow>,
    pub utilization: Vec<RankUtil>,
    pub outliers: Vec<Outlier>,
    /// Empty when no [`MachineEnvelope`] was supplied.
    pub roofline: Vec<RooflineRow>,
    pub comm: Option<CommAttribution>,
}

// ---------------------------------------------------------------------------
// Timeline model
// ---------------------------------------------------------------------------

/// Flattened view of one event for the path walk.
#[derive(Clone, Copy, Debug)]
struct TEv {
    rank: usize,
    level: usize,
    op: &'static str,
    track: Track,
    ts: u64,
    end: u64,
    peer: Option<usize>,
    tag: Option<u64>,
}

impl TEv {
    fn from(e: &TraceEvent) -> TEv {
        TEv {
            rank: e.rank,
            level: e.level,
            op: e.op.name(),
            track: e.track,
            ts: e.ts_ns,
            end: e.ts_ns + e.dur_ns,
            peer: e.peer,
            tag: e.tag,
        }
    }

    fn opt_level(&self) -> Option<usize> {
        (self.level != LEVEL_NONE).then_some(self.level)
    }
}

/// Per-rank timelines: the *top-level* timeline (compute spans plus comm
/// spans not nested inside a same-rank compute span — the latter fills
/// allreduce gaps), plus the full comm list for dependency matching.
struct Timelines {
    ranks: Vec<usize>,
    /// rank → top-level events, ts order.
    top: BTreeMap<usize, Vec<TEv>>,
    /// rank → all comm events, ts order.
    comm: BTreeMap<usize, Vec<TEv>>,
    /// `(dst_rank, recv_end_ns)` → `(src_rank, send_end_ns)` exact
    /// causal edges; consulted before the matching heuristic.
    edges: BTreeMap<(usize, u64), (usize, u64)>,
}

impl Timelines {
    fn build(trace: &Trace) -> Timelines {
        Self::build_with(trace, &[])
    }

    fn build_with(trace: &Trace, edges: &[MessageEdge]) -> Timelines {
        let ranks = trace.ranks();
        // Bucket per (rank, track) in ONE pass over the event list. A
        // per-rank `track_events` filter would be O(ranks × events) —
        // ruinous for the 10k-rank simulated traces the scaling
        // observatory feeds through here.
        let mut compute_by: BTreeMap<usize, Vec<TEv>> = BTreeMap::new();
        let mut comm_by: BTreeMap<usize, Vec<TEv>> = BTreeMap::new();
        for e in &trace.events {
            match e.track {
                Track::Compute => compute_by.entry(e.rank).or_default().push(TEv::from(e)),
                Track::Comm => comm_by.entry(e.rank).or_default().push(TEv::from(e)),
                Track::Fault => {}
            }
        }
        let mut top: BTreeMap<usize, Vec<TEv>> = BTreeMap::new();
        let mut comm: BTreeMap<usize, Vec<TEv>> = BTreeMap::new();
        for &r in &ranks {
            let mut compute = compute_by.remove(&r).unwrap_or_default();
            let mut comms = comm_by.remove(&r).unwrap_or_default();
            // Bucketing preserves file order; the nesting check below
            // needs strict ts order regardless of how the trace was
            // assembled.
            compute.sort_by_key(|e| (e.ts, e.end));
            comms.sort_by_key(|e| (e.ts, e.end));
            // A comm span is nested if the last compute span starting at
            // or before it also ends at or after it (compute tracks are
            // serial, so at most one candidate).
            let mut merged = compute.clone();
            for c in &comms {
                let nested = match compute.partition_point(|e| e.ts <= c.ts) {
                    0 => false,
                    i => compute[i - 1].end >= c.end,
                };
                if !nested {
                    merged.push(*c);
                }
            }
            merged.sort_by_key(|e| (e.ts, e.end));
            top.insert(r, merged);
            comm.insert(r, comms);
        }
        let edges = edges
            .iter()
            .map(|e| ((e.dst, e.recv_end_ns), (e.src, e.send_end_ns)))
            .collect();
        Timelines {
            ranks,
            top,
            comm,
            edges,
        }
    }

    /// Last top-level event on `rank` starting strictly before `t`.
    fn last_before(&self, rank: usize, t: u64) -> Option<TEv> {
        let evs = self.top.get(&rank)?;
        let i = evs.partition_point(|e| e.ts < t);
        (i > 0).then(|| evs[i - 1])
    }

    /// Across all ranks, the event that best explains time just below
    /// `t`: maximize `min(end, t)`, then later start, then lower rank.
    fn best_candidate(&self, t: u64) -> Option<TEv> {
        let mut best: Option<TEv> = None;
        for &r in &self.ranks {
            if let Some(e) = self.last_before(r, t) {
                let better = match &best {
                    None => true,
                    Some(b) => {
                        let (ec, bc) = (e.end.min(t), b.end.min(t));
                        ec > bc || (ec == bc && (e.ts > b.ts || (e.ts == b.ts && e.rank < b.rank)))
                    }
                };
                if better {
                    best = Some(e);
                }
            }
        }
        best
    }

    /// The latest send on `recv.peer` addressed to `recv.rank` (matching
    /// tag when the recv carries one) that completed strictly before
    /// `frontier`. Returns `(send_end, send_rank)`.
    fn matched_send(&self, recv: &TEv, frontier: u64) -> Option<(u64, usize)> {
        // An exact causal edge for this receive beats the heuristic.
        if let Some(&(src, send_end)) = self.edges.get(&(recv.rank, recv.end)) {
            if send_end < frontier && send_end <= recv.end {
                return Some((send_end, src));
            }
        }
        let src = recv.peer?;
        let sends = self.comm.get(&src)?;
        sends
            .iter()
            .filter(|s| s.op == "send" && s.peer == Some(recv.rank))
            .filter(|s| recv.tag.is_none() || s.tag == recv.tag)
            .filter(|s| s.end < frontier && s.end <= recv.end)
            .max_by_key(|s| (s.end, s.ts))
            .map(|s| (s.end, s.rank))
    }

    /// For a waiting event, the latest cross-rank dependency end within
    /// `frontier`: for a compute `exchange`, the matched sends of its
    /// nested recvs; for a top-level comm recv, its own matched send.
    fn dependency(&self, ev: &TEv, frontier: u64) -> Option<(u64, usize)> {
        match ev.track {
            Track::Comm if ev.op == "recv" => self.matched_send(ev, frontier),
            Track::Compute if ev.op == "exchange" => {
                let comms = self.comm.get(&ev.rank)?;
                comms
                    .iter()
                    .filter(|c| c.op == "recv" && c.ts >= ev.ts && c.end <= ev.end)
                    .filter_map(|c| self.matched_send(c, frontier))
                    .filter(|&(end, rank)| rank != ev.rank && end > ev.ts)
                    .max_by_key(|&(end, _)| end)
            }
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// V-cycle segmentation
// ---------------------------------------------------------------------------

/// Smoother ops that open a V-cycle's level-0 pre-smooth run.
fn is_level0_smooth(e: &TraceEvent) -> bool {
    e.level == 0 && matches!(e.op.name(), "smooth" | "fusedSmooth" | "smooth+residual")
}

/// Start timestamps of each V-cycle segment; the segments tile the whole
/// trace (setup lands in cycle 1, the tail in the last cycle).
///
/// Anchoring: each V-cycle performs exactly one level-0 `restriction`.
/// The pre-smooth run length `L` is read off the first cycle (level-0
/// smooth-type events up to and including the first `smooth+residual`);
/// cycle `k ≥ 2` then starts at the first of the last `L` smooth-type
/// level-0 events between restrictions `k−1` and `k`.
pub fn cycle_starts(trace: &Trace) -> Vec<u64> {
    let Some((t0, _)) = trace.time_bounds() else {
        return Vec::new();
    };
    let Some(&rank0) = trace.ranks().first() else {
        return vec![t0];
    };
    let evs = trace.track_events(rank0, Track::Compute);
    let restr: Vec<usize> = evs
        .iter()
        .enumerate()
        .filter(|(_, e)| e.level == 0 && e.op.name() == "restriction")
        .map(|(i, _)| i)
        .collect();
    if restr.len() <= 1 {
        return vec![t0];
    }
    // Pre-smooth run length from the first cycle.
    let mut run_len = 0usize;
    for e in &evs[..restr[0]] {
        if is_level0_smooth(e) {
            run_len += 1;
            if e.op.name() == "smooth+residual" {
                break;
            }
        }
    }
    let mut starts = vec![t0];
    for w in restr.windows(2) {
        let window = &evs[w[0] + 1..w[1]];
        let smooth_ts: Vec<u64> = window
            .iter()
            .filter(|e| is_level0_smooth(e))
            .map(|e| e.ts_ns)
            .collect();
        let boundary = if smooth_ts.is_empty() || run_len == 0 {
            evs[w[1]].ts_ns
        } else {
            smooth_ts[smooth_ts.len().saturating_sub(run_len)]
        };
        if boundary > *starts.last().unwrap() {
            starts.push(boundary);
        }
    }
    starts
}

// ---------------------------------------------------------------------------
// Critical path
// ---------------------------------------------------------------------------

/// Backward walk from `seg_end` to `seg_start`, producing segments that
/// tile the interval. At each step the walk sits at a `frontier` and
/// asks: which event explains the time just below it? Inside an event,
/// the event is charged; at a waiting op (exchange / allreduce recv)
/// whose matched send on a peer ends inside the op, the walk charges the
/// wait tail then jumps to the peer; in a gap it charges idle and jumps
/// to whichever rank was last busy.
fn walk_segment(tl: &Timelines, seg_start: u64, seg_end: u64, nevents: usize) -> Vec<PathSegment> {
    let mut segs: Vec<PathSegment> = Vec::new();
    let mut frontier = seg_end;
    let mut cur: Option<usize> = None;
    let mut guard = 4 * nevents + 64;
    while frontier > seg_start && guard > 0 {
        guard -= 1;
        let inside = cur
            .and_then(|r| tl.last_before(r, frontier))
            .filter(|e| e.end >= frontier);
        if let Some(ev) = inside {
            let mut lo = ev.ts.max(seg_start);
            let mut next_frontier = ev.ts;
            let mut next_rank = Some(ev.rank);
            if let Some((dep_end, dep_rank)) = tl.dependency(&ev, frontier) {
                if dep_end > lo && dep_end < frontier {
                    lo = dep_end;
                    next_frontier = dep_end;
                    next_rank = Some(dep_rank);
                }
            }
            if frontier > lo {
                segs.push(PathSegment {
                    rank: ev.rank,
                    level: ev.opt_level(),
                    op: ev.op.to_string(),
                    start_ns: lo,
                    end_ns: frontier,
                });
            }
            frontier = next_frontier.min(frontier).max(seg_start);
            cur = next_rank;
        } else {
            match tl.best_candidate(frontier) {
                Some(c) => {
                    let cend = c.end.min(frontier).max(seg_start);
                    if cend < frontier {
                        segs.push(PathSegment {
                            rank: cur.unwrap_or(c.rank),
                            level: None,
                            op: IDLE_OP.to_string(),
                            start_ns: cend,
                            end_ns: frontier,
                        });
                    }
                    frontier = cend;
                    cur = Some(c.rank);
                }
                None => {
                    segs.push(PathSegment {
                        rank: cur.unwrap_or(0),
                        level: None,
                        op: IDLE_OP.to_string(),
                        start_ns: seg_start,
                        end_ns: frontier,
                    });
                    frontier = seg_start;
                }
            }
        }
    }
    segs.reverse();
    // Coalesce adjacent same-(rank, op, level) segments.
    let mut merged: Vec<PathSegment> = Vec::with_capacity(segs.len());
    for s in segs {
        match merged.last_mut() {
            Some(last)
                if last.end_ns == s.start_ns
                    && last.rank == s.rank
                    && last.op == s.op
                    && last.level == s.level =>
            {
                last.end_ns = s.end_ns;
            }
            _ => merged.push(s),
        }
    }
    merged
}

/// Compute the critical path over the whole trace, one walk per V-cycle.
pub fn critical_path(trace: &Trace) -> CriticalPath {
    critical_path_with_edges(trace, &[])
}

/// [`critical_path`] with exact cross-rank message edges: wherever an
/// edge names the send a receive actually waited on, the walk follows it
/// instead of guessing from `(peer, tag)` timing — the distributed path
/// then crosses rank boundaries through true causality.
pub fn critical_path_with_edges(trace: &Trace, edges: &[MessageEdge]) -> CriticalPath {
    let Some((t0, t1)) = trace.time_bounds() else {
        return CriticalPath::default();
    };
    let tl = Timelines::build_with(trace, edges);
    let starts = cycle_starts(trace);
    let mut cycles = Vec::new();
    let mut op_totals: BTreeMap<String, f64> = BTreeMap::new();
    let mut busy_ns = 0u64;
    for (i, &s) in starts.iter().enumerate() {
        let e = starts.get(i + 1).copied().unwrap_or(t1);
        if e <= s {
            continue;
        }
        let segments = walk_segment(&tl, s, e, trace.events.len());
        let cyc_busy: u64 = segments
            .iter()
            .filter(|g| g.op != IDLE_OP)
            .map(|g| g.end_ns - g.start_ns)
            .sum();
        busy_ns += cyc_busy;
        for g in &segments {
            *op_totals.entry(g.op.clone()).or_insert(0.0) += g.seconds();
        }
        cycles.push(CyclePath {
            cycle: i + 1,
            start_ns: s,
            end_ns: e,
            coverage: cyc_busy as f64 / (e - s) as f64,
            segments,
        });
    }
    let wall = (t1 - t0) as f64;
    let mut totals: Vec<(String, f64)> = op_totals.into_iter().collect();
    totals.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    CriticalPath {
        cycles,
        coverage: if wall > 0.0 {
            busy_ns as f64 / wall
        } else {
            0.0
        },
        op_totals: totals,
    }
}

// ---------------------------------------------------------------------------
// Load imbalance and utilization
// ---------------------------------------------------------------------------

/// Per-`(level, op)` cross-rank imbalance over compute spans.
pub fn imbalance(trace: &Trace) -> Vec<ImbalanceRow> {
    let ranks = trace.ranks();
    if ranks.is_empty() {
        return Vec::new();
    }
    let rows = trace
        .events
        .iter()
        .filter(|e| e.track == Track::Compute)
        .map(|e| {
            (
                e.level,
                e.op.name().to_string(),
                e.rank,
                e.dur_ns as f64 / 1e9,
            )
        });
    imbalance_from_seconds(rows, ranks.len())
}

/// [`imbalance`] over pre-aggregated `(level, op, rank, seconds)` rows —
/// for producers (e.g. the `gmg-scale` simulator) that track per-rank
/// op seconds directly and would otherwise have to materialize a
/// multi-million-event `Trace` just to compute a max/mean table. Rows
/// for the same `(level, op, rank)` accumulate; `n_ranks` is the world
/// size the mean is taken over (absent ranks count as zero, matching
/// the trace-based path).
pub fn imbalance_from_seconds(
    rows: impl IntoIterator<Item = (usize, String, usize, f64)>,
    n_ranks: usize,
) -> Vec<ImbalanceRow> {
    if n_ranks == 0 {
        return Vec::new();
    }
    let mut per: BTreeMap<(usize, String), BTreeMap<usize, f64>> = BTreeMap::new();
    for (level, op, rank, seconds) in rows {
        *per.entry((level, op))
            .or_default()
            .entry(rank)
            .or_insert(0.0) += seconds;
    }
    per.into_iter()
        .map(|((level, op), by_rank)| {
            let total: f64 = by_rank.values().sum();
            let mean = total / n_ranks as f64;
            let (&max_rank, &max_s) = by_rank
                .iter()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(a.0)))
                .unwrap();
            ImbalanceRow {
                level,
                op,
                mean_s: mean,
                max_s,
                factor: if mean > 0.0 { max_s / mean } else { 1.0 },
                max_rank,
            }
        })
        .collect()
}

/// Per-rank compute/comm/idle split over the trace extent. Comm time
/// counts only spans not nested inside a same-rank compute span; idle is
/// the extent minus the union of busy intervals.
pub fn utilization(trace: &Trace) -> Vec<RankUtil> {
    let Some((t0, t1)) = trace.time_bounds() else {
        return Vec::new();
    };
    let tl = Timelines::build(trace);
    let wall = (t1 - t0) as f64 / 1e9;
    tl.ranks
        .iter()
        .map(|&r| {
            let top = &tl.top[&r];
            let mut compute_s = 0.0;
            let mut comm_s = 0.0;
            let mut busy_ns = 0u64;
            let mut cover_end = t0;
            for e in top {
                match e.track {
                    Track::Compute => compute_s += (e.end - e.ts) as f64 / 1e9,
                    Track::Comm => comm_s += (e.end - e.ts) as f64 / 1e9,
                    Track::Fault => {}
                }
                let lo = e.ts.max(cover_end);
                if e.end > lo {
                    busy_ns += e.end - lo;
                    cover_end = e.end;
                }
            }
            RankUtil {
                rank: r,
                compute_s,
                comm_s,
                idle_s: (wall - busy_ns as f64 / 1e9).max(0.0),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Outlier detection
// ---------------------------------------------------------------------------

/// Smallest population per `(level, op)` before MAD statistics apply.
const OUTLIER_MIN_SAMPLES: usize = 8;

/// One sample's verdict from [`mad_outliers`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MadVerdict {
    pub flagged: bool,
    /// Robust z-score `(sample - median) / σ_MAD`.
    pub score: f64,
    pub median: f64,
    pub threshold: f64,
}

/// The reusable robust-outlier core shared by [`outliers`] and the
/// gmg-live straggler alert: each sample is judged against
/// `median + max(5·σ_MAD, 0.5·median, abs_floor)` where
/// `σ_MAD = max(1.4826·MAD, 1)`. Returns one verdict per input sample
/// (in input order); fewer than `min_samples` inputs flag nothing.
pub fn mad_outliers(samples: &[f64], min_samples: usize, abs_floor: f64) -> Vec<MadVerdict> {
    let mut sorted: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if sorted.len() < min_samples.max(1) {
        return samples
            .iter()
            .map(|&s| MadVerdict {
                flagged: false,
                score: 0.0,
                median: s,
                threshold: f64::INFINITY,
            })
            .collect();
    }
    let median = sorted[sorted.len() / 2];
    let mut devs: Vec<f64> = sorted.iter().map(|&d| (d - median).abs()).collect();
    devs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mad = devs[devs.len() / 2];
    let sigma = (1.4826 * mad).max(1.0);
    let threshold = median + (5.0 * sigma).max(0.5 * median).max(abs_floor);
    samples
        .iter()
        .map(|&s| MadVerdict {
            flagged: s.is_finite() && s > threshold,
            score: if s.is_finite() {
                (s - median) / sigma
            } else {
                0.0
            },
            median,
            threshold,
        })
        .collect()
}

/// MAD-based straggler detection over compute-span durations. A span is
/// flagged when it exceeds `median + max(5·σ_MAD, 0.5·median, 10 µs)` —
/// the robust-z threshold catches stalls, the relative and absolute
/// floors suppress noise on very uniform or very short populations.
pub fn outliers(trace: &Trace) -> Vec<Outlier> {
    let mut groups: BTreeMap<(usize, &'static str), Vec<&TraceEvent>> = BTreeMap::new();
    for e in &trace.events {
        if e.track == Track::Compute {
            groups.entry((e.level, e.op.name())).or_default().push(e);
        }
    }
    let mut out = Vec::new();
    for ((level, op), evs) in groups {
        if evs.len() < OUTLIER_MIN_SAMPLES {
            continue;
        }
        let durs: Vec<f64> = evs.iter().map(|e| e.dur_ns as f64).collect();
        let verdicts = mad_outliers(&durs, OUTLIER_MIN_SAMPLES, 10_000.0);
        for (e, v) in evs.iter().zip(&verdicts) {
            if v.flagged {
                out.push(Outlier {
                    rank: e.rank,
                    level: (level != LEVEL_NONE).then_some(level),
                    op: op.to_string(),
                    ts_ns: e.ts_ns,
                    dur_ns: e.dur_ns,
                    median_ns: v.median as u64,
                    score: v.score,
                });
            }
        }
    }
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap()
            .then(a.ts_ns.cmp(&b.ts_ns))
    });
    out
}

// ---------------------------------------------------------------------------
// Roofline attribution
// ---------------------------------------------------------------------------

/// Per-kernel roofline rows for every summary row that tracked byte
/// traffic, classified against the envelope.
pub fn roofline(summary: &TraceSummary, env: &MachineEnvelope) -> Vec<RooflineRow> {
    let mut rows = Vec::new();
    for r in &summary.rows {
        let bytes = r.counters.bytes_read + r.counters.bytes_written;
        let Some(achieved) = summary.achieved_gb_per_s(r.level, &r.op) else {
            continue;
        };
        if bytes == 0 || env.triad_gbs <= 0.0 {
            continue;
        }
        let fraction = achieved / env.triad_gbs;
        let per_invocation_s = if r.invocations > 0 {
            r.seconds / r.invocations as f64
        } else {
            0.0
        };
        let bound = if fraction >= 0.5 {
            Bound::Bandwidth
        } else if per_invocation_s <= 20.0 * env.launch_alpha_s {
            Bound::Launch
        } else {
            Bound::Latency
        };
        rows.push(RooflineRow {
            level: r.level,
            op: r.op.clone(),
            achieved_gbs: achieved,
            ceiling_gbs: env.triad_gbs,
            fraction,
            gstencil: summary.gstencil_per_s(r.level, &r.op),
            bound,
        });
    }
    rows
}

/// Exchange-bandwidth attribution: observed average message size against
/// the comm model's half-performance size `n_1/2 = α·β`.
pub fn comm_attribution(summary: &TraceSummary, env: &MachineEnvelope) -> Option<CommAttribution> {
    if summary.comm.messages == 0 {
        return None;
    }
    let achieved = summary.comm_gb_per_s()?;
    let avg = summary.comm.message_bytes as f64 / summary.comm.messages as f64;
    let n_half = env.comm_alpha_s * env.comm_beta_gbs * 1e9;
    let model_time = env.comm_alpha_s + avg / (env.comm_beta_gbs * 1e9);
    let model_gbs = if model_time > 0.0 {
        avg / model_time / 1e9
    } else {
        env.comm_beta_gbs
    };
    Some(CommAttribution {
        avg_msg_bytes: avg,
        n_half_bytes: n_half,
        achieved_gbs: achieved,
        model_gbs,
        bound: if avg < n_half {
            Bound::Latency
        } else {
            Bound::Bandwidth
        },
    })
}

// ---------------------------------------------------------------------------
// Diffing and slowdown injection
// ---------------------------------------------------------------------------

/// One `(level, op)` comparison between two runs.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffRow {
    pub level: usize,
    pub op: String,
    /// Mean seconds per invocation in run A (None if absent there).
    pub a_mean_s: Option<f64>,
    /// Mean seconds per invocation in run B.
    pub b_mean_s: Option<f64>,
    /// `b_mean / a_mean` when both present.
    pub ratio: Option<f64>,
    /// B is slower than A by more than the threshold.
    pub regressed: bool,
    /// B is faster than A by more than the threshold.
    pub improved: bool,
}

/// Compare two runs per `(level, op)` on mean seconds per invocation;
/// ratios beyond `1 ± threshold` are flagged. Per-invocation means (not
/// totals) keep the comparison valid when cycle counts differ.
pub fn diff_summaries(a: &TraceSummary, b: &TraceSummary, threshold: f64) -> Vec<DiffRow> {
    let mean_of = |s: &TraceSummary| -> BTreeMap<(usize, String), f64> {
        s.rows
            .iter()
            .filter(|r| r.invocations > 0)
            .map(|r| ((r.level, r.op.clone()), r.seconds / r.invocations as f64))
            .collect()
    };
    let (ma, mb) = (mean_of(a), mean_of(b));
    let mut keys: Vec<&(usize, String)> = ma.keys().chain(mb.keys()).collect();
    keys.sort();
    keys.dedup();
    keys.into_iter()
        .map(|k| {
            let (a_mean, b_mean) = (ma.get(k).copied(), mb.get(k).copied());
            let ratio = match (a_mean, b_mean) {
                (Some(x), Some(y)) if x > 0.0 => Some(y / x),
                _ => None,
            };
            DiffRow {
                level: k.0,
                op: k.1.clone(),
                a_mean_s: a_mean,
                b_mean_s: b_mean,
                ratio,
                regressed: ratio.is_some_and(|r| r >= 1.0 + threshold),
                improved: ratio.is_some_and(|r| r <= 1.0 / (1.0 + threshold)),
            }
        })
        .collect()
}

/// Testing/diagnostic utility: return a copy of `trace` in which every
/// compute span named `op` has its duration scaled by `factor`, with all
/// later events on the same rank shifted to keep per-rank timelines
/// serial. Events nested inside a scaled span shift by the accumulated
/// offset at their start, so the transform is only faithful for ops
/// without nested comm (the smoothers and residual kernels) — which is
/// exactly what the `--inject-slowdown` diff check targets.
pub fn scale_op(trace: &Trace, op: &str, factor: f64) -> Trace {
    let ranks = trace.ranks();
    let mut events: Vec<TraceEvent> = Vec::with_capacity(trace.events.len());
    for r in ranks {
        let mut shift: i64 = 0;
        for e in trace.events.iter().filter(|e| e.rank == r) {
            let mut ev = *e;
            ev.ts_ns = (ev.ts_ns as i64 + shift).max(0) as u64;
            if e.track == Track::Compute && e.op.name() == op {
                let new_dur = (e.dur_ns as f64 * factor).round() as u64;
                shift += new_dur as i64 - e.dur_ns as i64;
                ev.dur_ns = new_dur;
            }
            events.push(ev);
        }
    }
    events.sort_by_key(|e| (e.ts_ns, e.dur_ns));
    Trace { events }
}

// ---------------------------------------------------------------------------
// Top-level analysis + report rendering
// ---------------------------------------------------------------------------

impl Analysis {
    /// Run every analysis over a captured trace. Roofline sections are
    /// produced only when a machine envelope is supplied.
    pub fn from_trace(trace: &Trace, env: Option<&MachineEnvelope>) -> Analysis {
        let summary = TraceSummary::from_trace(trace);
        let (roofline_rows, comm) = match env {
            Some(env) => (roofline(&summary, env), comm_attribution(&summary, env)),
            None => (Vec::new(), None),
        };
        Analysis {
            path: critical_path(trace),
            imbalance: imbalance(trace),
            utilization: utilization(trace),
            outliers: outliers(trace),
            roofline: roofline_rows,
            comm,
            summary,
        }
    }

    /// Render the markdown analysis report. Deterministic: the same
    /// trace yields a byte-identical report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let s = &self.summary;
        out.push_str("# GMG trace analysis\n\n");
        let _ = writeln!(
            out,
            "- ranks: {}\n- wall time: {:.6} s\n- V-cycles segmented: {}\n- critical-path coverage: {:.1}% of wall time",
            s.nranks,
            s.wall_seconds,
            self.path.cycles.len(),
            self.path.coverage * 100.0
        );
        out.push('\n');

        out.push_str("## Per-level op time fractions (Table II)\n\n");
        out.push_str("| level | op | time/rank (s) | fraction | invocations |\n");
        out.push_str("|---:|---|---:|---:|---:|\n");
        for level in s.levels() {
            for (op, frac) in s.level_fractions(level) {
                let row = s.level_rows(level).find(|r| r.op == op).unwrap();
                let per_rank = if s.nranks > 0 {
                    row.seconds / s.nranks as f64
                } else {
                    row.seconds
                };
                let _ = writeln!(
                    out,
                    "| {} | {} | {:.6} | {:.2}% | {} |",
                    level,
                    op,
                    per_rank,
                    frac * 100.0,
                    row.invocations
                );
            }
        }
        out.push('\n');

        out.push_str("## Critical path\n\n");
        out.push_str("| cycle | span (ms) | coverage | gating ops (top 3) |\n");
        out.push_str("|---:|---:|---:|---|\n");
        for c in &self.path.cycles {
            let mut per_op: BTreeMap<&str, f64> = BTreeMap::new();
            for g in &c.segments {
                *per_op.entry(&g.op).or_insert(0.0) += g.seconds();
            }
            let mut tops: Vec<(&str, f64)> = per_op.into_iter().collect();
            tops.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(b.0)));
            let gating = tops
                .iter()
                .take(3)
                .map(|(op, t)| format!("{op} {:.3} ms", t * 1e3))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(
                out,
                "| {} | {:.3} | {:.1}% | {} |",
                c.cycle,
                (c.end_ns - c.start_ns) as f64 / 1e6,
                c.coverage * 100.0,
                gating
            );
        }
        out.push('\n');
        out.push_str("Time on the critical path per op:\n\n");
        out.push_str("| op | seconds | share of wall |\n");
        out.push_str("|---|---:|---:|\n");
        let wall = s.wall_seconds.max(f64::MIN_POSITIVE);
        for (op, secs) in &self.path.op_totals {
            let _ = writeln!(
                out,
                "| {} | {:.6} | {:.1}% |",
                op,
                secs,
                secs / wall * 100.0
            );
        }
        out.push('\n');

        out.push_str("## Load imbalance\n\n");
        out.push_str("| level | op | mean/rank (s) | max (s) | factor | slowest rank |\n");
        out.push_str("|---:|---|---:|---:|---:|---:|\n");
        for r in &self.imbalance {
            let _ = writeln!(
                out,
                "| {} | {} | {:.6} | {:.6} | {:.2} | {} |",
                r.level, r.op, r.mean_s, r.max_s, r.factor, r.max_rank
            );
        }
        out.push('\n');

        out.push_str("## Rank utilization\n\n");
        out.push_str("| rank | compute (s) | comm (s) | idle (s) | busy |\n");
        out.push_str("|---:|---:|---:|---:|---:|\n");
        for u in &self.utilization {
            let busy = 1.0 - u.idle_s / s.wall_seconds.max(f64::MIN_POSITIVE);
            let _ = writeln!(
                out,
                "| {} | {:.6} | {:.6} | {:.6} | {:.1}% |",
                u.rank,
                u.compute_s,
                u.comm_s,
                u.idle_s,
                busy.max(0.0) * 100.0
            );
        }
        out.push('\n');

        if !self.roofline.is_empty() || self.comm.is_some() {
            out.push_str("## Roofline attribution\n\n");
            if !self.roofline.is_empty() {
                out.push_str(
                    "| level | op | achieved GB/s | ceiling GB/s | fraction | GStencil/s | classification |\n",
                );
                out.push_str("|---:|---|---:|---:|---:|---:|---|\n");
                for r in &self.roofline {
                    let g = match r.gstencil {
                        Some(g) => format!("{g:.3}"),
                        None => "-".to_string(),
                    };
                    let _ = writeln!(
                        out,
                        "| {} | {} | {:.2} | {:.2} | {:.1}% | {} | {} |",
                        r.level,
                        r.op,
                        r.achieved_gbs,
                        r.ceiling_gbs,
                        r.fraction * 100.0,
                        g,
                        r.bound.name()
                    );
                }
                out.push('\n');
            }
            if let Some(c) = &self.comm {
                let _ = writeln!(
                    out,
                    "Exchange: {:.2} GB/s achieved vs {:.2} GB/s modeled at avg message {:.0} B (n_1/2 = {:.0} B) — {}.",
                    c.achieved_gbs,
                    c.model_gbs,
                    c.avg_msg_bytes,
                    c.n_half_bytes,
                    c.bound.name()
                );
                out.push('\n');
            }
        }

        out.push_str("## Outliers\n\n");
        if self.outliers.is_empty() {
            out.push_str("No straggler spans detected (MAD-based, per (level, op)).\n\n");
        } else {
            out.push_str("| rank | level | op | at (ms) | dur (ms) | median (ms) | robust z |\n");
            out.push_str("|---:|---:|---|---:|---:|---:|---:|\n");
            for o in self.outliers.iter().take(20) {
                let lvl = match o.level {
                    Some(l) => l.to_string(),
                    None => "-".to_string(),
                };
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {:.3} | {:.3} | {:.3} | {:.1} |",
                    o.rank,
                    lvl,
                    o.op,
                    o.ts_ns as f64 / 1e6,
                    o.dur_ns as f64 / 1e6,
                    o.median_ns as f64 / 1e6,
                    o.score
                );
            }
            if self.outliers.len() > 20 {
                let _ = writeln!(out, "\n({} more not shown)", self.outliers.len() - 20);
            }
            out.push('\n');
        }

        if !s.faults.is_empty() {
            out.push_str("## Fault events\n\n");
            out.push_str("| kind | count |\n|---|---:|\n");
            for (kind, n) in &s.faults {
                let _ = writeln!(out, "| {} | {} |", kind, n);
            }
            out.push('\n');
        }
        out
    }
}

/// Render a diff of two runs as markdown, flagging regressions.
pub fn render_diff(rows: &[DiffRow], threshold: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# GMG run diff\n\nPer-invocation mean seconds, B vs A; flagged beyond ±{:.0}%.\n",
        threshold * 100.0
    );
    out.push_str("| level | op | A mean (ms) | B mean (ms) | ratio | flag |\n");
    out.push_str("|---:|---|---:|---:|---:|---|\n");
    for r in rows {
        let fmt = |v: Option<f64>| match v {
            Some(x) => format!("{:.4}", x * 1e3),
            None => "-".to_string(),
        };
        let ratio = match r.ratio {
            Some(x) => format!("{x:.3}"),
            None => "-".to_string(),
        };
        let flag = if r.regressed {
            "**REGRESSED**"
        } else if r.improved {
            "improved"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} |",
            r.level,
            r.op,
            fmt(r.a_mean_s),
            fmt(r.b_mean_s),
            ratio,
            flag
        );
    }
    let n = rows.iter().filter(|r| r.regressed).count();
    let _ = writeln!(
        out,
        "\n{} regression{} detected.",
        n,
        if n == 1 { "" } else { "s" }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmg_trace::sink::{intern, Counters};

    fn ev(
        rank: usize,
        level: usize,
        op: &str,
        track: Track,
        ts_ms: u64,
        dur_ms: u64,
    ) -> TraceEvent {
        TraceEvent {
            rank,
            level,
            op: intern(op),
            track,
            ts_ns: ts_ms * 1_000_000,
            dur_ns: dur_ms * 1_000_000,
            counters: Counters::default(),
            peer: None,
            tag: None,
        }
    }

    fn mk_trace(mut events: Vec<TraceEvent>) -> Trace {
        events.sort_by_key(|e| (e.ts_ns, e.dur_ns));
        Trace { events }
    }

    /// Two ranks. Rank 1's smooth is slow (30 ms vs 10 ms); rank 0's
    /// exchange waits on rank 1's send. The path must jump to rank 1.
    fn dependency_trace() -> Trace {
        let mut send_r1 = ev(1, LEVEL_NONE, "send", Track::Comm, 30, 2);
        send_r1.peer = Some(0);
        send_r1.tag = Some(7);
        let mut recv_r0 = ev(0, LEVEL_NONE, "recv", Track::Comm, 11, 21);
        recv_r0.peer = Some(1);
        recv_r0.tag = Some(7);
        mk_trace(vec![
            // rank 0: fast smooth then a long exchange waiting on rank 1
            ev(0, 0, "smooth", Track::Compute, 0, 10),
            ev(0, 0, "exchange", Track::Compute, 10, 23), // ends at 33
            recv_r0,                                      // nested in exchange
            ev(0, 0, "applyOp", Track::Compute, 33, 7),   // ends at 40
            // rank 1: slow smooth, then its send at 30..32
            ev(1, 0, "smooth", Track::Compute, 0, 30),
            send_r1,
            ev(1, 0, "exchange", Track::Compute, 32, 2),
            ev(1, 0, "applyOp", Track::Compute, 34, 5),
        ])
    }

    #[test]
    fn path_follows_send_dependency_across_ranks() {
        let trace = dependency_trace();
        let path = critical_path(&trace);
        assert_eq!(path.cycles.len(), 1);
        let segs = &path.cycles[0].segments;
        // The walk starts at rank 0's applyOp (latest end), crosses the
        // exchange wait to rank 1's send, and lands in rank 1's smooth.
        let on_r1_smooth = segs
            .iter()
            .any(|g| g.rank == 1 && g.op == "smooth" && g.seconds() > 0.025);
        assert!(
            on_r1_smooth,
            "path must charge rank 1's slow smooth: {segs:#?}"
        );
        // Rank 0's fast smooth is NOT on the path.
        assert!(
            !segs.iter().any(|g| g.rank == 0 && g.op == "smooth"),
            "rank 0's smooth is shadowed by rank 1: {segs:#?}"
        );
        // Segments tile the cycle exactly.
        let total: f64 = segs.iter().map(|g| g.seconds()).sum();
        assert!((total - 0.040).abs() < 1e-9, "tiling broken: {total}");
        assert!(
            path.coverage > 0.99,
            "no idle in this trace: {}",
            path.coverage
        );
        // Deterministic: identical reruns give identical paths.
        assert_eq!(path, critical_path(&trace));
    }

    /// Two sends from rank 1 to rank 0 under the same tag. The timing
    /// heuristic matches the receive to the *later* send (latest end not
    /// past the recv); an exact flight-recorder edge says the wait was on
    /// the *earlier* one, so the path must cross into rank 1's prep
    /// instead of its slow work.
    #[test]
    fn exact_edges_override_heuristic_matching() {
        let mut early_send = ev(1, LEVEL_NONE, "send", Track::Comm, 15, 1);
        early_send.peer = Some(0);
        early_send.tag = Some(7);
        let mut late_send = ev(1, LEVEL_NONE, "send", Track::Comm, 28, 2);
        late_send.peer = Some(0);
        late_send.tag = Some(7);
        let mut recv = ev(0, LEVEL_NONE, "recv", Track::Comm, 11, 21); // ends at 32
        recv.peer = Some(1);
        recv.tag = Some(7);
        let trace = mk_trace(vec![
            ev(0, 0, "smooth", Track::Compute, 0, 10),
            ev(0, 0, "exchange", Track::Compute, 10, 23), // ends at 33
            recv,
            ev(1, 0, "prep", Track::Compute, 0, 15),
            early_send,
            ev(1, 0, "slowwork", Track::Compute, 17, 11),
            late_send,
        ]);
        let heuristic = critical_path(&trace);
        let on_slow = |p: &CriticalPath| {
            p.op_totals
                .iter()
                .find(|(op, _)| op == "slowwork")
                .map_or(0.0, |(_, s)| *s)
        };
        assert!(
            on_slow(&heuristic) > 0.010,
            "heuristic matches the late send: {:#?}",
            heuristic.op_totals
        );
        let edges = [MessageEdge {
            src: 1,
            send_end_ns: 16_000_000,
            dst: 0,
            recv_end_ns: 32_000_000,
        }];
        let exact = critical_path_with_edges(&trace, &edges);
        assert!(
            on_slow(&exact) < 0.001,
            "exact edge must bypass slowwork: {:#?}",
            exact.op_totals
        );
        assert!(
            exact
                .op_totals
                .iter()
                .any(|(op, s)| op == "prep" && *s > 0.004),
            "path must land in rank 1's prep: {:#?}",
            exact.op_totals
        );
        // No edges = the heuristic path, exactly.
        assert_eq!(heuristic, critical_path_with_edges(&trace, &[]));
    }

    #[test]
    fn path_charges_idle_for_unexplained_gaps() {
        let trace = mk_trace(vec![
            ev(0, 0, "smooth", Track::Compute, 0, 10),
            ev(0, 0, "applyOp", Track::Compute, 20, 10),
        ]);
        let path = critical_path(&trace);
        let idle: f64 = path
            .cycles
            .iter()
            .flat_map(|c| &c.segments)
            .filter(|g| g.op == IDLE_OP)
            .map(|g| g.seconds())
            .sum();
        assert!(
            (idle - 0.010).abs() < 1e-9,
            "10 ms gap must be idle: {idle}"
        );
        assert!((path.coverage - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn cycle_starts_segment_on_presmooth_runs() {
        // Two V-cycles: smooth, smooth+residual, restriction, coarse,
        // interpolation, post-smooth — then the same again.
        let cyc = |base: u64| {
            vec![
                ev(0, 0, "smooth", Track::Compute, base, 5),
                ev(0, 0, "smooth+residual", Track::Compute, base + 5, 5),
                ev(0, 0, "restriction", Track::Compute, base + 10, 2),
                ev(0, 1, "smooth", Track::Compute, base + 12, 3),
                ev(
                    0,
                    0,
                    "interpolation+increment",
                    Track::Compute,
                    base + 15,
                    2,
                ),
                ev(0, 0, "smooth", Track::Compute, base + 17, 5),
            ]
        };
        let mut events = cyc(0);
        events.extend(cyc(22));
        let trace = mk_trace(events);
        let starts = cycle_starts(&trace);
        // Cycle 2 starts at its first pre-smooth (ts 22 ms), not at the
        // post-smooth of cycle 1 (ts 17 ms) and not at the restriction.
        assert_eq!(starts, vec![0, 22_000_000]);
        let path = critical_path(&trace);
        assert_eq!(path.cycles.len(), 2);
    }

    #[test]
    fn imbalance_flags_slow_rank() {
        let trace = mk_trace(vec![
            ev(0, 0, "smooth", Track::Compute, 0, 10),
            ev(1, 0, "smooth", Track::Compute, 0, 30),
        ]);
        let rows = imbalance(&trace);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!((r.level, r.op.as_str(), r.max_rank), (0, "smooth", 1));
        assert!((r.factor - 1.5).abs() < 1e-9); // 30 / mean(20)
    }

    #[test]
    fn imbalance_from_seconds_matches_trace_path() {
        let trace = mk_trace(vec![
            ev(0, 0, "smooth", Track::Compute, 0, 10),
            ev(1, 0, "smooth", Track::Compute, 0, 30),
            ev(0, 1, "applyOp", Track::Compute, 40, 4),
        ]);
        let via_trace = imbalance(&trace);
        // `ev` takes milliseconds; mirror the same durations in seconds.
        let rows = vec![
            (0usize, "smooth".to_string(), 0usize, 10e-3),
            (0, "smooth".to_string(), 1, 30e-3),
            (1, "applyOp".to_string(), 0, 4e-3),
        ];
        let via_agg = imbalance_from_seconds(rows, 2);
        assert_eq!(via_trace.len(), via_agg.len());
        for (a, b) in via_trace.iter().zip(&via_agg) {
            assert_eq!((a.level, &a.op, a.max_rank), (b.level, &b.op, b.max_rank));
            assert!((a.mean_s - b.mean_s).abs() < 1e-15);
            assert!((a.factor - b.factor).abs() < 1e-12);
        }
        // Duplicate (level, op, rank) rows accumulate.
        let dup = imbalance_from_seconds(
            vec![
                (0usize, "smooth".to_string(), 1usize, 10e-9),
                (0, "smooth".to_string(), 1, 20e-9),
                (0, "smooth".to_string(), 0, 10e-9),
            ],
            2,
        );
        assert!((dup[0].max_s - 30e-9).abs() < 1e-15);
        assert_eq!(dup[0].max_rank, 1);
    }

    #[test]
    fn utilization_counts_only_toplevel_comm_and_gaps() {
        let mut nested = ev(0, LEVEL_NONE, "recv", Track::Comm, 2, 3);
        nested.peer = Some(1);
        let trace = mk_trace(vec![
            ev(0, 0, "exchange", Track::Compute, 0, 10),
            nested, // inside the exchange: not counted as comm time
            ev(0, LEVEL_NONE, "send", Track::Comm, 10, 5), // top-level
            ev(0, 0, "applyOp", Track::Compute, 25, 5),
            ev(1, 0, "smooth", Track::Compute, 0, 30),
        ]);
        let u = utilization(&trace);
        assert_eq!(u.len(), 2);
        assert!((u[0].compute_s - 0.015).abs() < 1e-9);
        assert!((u[0].comm_s - 0.005).abs() < 1e-9);
        assert!((u[0].idle_s - 0.010).abs() < 1e-9); // 15..25 ms gap
        assert!(u[1].idle_s.abs() < 1e-9);
    }

    #[test]
    fn outliers_flag_injected_stall() {
        let mut events: Vec<TraceEvent> = (0..12)
            .map(|i| ev(0, 0, "smooth", Track::Compute, i * 12, 10))
            .collect();
        // One 8× straggler.
        events.push(ev(1, 0, "smooth", Track::Compute, 0, 80));
        // A uniform population that must NOT be flagged.
        events.extend((0..12).map(|i| ev(1, 0, "applyOp", Track::Compute, 200 + i * 12, 10)));
        let trace = mk_trace(events);
        let out = outliers(&trace);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!((out[0].rank, out[0].op.as_str()), (1, "smooth"));
        assert_eq!(out[0].median_ns, 10_000_000);
        assert!(out[0].score > 5.0);
    }

    #[test]
    fn mad_outliers_core_flags_straggler_and_respects_min_samples() {
        // A 4-sample population (one per rank, as the live alert engine
        // sees it): three uniform ranks and one 10× straggler.
        let samples = [1.0e6, 1.1e6, 0.9e6, 1.0e7];
        let v = mad_outliers(&samples, 3, 10_000.0);
        assert_eq!(
            v.iter().map(|x| x.flagged).collect::<Vec<_>>(),
            [false, false, false, true]
        );
        assert!(v[3].score > 5.0);
        // Below min_samples nothing flags, whatever the spread.
        assert!(mad_outliers(&samples, 5, 10_000.0)
            .iter()
            .all(|x| !x.flagged));
        // Uniform populations never flag.
        assert!(mad_outliers(&[5.0; 8], 3, 10_000.0)
            .iter()
            .all(|x| !x.flagged));
    }

    fn env() -> MachineEnvelope {
        MachineEnvelope {
            triad_gbs: 20.0,
            launch_alpha_s: 1e-6,
            comm_alpha_s: 1e-6,
            comm_beta_gbs: 10.0,
        }
    }

    #[test]
    fn roofline_classifies_bandwidth_latency_launch() {
        let mut fast = ev(0, 0, "smooth", Track::Compute, 0, 100);
        // 1.5 GB in 0.1 s = 15 GB/s = 75% of the 20 GB/s roof.
        fast.counters.bytes_read = 1_000_000_000;
        fast.counters.bytes_written = 500_000_000;
        fast.counters.stencil_points = 1_000_000;
        let mut tiny = ev(0, 3, "smooth", Track::Compute, 100, 1);
        // 1 ms invocation but trivial bytes → low fraction; 1 ms is
        // > 20 µs launch floor, so latency-bound.
        tiny.counters.bytes_read = 1_000;
        let mut launch = ev(0, 4, "applyOp", Track::Compute, 101, 0);
        launch.dur_ns = 10_000; // 10 µs ≤ 20·launch_alpha
        launch.counters.bytes_read = 1_000;
        let summary = TraceSummary::from_trace(&mk_trace(vec![fast, tiny, launch]));
        let rows = roofline(&summary, &env());
        let by = |level: usize| rows.iter().find(|r| r.level == level).unwrap();
        assert_eq!(by(0).bound, Bound::Bandwidth);
        assert!((by(0).achieved_gbs - 15.0).abs() < 1e-6);
        assert_eq!(by(3).bound, Bound::Latency);
        assert_eq!(by(4).bound, Bound::Launch);
    }

    #[test]
    fn comm_attribution_splits_on_n_half() {
        let mut small = ev(0, LEVEL_NONE, "send", Track::Comm, 0, 1);
        small.counters.messages = 10;
        small.counters.message_bytes = 10_000; // 1 kB avg < n_1/2 = 10 kB
        let s = TraceSummary::from_trace(&mk_trace(vec![small]));
        let c = comm_attribution(&s, &env()).unwrap();
        assert_eq!(c.bound, Bound::Latency);
        assert!((c.n_half_bytes - 10_000.0).abs() < 1e-6);
        assert!(c.model_gbs < env().comm_beta_gbs);
    }

    #[test]
    fn diff_flags_scaled_op_only() {
        let trace = dependency_trace();
        let slowed = scale_op(&trace, "smooth", 1.3);
        let a = TraceSummary::from_trace(&trace);
        let b = TraceSummary::from_trace(&slowed);
        let rows = diff_summaries(&a, &b, 0.15);
        let regressed: Vec<&str> = rows
            .iter()
            .filter(|r| r.regressed)
            .map(|r| r.op.as_str())
            .collect();
        assert_eq!(regressed, vec!["smooth"], "{rows:#?}");
        let smooth = rows.iter().find(|r| r.op == "smooth").unwrap();
        assert!((smooth.ratio.unwrap() - 1.3).abs() < 1e-6);
        // Scaling keeps per-rank serial-track invariants.
        assert!(slowed.track_is_serial(0, Track::Compute));
        assert!(slowed.track_is_serial(1, Track::Compute));
        // No-op scaling is the identity.
        assert_eq!(scale_op(&trace, "smooth", 1.0), trace);
        // And the diff report names the regression.
        let text = render_diff(&rows, 0.15);
        assert!(text.contains("**REGRESSED**"));
        assert!(text.contains("1 regression detected"));
    }

    #[test]
    fn full_analysis_renders_every_section() {
        let analysis = Analysis::from_trace(&dependency_trace(), Some(&env()));
        let text = analysis.render();
        for needle in [
            "# GMG trace analysis",
            "critical-path coverage",
            "Table II",
            "## Critical path",
            "## Load imbalance",
            "## Rank utilization",
            "## Outliers",
        ] {
            assert!(text.contains(needle), "missing {needle:?}");
        }
        // Byte-identical on rerun.
        assert_eq!(
            text,
            Analysis::from_trace(&dependency_trace(), Some(&env())).render()
        );
    }

    #[test]
    fn empty_trace_is_harmless() {
        let a = Analysis::from_trace(&Trace::default(), None);
        assert!(a.path.cycles.is_empty());
        assert!(a.imbalance.is_empty());
        assert!(a.utilization.is_empty());
        assert!(a.outliers.is_empty());
        assert!(!a.render().is_empty());
    }
}
