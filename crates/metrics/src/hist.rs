//! Mergeable log-linear bucketed histogram over `u64` samples.
//!
//! Buckets follow the HDR-histogram scheme: each power-of-two octave is
//! split into [`SUB`] linear sub-buckets, so the bucket boundary relative
//! error is bounded by `1 / SUB` (12.5%) at any magnitude, values below
//! `2·SUB` are exact, and the whole `u64` range needs under 500 buckets.
//! Merging two histograms is element-wise addition of bucket counts —
//! associative, commutative, and count-preserving (the proptests below
//! pin all three) — which is what lets per-rank histograms roll up into
//! job-wide ones and lets a snapshot *delta* be computed by subtraction.

/// log2 of the sub-buckets per octave.
pub const SUB_BITS: u32 = 3;
/// Linear sub-buckets per power-of-two octave.
pub const SUB: usize = 1 << SUB_BITS;

/// Bucket index for a sample value.
pub fn bucket_index(v: u64) -> usize {
    if v < (2 * SUB) as u64 {
        return v as usize; // exact small values
    }
    let msb = 63 - v.leading_zeros() as u64;
    let shift = msb - SUB_BITS as u64;
    ((shift << SUB_BITS) + (v >> shift)) as usize
}

/// Inclusive lower bound of bucket `i` (the smallest value mapping to it).
pub fn bucket_low(i: usize) -> u64 {
    if i < 2 * SUB {
        return i as u64;
    }
    let shift = (i >> SUB_BITS) - 1;
    (((i & (SUB - 1)) | SUB) as u64) << shift
}

/// Inclusive upper bound of bucket `i`.
pub fn bucket_high(i: usize) -> u64 {
    if i < 2 * SUB - 1 {
        return i as u64;
    }
    bucket_low(i + 1) - 1
}

/// A mergeable log-bucketed histogram with exact count/sum/min/max.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket counts, indexed by [`bucket_index`]; trailing zero
    /// buckets are not stored.
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let i = bucket_index(v);
        if self.buckets.len() <= i {
            self.buckets.resize(i + 1, 0);
        }
        self.buckets[i] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Element-wise accumulate `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Per-bucket subtraction (for deltas between two snapshots of one
    /// monotonically growing histogram). Count and sum subtract exactly;
    /// min/max are re-derived from the surviving buckets' bounds, so they
    /// are bucket-resolution approximations in the delta.
    pub fn delta_since(&self, earlier: &Histogram) -> Histogram {
        let mut buckets = self.buckets.clone();
        for (i, c) in buckets.iter_mut().enumerate() {
            *c = c.saturating_sub(earlier.buckets.get(i).copied().unwrap_or(0));
        }
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        let first = buckets.iter().position(|&c| c > 0);
        let (min, max) = match first {
            Some(lo) => (bucket_low(lo), bucket_high(buckets.len() - 1)),
            None => (u64::MAX, 0),
        };
        Histogram {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min,
            max,
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (None when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (None when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Quantile estimate (`q` in `[0, 1]`): the midpoint of the bucket
    /// holding the `ceil(q·count)`-th sample, clamped to `[min, max]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let mid = bucket_low(i) + (bucket_high(i) - bucket_low(i)) / 2;
                return Some(mid.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Occupied buckets as `(index, count)`, ascending, zeros skipped.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Rebuild from serialized parts (inverse of the snapshot codecs).
    /// `buckets` holds `(bucket_index, count)` pairs.
    pub fn from_parts(buckets: &[(usize, u64)], count: u64, sum: u64, min: u64, max: u64) -> Self {
        let mut h = Histogram::new();
        for &(i, c) in buckets {
            if h.buckets.len() <= i {
                h.buckets.resize(i + 1, 0);
            }
            h.buckets[i] += c;
        }
        h.count = count;
        h.sum = sum;
        h.min = min;
        h.max = max;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_mapping_is_monotone_and_self_consistent() {
        let mut prev = 0usize;
        for v in 0..10_000u64 {
            let i = bucket_index(v);
            assert!(i >= prev, "index not monotone at {v}");
            prev = i;
            assert!(bucket_low(i) <= v && v <= bucket_high(i), "v={v} i={i}");
        }
        // Exactness below 2·SUB.
        for v in 0..(2 * SUB as u64) {
            assert_eq!(bucket_low(bucket_index(v)), v);
            assert_eq!(bucket_high(bucket_index(v)), v);
        }
        // Relative bucket width is bounded by 1/SUB at any magnitude.
        for v in [100u64, 10_000, 1 << 30, 1 << 50, u64::MAX] {
            let i = bucket_index(v);
            let width = bucket_high(i) - bucket_low(i);
            assert!((width as f64) <= bucket_low(i) as f64 / SUB as f64 + 1.0);
        }
        assert!(bucket_index(u64::MAX) < 500);
    }

    #[test]
    fn records_and_summarizes() {
        let mut h = Histogram::new();
        assert!(h.quantile(0.5).is_none());
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 110);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        assert_eq!(h.quantile(0.5), Some(3));
        // p99 lands in the bucket holding 100 (within 12.5%).
        let p99 = h.quantile(0.99).unwrap() as f64;
        assert!((p99 - 100.0).abs() / 100.0 <= 0.125, "{p99}");
    }

    #[test]
    fn delta_subtracts_counts() {
        let mut a = Histogram::new();
        a.record(5);
        a.record(1000);
        let before = a.clone();
        a.record(5);
        a.record(70);
        let d = a.delta_since(&before);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum(), 75);
        // The delta's min/max are bucket bounds around 5 and 70.
        assert!(d.min().unwrap() <= 5 && d.max().unwrap() >= 70);
    }

    #[test]
    fn from_parts_roundtrip() {
        let mut h = Histogram::new();
        for v in [0u64, 7, 8, 9, 255, 1 << 20] {
            h.record(v);
        }
        let parts: Vec<(usize, u64)> = h.nonzero_buckets().collect();
        let back = Histogram::from_parts(&parts, h.count(), h.sum(), h.min, h.max);
        assert_eq!(back, h);
    }

    fn from_values(vs: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        for &v in vs {
            h.record(v);
        }
        h
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Merge is commutative: a⊕b == b⊕a.
        #[test]
        fn merge_commutative(a in prop::collection::vec(any::<u64>(), 0..40),
                             b in prop::collection::vec(any::<u64>(), 0..40)) {
            let (ha, hb) = (from_values(&a), from_values(&b));
            let mut ab = ha.clone(); ab.merge(&hb);
            let mut ba = hb.clone(); ba.merge(&ha);
            prop_assert_eq!(ab, ba);
        }

        /// Merge is associative: (a⊕b)⊕c == a⊕(b⊕c).
        #[test]
        fn merge_associative(a in prop::collection::vec(any::<u64>(), 0..30),
                             b in prop::collection::vec(any::<u64>(), 0..30),
                             c in prop::collection::vec(any::<u64>(), 0..30)) {
            let (ha, hb, hc) = (from_values(&a), from_values(&b), from_values(&c));
            let mut l = ha.clone(); l.merge(&hb); l.merge(&hc);
            let mut rbc = hb.clone(); rbc.merge(&hc);
            let mut r = ha.clone(); r.merge(&rbc);
            prop_assert_eq!(l, r);
        }

        /// Merge preserves counts, and merging equals recording the
        /// concatenation.
        #[test]
        fn merge_count_preserving(a in prop::collection::vec(any::<u64>(), 0..40),
                                  b in prop::collection::vec(any::<u64>(), 0..40)) {
            let (ha, hb) = (from_values(&a), from_values(&b));
            let mut m = ha.clone(); m.merge(&hb);
            prop_assert_eq!(m.count(), (a.len() + b.len()) as u64);
            let mut cat = a.clone(); cat.extend_from_slice(&b);
            prop_assert_eq!(m, from_values(&cat));
        }

        /// Quantiles stay within the recorded range and within one bucket
        /// width of an exact rank statistic.
        #[test]
        fn quantile_bounded(mut vs in prop::collection::vec(0u64..1_000_000, 1..50),
                            qi in 0usize..5) {
            let q = [0.0, 0.25, 0.5, 0.9, 1.0][qi];
            let h = from_values(&vs);
            let est = h.quantile(q).unwrap();
            vs.sort_unstable();
            prop_assert!(est >= vs[0] && est <= vs[vs.len() - 1]);
            let rank = ((q * vs.len() as f64).ceil() as usize).clamp(1, vs.len()) - 1;
            let exact = vs[rank];
            // Same bucket, one off at most (ties across bucket edges).
            let (bi, be) = (bucket_index(est as u64), bucket_index(exact));
            prop_assert!(bi.abs_diff(be) <= 1, "est {est} exact {exact}");
        }
    }
}
