//! `gmg-metrics` — metrics registry and trace-analysis engine.
//!
//! Two halves, one goal: turn the raw instrumentation the solver and
//! comm runtime already emit into *actionable* performance attribution.
//!
//! **Registry** ([`Registry`], [`hist::Histogram`]): a thread-safe
//! hierarchical store of monotonic counters, gauges, and mergeable
//! log-bucketed histograms, keyed `{rank, level, op}`. Recording is
//! gated by a global flag ([`enable`] / [`enabled`]) so instrumented
//! hot paths cost one relaxed atomic load when metrics are off.
//! Snapshots serialize to JSON ([`Snapshot::to_json`]) and to the
//! Prometheus text format ([`prom::render_prometheus`]); both codecs
//! round-trip exactly, and snapshot *deltas* ([`Snapshot::delta_since`])
//! isolate what one phase recorded in the shared global registry.
//!
//! **Analysis** ([`analysis`]): consumes a captured [`gmg_trace::Trace`]
//! and computes the per-V-cycle cross-rank critical path, per-level
//! load-imbalance factors, MAD-based straggler detection, and roofline
//! attribution against `gmg-machine` numbers (passed in as a plain
//! [`analysis::MachineEnvelope`] so this crate stays leaf-level). The
//! `gmg-bench` `analyze` binary renders all of it as a markdown report.
//!
//! Like `gmg-trace`, this crate is deliberately free of external
//! dependencies: it sits behind solver/comm hot paths and must never
//! perturb bench builds through feature unification.

pub mod analysis;
pub mod hist;
pub mod prom;
pub mod registry;
pub mod snapshot;

pub use analysis::{imbalance_from_seconds, Analysis, MachineEnvelope, MessageEdge};
pub use hist::Histogram;
pub use registry::{disable, enable, enabled, Counter, Gauge, HistogramHandle, Key, Registry};
pub use snapshot::{Snapshot, SnapshotEntry, Value};

/// Shorthand for a handle on the global registry's counter `name`,
/// keyed `{rank, level, op}`.
pub fn counter(name: &str, rank: usize, level: Option<usize>, op: &str) -> Counter {
    Registry::global().counter(name, Key::new(rank, level, op))
}

/// Shorthand for a handle on the global registry's gauge `name`.
pub fn gauge(name: &str, rank: usize, level: Option<usize>, op: &str) -> Gauge {
    Registry::global().gauge(name, Key::new(rank, level, op))
}

/// Shorthand for a handle on the global registry's histogram `name`.
pub fn histogram(name: &str, rank: usize, level: Option<usize>, op: &str) -> HistogramHandle {
    Registry::global().histogram(name, Key::new(rank, level, op))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_shorthands_hit_one_registry() {
        counter("lib_test_total", 3, Some(1), "op").add(2);
        histogram("lib_test_ns", 3, None, "op").record(42);
        let snap = Registry::global().snapshot();
        assert_eq!(
            snap.counter_total("lib_test_total"),
            counter("lib_test_total", 3, Some(1), "op").get()
        );
        assert!(snap.histogram_total("lib_test_ns").count() >= 1);
    }
}
