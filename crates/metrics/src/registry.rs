//! The thread-safe hierarchical metrics registry.
//!
//! Every series is a `(metric name, Key)` pair, where [`Key`] carries the
//! `{rank, level, op}` attribution the rest of the stack already uses for
//! traces. Handles ([`Counter`], [`Gauge`], [`HistogramHandle`]) are
//! cheap `Arc` clones — look one up once, then record lock-free (counters
//! and gauges) or under a per-series mutex (histograms).
//!
//! Recording is globally gated by [`enabled`] so instrumented hot paths
//! (the solver's per-op recording, the comm runtime's ARQ protocol) pay a
//! single relaxed atomic load when metrics are off — the same contract
//! `gmg_trace::enabled` gives the span sink.

use crate::hist::Histogram;
use crate::snapshot::{Snapshot, SnapshotEntry, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Cheap global check: is metrics recording on?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn global metrics recording on (returns the previous state).
pub fn enable() -> bool {
    ENABLED.swap(true, Ordering::Relaxed)
}

/// Turn global metrics recording off (returns the previous state).
pub fn disable() -> bool {
    ENABLED.swap(false, Ordering::Relaxed)
}

/// Series attribution: which rank, which multigrid level (None for
/// level-less series like the comm protocol), which op.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Key {
    pub rank: usize,
    pub level: Option<usize>,
    pub op: String,
}

impl Key {
    pub fn new(rank: usize, level: Option<usize>, op: &str) -> Key {
        Key {
            rank,
            level,
            op: op.to_string(),
        }
    }
}

/// Monotonic counter handle.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge handle (an `f64` stored as bits).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Histogram handle; recording takes the per-series mutex.
#[derive(Clone)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    pub fn record(&self, v: u64) {
        self.0.lock().unwrap().record(v);
    }

    /// A copy of the current histogram state.
    pub fn get(&self) -> Histogram {
        self.0.lock().unwrap().clone()
    }
}

enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<Mutex<Histogram>>),
}

/// A metrics registry: a sorted map from `(name, key)` to series.
#[derive(Default)]
pub struct Registry {
    slots: Mutex<BTreeMap<(String, Key), Slot>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry the built-in instrumentation feeds.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Counter handle for `(name, key)`, created on first use.
    /// Panics if the series already exists with a different type.
    pub fn counter(&self, name: &str, key: Key) -> Counter {
        let mut slots = self.slots.lock().unwrap();
        let slot = slots
            .entry((name.to_string(), key))
            .or_insert_with(|| Slot::Counter(Arc::new(AtomicU64::new(0))));
        match slot {
            Slot::Counter(c) => Counter(c.clone()),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Gauge handle for `(name, key)`, created on first use.
    pub fn gauge(&self, name: &str, key: Key) -> Gauge {
        let mut slots = self.slots.lock().unwrap();
        let slot = slots
            .entry((name.to_string(), key))
            .or_insert_with(|| Slot::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))));
        match slot {
            Slot::Gauge(g) => Gauge(g.clone()),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Histogram handle for `(name, key)`, created on first use.
    pub fn histogram(&self, name: &str, key: Key) -> HistogramHandle {
        let mut slots = self.slots.lock().unwrap();
        let slot = slots
            .entry((name.to_string(), key))
            .or_insert_with(|| Slot::Histogram(Arc::new(Mutex::new(Histogram::new()))));
        match slot {
            Slot::Histogram(h) => HistogramHandle(h.clone()),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Point-in-time copy of every series, sorted by `(name, key)` —
    /// deterministic, so snapshot serializations are byte-stable.
    pub fn snapshot(&self) -> Snapshot {
        let slots = self.slots.lock().unwrap();
        let entries = slots
            .iter()
            .map(|((name, key), slot)| SnapshotEntry {
                name: name.clone(),
                key: key.clone(),
                value: match slot {
                    Slot::Counter(c) => Value::Counter(c.load(Ordering::Relaxed)),
                    Slot::Gauge(g) => Value::Gauge(f64::from_bits(g.load(Ordering::Relaxed))),
                    Slot::Histogram(h) => Value::Histogram(h.lock().unwrap().clone()),
                },
            })
            .collect();
        Snapshot { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enable_disable_roundtrip() {
        let was = enable();
        assert!(enabled());
        ENABLED.store(was, Ordering::Relaxed);
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let r = Registry::new();
        let k = Key::new(0, Some(1), "smooth");
        let c = r.counter("ops_total", k.clone());
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Handle re-lookup sees the same series.
        assert_eq!(r.counter("ops_total", k.clone()).get(), 5);

        let g = r.gauge("residual", k.clone());
        g.set(1.5);
        assert_eq!(g.get(), 1.5);

        let h = r.histogram("op_ns", k.clone());
        h.record(100);
        h.record(200);
        assert_eq!(h.get().count(), 2);

        let snap = r.snapshot();
        assert_eq!(snap.entries.len(), 3);
        // Sorted by (name, key): op_ns, ops_total, residual.
        let names: Vec<_> = snap.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["op_ns", "ops_total", "residual"]);
    }

    #[test]
    fn keys_partition_series() {
        let r = Registry::new();
        let a = r.counter("n", Key::new(0, None, "x"));
        let b = r.counter("n", Key::new(1, None, "x"));
        a.inc();
        assert_eq!(a.get(), 1);
        assert_eq!(b.get(), 0);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_confusion_panics() {
        let r = Registry::new();
        let k = Key::new(0, None, "x");
        r.counter("m", k.clone());
        r.gauge("m", k);
    }

    #[test]
    fn handles_are_threadsafe() {
        let r = Registry::new();
        let c = r.counter("t", Key::new(0, None, "x"));
        let h = r.histogram("th", Key::new(0, None, "x"));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let (c, h) = (c.clone(), h.clone());
            joins.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    c.inc();
                    h.record(i);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
        assert_eq!(h.get().count(), 4000);
    }
}
