//! Point-in-time snapshots of a [`Registry`](crate::Registry) and their
//! JSON codec.
//!
//! A snapshot is a sorted list of `(name, key, value)` entries. Sorting
//! (inherited from the registry's BTreeMap) plus `gmg_trace::Json`'s
//! order-preserving writer make serializations byte-stable, which the
//! determinism tests rely on. `delta_since` subtracts an earlier snapshot
//! from a later one so chaos/bench runs can report just the metrics a
//! phase produced, even though the global registry is process-wide.

use crate::hist::Histogram;
use crate::registry::Key;
use gmg_trace::Json;
use std::fmt::Write as _;

/// Tie-break order for [`Snapshot::merge`] when two entries under one key
/// disagree on value kind (impossible from one registry, but merge must
/// still be order-independent on arbitrary inputs).
fn kind_rank(v: &Value) -> u8 {
    match v {
        Value::Counter(_) => 0,
        Value::Gauge(_) => 1,
        Value::Histogram(_) => 2,
    }
}

/// One metric series' value at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

/// One `(name, key, value)` row of a snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotEntry {
    pub name: String,
    pub key: Key,
    pub value: Value,
}

/// A point-in-time copy of every series in a registry, sorted by
/// `(name, key)`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    pub entries: Vec<SnapshotEntry>,
}

impl Snapshot {
    /// Look up a series by name and key.
    pub fn get(&self, name: &str, key: &Key) -> Option<&Value> {
        self.entries
            .iter()
            .find(|e| e.name == name && &e.key == key)
            .map(|e| &e.value)
    }

    /// Sum of all counters with this metric name, across keys.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.name == name)
            .filter_map(|e| match &e.value {
                Value::Counter(c) => Some(*c),
                _ => None,
            })
            .sum()
    }

    /// Merge of all histograms with this metric name, across keys.
    pub fn histogram_total(&self, name: &str) -> Histogram {
        let mut total = Histogram::new();
        for e in self.entries.iter().filter(|e| e.name == name) {
            if let Value::Histogram(h) = &e.value {
                total.merge(h);
            }
        }
        total
    }

    /// Subtract `earlier` from `self`: counters and histograms subtract
    /// (series missing from `earlier` pass through whole), gauges keep
    /// their later value. Rows whose delta is zero/empty are dropped.
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        let entries = self
            .entries
            .iter()
            .filter_map(|e| {
                let value = match (&e.value, earlier.get(&e.name, &e.key)) {
                    (Value::Counter(now), Some(Value::Counter(then))) => {
                        Value::Counter(now.saturating_sub(*then))
                    }
                    (Value::Histogram(now), Some(Value::Histogram(then))) => {
                        Value::Histogram(now.delta_since(then))
                    }
                    (v, _) => v.clone(),
                };
                match &value {
                    Value::Counter(0) => None,
                    Value::Histogram(h) if h.count() == 0 => None,
                    _ => Some(SnapshotEntry {
                        name: e.name.clone(),
                        key: e.key.clone(),
                        value,
                    }),
                }
            })
            .collect();
        Snapshot { entries }
    }

    /// Combine two snapshots into one: counters add, histograms merge,
    /// and gauges keep the maximum (total orders like epoch numbers or
    /// residual high-water marks survive any merge order; per-rank keys
    /// never actually collide across ranks). The operation is associative
    /// *and* commutative — property-tested — so a collector may fold
    /// per-rank deltas in whatever order the wire delivers them.
    pub fn merge(&self, other: &Snapshot) -> Snapshot {
        let mut map: std::collections::BTreeMap<(String, Key), Value> =
            std::collections::BTreeMap::new();
        for e in self.entries.iter().chain(other.entries.iter()) {
            let slot = map.entry((e.name.clone(), e.key.clone()));
            match slot {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(e.value.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    let merged = match (o.get(), &e.value) {
                        (Value::Counter(a), Value::Counter(b)) => {
                            Value::Counter(a.saturating_add(*b))
                        }
                        (Value::Histogram(a), Value::Histogram(b)) => {
                            let mut h = a.clone();
                            h.merge(b);
                            Value::Histogram(h)
                        }
                        (Value::Gauge(a), Value::Gauge(b)) => Value::Gauge(a.max(*b)),
                        // Mixed kinds under one key cannot come from a
                        // registry; keep the lexically larger kind name so
                        // the result is still order-independent.
                        (a, b) => {
                            if kind_rank(a) >= kind_rank(b) {
                                a.clone()
                            } else {
                                b.clone()
                            }
                        }
                    };
                    o.insert(merged);
                }
            }
        }
        Snapshot {
            entries: map
                .into_iter()
                .map(|((name, key), value)| SnapshotEntry { name, key, value })
                .collect(),
        }
    }

    /// Serialize to the snapshot JSON document (schema 1).
    pub fn to_json(&self) -> Json {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let mut fields = vec![
                    ("name".to_string(), Json::Str(e.name.clone())),
                    ("rank".to_string(), Json::Num(e.key.rank as f64)),
                    (
                        "level".to_string(),
                        match e.key.level {
                            Some(l) => Json::Num(l as f64),
                            None => Json::Null,
                        },
                    ),
                    ("op".to_string(), Json::Str(e.key.op.clone())),
                ];
                match &e.value {
                    Value::Counter(c) => {
                        fields.push(("counter".to_string(), Json::Num(*c as f64)));
                    }
                    Value::Gauge(g) => {
                        fields.push(("gauge".to_string(), Json::Num(*g)));
                    }
                    Value::Histogram(h) => {
                        let buckets = h
                            .nonzero_buckets()
                            .map(|(i, c)| Json::Arr(vec![Json::Num(i as f64), Json::Num(c as f64)]))
                            .collect();
                        fields.push((
                            "histogram".to_string(),
                            Json::Obj(vec![
                                ("count".to_string(), Json::Num(h.count() as f64)),
                                ("sum".to_string(), Json::Num(h.sum() as f64)),
                                ("min".to_string(), Json::Num(h.min().unwrap_or(0) as f64)),
                                ("max".to_string(), Json::Num(h.max().unwrap_or(0) as f64)),
                                ("buckets".to_string(), Json::Arr(buckets)),
                            ]),
                        ));
                    }
                }
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![
            ("schema".to_string(), Json::Num(1.0)),
            ("entries".to_string(), Json::Arr(entries)),
        ])
    }

    /// Parse a snapshot JSON document produced by [`Snapshot::to_json`].
    pub fn from_json(v: &Json) -> Result<Snapshot, String> {
        let rows = v
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("snapshot: missing entries array")?;
        let mut entries = Vec::with_capacity(rows.len());
        for row in rows {
            let name = row
                .get("name")
                .and_then(Json::as_str)
                .ok_or("snapshot entry: missing name")?
                .to_string();
            let rank = row
                .get("rank")
                .and_then(Json::as_u64)
                .ok_or("snapshot entry: missing rank")? as usize;
            let level = row.get("level").and_then(Json::as_u64).map(|l| l as usize);
            let op = row
                .get("op")
                .and_then(Json::as_str)
                .ok_or("snapshot entry: missing op")?
                .to_string();
            let value = if let Some(c) = row.get("counter").and_then(Json::as_u64) {
                Value::Counter(c)
            } else if let Some(g) = row.get("gauge").and_then(Json::as_f64) {
                Value::Gauge(g)
            } else if let Some(h) = row.get("histogram") {
                let buckets: Vec<(usize, u64)> = h
                    .get("buckets")
                    .and_then(Json::as_arr)
                    .ok_or("snapshot histogram: missing buckets")?
                    .iter()
                    .filter_map(|pair| {
                        let p = pair.as_arr()?;
                        Some((p.first()?.as_u64()? as usize, p.get(1)?.as_u64()?))
                    })
                    .collect();
                let count = h.get("count").and_then(Json::as_u64).unwrap_or(0);
                let sum = h.get("sum").and_then(Json::as_u64).unwrap_or(0);
                let min = if count > 0 {
                    h.get("min").and_then(Json::as_u64).unwrap_or(u64::MAX)
                } else {
                    u64::MAX
                };
                let max = h.get("max").and_then(Json::as_u64).unwrap_or(0);
                Value::Histogram(Histogram::from_parts(&buckets, count, sum, min, max))
            } else {
                return Err(format!("snapshot entry {name:?}: no value field"));
            };
            entries.push(SnapshotEntry {
                name,
                key: Key { rank, level, op },
                value,
            });
        }
        Ok(Snapshot { entries })
    }

    /// Render entries whose metric name starts with `prefix` as a
    /// markdown table (histograms show count/mean/p50/p99/max).
    pub fn render_table(&self, prefix: &str) -> String {
        let mut out = String::new();
        let rows: Vec<_> = self
            .entries
            .iter()
            .filter(|e| e.name.starts_with(prefix))
            .collect();
        if rows.is_empty() {
            out.push_str("(no matching metrics)\n");
            return out;
        }
        out.push_str("| metric | rank | level | op | value |\n");
        out.push_str("|---|---:|---:|---|---|\n");
        for e in rows {
            let level = match e.key.level {
                Some(l) => l.to_string(),
                None => "-".to_string(),
            };
            let value = match &e.value {
                Value::Counter(c) => c.to_string(),
                Value::Gauge(g) => format!("{g:.6}"),
                Value::Histogram(h) => format!(
                    "n={} mean={:.0} p50={} p99={} max={}",
                    h.count(),
                    h.mean().unwrap_or(0.0),
                    h.quantile(0.50).unwrap_or(0),
                    h.quantile(0.99).unwrap_or(0),
                    h.max().unwrap_or(0),
                ),
            };
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} |",
                e.name, e.key.rank, level, e.key.op, value
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("arq_retransmits_total", Key::new(0, None, "arq"))
            .add(3);
        r.gauge("residual", Key::new(0, Some(0), "solve")).set(1e-9);
        let h = r.histogram("arq_backoff_ns", Key::new(1, None, "arq"));
        for v in [100u64, 200, 400, 100_000] {
            h.record(v);
        }
        r
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let snap = sample_registry().snapshot();
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn json_is_byte_stable() {
        let a = sample_registry().snapshot().to_json().to_string();
        let b = sample_registry().snapshot().to_json().to_string();
        assert_eq!(a, b);
        // And reparse → reserialize is also identical.
        let c = Snapshot::from_json(&Json::parse(&a).unwrap())
            .unwrap()
            .to_json()
            .to_string();
        assert_eq!(a, c);
    }

    #[test]
    fn delta_drops_unchanged_and_subtracts() {
        let r = sample_registry();
        let before = r.snapshot();
        r.counter("arq_retransmits_total", Key::new(0, None, "arq"))
            .add(2);
        r.histogram("arq_backoff_ns", Key::new(1, None, "arq"))
            .record(800);
        let d = r.snapshot().delta_since(&before);
        // The unchanged gauge passes through; counter delta is 2;
        // histogram delta holds the one new sample.
        assert_eq!(
            d.get("arq_retransmits_total", &Key::new(0, None, "arq")),
            Some(&Value::Counter(2))
        );
        match d.get("arq_backoff_ns", &Key::new(1, None, "arq")) {
            Some(Value::Histogram(h)) => assert_eq!(h.count(), 1),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(d.counter_total("arq_retransmits_total"), 2);
    }

    #[test]
    fn merge_adds_counters_merges_histograms_maxes_gauges() {
        let a = sample_registry().snapshot();
        let r = Registry::new();
        r.counter("arq_retransmits_total", Key::new(0, None, "arq"))
            .add(5);
        r.gauge("residual", Key::new(0, Some(0), "solve")).set(2e-9);
        r.histogram("arq_backoff_ns", Key::new(1, None, "arq"))
            .record(50);
        let b = r.snapshot();
        let m = a.merge(&b);
        assert_eq!(m, b.merge(&a), "merge must be commutative");
        assert_eq!(
            m.get("arq_retransmits_total", &Key::new(0, None, "arq")),
            Some(&Value::Counter(8))
        );
        assert_eq!(
            m.get("residual", &Key::new(0, Some(0), "solve")),
            Some(&Value::Gauge(2e-9))
        );
        match m.get("arq_backoff_ns", &Key::new(1, None, "arq")) {
            Some(Value::Histogram(h)) => assert_eq!(h.count(), 5),
            other => panic!("unexpected {other:?}"),
        }
        // Identity: merging with an empty snapshot changes nothing but
        // (already sorted) order.
        assert_eq!(a.merge(&Snapshot::default()), a);
    }

    #[test]
    fn histogram_total_merges_across_ranks() {
        let r = Registry::new();
        r.histogram("h", Key::new(0, None, "x")).record(1);
        r.histogram("h", Key::new(1, None, "x")).record(2);
        let snap = r.snapshot();
        assert_eq!(snap.histogram_total("h").count(), 2);
    }

    #[test]
    fn render_table_lists_matching_rows() {
        let snap = sample_registry().snapshot();
        let t = snap.render_table("arq_");
        assert!(t.contains("arq_retransmits_total"));
        assert!(t.contains("arq_backoff_ns"));
        assert!(!t.contains("residual"));
        assert!(snap.render_table("nope_").contains("no matching"));
    }
}
