//! GPU machine descriptions for the three evaluated platforms.
//!
//! Hardware numbers come from the paper's Section IV-A. Sustained HBM
//! bandwidth uses the paper's measured 1420 GB/s on the A100 (91.3% of the
//! 1555 GB/s spec); the same sustained/spec ratio is applied to the other
//! two parts, whose specs the paper quotes at 1.6 TB/s (MI250X GCD) and
//! 1.64 TB/s (PVC stack).

use gmg_stencil::OpKind;
use serde::{Deserialize, Serialize};

/// The three GPU-accelerated systems of the study.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum System {
    /// NERSC Perlmutter: 4 × NVIDIA A100 per node, CUDA.
    Perlmutter,
    /// OLCF Frontier: 4 × AMD MI250X (8 GCDs) per node, HIP.
    Frontier,
    /// ALCF Sunspot: 6 × Intel PVC (12 tiles) per node, SYCL.
    Sunspot,
}

impl System {
    /// All systems in the paper's reporting order.
    pub const ALL: [System; 3] = [System::Perlmutter, System::Frontier, System::Sunspot];

    /// The system's display name.
    pub fn name(&self) -> &'static str {
        match self {
            System::Perlmutter => "Perlmutter",
            System::Frontier => "Frontier",
            System::Sunspot => "Sunspot",
        }
    }

    /// GPU ranks (MPI ranks) per node: one per A100 / GCD / tile.
    pub fn ranks_per_node(&self) -> usize {
        match self {
            System::Perlmutter => 4,
            System::Frontier => 8,
            System::Sunspot => 12,
        }
    }

    /// The GPU model for one rank of this system.
    pub fn gpu(&self) -> GpuModel {
        match self {
            System::Perlmutter => GpuModel::a100(),
            System::Frontier => GpuModel::mi250x_gcd(),
            System::Sunspot => GpuModel::pvc_tile(),
        }
    }
}

/// Per-operation efficiencies calibrated from the paper's Tables III and V.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OpEfficiency {
    /// Fraction of the (empirical-AI) roofline attained — Table III.
    pub roofline_fraction: f64,
    /// Fraction of the theoretical arithmetic intensity attained (data
    /// movement close to compulsory misses) — Table V.
    pub ai_fraction: f64,
}

/// A machine model for one GPU execution unit (a whole A100, one MI250X
/// GCD, or one PVC tile — the per-MPI-rank unit of the study).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    pub name: String,
    pub system: System,
    pub programming_model: &'static str,
    /// Peak FP64 throughput in GFLOP/s.
    pub peak_fp64_gflops: f64,
    /// Sustained HBM bandwidth in GB/s.
    pub hbm_gbs: f64,
    /// Kernel launch + scheduling overhead in microseconds (the α of the
    /// latency-throughput model; paper Section VI-A: 5–20 µs, NVIDIA
    /// lowest).
    pub kernel_overhead_us: f64,
    /// SIMD/warp width used for the generated stencil kernels (Section V).
    pub simd_width: usize,
    /// Optimal brick dimension found by the paper (8 for A100/MI250X, 4 for
    /// PVC).
    pub optimal_brick_dim: i64,
}

/// Measured-to-spec HBM derating (paper: 1420/1555 on A100).
const HBM_DERATE: f64 = 1420.0 / 1555.0;

impl GpuModel {
    /// NVIDIA A100 (Perlmutter), CUDA.
    pub fn a100() -> Self {
        Self {
            name: "NVIDIA A100".into(),
            system: System::Perlmutter,
            programming_model: "CUDA",
            peak_fp64_gflops: 9_770.0,
            hbm_gbs: 1420.0,
            kernel_overhead_us: 5.0,
            simd_width: 32,
            optimal_brick_dim: 8,
        }
    }

    /// One GCD of an AMD MI250X (Frontier), HIP.
    pub fn mi250x_gcd() -> Self {
        Self {
            name: "AMD MI250X GCD".into(),
            system: System::Frontier,
            programming_model: "HIP",
            peak_fp64_gflops: 24_000.0,
            hbm_gbs: 1600.0 * HBM_DERATE,
            kernel_overhead_us: 10.0,
            simd_width: 64,
            optimal_brick_dim: 8,
        }
    }

    /// One tile (stack) of an Intel PVC (Sunspot), SYCL.
    pub fn pvc_tile() -> Self {
        Self {
            name: "Intel PVC tile".into(),
            system: System::Sunspot,
            programming_model: "SYCL",
            peak_fp64_gflops: 16_000.0,
            hbm_gbs: 1640.0 * HBM_DERATE,
            kernel_overhead_us: 20.0,
            simd_width: 16,
            optimal_brick_dim: 4,
        }
    }

    /// Roofline-attainable GFLOP/s at arithmetic intensity `ai` (FLOP/B).
    pub fn roofline_gflops(&self, ai: f64) -> f64 {
        (ai * self.hbm_gbs).min(self.peak_fp64_gflops)
    }

    /// The machine balance point (FLOP/B at which the roofline bends).
    pub fn balance_ai(&self) -> f64 {
        self.peak_fp64_gflops / self.hbm_gbs
    }

    /// Theoretical GStencil/s ceiling for op `op`: bandwidth divided by the
    /// op's compulsory bytes per (fine) point. This is the colored dashed
    /// line of the paper's Figure 5 (e.g. 1420/16 = 88.75 GStencil/s for
    /// applyOp on Perlmutter).
    pub fn gstencil_ceiling(&self, op: OpKind) -> f64 {
        let t = op.traffic().per_fine_point();
        self.hbm_gbs / t.bytes_per_point()
    }

    /// Calibrated per-op efficiencies (paper Tables III and V).
    pub fn op_efficiency(&self, op: OpKind) -> OpEfficiency {
        use OpKind::*;
        let (r, a) = match (self.system, op) {
            (System::Perlmutter, ApplyOp) => (0.90, 0.98),
            (System::Perlmutter, Smooth) => (0.98, 0.96),
            (System::Perlmutter, SmoothResidual) => (0.94, 1.00),
            (System::Perlmutter, Restriction) => (0.95, 0.99),
            (System::Perlmutter, InterpolationIncrement) => (0.88, 1.00),
            (System::Frontier, ApplyOp) => (0.77, 0.88),
            (System::Frontier, Smooth) => (0.87, 1.00),
            (System::Frontier, SmoothResidual) => (0.87, 1.00),
            (System::Frontier, Restriction) => (0.79, 0.99),
            (System::Frontier, InterpolationIncrement) => (0.42, 0.74),
            (System::Sunspot, ApplyOp) => (0.66, 0.86),
            (System::Sunspot, Smooth) => (0.64, 0.94),
            (System::Sunspot, SmoothResidual) => (0.71, 0.71),
            (System::Sunspot, Restriction) => (0.62, 0.86),
            (System::Sunspot, InterpolationIncrement) => (0.52, 1.00),
        };
        OpEfficiency {
            roofline_fraction: r,
            ai_fraction: a,
        }
    }

    /// Sustained GStencil/s plateau for `op`: the theoretical ceiling
    /// derated by both efficiency fractions. Derivation: achieved FLOP/s =
    /// e_roofline × (e_ai × AI_theo) × BW, so achieved stencil/s =
    /// e_roofline × e_ai × BW / bytes_per_point.
    pub fn gstencil_plateau(&self, op: OpKind) -> f64 {
        let e = self.op_efficiency(op);
        self.gstencil_ceiling(op) * e.roofline_fraction * e.ai_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_hardware_numbers() {
        let a = GpuModel::a100();
        assert_eq!(a.hbm_gbs, 1420.0);
        assert_eq!(a.peak_fp64_gflops, 9770.0);
        assert_eq!(a.simd_width, 32);
        assert_eq!(a.optimal_brick_dim, 8);

        let m = GpuModel::mi250x_gcd();
        // More than twice the A100's FP64 peak (paper Section IV-A).
        assert!(m.peak_fp64_gflops > 2.0 * a.peak_fp64_gflops);
        // Comparable HBM bandwidth.
        assert!((m.hbm_gbs / a.hbm_gbs - 1.0).abs() < 0.1);

        let p = GpuModel::pvc_tile();
        // ~1.6× the A100 peak, ~0.6× of MI250X (paper wording).
        assert!((p.peak_fp64_gflops / a.peak_fp64_gflops - 1.6).abs() < 0.1);
        assert!(p.peak_fp64_gflops < m.peak_fp64_gflops);
        assert_eq!(p.optimal_brick_dim, 4);
        assert_eq!(p.simd_width, 16);
    }

    #[test]
    fn ranks_per_node() {
        assert_eq!(System::Perlmutter.ranks_per_node(), 4);
        assert_eq!(System::Frontier.ranks_per_node(), 8);
        assert_eq!(System::Sunspot.ranks_per_node(), 12);
    }

    #[test]
    fn roofline_bends_at_balance() {
        let g = GpuModel::a100();
        let b = g.balance_ai();
        assert!(g.roofline_gflops(b * 0.5) < g.peak_fp64_gflops);
        assert_eq!(g.roofline_gflops(b * 2.0), g.peak_fp64_gflops);
        // GMG ops are all memory-bound: AI well below balance.
        for op in gmg_stencil::ALL_OPS {
            assert!(op.traffic().theoretical_ai() < b);
        }
    }

    #[test]
    fn apply_op_ceiling_matches_paper() {
        // Paper: 1420 GB/s ÷ (2 doubles × 8 B) = 88.75 GStencil/s.
        let g = GpuModel::a100();
        let c = g.gstencil_ceiling(OpKind::ApplyOp);
        assert!((c - 88.75).abs() < 1e-9, "{c}");
    }

    #[test]
    fn plateau_below_ceiling() {
        for sys in System::ALL {
            let g = sys.gpu();
            for op in gmg_stencil::ALL_OPS {
                let e = g.op_efficiency(op);
                assert!(e.roofline_fraction > 0.0 && e.roofline_fraction <= 1.0);
                assert!(e.ai_fraction > 0.0 && e.ai_fraction <= 1.0);
                assert!(g.gstencil_plateau(op) <= g.gstencil_ceiling(op));
            }
        }
    }

    #[test]
    fn nvidia_has_lowest_overhead_highest_applyop_throughput() {
        // Paper headline: NVIDIA lowest overhead, highest throughput/rank.
        let a = GpuModel::a100();
        let m = GpuModel::mi250x_gcd();
        let p = GpuModel::pvc_tile();
        assert!(a.kernel_overhead_us < m.kernel_overhead_us);
        assert!(m.kernel_overhead_us < p.kernel_overhead_us);
        for op in gmg_stencil::ALL_OPS {
            assert!(a.gstencil_plateau(op) >= m.gstencil_plateau(op), "{:?}", op);
            assert!(a.gstencil_plateau(op) >= p.gstencil_plateau(op));
        }
    }
}
