//! Kernel timing engine: turns (machine model, operation, problem size)
//! into simulated execution time via the latency-throughput model.

use crate::gpu::GpuModel;
use crate::model::LatencyThroughput;
use gmg_stencil::OpKind;
use serde::{Deserialize, Serialize};

/// Simulated timing of one V-cycle kernel on one GPU.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KernelTiming {
    pub op: OpKind,
    /// Fine-grid stencil points processed per invocation.
    pub points: usize,
    /// Simulated time per invocation, seconds.
    pub time_s: f64,
    /// Achieved GStencil/s at this size.
    pub gstencil_per_s: f64,
}

impl KernelTiming {
    /// Model the execution of `op` over `points` fine-grid cells on `gpu`.
    ///
    /// The kernel's latency-throughput model has α = the GPU's kernel
    /// overhead and β = the op's sustained GStencil/s plateau (theoretical
    /// ceiling derated by the calibrated roofline and AI fractions).
    pub fn model(gpu: &GpuModel, op: OpKind, points: usize) -> Self {
        let lt = Self::latency_model(gpu, op);
        let x = points as f64;
        let t = lt.time_s(x);
        Self {
            op,
            points,
            time_s: t,
            gstencil_per_s: lt.rate(x) / 1e9,
        }
    }

    /// The op's latency-throughput model on `gpu` (x in stencil points).
    pub fn latency_model(gpu: &GpuModel, op: OpKind) -> LatencyThroughput {
        LatencyThroughput::new(
            gpu.kernel_overhead_us * 1e-6,
            gpu.gstencil_plateau(op) * 1e9,
        )
    }

    /// Bytes of HBM traffic this invocation moves (including the extra
    /// movement implied by an AI fraction below 1).
    pub fn bytes_moved(gpu: &GpuModel, op: OpKind, points: usize) -> f64 {
        let t = op.traffic().per_fine_point();
        let e = gpu.op_efficiency(op);
        points as f64 * t.bytes_per_point() / e.ai_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::System;

    #[test]
    fn large_kernels_hit_plateau() {
        let g = System::Perlmutter.gpu();
        let k = KernelTiming::model(&g, OpKind::ApplyOp, 512 * 512 * 512);
        let plateau = g.gstencil_plateau(OpKind::ApplyOp);
        assert!(k.gstencil_per_s / plateau > 0.95, "{}", k.gstencil_per_s);
    }

    #[test]
    fn small_kernels_are_latency_bound() {
        let g = System::Sunspot.gpu();
        let points = 16 * 16 * 16;
        let k = KernelTiming::model(&g, OpKind::ApplyOp, points);
        // Time ≈ overhead when latency dominates.
        assert!(k.time_s < 1.1 * g.kernel_overhead_us * 1e-6 + 1e-6);
        // Rate is far below plateau.
        assert!(k.gstencil_per_s < 0.3 * g.gstencil_plateau(OpKind::ApplyOp));
    }

    #[test]
    fn level_scaling_is_8x_when_bandwidth_bound() {
        // Fine levels: time ratio between adjacent levels approaches 8×
        // (volume ratio); coarse levels flatten to the overhead floor.
        let g = System::Perlmutter.gpu();
        let t0 = KernelTiming::model(&g, OpKind::SmoothResidual, 512usize.pow(3)).time_s;
        let t1 = KernelTiming::model(&g, OpKind::SmoothResidual, 256usize.pow(3)).time_s;
        assert!((t0 / t1 - 8.0).abs() < 0.5, "{}", t0 / t1);
        let t4 = KernelTiming::model(&g, OpKind::SmoothResidual, 32usize.pow(3)).time_s;
        let t5 = KernelTiming::model(&g, OpKind::SmoothResidual, 16usize.pow(3)).time_s;
        assert!(t4 / t5 < 3.0, "coarse levels latency-bound: {}", t4 / t5);
    }

    #[test]
    fn empirical_latency_in_paper_range() {
        // Paper Figure 5: empirical kernel latencies between 5 and 20 µs.
        for sys in System::ALL {
            let g = sys.gpu();
            let lt = KernelTiming::latency_model(&g, OpKind::ApplyOp);
            assert!((4.9e-6..=20.1e-6).contains(&lt.alpha_s), "{:?}", sys);
        }
    }

    #[test]
    fn bytes_moved_includes_ai_derating() {
        let g = System::Frontier.gpu();
        let op = OpKind::InterpolationIncrement; // ai_fraction 0.74
        let b = KernelTiming::bytes_moved(&g, op, 1000);
        let ideal = 1000.0 * op.traffic().per_fine_point().bytes_per_point();
        assert!(b > ideal);
        assert!((b * 0.74 - ideal).abs() / ideal < 1e-9);
    }
}
