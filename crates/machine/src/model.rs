//! The latency-throughput model `f(x) = x / (α + x/β)` and its fitting.
//!
//! The paper uses this single linear model (linear in *time*:
//! `t(x) = α + x/β`) for both computation kernels (x = stencil points,
//! f(x) = GStencil/s) and communication (x = message bytes, f(x) = GB/s).
//! Fitting α and β to measured `(x, t)` samples is ordinary least squares
//! on the time form.

use serde::{Deserialize, Serialize};

/// A fitted (or constructed) latency-throughput model.
///
/// Units are carried by convention: `alpha_s` is seconds; `beta` is
/// *units of x per second* (stencil points/s or bytes/s).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LatencyThroughput {
    /// Latency/overhead per invocation, in seconds.
    pub alpha_s: f64,
    /// Asymptotic throughput, in x-units per second.
    pub beta: f64,
}

impl LatencyThroughput {
    /// Construct from latency (seconds) and throughput (x-units/second).
    pub fn new(alpha_s: f64, beta: f64) -> Self {
        assert!(alpha_s >= 0.0, "negative latency");
        assert!(beta > 0.0, "throughput must be positive");
        Self { alpha_s, beta }
    }

    /// Time for one invocation of size `x`: `t = α + x/β`.
    #[inline]
    pub fn time_s(&self, x: f64) -> f64 {
        self.alpha_s + x / self.beta
    }

    /// Achieved rate at size `x`: `f(x) = x / (α + x/β)`. Approaches β as
    /// `x → ∞`; linear in `x` when latency dominates.
    #[inline]
    pub fn rate(&self, x: f64) -> f64 {
        x / self.time_s(x)
    }

    /// The size at which half the asymptotic throughput is achieved
    /// (`x_half = α·β` — the "N-half" metric of network analysis).
    pub fn half_throughput_size(&self) -> f64 {
        self.alpha_s * self.beta
    }

    /// Which term of `t = α + x/β` dominates at size `x`: below the
    /// half-throughput size the fixed α overhead does (latency-bound),
    /// at or above it the x/β transfer term does (bandwidth-bound).
    pub fn is_latency_bound(&self, x: f64) -> bool {
        x < self.half_throughput_size()
    }

    /// Least-squares fit of `t = α + x/β` to `(x, t_seconds)` samples.
    /// Requires at least two samples with distinct `x`. A negative fitted
    /// intercept is clamped to zero (measured rates can exceed the linear
    /// model at small sizes due to caching).
    pub fn fit_time(samples: &[(f64, f64)]) -> Self {
        assert!(samples.len() >= 2, "need at least two samples");
        let n = samples.len() as f64;
        let sx: f64 = samples.iter().map(|(x, _)| x).sum();
        let st: f64 = samples.iter().map(|(_, t)| t).sum();
        let sxx: f64 = samples.iter().map(|(x, _)| x * x).sum();
        let sxt: f64 = samples.iter().map(|(x, t)| x * t).sum();
        let denom = n * sxx - sx * sx;
        assert!(denom.abs() > 0.0, "samples must have distinct x");
        let slope = (n * sxt - sx * st) / denom;
        let intercept = (st - slope * sx) / n;
        assert!(slope > 0.0, "non-positive fitted slope: degenerate data");
        Self {
            alpha_s: intercept.max(0.0),
            beta: 1.0 / slope,
        }
    }

    /// Fit from `(x, rate)` samples by converting to times.
    pub fn fit_rate(samples: &[(f64, f64)]) -> Self {
        let times: Vec<(f64, f64)> = samples
            .iter()
            .map(|&(x, r)| {
                assert!(r > 0.0 && x > 0.0, "rates and sizes must be positive");
                (x, x / r)
            })
            .collect();
        Self::fit_time(&times)
    }

    /// Coefficient of determination (R²) of the time-form fit against the
    /// given `(x, t)` samples — the paper notes the linear model is
    /// "well-correlated" with measurements; this quantifies it.
    pub fn r_squared(&self, samples: &[(f64, f64)]) -> f64 {
        let n = samples.len() as f64;
        if n < 2.0 {
            return 1.0;
        }
        let mean_t: f64 = samples.iter().map(|(_, t)| t).sum::<f64>() / n;
        let ss_tot: f64 = samples.iter().map(|(_, t)| (t - mean_t).powi(2)).sum();
        let ss_res: f64 = samples
            .iter()
            .map(|(x, t)| (t - self.time_s(*x)).powi(2))
            .sum();
        if ss_tot == 0.0 {
            return 1.0;
        }
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_asymptotes_to_beta() {
        let m = LatencyThroughput::new(10e-6, 25e9); // 10 µs, 25 GB/s
        assert!(m.rate(1e12) / 25e9 > 0.999);
        // At tiny sizes, rate ≈ x/α (latency-bound).
        let x = 100.0;
        assert!((m.rate(x) - x / 10e-6).abs() / (x / 10e-6) < 0.01);
    }

    #[test]
    fn time_is_affine() {
        let m = LatencyThroughput::new(1e-6, 1e9);
        assert!((m.time_s(0.0) - 1e-6).abs() < 1e-18);
        assert!((m.time_s(1e9) - (1e-6 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn half_throughput_size() {
        let m = LatencyThroughput::new(2e-6, 5e9);
        let xh = m.half_throughput_size();
        assert!((m.rate(xh) / m.beta - 0.5).abs() < 1e-12);
    }

    #[test]
    fn regime_classification_splits_at_n_half() {
        let m = LatencyThroughput::new(2e-6, 5e9); // x_half = 10 kB
        assert!(m.is_latency_bound(1e3));
        assert!(!m.is_latency_bound(1e6));
        assert!(!m.is_latency_bound(m.half_throughput_size()));
    }

    #[test]
    fn fit_recovers_exact_parameters() {
        let truth = LatencyThroughput::new(15e-6, 14e9);
        let samples: Vec<(f64, f64)> = [1e3, 1e4, 1e5, 1e6, 1e7, 1e8]
            .iter()
            .map(|&x| (x, truth.time_s(x)))
            .collect();
        let fit = LatencyThroughput::fit_time(&samples);
        assert!((fit.alpha_s - truth.alpha_s).abs() / truth.alpha_s < 1e-9);
        assert!((fit.beta - truth.beta).abs() / truth.beta < 1e-9);
        assert!(fit.r_squared(&samples) > 0.999999);
    }

    #[test]
    fn fit_rate_roundtrip() {
        let truth = LatencyThroughput::new(5e-6, 80e9);
        let samples: Vec<(f64, f64)> = [1e4, 1e5, 1e6, 1e7]
            .iter()
            .map(|&x| (x, truth.rate(x)))
            .collect();
        let fit = LatencyThroughput::fit_rate(&samples);
        assert!((fit.alpha_s - truth.alpha_s).abs() / truth.alpha_s < 1e-9);
        assert!((fit.beta - truth.beta).abs() / truth.beta < 1e-9);
    }

    #[test]
    fn fit_with_noise_is_close() {
        let truth = LatencyThroughput::new(20e-6, 10e9);
        // Deterministic ±5% "noise".
        let samples: Vec<(f64, f64)> = (0..10)
            .map(|i| {
                let x = 1e4 * (4.0f64).powi(i);
                let wiggle = 1.0 + 0.05 * if i % 2 == 0 { 1.0 } else { -1.0 };
                (x, truth.time_s(x) * wiggle)
            })
            .collect();
        let fit = LatencyThroughput::fit_time(&samples);
        assert!((fit.beta - truth.beta).abs() / truth.beta < 0.1);
        assert!(fit.r_squared(&samples) > 0.98);
    }

    #[test]
    fn negative_intercept_clamped() {
        // Times that decrease with size at the small end force a negative
        // intercept; we clamp to zero latency.
        let samples = vec![(1e3, 1.0e-6), (1e6, 1.0e-4), (1e9, 1.0e-1)];
        let fit = LatencyThroughput::fit_time(&samples);
        assert!(fit.alpha_s >= 0.0);
    }

    #[test]
    #[should_panic]
    fn single_sample_panics() {
        LatencyThroughput::fit_time(&[(1.0, 1.0)]);
    }
}
