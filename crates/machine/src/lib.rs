//! # gmg-machine — GPU machine models and performance methodology
//!
//! The paper analyzes every kernel and communication operation through two
//! models:
//!
//! 1. the **roofline** (attainable GFLOP/s = min(peak, AI × bandwidth)),
//!    from which it derives per-operation GStencil/s ceilings, and
//! 2. the **latency-throughput model** `f(x) = x / (α + x/β)`, from which
//!    it extracts empirical latency/overhead (α) and sustained
//!    throughput/bandwidth (β).
//!
//! This crate implements both, plus the machine descriptions of the three
//! GPUs the paper evaluates (NVIDIA A100, AMD MI250X GCD, Intel PVC tile)
//! and the Pennycook performance-portability metric Φ with the paper's
//! additional fraction-of-theoretical-AI metric Ψ.
//!
//! ## Substitution note
//!
//! Without the physical GPUs, per-op efficiencies (fraction of roofline,
//! fraction of theoretical AI) are *calibrated from the paper's own
//! measurements* (Tables III and V) and carried as machine-model constants;
//! every downstream quantity — kernel times, GStencil/s curves, portability
//! aggregates, potential speedups — is **recomputed** from these primitives
//! by the harnesses, so the models stay internally consistent.

pub mod contention;
pub mod gpu;
pub mod microbench;
pub mod model;
pub mod portability;
pub mod timing;

pub use contention::ContentionModel;
pub use gpu::{GpuModel, OpEfficiency, System};
pub use microbench::HostRoofline;
pub use model::LatencyThroughput;
pub use portability::{harmonic_mean_phi, potential_speedup, PortabilityTable};
pub use timing::KernelTiming;
