//! Performance-portability metrics.
//!
//! Implements the Pennycook metric the paper adopts:
//!
//! ```text
//! Φ(a, p, H) = |H| / Σ_{i∈H} 1/e_i(a,p)    if every i ∈ H is supported
//!            = 0                            otherwise
//! ```
//!
//! with two choices of efficiency `e_i`: fraction of the roofline
//! (Table III) and fraction of theoretical arithmetic intensity (Table V),
//! plus the potential-speedup algebra of Figure 7.

use crate::gpu::System;
use gmg_stencil::{OpKind, ALL_OPS};
use serde::{Deserialize, Serialize};

/// Harmonic mean of efficiencies; `None` entries mean "unsupported" and
/// force the metric to zero, per the definition.
pub fn harmonic_mean_phi(effs: &[Option<f64>]) -> f64 {
    if effs.is_empty() {
        return 0.0;
    }
    let mut sum_inv = 0.0;
    for e in effs {
        match e {
            Some(v) if *v > 0.0 => sum_inv += 1.0 / v,
            _ => return 0.0,
        }
    }
    effs.len() as f64 / sum_inv
}

/// Potential speedup from improving code generation (roofline fraction)
/// and/or data locality (theoretical-AI fraction) — the iso-curves of
/// Figure 7: `100%/%Roofline × 100%/%TheoreticalAI`.
pub fn potential_speedup(roofline_fraction: f64, ai_fraction: f64) -> f64 {
    assert!(roofline_fraction > 0.0 && ai_fraction > 0.0);
    (1.0 / roofline_fraction) * (1.0 / ai_fraction)
}

/// Which efficiency definition a portability table uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EfficiencyBasis {
    /// Fraction of the empirical-AI roofline (paper Table III).
    Roofline,
    /// Fraction of the theoretical arithmetic intensity (paper Table V).
    TheoreticalAi,
}

/// One row of a portability table: an operation and its efficiency on each
/// platform, with the per-op harmonic mean.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PortabilityRow {
    pub op: OpKind,
    /// Efficiency per system, in [`System::ALL`] order.
    pub efficiency: [f64; 3],
    /// Harmonic mean across platforms (the paper's per-op Ψ column).
    pub per_op_phi: f64,
}

/// A full portability table (Tables III / V) with the overall Φ.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PortabilityTable {
    pub basis: EfficiencyBasis,
    pub rows: Vec<PortabilityRow>,
    /// Harmonic mean over all (op, platform) efficiencies — the paper's
    /// headline 73% (roofline basis) / 92% (theoretical-AI basis).
    pub overall_phi: f64,
}

impl PortabilityTable {
    /// Build the table from the calibrated machine models.
    pub fn from_models(basis: EfficiencyBasis) -> Self {
        let mut rows = Vec::with_capacity(ALL_OPS.len());
        let mut all: Vec<Option<f64>> = Vec::new();
        for op in ALL_OPS {
            let mut eff = [0.0; 3];
            for (i, sys) in System::ALL.iter().enumerate() {
                let e = sys.gpu().op_efficiency(op);
                eff[i] = match basis {
                    EfficiencyBasis::Roofline => e.roofline_fraction,
                    EfficiencyBasis::TheoreticalAi => e.ai_fraction,
                };
                all.push(Some(eff[i]));
            }
            rows.push(PortabilityRow {
                op,
                efficiency: eff,
                per_op_phi: harmonic_mean_phi(&eff.map(Some)),
            });
        }
        PortabilityTable {
            basis,
            rows,
            overall_phi: harmonic_mean_phi(&all),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_mean_basics() {
        assert_eq!(harmonic_mean_phi(&[]), 0.0);
        assert_eq!(harmonic_mean_phi(&[Some(0.5)]), 0.5);
        let h = harmonic_mean_phi(&[Some(1.0), Some(0.5)]);
        assert!((h - 2.0 / 3.0).abs() < 1e-12);
        // Any unsupported platform zeroes the metric.
        assert_eq!(harmonic_mean_phi(&[Some(1.0), None]), 0.0);
        assert_eq!(harmonic_mean_phi(&[Some(1.0), Some(0.0)]), 0.0);
    }

    #[test]
    fn harmonic_mean_below_arithmetic() {
        let vals = [0.9, 0.4, 0.7];
        let h = harmonic_mean_phi(&vals.map(Some));
        let a = vals.iter().sum::<f64>() / 3.0;
        assert!(h < a);
        assert!(
            h > *vals
                .iter()
                .min_by(|a, b| a.partial_cmp(b).unwrap())
                .unwrap()
        );
    }

    #[test]
    fn roofline_table_reproduces_paper_headline() {
        // Paper: Φ ≥ 73% on the roofline basis.
        let t = PortabilityTable::from_models(EfficiencyBasis::Roofline);
        assert!(
            (0.72..0.76).contains(&t.overall_phi),
            "overall Φ = {:.3}",
            t.overall_phi
        );
        // Per-op values from Table III's Ψ column (±2 points).
        let expect = [0.76, 0.80, 0.83, 0.76, 0.55];
        for (row, e) in t.rows.iter().zip(expect) {
            assert!(
                (row.per_op_phi - e).abs() < 0.02,
                "{}: {:.3} vs {e}",
                row.op.name(),
                row.per_op_phi
            );
        }
    }

    #[test]
    fn theoretical_ai_table_reproduces_paper_headline() {
        // Paper: Φ ≈ 92% on the theoretical-AI basis.
        let t = PortabilityTable::from_models(EfficiencyBasis::TheoreticalAi);
        assert!(
            (0.90..0.94).contains(&t.overall_phi),
            "overall Φ = {:.3}",
            t.overall_phi
        );
        let expect = [0.90, 0.97, 0.88, 0.94, 0.90];
        for (row, e) in t.rows.iter().zip(expect) {
            assert!(
                (row.per_op_phi - e).abs() < 0.025,
                "{}: {:.3} vs {e}",
                row.op.name(),
                row.per_op_phi
            );
        }
    }

    #[test]
    fn potential_speedup_figure7() {
        // Perfect implementation: 1×.
        assert!((potential_speedup(1.0, 1.0) - 1.0).abs() < 1e-12);
        // Paper: NVIDIA at most ~1.2×; MI250X interpolation outlier ~4×.
        let a100 = System::Perlmutter.gpu();
        for op in ALL_OPS {
            let e = a100.op_efficiency(op);
            let s = potential_speedup(e.roofline_fraction, e.ai_fraction);
            assert!(s <= 1.25, "{}: {s}", op.name());
        }
        let gcd = System::Frontier.gpu();
        let e = gcd.op_efficiency(OpKind::InterpolationIncrement);
        let s = potential_speedup(e.roofline_fraction, e.ai_fraction);
        assert!((3.0..4.5).contains(&s), "outlier speedup {s}");
    }
}
