//! Fabric contention model for at-scale schedule simulation.
//!
//! The per-NIC [`LatencyThroughput`] view (and `gmg-comm`'s
//! `NetworkModel`) describes a *single* rank's injection path. Beyond a
//! few hundred ranks the dominant effects move into the shared fabric:
//! how many switch stages a message crosses (switch radix), how many
//! ranks share each injection link, how fast the NIC can *post* messages
//! (rate limit — the coarse-level killer, where messages are tiny and
//! numerous), and how deep the allreduce tree grows. This module models
//! those knobs on an abstract `(α, β)` pair so it composes with any
//! calibrated per-rank model without `gmg-machine` growing a dependency
//! on the comm crate.
//!
//! [`LatencyThroughput`]: crate::model::LatencyThroughput

use serde::{Deserialize, Serialize};

/// Fabric-level contention knobs. All effects are multiplicative /
/// additive penalties applied to a per-rank `(α, β)` exchange model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ContentionModel {
    /// Ports per switch. Fabric diameter grows as `log_radix(nodes)`
    /// (Slingshot Rosetta: 64).
    pub switch_radix: usize,
    /// Per-stage traversal latency, seconds (switch transit + SerDes).
    pub hop_latency_s: f64,
    /// Ranks sharing one injection link (GPUs per NIC).
    pub ranks_per_link: usize,
    /// Fraction of the naive `1/ranks_per_link` bandwidth loss actually
    /// observed when co-injecting (0 = perfect sharing, 1 = full division;
    /// real fabrics time-slice well, so ~0.6).
    pub link_share_derate: f64,
    /// Fractional sustained-bandwidth taper per fabric stage beyond the
    /// first (adaptive-routing spread, shared global links).
    pub stage_bw_taper: f64,
    /// NIC message-posting rate limit, messages/second. Coarse levels post
    /// many tiny messages; below the rate limit the *count*, not the
    /// bytes, bounds exchange time.
    pub msg_rate_per_s: f64,
    /// One hop of the allreduce reduction/broadcast tree, seconds
    /// (8-byte latency-bound message plus combine).
    pub allreduce_hop_s: f64,
}

impl ContentionModel {
    /// Slingshot-11-class defaults (radix-64 Rosetta switches, 1 NIC per
    /// 2 GCDs/GPUs on the paper's systems).
    pub fn slingshot() -> Self {
        ContentionModel {
            switch_radix: 64,
            hop_latency_s: 0.35e-6,
            ranks_per_link: 2,
            link_share_derate: 0.6,
            stage_bw_taper: 0.12,
            msg_rate_per_s: 2.0e6,
            allreduce_hop_s: 2.0e-6,
        }
    }

    /// An idealized uncontended fabric: zero-penalty reference for the
    /// negative control of attribution tests.
    pub fn uncontended() -> Self {
        ContentionModel {
            switch_radix: 64,
            hop_latency_s: 0.0,
            ranks_per_link: 1,
            link_share_derate: 0.0,
            stage_bw_taper: 0.0,
            msg_rate_per_s: f64::INFINITY,
            allreduce_hop_s: 0.0,
        }
    }

    /// Switch stages a message crosses in a `nodes`-node job: 0 on one
    /// node (NIC loopback / intra-node), 1 while one switch suffices,
    /// then `ceil(log_radix(nodes))`.
    pub fn fabric_stages(&self, nodes: usize) -> usize {
        if nodes <= 1 {
            return 0;
        }
        let radix = self.switch_radix.max(2) as f64;
        let mut stages = 1usize;
        let mut reach = radix;
        while (reach as usize) < nodes && stages < 64 {
            stages += 1;
            reach *= radix;
        }
        stages
    }

    /// Bandwidth division factor from link sharing (≥ 1).
    pub fn link_share_factor(&self) -> f64 {
        1.0 + self.link_share_derate * (self.ranks_per_link.max(1) - 1) as f64
    }

    /// Apply fabric contention to a per-rank `(α, β)` exchange model at
    /// `nodes` nodes: α gains the stage traversal latency, β is divided
    /// by link sharing and tapered per extra stage. β's unit is
    /// preserved (GB/s in, GB/s out).
    pub fn contended_alpha_beta(&self, alpha_s: f64, beta: f64, nodes: usize) -> (f64, f64) {
        let stages = self.fabric_stages(nodes);
        let alpha = alpha_s + stages as f64 * self.hop_latency_s;
        let taper = 1.0 + self.stage_bw_taper * stages.saturating_sub(1) as f64;
        let beta = beta / (self.link_share_factor() * taper);
        (alpha, beta)
    }

    /// Queueing delay for *posting* `n_messages` in one exchange under the
    /// NIC message-rate limit, seconds. Linear in count: this is the term
    /// that makes coarse levels message-rate-bound rather than
    /// bandwidth-bound.
    pub fn message_rate_delay_s(&self, n_messages: usize) -> f64 {
        if self.msg_rate_per_s.is_finite() && self.msg_rate_per_s > 0.0 {
            n_messages as f64 / self.msg_rate_per_s
        } else {
            0.0
        }
    }

    /// Depth of a binomial reduction tree over `ranks` (⌈log₂ ranks⌉).
    pub fn allreduce_depth(&self, ranks: usize) -> usize {
        if ranks <= 1 {
            return 0;
        }
        (usize::BITS - (ranks - 1).leading_zeros()) as usize
    }

    /// Modelled allreduce latency at `ranks`: reduce up the tree plus
    /// broadcast down — `2 · depth` hops.
    pub fn allreduce_time_s(&self, ranks: usize) -> f64 {
        2.0 * self.allreduce_depth(ranks) as f64 * self.allreduce_hop_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_grow_with_radix_log() {
        let c = ContentionModel::slingshot();
        assert_eq!(c.fabric_stages(1), 0);
        assert_eq!(c.fabric_stages(2), 1);
        assert_eq!(c.fabric_stages(64), 1);
        assert_eq!(c.fabric_stages(65), 2);
        assert_eq!(c.fabric_stages(64 * 64), 2);
        assert_eq!(c.fabric_stages(64 * 64 + 1), 3);
    }

    #[test]
    fn contention_never_improves_the_model() {
        let c = ContentionModel::slingshot();
        let (a0, b0) = c.contended_alpha_beta(30e-6, 14.0, 1);
        let mut prev = (a0, b0);
        for nodes in [2usize, 16, 128, 1024, 16384] {
            let (a, b) = c.contended_alpha_beta(30e-6, 14.0, nodes);
            assert!(a >= prev.0, "alpha must not shrink with scale");
            assert!(b <= prev.1, "beta must not grow with scale");
            prev = (a, b);
        }
        // Link sharing alone costs bandwidth even on one node's switch.
        assert!(b0 < 14.0);
        assert!(a0 >= 30e-6);
    }

    #[test]
    fn uncontended_is_identity() {
        let c = ContentionModel::uncontended();
        let (a, b) = c.contended_alpha_beta(30e-6, 14.0, 100_000);
        assert_eq!(a, 30e-6);
        assert_eq!(b, 14.0);
        assert_eq!(c.message_rate_delay_s(1_000_000), 0.0);
        assert_eq!(c.allreduce_time_s(100_000), 0.0);
    }

    #[test]
    fn allreduce_depth_is_ceil_log2() {
        let c = ContentionModel::slingshot();
        assert_eq!(c.allreduce_depth(1), 0);
        assert_eq!(c.allreduce_depth(2), 1);
        assert_eq!(c.allreduce_depth(3), 2);
        assert_eq!(c.allreduce_depth(1024), 10);
        assert_eq!(c.allreduce_depth(1025), 11);
        assert!(c.allreduce_time_s(1024) > c.allreduce_time_s(2));
    }

    #[test]
    fn message_rate_delay_linear_in_count() {
        let c = ContentionModel::slingshot();
        let one = c.message_rate_delay_s(1);
        assert!((c.message_rate_delay_s(100) - 100.0 * one).abs() < 1e-12);
    }
}
