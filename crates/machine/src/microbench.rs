//! Host micro-benchmarks: the mixbench / Empirical Roofline Toolkit analog.
//!
//! The paper extracts each GPU's *empirical* roofline with mixbench (A100,
//! MI250X) and Intel Advisor (PVC). We cannot run those, but the same
//! methodology applies to the machine this reproduction executes on: this
//! module measures sustained memory bandwidth with a STREAM-style triad,
//! fits the memcpy latency-throughput curve, and packages both as a
//! [`HostRoofline`] so measured CPU kernel results (from the criterion
//! benches) can be judged as a *fraction of this host's roofline* — the
//! exact metric of the paper's Table III, applied honestly to the hardware
//! we actually have.

use crate::model::LatencyThroughput;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Empirical memory-hierarchy characteristics of the executing host.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HostRoofline {
    /// Sustained triad bandwidth (GB/s), all cores.
    pub triad_gbs: f64,
    /// Single-thread copy throughput model (x = bytes).
    pub copy_alpha_s: f64,
    pub copy_beta_gbs: f64,
    /// Logical CPUs used for the parallel measurements.
    pub threads: usize,
}

impl HostRoofline {
    /// GStencil/s ceiling on this host for a kernel moving
    /// `doubles_per_point` doubles per stencil point (the CPU analog of
    /// [`crate::GpuModel::gstencil_ceiling`]).
    pub fn gstencil_ceiling(&self, doubles_per_point: f64) -> f64 {
        self.triad_gbs / (8.0 * doubles_per_point)
    }

    /// Fraction of this host's roofline achieved by a measured kernel
    /// (points per second at `doubles_per_point` traffic).
    pub fn roofline_fraction(&self, points_per_s: f64, doubles_per_point: f64) -> f64 {
        let achieved_gbs = points_per_s * 8.0 * doubles_per_point / 1e9;
        achieved_gbs / self.triad_gbs
    }
}

/// Measure a STREAM-style triad `a[i] = b[i] + s·c[i]` over all cores.
/// `bytes_per_array` should comfortably exceed the last-level cache.
pub fn measure_triad_gbs(bytes_per_array: usize, repeats: usize) -> f64 {
    let n = (bytes_per_array / 8).max(1024);
    let b: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
    let c: Vec<f64> = (0..n).map(|i| (n - i) as f64).collect();
    let mut a = vec![0.0f64; n];
    let s = 3.0f64;
    // Warm-up pass also faults the pages in.
    a.par_iter_mut()
        .zip(b.par_iter().zip(c.par_iter()))
        .for_each(|(ai, (bi, ci))| *ai = bi + s * ci);
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        a.par_iter_mut()
            .zip(b.par_iter().zip(c.par_iter()))
            .for_each(|(ai, (bi, ci))| *ai = bi + s * ci);
        // `a` is never read again, so without this the optimizer may delete
        // the timed stores outright (observed under the serial-rayon stub
        // build: hundreds of TB/s).
        std::hint::black_box(a.as_slice());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    // Triad traffic: read b, read c, write a (no write-allocate accounting).
    let bytes = 3.0 * n as f64 * 8.0;
    bytes / best / 1e9
}

/// Fit the single-thread memcpy latency-throughput curve over a geometric
/// sweep of sizes — the paper's `f(x) = x/(α + x/β)` applied to this
/// host's memory system.
pub fn fit_copy_curve() -> LatencyThroughput {
    let sizes: Vec<usize> = (10..=24).step_by(2).map(|p| 1usize << p).collect();
    let mut samples = Vec::with_capacity(sizes.len());
    for &bytes in &sizes {
        let n = bytes / 8;
        let src = vec![1.0f64; n];
        let mut dst = vec![0.0f64; n];
        dst.copy_from_slice(&src); // warm
        let reps = (1 << 22) / bytes.max(1) + 3;
        let t0 = Instant::now();
        for _ in 0..reps {
            dst.copy_from_slice(&src);
            std::hint::black_box(&dst);
        }
        let t = t0.elapsed().as_secs_f64() / reps as f64;
        samples.push((bytes as f64, t));
    }
    LatencyThroughput::fit_time(&samples)
}

/// Measure the full host roofline (triad + copy fit).
pub fn measure_host() -> HostRoofline {
    let lt = fit_copy_curve();
    HostRoofline {
        triad_gbs: measure_triad_gbs(64 << 20, 3),
        copy_alpha_s: lt.alpha_s,
        copy_beta_gbs: lt.beta / 1e9,
        threads: rayon::current_num_threads(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triad_measures_something_sane() {
        // Tiny arrays keep the test fast; any functioning machine moves
        // well over 0.1 GB/s.
        let gbs = measure_triad_gbs(4 << 20, 2);
        assert!(gbs > 0.1, "triad {gbs} GB/s");
        assert!(gbs < 10_000.0, "triad {gbs} GB/s is implausible");
    }

    #[test]
    fn copy_fit_is_positive_and_finite() {
        let lt = fit_copy_curve();
        assert!(lt.alpha_s >= 0.0);
        assert!(lt.beta > 1e8, "copy β {} B/s", lt.beta); // > 0.1 GB/s
    }

    #[test]
    fn roofline_fraction_algebra() {
        let h = HostRoofline {
            triad_gbs: 100.0,
            copy_alpha_s: 1e-7,
            copy_beta_gbs: 50.0,
            threads: 8,
        };
        // applyOp traffic (2 doubles/point): ceiling = 100/16 GStencil/s.
        let ceiling = h.gstencil_ceiling(2.0);
        assert!((ceiling - 6.25).abs() < 1e-12);
        // Achieving exactly the ceiling is fraction 1.
        let f = h.roofline_fraction(ceiling * 1e9, 2.0);
        assert!((f - 1.0).abs() < 1e-12);
    }
}
