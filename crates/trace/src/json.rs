//! A minimal JSON value, writer, and recursive-descent parser.
//!
//! Just enough JSON for the Chrome trace-event format: objects (with
//! preserved key order, so exported files are stable), arrays, strings
//! with standard escapes, f64 numbers, booleans, and null. Exists so the
//! tracing crate stays dependency-free (see the crate docs).

use std::fmt;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers are f64 (integers up to 2^53 are exact, which covers
    /// every counter and nanosecond value this crate produces).
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize compactly into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Rust's shortest-roundtrip float formatting; integral
                    // values print without a fractional part.
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null"); // JSON has no Inf/NaN
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(v) => {
                out.push('[');
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    e.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure: message plus byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    pub msg: String,
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling for completeness.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        Json::parse(&v.to_string()).expect("reparse")
    }

    #[test]
    fn scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(
            Json::parse("\"a b\"").unwrap(),
            Json::Str("a b".to_string())
        );
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("smooth+residual".into())),
            ("ts".into(), Json::Num(1234.567)),
            (
                "args".into(),
                Json::Obj(vec![
                    ("level".into(), Json::Num(0.0)),
                    ("flops".into(), Json::Num(8.0 * 4096.0)),
                ]),
            ),
            (
                "arr".into(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Num(3.0)]),
            ),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        for s in [
            "quote\"back\\slash",
            "line\nbreak\ttab",
            "µs σ — unicode",
            "\u{1}",
        ] {
            let v = Json::Str(s.to_string());
            assert_eq!(roundtrip(&v), v, "{s:?}");
        }
        // \u escapes parse, including a surrogate pair.
        assert_eq!(
            Json::parse("\"\\u00b5\\ud83d\\ude00\"").unwrap(),
            Json::Str("µ😀".to_string())
        );
    }

    #[test]
    fn integral_floats_print_without_fraction() {
        assert_eq!(Json::Num(1.0).to_string(), "1");
        assert_eq!(Json::Num(0.001).to_string(), "0.001");
    }

    #[test]
    fn getters() {
        let v = Json::parse("{\"a\": 1, \"b\": [\"x\"]}").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Json::as_arr).map(|a| a.len()), Some(1));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }

    #[test]
    fn parse_errors() {
        for bad in ["", "{", "[1,", "\"open", "{\"k\" 1}", "nul", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn key_order_preserved() {
        let v = Json::parse("{\"z\": 1, \"a\": 2}").unwrap();
        match &v {
            Json::Obj(fields) => {
                assert_eq!(fields[0].0, "z");
                assert_eq!(fields[1].0, "a");
            }
            _ => panic!("not an object"),
        }
    }
}
